"""Legacy setup shim.

The environment has an older setuptools without the ``wheel`` package, so
PEP 660 editable installs are unavailable; this shim lets
``pip install -e . --no-use-pep517`` fall back to the classic develop-mode
install.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
