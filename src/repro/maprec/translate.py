"""Theorem 4.2: translating map-recursion into pure (while-based) NSC.

Given a map-recursive definition ::

    f(x) = if p(x) then s(x) else c(x, map(f)(d(x)))

the translation produces an equivalent NSC function with no recursion, built
from two ``while`` loops exactly as in the paper's proof sketch:

Divide phase
    Starting from the singleton frontier ``[x]``, repeatedly expand every
    internal node (one whose predicate is false) into its sub-problems, one
    tree level per iteration.  For every level a slim record is kept: leaves
    are stored as their *base result* (``s`` is applied eagerly, as the paper
    does at the start of its combine phase), internal nodes as their child
    count — plus, only when the combine function genuinely needs it, the
    original input.

Combine phase
    Walk the recorded levels bottom-up.  The results of level ``i+1`` are
    split according to the child counts of level ``i``'s nodes (leaves count
    0) and each level-``i`` node either returns its stored base result (leaf)
    or applies the combine function to its group of child results.  This is
    the paper's "combine adjacent elements of the same depth" bookkeeping.

Complexity
    ``T' = O(T)``: each while iteration performs one level of the recursion
    with a constant number of extra primitive steps, and the number of
    iterations is the tree depth (divide) plus the tree depth (combine).
    For a *balanced* tree the recorded levels are geometrically dominated by
    the frontier, so ``W' = O(W)`` as Theorem 4.2 claims.  For unbalanced
    trees this direct translation pays the ``O(v * W)`` re-touching overhead
    that the paper removes with its staged ``z_i`` buffers;
    :mod:`repro.maprec.staging` models that staged scheme and quantifies the
    ``O(v^eps * W)`` bound (experiment E3).
"""

from __future__ import annotations

from ..nsc import ast as A
from ..nsc import builder as B
from ..nsc import lib
from ..nsc.types import NAT, ProdType, SeqType, SumType, Type, prod, seq, sum_t
from .schema import MapRecursiveDef


def translate(defn: MapRecursiveDef) -> A.Lambda:
    """Translate a map-recursive definition into pure NSC (no recursion nodes).

    Returns a closed :class:`repro.nsc.ast.Lambda` of classification
    ``defn.dom -> defn.cod`` containing only core NSC constructs (``while``,
    ``map``, sequences, sums) — ready for the Section 7 compilation chain.
    """
    dom, cod = defn.dom, defn.cod
    simple = defn.combine_simple is not None
    # Level entries: leaves carry their (eagerly computed) base result,
    # internal nodes carry their child count — and their original input only
    # when the combine function needs it.
    keep_t: Type = NAT if simple else prod(dom, NAT)
    entry_t: Type = sum_t(cod, keep_t)
    level_t = seq(entry_t)
    levels_t = seq(level_t)

    # classify : dom -> entry
    cx = B.gensym("cx")
    if simple:
        internal_payload: A.Term = B.length_(B.app(defn.divide, B.v(cx)))
    else:
        internal_payload = B.pair(B.v(cx), B.length_(B.app(defn.divide, B.v(cx))))
    classify = B.lam(
        cx,
        dom,
        B.if_(
            B.app(defn.pred, B.v(cx)),
            B.inl(B.app(defn.base, B.v(cx)), keep_t),
            B.inr(internal_payload, cod),
        ),
    )

    # expand : dom -> [dom]  (children of a frontier node; [] for leaves)
    ex = B.gensym("ex")
    expand = B.lam(
        ex,
        dom,
        B.if_(B.app(defn.pred, B.v(ex)), B.empty(dom), B.app(defn.divide, B.v(ex))),
    )

    # ---------------- divide phase ----------------
    # State: (recorded levels, frontier of unclassified inputs).
    div_state_t = prod(levels_t, seq(dom))
    st = B.gensym("st")
    div_pred = B.lam(st, div_state_t, B.gt(B.length_(B.snd(B.v(st))), 0))

    st2 = B.gensym("st")
    div_body = B.lam(
        st2,
        div_state_t,
        B.pair(
            B.append(
                B.fst(B.v(st2)),
                B.single(B.app(B.map_(classify), B.snd(B.v(st2)))),
            ),
            B.flatten_(B.app(B.map_(expand), B.snd(B.v(st2)))),
        ),
    )

    # ---------------- combine phase ----------------
    # State: (levels still to fold, results of the level just below).
    comb_state_t = prod(levels_t, seq(cod))
    cs = B.gensym("cs")
    comb_pred = B.lam(cs, comb_state_t, B.gt(B.length_(B.fst(B.v(cs))), 0))

    # child count of an entry: 0 for leaves, the recorded count otherwise
    ce = B.gensym("e")
    l3, r3 = B.gensym("l"), B.gensym("r")
    count_payload: A.Term = B.v(r3) if simple else B.snd(B.v(r3))
    child_count = B.lam(ce, entry_t, B.case_(B.v(ce), l3, B.c(0), r3, count_payload))

    # fold one (entry, group-of-child-results) pair
    fe = B.gensym("eg")
    l4, r4 = B.gensym("l"), B.gensym("r")
    if simple:
        internal_fold: A.Term = B.app(defn.combine_simple, B.snd(B.v(fe)))  # type: ignore[arg-type]
    else:
        internal_fold = B.app(defn.combine, B.pair(B.fst(B.v(r4)), B.snd(B.v(fe))))
    fold_one = B.lam(
        fe,
        prod(entry_t, seq(cod)),
        B.case_(B.fst(B.v(fe)), l4, B.v(l4), r4, internal_fold),
    )

    cs2 = B.gensym("cs")
    cur = B.gensym("cur")
    counts = B.gensym("cnt")
    groups = B.gensym("grp")
    newres = B.gensym("res")
    comb_body = B.lam(
        cs2,
        comb_state_t,
        B.lets(
            [
                (cur, B.app(lib.last(level_t), B.fst(B.v(cs2)))),
                (counts, B.app(B.map_(child_count), B.v(cur))),
                (groups, B.split_(B.snd(B.v(cs2)), B.v(counts))),
                (newres, B.app(B.map_(fold_one), B.zip_(B.v(cur), B.v(groups)))),
            ],
            B.pair(B.app(lib.remove_last(level_t), B.fst(B.v(cs2))), B.v(newres)),
        ),
    )

    # ---------------- wrapper ----------------
    x = B.gensym("x")
    levels = B.gensym("levels")
    final = B.gensym("final")
    body = B.lets(
        [
            (
                levels,
                B.fst(
                    B.app(
                        B.while_(div_pred, div_body),
                        B.pair(B.empty(level_t), B.single(B.v(x))),
                    )
                ),
            ),
            (
                final,
                B.app(
                    B.while_(comb_pred, comb_body),
                    B.pair(B.v(levels), B.empty(cod)),
                ),
            ),
        ],
        B.get_(B.snd(B.v(final))),
    )
    return B.lam(x, dom, body)


def translate_to_recfun_and_nsc(defn: MapRecursiveDef) -> tuple[A.RecFun, A.Lambda]:
    """Both forms of a definition: the recursive original and its NSC translation."""
    return defn.to_recfun(), translate(defn)
