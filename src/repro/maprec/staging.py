"""The staged z_i buffer scheme of the Theorem 4.2 proof — cost model.

The direct while-translation of :mod:`repro.maprec.translate` re-touches the
accumulated divide-phase levels on every iteration, which costs an extra
``O(v * W)`` on unbalanced trees (``v`` = number of distinct tree levels that
contain leaves).  The paper's fix: keep ``1/eps + 1`` staging buffers
``z_0, ..., z_k``; new leaves are appended to ``z_0`` only; after ``z_i`` has
been touched ``v^eps`` times its whole content is flushed into ``z_{i+1}``.
Every element then passes through each buffer once and is touched ``v^eps``
times in each, so the extra work is ``O((1/eps) * v^eps * W) = O(v^eps * W)``.

This module implements that accounting as an explicit simulator over the
per-level *sizes* of a divide-and-conquer computation, so experiment E3 can
regenerate the paper's claimed overheads (naive ``v*W`` vs staged
``v^eps * W``) and their balanced-tree collapse to ``O(W)`` without having to
run the (much slower) full NSC interpreter on every configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence


@dataclass(frozen=True)
class AccumulationCost:
    """Breakdown of the divide-phase accumulation work.

    ``intrinsic``
        work of producing the levels themselves (sum of level sizes) — the
        lower bound ``Theta(W)`` that any scheme pays;
    ``overhead``
        extra work spent re-touching already-produced data;
    ``total``
        ``intrinsic + overhead``.
    """

    intrinsic: int
    overhead: int

    @property
    def total(self) -> int:
        return self.intrinsic + self.overhead

    @property
    def overhead_factor(self) -> float:
        """``total / intrinsic`` — the multiplicative work blow-up."""
        if self.intrinsic == 0:
            return 1.0
        return self.total / self.intrinsic


def naive_accumulation_cost(level_sizes: Sequence[int]) -> AccumulationCost:
    """Cost of the direct translation: every iteration re-touches all levels so far.

    Appending level ``i`` to the record costs (per the NSC append/while rules)
    the size of everything recorded so far plus the new level.
    """
    intrinsic = sum(level_sizes)
    overhead = 0
    acc = 0
    for size in level_sizes:
        overhead += acc  # re-touching the already recorded prefix
        acc += size
    return AccumulationCost(intrinsic=intrinsic, overhead=overhead)


def staged_accumulation_cost(level_sizes: Sequence[int], eps: float) -> AccumulationCost:
    """Cost of the staged z_i scheme with parameter ``eps`` (Theorem 4.2 proof).

    ``k = ceil(1/eps)`` buffers; ``z_i`` is flushed into ``z_{i+1}`` after it
    has been touched ``ceil(v^eps)`` times, where ``v`` is the number of
    levels.  Touching a buffer costs its current size.
    """
    if not 0 < eps <= 1:
        raise ValueError("eps must lie in (0, 1]")
    v = max(1, len(level_sizes))
    period = max(2, math.ceil(v**eps))
    k = max(1, math.ceil(1.0 / eps))
    sizes = [0] * (k + 1)  # current content size of z_0 .. z_k
    touches = [0] * (k + 1)
    intrinsic = sum(level_sizes)
    overhead = 0

    def flush(i: int) -> None:
        nonlocal overhead
        if i + 1 > k:
            return  # the last buffer only accumulates
        # moving z_i into z_{i+1} touches both buffers once
        overhead += sizes[i] + sizes[i + 1]
        sizes[i + 1] += sizes[i]
        sizes[i] = 0
        touches[i] = 0
        touches[i + 1] += 1
        if touches[i + 1] >= period:
            flush(i + 1)

    for size in level_sizes:
        # appending the new level touches z_0
        overhead += sizes[0]
        sizes[0] += size
        touches[0] += 1
        if touches[0] >= period:
            flush(0)
    return AccumulationCost(intrinsic=intrinsic, overhead=overhead)


def balanced_level_sizes(leaves: int, fanout: int = 2, leaf_size: int = 1) -> list[int]:
    """Level sizes of a perfectly balanced divide-and-conquer tree."""
    sizes = []
    width = 1
    while width < leaves:
        sizes.append(width * leaf_size)
        width *= fanout
    sizes.append(leaves * leaf_size)
    return sizes


def skewed_level_sizes(leaves: int, leaf_size: int = 1) -> list[int]:
    """Level sizes of a maximally unbalanced tree (one leaf peels off per level).

    This is the adversarial case of Theorem 4.2: ``v`` (the number of levels
    containing leaves) equals the number of leaves.
    """
    return [max(1, (leaves - i)) * leaf_size for i in range(leaves)]


def level_sizes_from_recursion(
    x: object,
    pred: Callable[[object], bool],
    divide: Callable[[object], list],
    size_of: Callable[[object], int],
) -> list[int]:
    """Run a divide-and-conquer recursion shape in Python and record level sizes.

    Used to feed the accumulation-cost models with the exact level profile of
    a given workload (e.g. quicksort on sorted input vs random input).
    """
    sizes: list[int] = []
    frontier = [x]
    while frontier:
        sizes.append(sum(size_of(item) for item in frontier))
        next_frontier: list = []
        for item in frontier:
            if not pred(item):
                next_frontier.extend(divide(item))
        frontier = next_frontier
    return sizes
