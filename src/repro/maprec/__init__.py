"""Map-recursion (Definition 4.1) and its translation into NSC (Theorem 4.2).

* :mod:`repro.maprec.schema` — the normal form, direct recursive execution and
  the syntactic map-recursiveness check;
* :mod:`repro.maprec.translate` — the two-phase (divide / combine) while-based
  translation into pure NSC;
* :mod:`repro.maprec.staging` — the staged ``z_i`` buffer cost model that
  bounds the unbalanced-tree overhead by ``O(v^eps * W)``.
"""

from .schema import MapRecursiveDef, is_map_recursive, recursion_calls
from .staging import (
    AccumulationCost,
    balanced_level_sizes,
    naive_accumulation_cost,
    skewed_level_sizes,
    staged_accumulation_cost,
)
from .translate import translate, translate_to_recfun_and_nsc

__all__ = [
    "MapRecursiveDef",
    "is_map_recursive",
    "recursion_calls",
    "AccumulationCost",
    "balanced_level_sizes",
    "naive_accumulation_cost",
    "skewed_level_sizes",
    "staged_accumulation_cost",
    "translate",
    "translate_to_recfun_and_nsc",
]
