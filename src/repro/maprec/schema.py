"""Map-recursion: the restricted recursion schema of Definition 4.1.

A function definition is *map-recursive* when it has the shape ::

    fun f(x) = if p(x) then s(x) else c(x, map(f)(d(x)))

where ``p : s -> B``, ``s : s -> t``, ``d : s -> [s]`` and
``c : s x [t] -> t`` do not mention ``f``.  The recursive call occurs only
under a single ``map``, so the sub-problems run in parallel under the
Definition 3.1 cost model.  The schema subsumes the paper's three examples
(Section 4):

* ``g`` — binary divide and conquer: ``d(x) = [d1(x), d2(x)]``,
  ``c(x, [r1, r2]) = c'(r1, r2)`` (quicksort, mergesort);
* ``h`` — tail recursion / single sub-problem: ``d(x) = [d'(x)]``;
* ``k`` — data-dependent 2-or-3-way splits, which are *not* contained in the
  sense of Blelloch's VRAM compilation but are still map-recursive.

The paper stresses that map-recursiveness is a *decidable, purely syntactic*
property (in contrast to containment); :func:`is_map_recursive` implements
that check for :class:`repro.nsc.ast.RecFun` definitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..nsc import ast as A
from ..nsc import builder as B
from ..nsc.types import BOOL, FunType, SeqType, Type, prod, seq
from ..nsc.typecheck import NSCTypeError, infer_function


@dataclass(frozen=True)
class MapRecursiveDef:
    """A map-recursive definition in the four-component normal form.

    ``f : dom -> cod`` with ::

        f(x) = if pred(x) then base(x) else combine(x, map(f)(divide(x)))
    """

    name: str
    dom: Type
    cod: Type
    pred: A.Function  # dom -> B
    base: A.Function  # dom -> cod
    divide: A.Function  # dom -> [dom]
    combine: A.Function  # dom x [cod] -> cod
    #: Optional combine that does not need the original input (the paper's
    #: pure ``c(g(d1(x)), g(d2(x)))`` form), of type [cod] -> cod.  When
    #: present, the Theorem 4.2 translation does not have to carry the inputs
    #: of internal nodes through the while state, which is what makes the
    #: balanced-tree case ``W' = O(W)`` tight.
    combine_simple: Optional[A.Function] = None

    def check_types(self) -> None:
        """Verify the component signatures against ``dom``/``cod``."""
        pt = infer_function(self.pred)
        if pt != FunType(self.dom, BOOL):
            raise NSCTypeError(f"pred must have type {self.dom} -> B, got {pt}")
        bt = infer_function(self.base)
        if bt != FunType(self.dom, self.cod):
            raise NSCTypeError(f"base must have type {self.dom} -> {self.cod}, got {bt}")
        dt = infer_function(self.divide)
        if dt != FunType(self.dom, seq(self.dom)):
            raise NSCTypeError(f"divide must have type {self.dom} -> [{self.dom}], got {dt}")
        ct = infer_function(self.combine)
        if ct != FunType(prod(self.dom, seq(self.cod)), self.cod):
            raise NSCTypeError(
                f"combine must have type {self.dom} x [{self.cod}] -> {self.cod}, got {ct}"
            )
        if self.combine_simple is not None:
            cst = infer_function(self.combine_simple)
            if cst != FunType(seq(self.cod), self.cod):
                raise NSCTypeError(
                    f"combine_simple must have type [{self.cod}] -> {self.cod}, got {cst}"
                )

    def to_recfun(self) -> A.RecFun:
        """The equivalent extended-NSC recursive definition (directly interpretable)."""
        x = B.gensym("x")
        y = B.gensym("y")
        mapped = B.app(
            B.map_(B.lam(y, self.dom, B.reccall(self.name, B.v(y)))),
            B.app(self.divide, B.v(x)),
        )
        if self.combine_simple is not None:
            combined = B.app(self.combine_simple, mapped)
        else:
            combined = B.app(self.combine, B.pair(B.v(x), mapped))
        body = B.if_(
            B.app(self.pred, B.v(x)),
            B.app(self.base, B.v(x)),
            combined,
        )
        return B.recfun(self.name, x, self.dom, body, self.cod)


def is_map_recursive(fn: A.RecFun) -> bool:
    """Syntactic check of Definition 4.1.

    True iff every recursive call to ``fn.name`` in the body occurs in the
    eta-expanded position ``map(\\y. f(y))`` — i.e. the recursion is exposed
    to the parallel ``map`` and nowhere else.  The check is linear in the size
    of the definition (the paper contrasts this with containment, which is
    undecidable).
    """
    allowed: set[int] = set()
    for node in A.walk(fn.body):
        if isinstance(node, A.MapF) and isinstance(node.fn, A.Lambda):
            inner = node.fn.body
            if (
                isinstance(inner, A.RecCall)
                and inner.name == fn.name
                and isinstance(inner.arg, A.Var)
                and inner.arg.name == node.fn.var
            ):
                allowed.add(id(inner))
    for node in A.walk(fn.body):
        if isinstance(node, A.RecCall) and node.name == fn.name and id(node) not in allowed:
            return False
        if isinstance(node, A.RecFun) and node.name == fn.name:
            # re-definition (shadowing) of the same name is outside Definition 4.1
            return False
    return True


def recursion_calls(fn: A.RecFun) -> int:
    """Number of syntactic recursive-call sites (used by tests and reports)."""
    return sum(
        1 for node in A.walk(fn.body) if isinstance(node, A.RecCall) and node.name == fn.name
    )
