"""repro — reproduction of Suciu & Tannen (1994).

"Efficient Compilation of High-Level Data Parallel Algorithms"
(UPenn TR MS-CIS-94-17 / SPAA'94).

Subpackages
-----------
``nsc``
    The Nested Sequence Calculus: types, S-objects, big-step semantics with
    the machine-independent time/work cost model of Definition 3.1.
``maprec``
    Map-recursion (Definition 4.1) and its translation into NSC (Theorem 4.2).
``nsa``
    The variable-free Nested Sequence Algebra (Appendix C) and the
    NSC -> NSA translation.
``sa``
    The flat Sequence Algebra (Appendix D), the SEQ segment encoding, the Map
    Lemma (Lemma 7.2) and the NSA -> SA flattening (Proposition 7.4).
``bvram``
    The Bounded Vector Random Access Machine (Section 2) and the SA -> BVRAM
    code generator (Proposition 7.5).
``vram``
    An unbounded-register VRAM baseline (Blelloch-style), used for the
    ablation experiments.
``butterfly``
    Butterfly-network implementation of the BVRAM instructions with oblivious
    routing (Proposition 2.1).
``pram``
    CREW PRAM with scan primitives and Brent scheduling (Proposition 3.2).
``algorithms``
    NSC programs: Valiant's O(log n log log n) mergesort (Section 5,
    Figures 1-3), quicksort, permutation routines, plus Python oracles.
``analysis``
    Log-log slope fitting and report tables used by the benchmark harness.
``core``
    The end-to-end compilation pipeline and the top-level convenience API.
"""

from importlib import metadata as _metadata

try:  # pragma: no cover - depends on installation mode
    __version__ = _metadata.version("repro")
except _metadata.PackageNotFoundError:  # pragma: no cover
    __version__ = "0.1.0"

__all__ = ["__version__"]
