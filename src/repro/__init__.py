"""repro — reproduction of Suciu & Tannen (1994).

"Efficient Compilation of High-Level Data Parallel Algorithms"
(UPenn TR MS-CIS-94-17 / SPAA'94).

Subpackages
-----------
``nsc``
    The Nested Sequence Calculus: types, S-objects, big-step semantics with
    the machine-independent time/work cost model of Definition 3.1.
``maprec``
    Map-recursion (Definition 4.1) and its translation into NSC (Theorem 4.2).
``sa``
    The flat Sequence Algebra: the SEQ segment encoding and the Map Lemma
    (Lemma 7.2) as operational segmented-vector schemes.
``compiler``
    The Section 7 compilation chain (Theorem 7.1): NSC -> NSA variable
    elimination, flattening onto segment descriptors, and BVRAM code
    generation, with a differential-testing harness against the interpreter.
``bvram``
    The Bounded Vector Random Access Machine (Section 2): the ISA (including
    the segmented extensions the compiler emits) and the costed interpreter.
``butterfly``
    Butterfly-network implementation of the BVRAM instructions with oblivious
    routing (Proposition 2.1).
``pram``
    CREW PRAM with scan primitives and Brent scheduling (Proposition 3.2).
``algorithms``
    NSC programs: Valiant's O(log n log log n) mergesort (Section 5,
    Figures 1-3), quicksort, permutation routines, plus Python oracles.
``analysis``
    Log-log slope fitting and report tables used by the benchmark harness.
``obs``
    Observability: pipeline span tracing with Chrome-trace export, per-block
    execution profiling with exact T'/W' attribution, Prometheus metrics
    exposition, and the predicted-vs-measured kernel cost model.
"""

from importlib import metadata as _metadata

try:  # pragma: no cover - depends on installation mode
    __version__ = _metadata.version("repro")
except _metadata.PackageNotFoundError:  # pragma: no cover
    __version__ = "0.1.0"

__all__ = ["__version__"]
