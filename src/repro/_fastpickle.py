"""Fast pickling for frozen ``slots=True`` dataclass hierarchies.

Frozen slotted dataclasses have no ``__dict__``, so CPython pickles them
through ``dataclasses._dataclass_getstate`` / ``_dataclass_setstate`` —
and both recompute ``dataclasses.fields(self)`` for *every object*.  A
compiled program embeds tens of thousands of AST, type and instruction
nodes, which makes that per-node ``fields()`` call the dominant cost of
loading a cached artifact or a shard-executor blob (profiling shows it
eating ~2/3 of a warm cache read).

:class:`FastSlotPickle` replaces the generated state protocol with a plain
slot-value tuple and an ``object.__setattr__`` loop.  The slot layout is
resolved once per class and memoised.  Mix it into the *base* class of a
hierarchy (``Expr``, ``Type``, ``Instruction``) and call :func:`install`
on that base *after* all node classes are defined: the ``@dataclass``
decorator writes ``_dataclass_getstate``/``_dataclass_setstate`` into each
subclass's own ``__dict__`` (it only checks ``cls_dict``, not the MRO), so
plain inheritance is not enough — the mixin's methods must be re-installed
over the generated ones.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Tuple


@lru_cache(maxsize=None)
def _slot_names(cls: type) -> Tuple[str, ...]:
    """All slot names of ``cls``, base-first, matching field declaration order."""
    names = []
    for klass in reversed(cls.__mro__):
        slots = getattr(klass, "__slots__", ())
        if isinstance(slots, str):  # a bare string means a single slot
            slots = (slots,)
        names.extend(slots)
    return tuple(names)


class FastSlotPickle:
    """Mixin: pickle slotted instances as a tuple of slot values."""

    __slots__ = ()

    def __getstate__(self) -> Tuple[Any, ...]:
        return tuple(getattr(self, name) for name in _slot_names(type(self)))

    def __setstate__(self, state: Tuple[Any, ...]) -> None:
        set_ = object.__setattr__  # frozen dataclasses block plain setattr
        for name, value in zip(_slot_names(type(self)), state):
            set_(self, name, value)


def install(base: type) -> None:
    """Force the fast state methods onto every dataclass under ``base``.

    Walks the (current) subclass tree; classes decorated later must be
    covered by another ``install`` call, or they silently keep the slow —
    but still correct — stdlib path.
    """
    stack = [base]
    while stack:
        cls = stack.pop()
        stack.extend(cls.__subclasses__())
        if "__dataclass_fields__" in cls.__dict__:
            cls.__getstate__ = FastSlotPickle.__getstate__
            cls.__setstate__ = FastSlotPickle.__setstate__
