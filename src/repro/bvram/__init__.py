"""The Bounded Vector Random Access Machine (Section 2).

* :mod:`repro.bvram.isa` — the instruction set (no general permutation);
* :mod:`repro.bvram.machine` — the interpreter with the T/W cost model;
* :mod:`repro.bvram.programs` — hand-written programs used by tests and E1.
"""

from .isa import Program
from .machine import BVRAM, BVRAMError, RunResult, TraceEntry, bm_route_vec, run_program, sbm_route_vec

__all__ = [
    "Program",
    "BVRAM",
    "BVRAMError",
    "RunResult",
    "TraceEntry",
    "bm_route_vec",
    "sbm_route_vec",
    "run_program",
]
