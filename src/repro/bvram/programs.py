"""Hand-written BVRAM programs.

These serve three purposes: they are the unit-test workload for the machine,
the instruction mix replayed on the butterfly network in experiment E1, and
small worked examples of the compilation idioms that the flattening passes
rely on (broadcast with ``bm_route``, packing with ``select``, while loops via
``goto_if_empty``).
"""

from __future__ import annotations

from .isa import (
    AppendI,
    Arith,
    BmRoute,
    EnumerateI,
    Goto,
    GotoIfEmpty,
    Halt,
    LengthI,
    LoadConst,
    LoadEmpty,
    Move,
    Program,
    SbmRoute,
    Select,
)


def saxpy_program() -> Program:
    """``V0 <- V0 * V1 + V2`` (elementwise a*x + y); 3 inputs, 1 output."""
    p = Program(n_registers=4, n_inputs=3, n_outputs=1)
    p.emit(Arith(dst=3, op="*", a=0, b=1))
    p.emit(Arith(dst=0, op="+", a=3, b=2))
    p.emit(Halt())
    return p


def broadcast_program() -> Program:
    """Broadcast the scalar in V1 over the length of V0 using ``bm_route``.

    Output in V0.  This is the BVRAM idiom for NSC's ``p2``.
    """
    p = Program(n_registers=4, n_inputs=2, n_outputs=1)
    p.emit(LengthI(dst=2, src=0))  # V2 = [n]
    p.emit(BmRoute(dst=3, data=1, counts=2, bound=0))  # V3 = n copies of V1's value
    p.emit(Move(dst=0, src=3))
    p.emit(Halt())
    return p


def filter_leq_program(threshold: int) -> Program:
    """Pack the elements of V0 that are <= ``threshold``; output in V0.

    Demonstrates the select/pack idiom: values are shifted by +1 before the
    mask multiplication so that genuine zeros survive the non-zero packing.
    """
    p = Program(n_registers=8, n_inputs=1, n_outputs=1)
    p.emit(LengthI(dst=1, src=0))  # V1 = [n]
    p.emit(LoadConst(dst=2, value=threshold))  # V2 = [t]
    p.emit(BmRoute(dst=3, data=2, counts=1, bound=0))  # V3 = [t, t, ..., t]
    p.emit(Arith(dst=4, op="le", a=0, b=3))  # V4 = mask
    p.emit(LoadConst(dst=5, value=1))
    p.emit(BmRoute(dst=6, data=5, counts=1, bound=0))  # V6 = [1, 1, ..., 1]
    p.emit(Arith(dst=7, op="+", a=0, b=6))  # V7 = x + 1
    p.emit(Arith(dst=7, op="*", a=7, b=4))  # V7 = (x+1) * mask
    p.emit(Select(dst=7, src=7))  # pack the survivors
    p.emit(LengthI(dst=1, src=7))
    p.emit(BmRoute(dst=6, data=5, counts=1, bound=7))  # ones, resized
    p.emit(Arith(dst=0, op="-", a=7, b=6))  # undo the +1 shift
    p.emit(Halt())
    return p


def pairwise_sum_program() -> Program:
    """Sum the vector in V0 by repeated pairwise addition; output [sum] in V0.

    A while loop over ``goto_if_empty``: each iteration pads the vector to an
    even length, splits it into the even- and odd-indexed halves with
    ``select`` and adds them.  T = O(log n), W = O(n) — the BVRAM counterpart
    of :func:`repro.nsc.lib.reduce_add`.

    Register map: V0 work vector, V1 scratch lengths, V2 constants,
    V3 enumerate, V4 parity masks, V5/V6 halves, V7 scratch.
    """
    p = Program(n_registers=8, n_inputs=1, n_outputs=1)
    # if the input is empty, return [0]
    p.emit(GotoIfEmpty(label="empty_input", src=0))
    p.emit(Goto(label="loop"))
    p.label("empty_input")
    p.emit(LoadConst(dst=0, value=0))
    p.emit(Halt())

    p.label("loop")
    # stop when a single element remains: V1 = [n] - [1]; empty test needs a
    # vector, so use select([n - 1]) which is empty iff n == 1.
    p.emit(LengthI(dst=1, src=0))
    p.emit(LoadConst(dst=2, value=1))
    p.emit(Arith(dst=7, op="-", a=1, b=2))
    p.emit(Select(dst=7, src=7))
    p.emit(GotoIfEmpty(label="done", src=7))

    # pad to even length: if n mod 2 == 1 append a zero
    p.emit(LoadConst(dst=2, value=2))
    p.emit(Arith(dst=7, op="mod", a=1, b=2))
    p.emit(Select(dst=7, src=7))
    p.emit(GotoIfEmpty(label="even", src=7))
    p.emit(LoadConst(dst=7, value=0))
    p.emit(AppendI(dst=0, a=0, b=7))
    p.label("even")

    # parity of each position
    p.emit(EnumerateI(dst=3, src=0))  # V3 = [0..n-1]
    p.emit(LoadConst(dst=2, value=2))
    p.emit(LengthI(dst=1, src=0))
    p.emit(BmRoute(dst=7, data=2, counts=1, bound=0))  # V7 = [2,2,...]
    p.emit(Arith(dst=4, op="mod", a=3, b=7))  # V4 = parity
    # even-indexed elements: mask = (parity == 0); pack (x+1)*mask, then -1
    p.emit(Arith(dst=5, op="*", a=3, b=4))  # reuse: V5 scratch (not needed)
    p.emit(LoadConst(dst=2, value=1))
    p.emit(BmRoute(dst=5, data=2, counts=1, bound=0))  # V5 = ones
    p.emit(Arith(dst=6, op="+", a=0, b=5))  # V6 = x + 1
    p.emit(Arith(dst=7, op="-", a=5, b=4))  # V7 = 1 - parity  (even mask)
    p.emit(Arith(dst=7, op="*", a=6, b=7))
    p.emit(Select(dst=7, src=7))  # packed evens + 1
    p.emit(Arith(dst=4, op="*", a=6, b=4))  # (x+1) * parity   (odd mask)
    p.emit(Select(dst=4, src=4))  # packed odds + 1
    # halves have equal length (we padded); sum them and undo the +2 shift
    p.emit(Arith(dst=0, op="+", a=7, b=4))  # (evens+1)+(odds+1)
    p.emit(LoadConst(dst=2, value=2))
    p.emit(LengthI(dst=1, src=0))  # the work vector just halved
    p.emit(BmRoute(dst=5, data=2, counts=1, bound=0))  # [2,2,...] resized
    p.emit(Arith(dst=0, op="-", a=0, b=5))
    p.emit(Goto(label="loop"))

    p.label("done")
    p.emit(Halt())
    return p


def cartesian_product_program() -> Program:
    """Cartesian product of V0 (length m) and V1 (length n) via ``sbm_route``.

    Section 2 notes that ``sbm_route`` with singleton count/segment registers
    computes a cartesian product.  Output: V0 holds the second coordinates
    (V1 tiled m times), V1 holds the first coordinates (each element of V0
    repeated n times); reading them side by side gives the m*n pairs.
    """
    p = Program(n_registers=8, n_inputs=2, n_outputs=2)
    p.emit(LengthI(dst=2, src=0))  # V2 = [m]
    p.emit(LengthI(dst=3, src=1))  # V3 = [n]
    # V4 = V1 tiled m times: one segment of length n, replicated m times;
    # the bound pair is (V0, [m]) — a nested sequence of total length m.
    p.emit(SbmRoute(dst=4, bound=0, counts=2, data=1, segments=3))
    # V5 = [n, n, ..., n]  (n broadcast over the m positions of V0)
    p.emit(BmRoute(dst=5, data=3, counts=2, bound=0))
    # V6 = each element of V0 repeated n times; bound register is V4 (length m*n)
    p.emit(BmRoute(dst=6, data=0, counts=5, bound=4))
    p.emit(Move(dst=0, src=4))
    p.emit(Move(dst=1, src=6))
    p.emit(Halt())
    return p
