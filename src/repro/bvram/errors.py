"""The BVRAM trap exception, in a leaf module every layer can import.

``BVRAMError`` is raised by the machine *and* by the shared vector kernels
(:mod:`repro.backends.kernels`).  The kernels must not import
:mod:`repro.bvram.machine` (the machine imports *them*), so the exception
lives here, below both.  :mod:`repro.bvram` re-exports it unchanged — every
existing ``from repro.bvram import BVRAMError`` keeps working.
"""

from __future__ import annotations


class BVRAMError(RuntimeError):
    """Raised when a BVRAM execution is undefined (bad lengths, div by zero, ...)."""
