"""The BVRAM instruction set (Section 2).

A Bounded Vector Random Access Machine has a *fixed* number of vector
registers ``V1 ... Vr``, each holding a finite sequence of naturals.  There
are no scalar registers: a number is a length-1 vector.  The instruction set
is exactly the paper's:

* ``move``            — ``Vi <- Vj``
* ``arith``           — ``Vi <- Vj op Vk`` elementwise, ``op`` in Sigma
* ``load_empty``      — ``Vi <- []``
* ``load_const``      — ``Vi <- [n]``
* ``append``          — ``Vi <- Vj @ Vk``
* ``length``          — ``Vi <- [length(Vj)]``
* ``enumerate``       — ``Vi <- [0 .. length(Vj)-1]``
* ``bm_route``        — ``Vi <- bm-route(Vj, Vk, Vl)`` (bounded monotone routing)
* ``sbm_route``       — ``Vi <- sbm-route(Vj, Vk, Vl, Vm)`` (segmented variant)
* ``select``          — ``Vi <- sigma(Vj)`` (pack the non-zero values)
* ``goto`` / ``goto_if_empty`` — unconditional / conditional jumps
* ``halt``

The NSC->BVRAM compiler (:mod:`repro.compiler`) additionally needs the small
family of *segmented* operations that Section 7's flattening produces — each
of them is an oblivious, monotone data movement (or a per-segment scan), so
Proposition 2.1's butterfly implementation extends to them:

* ``un_arith``        — ``Vi <- op(Vj)`` elementwise, ``op`` in {log2, sqrt}
* ``flag_merge``      — ``Vi <- merge(Vf, Vj, Vk)``: the inverse of ``select``
  (route ``Vj`` to the non-zero positions of the flag vector ``Vf`` and ``Vk``
  to the zero positions, preserving order — a segmented route)
* ``seg_scan``        — ``Vi <- seg-scan(op, Vj, Vs)``: exclusive scan of
  ``Vj`` restarting at every segment boundary of the descriptor ``Vs``
* ``seg_reduce``      — ``Vi <- seg-reduce(op, Vj, Vs)``: one ``op``-reduction
  per segment of ``Vj`` under descriptor ``Vs``
* ``trap``            — raise :class:`~repro.bvram.machine.BVRAMError`; the
  compiler jumps here when a program's result is undefined (zip of unequal
  lengths, ``get`` of a non-singleton, the error term Omega, ...)

There is deliberately **no general permutation** instruction; Theorem 7.1
shows it is not needed to compile NSC efficiently, and Proposition 2.1 shows
every instruction above needs only oblivious routing on a butterfly.

Cost model: each executed instruction has parallel time 1 and work equal to
the sum of the lengths of its input and output registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .. import _fastpickle as fastpickle
from .._fastpickle import FastSlotPickle

#: Version of the instruction set itself.  Part of the compile-cache key
#: salt (:mod:`repro.cache.key`): any change to instruction semantics,
#: fields or the cost model must bump this so artifacts compiled under the
#: old ISA are treated as misses, never executed under the new one.
ISA_VERSION = 1

#: arithmetic operations available to the ``arith`` instruction (the set Sigma)
ARITH_OPS = ("+", "-", "*", "/", "mod", ">>", "min", "max", "eq", "le", "lt")

#: unary arithmetic available to the ``un_arith`` instruction
UN_ARITH_OPS = ("log2", "sqrt")

#: operations available to the segmented scan / reduce instructions
SEG_OPS = ("+", "max")


class Instruction(FastSlotPickle):
    """Base class of BVRAM instructions."""

    __slots__ = ()

    def registers_read(self) -> tuple[int, ...]:
        return ()

    def registers_written(self) -> tuple[int, ...]:
        return ()


@dataclass(frozen=True, slots=True)
class Move(Instruction):
    """``V[dst] <- V[src]``."""

    dst: int
    src: int

    def registers_read(self) -> tuple[int, ...]:
        return (self.src,)

    def registers_written(self) -> tuple[int, ...]:
        return (self.dst,)


@dataclass(frozen=True, slots=True)
class Arith(Instruction):
    """``V[dst] <- V[a] op V[b]`` elementwise; both operands must have equal length."""

    dst: int
    op: str
    a: int
    b: int

    def __post_init__(self) -> None:
        if self.op not in ARITH_OPS:
            raise ValueError(f"unknown arithmetic op {self.op!r}")

    def registers_read(self) -> tuple[int, ...]:
        return (self.a, self.b)

    def registers_written(self) -> tuple[int, ...]:
        return (self.dst,)


@dataclass(frozen=True, slots=True)
class LoadEmpty(Instruction):
    """``V[dst] <- []``."""

    dst: int

    def registers_written(self) -> tuple[int, ...]:
        return (self.dst,)


@dataclass(frozen=True, slots=True)
class LoadConst(Instruction):
    """``V[dst] <- [value]``."""

    dst: int
    value: int

    def registers_written(self) -> tuple[int, ...]:
        return (self.dst,)


@dataclass(frozen=True, slots=True)
class AppendI(Instruction):
    """``V[dst] <- V[a] @ V[b]``."""

    dst: int
    a: int
    b: int

    def registers_read(self) -> tuple[int, ...]:
        return (self.a, self.b)

    def registers_written(self) -> tuple[int, ...]:
        return (self.dst,)


@dataclass(frozen=True, slots=True)
class LengthI(Instruction):
    """``V[dst] <- [length(V[src])]``."""

    dst: int
    src: int

    def registers_read(self) -> tuple[int, ...]:
        return (self.src,)

    def registers_written(self) -> tuple[int, ...]:
        return (self.dst,)


@dataclass(frozen=True, slots=True)
class EnumerateI(Instruction):
    """``V[dst] <- [0, 1, ..., length(V[src]) - 1]``."""

    dst: int
    src: int

    def registers_read(self) -> tuple[int, ...]:
        return (self.src,)

    def registers_written(self) -> tuple[int, ...]:
        return (self.dst,)


@dataclass(frozen=True, slots=True)
class BmRoute(Instruction):
    """``V[dst] <- bm-route(V[data], V[counts], V[bound])``.

    Each element of ``V[data]`` is replicated the corresponding number of
    times from ``V[counts]``; the result must match ``V[bound]`` in length
    (``V[bound], V[counts]`` form a nested sequence).
    """

    dst: int
    data: int
    counts: int
    bound: int

    def registers_read(self) -> tuple[int, ...]:
        return (self.data, self.counts, self.bound)

    def registers_written(self) -> tuple[int, ...]:
        return (self.dst,)


@dataclass(frozen=True, slots=True)
class SbmRoute(Instruction):
    """``V[dst] <- sbm-route(V[bound], V[counts], V[data], V[segments])``.

    The sub-sequences of ``V[data]`` (segment lengths in ``V[segments]``) are
    replicated according to ``V[counts]``; ``V[bound], V[counts]`` bound the
    output.  With singleton ``counts``/``segments`` this computes a cartesian
    product (Section 2).
    """

    dst: int
    bound: int
    counts: int
    data: int
    segments: int

    def registers_read(self) -> tuple[int, ...]:
        return (self.bound, self.counts, self.data, self.segments)

    def registers_written(self) -> tuple[int, ...]:
        return (self.dst,)


@dataclass(frozen=True, slots=True)
class Select(Instruction):
    """``V[dst] <- sigma(V[src])`` — pack the non-zero values of ``V[src]``."""

    dst: int
    src: int

    def registers_read(self) -> tuple[int, ...]:
        return (self.src,)

    def registers_written(self) -> tuple[int, ...]:
        return (self.dst,)


@dataclass(frozen=True, slots=True)
class UnArith(Instruction):
    """``V[dst] <- op(V[src])`` elementwise; ``op`` in {log2, sqrt}."""

    dst: int
    op: str
    src: int

    def __post_init__(self) -> None:
        if self.op not in UN_ARITH_OPS:
            raise ValueError(f"unknown unary arithmetic op {self.op!r}")

    def registers_read(self) -> tuple[int, ...]:
        return (self.src,)

    def registers_written(self) -> tuple[int, ...]:
        return (self.dst,)


@dataclass(frozen=True, slots=True)
class FlagMerge(Instruction):
    """``V[dst] <- merge(V[flags], V[a], V[b])`` — the inverse of ``select``.

    Output position ``i`` takes the next unconsumed element of ``V[a]`` when
    ``V[flags][i]`` is non-zero and of ``V[b]`` otherwise.  Requires
    ``len(a) + len(b) == len(flags)`` and ``len(a) ==`` the number of non-zero
    flags.  Order-preserving and oblivious (a monotone route).
    """

    dst: int
    flags: int
    a: int
    b: int

    def registers_read(self) -> tuple[int, ...]:
        return (self.flags, self.a, self.b)

    def registers_written(self) -> tuple[int, ...]:
        return (self.dst,)


@dataclass(frozen=True, slots=True)
class SegScan(Instruction):
    """``V[dst] <- seg-scan(op, V[data], V[segments])`` (exclusive, per segment).

    The scan restarts at every segment boundary; the identity (0 for both
    ``+`` and ``max`` on naturals) seeds each segment.  Requires
    ``sum(segments) == len(data)``.
    """

    dst: int
    op: str
    data: int
    segments: int

    def __post_init__(self) -> None:
        if self.op not in SEG_OPS:
            raise ValueError(f"unknown segmented op {self.op!r}")

    def registers_read(self) -> tuple[int, ...]:
        return (self.data, self.segments)

    def registers_written(self) -> tuple[int, ...]:
        return (self.dst,)


@dataclass(frozen=True, slots=True)
class SegReduce(Instruction):
    """``V[dst] <- seg-reduce(op, V[data], V[segments])``: one result per segment.

    Empty segments reduce to the identity (0).  Requires
    ``sum(segments) == len(data)``.
    """

    dst: int
    op: str
    data: int
    segments: int

    def __post_init__(self) -> None:
        if self.op not in SEG_OPS:
            raise ValueError(f"unknown segmented op {self.op!r}")

    def registers_read(self) -> tuple[int, ...]:
        return (self.data, self.segments)

    def registers_written(self) -> tuple[int, ...]:
        return (self.dst,)


@dataclass(frozen=True, slots=True)
class Trap(Instruction):
    """Raise ``BVRAMError(message)`` — the compiled form of an undefined result."""

    message: str = "undefined BVRAM result"


@dataclass(frozen=True, slots=True)
class Goto(Instruction):
    """Unconditional jump to ``label``."""

    label: str


@dataclass(frozen=True, slots=True)
class GotoIfEmpty(Instruction):
    """Jump to ``label`` iff ``V[src]`` currently holds the empty sequence."""

    label: str
    src: int

    def registers_read(self) -> tuple[int, ...]:
        return (self.src,)


@dataclass(frozen=True, slots=True)
class Halt(Instruction):
    """Stop the program."""


#: register-index fields per instruction class — the structural companion to
#: ``registers_read`` / ``registers_written``, used by the compiler's
#: register-renumbering pass.  Control flow (``Goto``, ``Trap``, ``Halt``)
#: carries no register fields and is absent.
REG_FIELDS: dict[type, tuple[str, ...]] = {
    Move: ("dst", "src"),
    Arith: ("dst", "a", "b"),
    LoadEmpty: ("dst",),
    LoadConst: ("dst",),
    AppendI: ("dst", "a", "b"),
    LengthI: ("dst", "src"),
    EnumerateI: ("dst", "src"),
    BmRoute: ("dst", "data", "counts", "bound"),
    SbmRoute: ("dst", "bound", "counts", "data", "segments"),
    Select: ("dst", "src"),
    UnArith: ("dst", "src"),
    FlagMerge: ("dst", "flags", "a", "b"),
    SegScan: ("dst", "data", "segments"),
    SegReduce: ("dst", "data", "segments"),
    GotoIfEmpty: ("src",),
}


@dataclass
class Program:
    """A labelled BVRAM program.

    ``instructions`` is the ordered list of instructions; ``labels`` maps a
    label to an instruction index; ``n_registers`` is the machine's (fixed)
    register count; ``n_inputs``/``n_outputs`` are the r_i / r_o of Section 2.
    """

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    n_registers: int = 8
    n_inputs: int = 1
    n_outputs: int = 1

    def emit(self, instr: Instruction) -> int:
        """Append an instruction, returning its index."""
        self.instructions.append(instr)
        return len(self.instructions) - 1

    def label(self, name: str) -> None:
        """Attach a label to the *next* instruction to be emitted."""
        if name in self.labels:
            raise ValueError(f"duplicate label {name!r}")
        self.labels[name] = len(self.instructions)

    def validate(self) -> None:
        """Check register indices and jump targets.

        The machine re-validates on every ``run``, which dominates
        small-program execution — so a passing validation is memoised
        against an identity snapshot of the instruction list plus the label
        table and register count; any structural edit re-validates.
        """
        snap = getattr(self, "_validated", None)
        instrs = self.instructions
        # list ``==`` short-circuits on element identity, so an unchanged
        # program is one C-level pointer scan (no Python-level loop)
        if (
            snap is not None
            and snap[1] == self.n_registers
            and snap[2] == self.labels
            and snap[0] == instrs
        ):
            return
        for instr in instrs:
            for reg in (*instr.registers_read(), *instr.registers_written()):
                if not 0 <= reg < self.n_registers:
                    raise ValueError(
                        f"instruction {instr!r} uses register {reg} outside 0..{self.n_registers - 1}"
                    )
            if isinstance(instr, (Goto, GotoIfEmpty)) and instr.label not in self.labels:
                raise ValueError(f"jump to unknown label {instr.label!r}")
        self._validated = (list(instrs), self.n_registers, dict(self.labels))

    def __len__(self) -> int:
        return len(self.instructions)


fastpickle.install(Instruction)
