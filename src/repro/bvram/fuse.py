"""Block fusion for the untraced fast path: superinstructions.

The untraced executor (:meth:`repro.bvram.machine.BVRAM._run_untraced`) pays
one Python dispatch — plan indexing, kind test, step budget check, work loop
— per executed instruction.  On small per-request inputs that dispatch
dominates the NumPy kernels, which is exactly backwards for a machine whose
whole point is amortising per-op overhead over wide vectors.

This pass groups **maximal straight-line runs of non-jump instructions**
into single *fused* step functions.  A fused block is a precomputed tuple of
``(kernel, read/write registers)`` pairs executed by one closure call: one
dispatch per block instead of one per instruction, with the ``T``/``W``
totals accumulated inside the closure.

Block boundaries are forced by control flow only:

* any instruction that is the target of a ``goto`` / ``goto_if_empty``
  starts a new block (execution may enter there mid-stream);
* ``goto`` / ``goto_if_empty`` / ``halt`` / ``trap`` each stay a plan entry
  of their own (they leave the block or the program).

Accounting is **bit-identical** to the traced interpreter (pinned by
``tests/test_optimize.py`` and the ``tests/test_batch.py`` battery): every
instruction is charged 1 time unit plus the post-execution lengths of its
read and written registers, sampled immediately after it executes — a later
instruction in the same block may resize a register, so the work loop cannot
be hoisted out.  When an instruction raises mid-block, the totals of the
instructions before it are reported through a shared ``partial`` cell and
the raising instruction is not charged, matching the traced loop's
charge-after-execute discipline.

Fused plans are cached on the program object next to the per-instruction
plan, with the same identity-snapshot invalidation.
"""

from __future__ import annotations

import os
import threading

from . import isa
from .machine import _BLOCK, _JUMP, _STEP, _plan_for


def _make_block(steps: list[tuple]) -> tuple:
    """Fuse ``(kernel, rw)`` pairs into one step closure.

    The closure returns ``(time, work)`` for the whole block; if a kernel
    raises, the totals of the completed prefix are written into ``partial``
    before the exception propagates.
    """
    k = len(steps)
    if k == 1:
        fn, rw = steps[0]

        def fused_one(regs, partial, fn=fn, rw=rw):
            fn(regs)
            w = 0
            for r in rw:
                w += regs[r].size
            return 1, w

        # a raising kernel leaves partial untouched: zero completed steps
        fused_one.steps = (steps[0],)
        return fused_one, 1

    def fused(regs, partial, steps=tuple(steps), k=k):
        t = 0
        w = 0
        try:
            for fn, rw in steps:
                fn(regs)
                t += 1
                for r in rw:
                    w += regs[r].size
        except BaseException:
            partial[0] = t
            partial[1] = w
            raise
        return k, w

    # the executor drives the block per-instruction through this attribute
    # when the step budget would expire mid-block (exact max_steps parity)
    fused.steps = tuple(steps)
    return fused, k


def build_fused_plan(program: isa.Program) -> list[tuple]:
    """Compile ``program`` into ``(kind, payload, extra)`` fused-plan entries.

    ``_BLOCK`` entries carry ``(fused closure, instruction count)``; jump
    entries are re-targeted from instruction indices to fused-plan indices
    (every jump target is a block boundary by construction, so the mapping
    is total).  Entry kinds other than ``_BLOCK`` keep the per-instruction
    plan's payload/rw layout.
    """
    base = _plan_for(program)
    code = program.instructions
    labels = program.labels
    targets = {
        labels[instr.label]
        for instr in code
        if isinstance(instr, (isa.Goto, isa.GotoIfEmpty))
    }
    n = len(base)

    # pass 1: group instruction indices into fused-plan entries
    groups: list[tuple[int, list[int]]] = []  # (entry kind, covered indices)
    i = 0
    while i < n:
        kind = base[i][0]
        if kind != _STEP:
            groups.append((kind, [i]))
            i += 1
            continue
        run = [i]
        j = i + 1
        while j < n and base[j][0] == _STEP and j not in targets:
            run.append(j)
            j += 1
        groups.append((_BLOCK, run))
        i = j

    start_to_entry = {idxs[0]: gi for gi, (_, idxs) in enumerate(groups)}

    def entry_target(instr_index: int) -> int:
        if instr_index >= n:  # label past the last instruction: fall off the end
            return len(groups)
        return start_to_entry[instr_index]

    # pass 2: emit, re-targeting jumps to fused-plan indices
    plan: list[tuple] = []
    for kind, idxs in groups:
        first = idxs[0]
        if kind == _BLOCK:
            steps = [(base[j][1], base[j][2]) for j in idxs]
            plan.append((_BLOCK, *_make_block(steps)))
        elif kind == _JUMP:
            instr = code[first]
            target = entry_target(labels[instr.label])
            rw = base[first][2]
            if isinstance(instr, isa.Goto):

                def jump(regs, target=target):
                    return target

            else:  # GotoIfEmpty
                src = instr.src

                def jump(regs, target=target, src=src):
                    return target if regs[src].size == 0 else -1

            plan.append((_JUMP, jump, rw))
        else:  # _HALT / _TRAP: keep the per-instruction payload
            plan.append((kind, base[first][1], base[first][2]))
    return plan


#: Guards concurrent fused-plan builds.  Distinct from the machine module's
#: ``_PLAN_LOCK`` so that ``build_fused_plan`` (which calls ``_plan_for``
#: internally) acquires them in a fixed fuse -> machine order and a plain
#: (non-reentrant) lock suffices on both sides.
_FUSE_LOCK = threading.Lock()


def _reinit_fuse_lock() -> None:
    global _FUSE_LOCK
    _FUSE_LOCK = threading.Lock()


os.register_at_fork(after_in_child=_reinit_fuse_lock)


def fused_plan_for(program: isa.Program) -> list[tuple]:
    """Build (or fetch the cached) fused plan for ``program``.

    Same invalidation discipline as the per-instruction plan cache: the
    snapshot pins the exact instruction objects, and any in-place edit of
    the instruction list fails the element-wise identity scan and rebuilds.
    Thread-safe with the same double-checked pattern as ``_plan_for``, and
    fork-safe (the lock is re-initialised in forked children; cached plans
    are closures over immutable instructions and survive the fork).
    """
    cached = getattr(program, "_fused_plan", None)
    code = program.instructions
    if cached is not None:
        snapshot, plan = cached
        if len(snapshot) == len(code) and all(a is b for a, b in zip(snapshot, code)):
            return plan
    with _FUSE_LOCK:
        cached = getattr(program, "_fused_plan", None)
        if cached is not None:
            snapshot, plan = cached
            if len(snapshot) == len(code) and all(a is b for a, b in zip(snapshot, code)):
                return plan
        plan = build_fused_plan(program)
        program._fused_plan = (tuple(code), plan)
    return plan
