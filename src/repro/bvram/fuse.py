"""Back-compat shim: block fusion moved to :mod:`repro.backends.fused` (PR 6).

The superinstruction pass introduced here in PR 4 is now one of the
pluggable execution backends; the grouping pass is shared with the
``vector`` backend's code generator.  This module keeps the historical
import surface (``build_fused_plan``, ``fused_plan_for``, ``_make_block``)
alive for existing callers and tests.
"""

from __future__ import annotations

from ..backends.fused import (  # noqa: F401
    build_fused_plan,
    fused_plan_for,
    group_entries,
    make_block,
)

_make_block = make_block

__all__ = ["build_fused_plan", "fused_plan_for", "group_entries", "make_block"]
