"""The BVRAM interpreter with the Section 2 time/work accounting.

Registers hold NumPy ``int64`` vectors.  For a terminating execution, the
parallel time ``T`` is the number of instructions executed (each instruction
counts 1) and the work ``W`` is the sum over executed instructions of the
lengths of their input and output registers.

Execution has two modes:

* **traced** (``record_trace=True``, the default) — records a
  per-instruction *trace* (opcode, work) so that the butterfly
  implementation (Proposition 2.1) and the Brent scheduler (Proposition 3.2)
  can replay executions step by step;
* **untraced** (``record_trace=False``) — the fast path, delegated to a
  pluggable :mod:`repro.backends` backend: the program is pre-compiled once
  into a plan (cached on the program object), no :class:`TraceEntry`
  objects are allocated, and the ``T``/``W`` counters accumulate in locals
  flushed back at every exit (normal, trap, or error).  ``backend=``
  selects the strategy (``interp`` / ``fused`` / ``vector`` / ...);
  ``fuse=False`` keeps its historical meaning of the per-instruction
  ``interp`` plan.  In every mode the totals are **bit-identical** to a
  traced run of the same program — each executed instruction is charged 1
  time unit plus the post-execution lengths of its read and written
  registers — which ``tests/test_optimize.py``, ``tests/test_backends.py``
  and ``tests/test_batch.py`` pin.

The per-op vector kernels live in :mod:`repro.backends.kernels` (shared by
the traced loop here and by every backend); this module re-exports them
under their historical private names for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from . import isa
from .errors import BVRAMError

# The kernels are shared with the backends; ``repro.backends.kernels`` is a
# leaf module (it imports only ``repro.bvram.errors``), so this import is
# cycle-free in either package-entry order.  ``repro.backends.base`` is NOT
# — it is mid-execution when ``import repro.backends`` reaches this module —
# so backend resolution below is imported lazily at call time.
from ..backends import kernels as _kernels

# -- historical aliases (tests and downstream modules import these) ---------
_INT64_LIMIT = _kernels.INT64_LIMIT
_arith_add = _kernels.arith_add
_arith_sub = _kernels.arith_sub
_arith_mul = _kernels.arith_mul
_arith_div = _kernels.arith_div
_arith_mod = _kernels.arith_mod
_arith_shr = _kernels.arith_shr
_ARITH_FNS = _kernels.ARITH_KERNELS
_arith = _kernels.arith
_un_arith = _kernels.un_arith
flag_merge_vec = _kernels.flag_merge_vec
_check_segments = _kernels.check_segments
_checked_cumsum = _kernels.checked_cumsum
seg_scan_vec = _kernels.seg_scan_vec
seg_reduce_vec = _kernels.seg_reduce_vec
bm_route_vec = _kernels.bm_route_vec
sbm_route_vec = _kernels.sbm_route_vec

#: plan entry kinds — canonical home is :mod:`repro.backends.base`; the
#: values are re-stated literally here (not imported) for the same
#: import-order reason as above
_STEP = 0
_JUMP = 1
_HALT = 2
_TRAP = 3
_BLOCK = 4


def _build_plan(program: isa.Program) -> list[tuple]:
    """Back-compat alias for :func:`repro.backends.interp.build_plan`."""
    from ..backends.interp import build_plan

    return build_plan(program)


def _plan_for(program: isa.Program) -> list[tuple]:
    """Back-compat alias for :func:`repro.backends.interp.plan_for`."""
    from ..backends.interp import plan_for

    return plan_for(program)


@dataclass(frozen=True)
class TraceEntry:
    """One executed instruction: its opcode name and its work."""

    opcode: str
    work: int


@dataclass
class RunResult:
    """Outcome of a BVRAM run: final registers, T, W and the instruction trace."""

    registers: list[np.ndarray]
    time: int
    work: int
    trace: list[TraceEntry] = field(default_factory=list)

    def output(self, i: int = 0) -> list[int]:
        """The ``i``-th output register as a Python list."""
        return self.registers[i].tolist()

    def output_array(self, i: int = 0) -> np.ndarray:
        """The ``i``-th output register as the underlying int64 vector.

        Zero-copy: internal callers (marshalling, benchmarks) must treat the
        array as read-only.
        """
        return self.registers[i]


def _as_vector(values: Sequence[int] | np.ndarray) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise BVRAMError("BVRAM registers hold one-dimensional vectors")
    if arr.size and arr.min() < 0:
        raise BVRAMError("BVRAM registers hold natural numbers")
    return arr


class BVRAM:
    """A Bounded Vector Random Access Machine (Section 2)."""

    def __init__(self, n_registers: int = 8):
        if n_registers <= 0:
            raise ValueError("a BVRAM needs at least one register")
        self.n_registers = n_registers
        self.registers: list[np.ndarray] = [np.zeros(0, dtype=np.int64) for _ in range(n_registers)]
        self.time = 0
        self.work = 0
        self.trace: list[TraceEntry] = []

    # -- register access ----------------------------------------------------
    def load(self, i: int, values: Sequence[int] | np.ndarray) -> None:
        """Load an input register before running a program (not counted)."""
        self.registers[i] = _as_vector(values)

    def register(self, i: int) -> list[int]:
        return self.registers[i].tolist()

    def register_array(self, i: int) -> np.ndarray:
        """Register ``i`` as the underlying int64 vector (zero-copy, read-only)."""
        return self.registers[i]

    # -- execution ----------------------------------------------------------
    def _charge(self, opcode: str, instr: isa.Instruction, extra: int = 0) -> None:
        work = extra
        for r in instr.registers_read():
            work += int(self.registers[r].size)
        for r in instr.registers_written():
            work += int(self.registers[r].size)
        self.time += 1
        self.work += work
        self.trace.append(TraceEntry(opcode, work))

    def run(
        self,
        program: isa.Program,
        inputs: Optional[Sequence[Sequence[int]]] = None,
        max_steps: int = 10_000_000,
        record_trace: bool = True,
        fuse: bool = True,
        backend=None,
    ) -> RunResult:
        """Execute ``program`` and return the result with T/W counters.

        ``record_trace=False`` selects the untraced fast path: identical
        ``T``/``W`` totals and final registers, but no per-instruction trace
        (``RunResult.trace`` comes back empty) and substantially less
        per-step interpreter overhead.  Which untraced engine runs is a
        :mod:`repro.backends` choice — ``backend=`` names one explicitly
        (``"interp"``, ``"fused"``, ``"vector"``, ...), otherwise the
        program's own ``backend`` attribute, the ``REPRO_BACKEND``
        environment variable and finally the ``fused`` default apply, with
        ``fuse=False`` keeping its historical meaning (the per-instruction
        ``interp`` plan).  ``fuse`` and ``backend`` are ignored in traced
        mode, which needs per-instruction entries.
        """
        program.validate()
        if program.n_registers > self.n_registers:
            raise BVRAMError(
                f"program needs {program.n_registers} registers, machine has {self.n_registers}"
            )
        if inputs is not None:
            if len(inputs) != program.n_inputs:
                raise BVRAMError(
                    f"program expects {program.n_inputs} inputs, got {len(inputs)}"
                )
            for i, values in enumerate(inputs):
                self.load(i, values)

        self.time = 0
        self.work = 0
        self.trace = []
        if not record_trace:
            from ..backends.base import resolve_backend

            engine = resolve_backend(backend, program=program, fuse=fuse)
            engine.execute(self, program, max_steps)
            return RunResult(
                registers=[r.copy() for r in self.registers],
                time=self.time,
                work=self.work,
                trace=[],
            )
        pc = 0
        steps = 0
        code = program.instructions
        while pc < len(code):
            if steps >= max_steps:
                raise BVRAMError(f"exceeded {max_steps} steps (non-terminating program?)")
            steps += 1
            instr = code[pc]
            pc += 1

            if isinstance(instr, isa.Halt):
                self._charge("halt", instr)
                break
            if isinstance(instr, isa.Goto):
                self._charge("goto", instr)
                pc = program.labels[instr.label]
                continue
            if isinstance(instr, isa.GotoIfEmpty):
                self._charge("goto_if_empty", instr)
                if self.registers[instr.src].size == 0:
                    pc = program.labels[instr.label]
                continue
            if isinstance(instr, isa.Move):
                self.registers[instr.dst] = self.registers[instr.src].copy()
                self._charge("move", instr)
                continue
            if isinstance(instr, isa.Arith):
                self.registers[instr.dst] = _arith(
                    instr.op, self.registers[instr.a], self.registers[instr.b]
                )
                self._charge(f"arith:{instr.op}", instr)
                continue
            if isinstance(instr, isa.LoadEmpty):
                self.registers[instr.dst] = np.zeros(0, dtype=np.int64)
                self._charge("load_empty", instr)
                continue
            if isinstance(instr, isa.LoadConst):
                if instr.value < 0:
                    raise BVRAMError("load_const: BVRAM registers hold natural numbers")
                self.registers[instr.dst] = np.array([instr.value], dtype=np.int64)
                self._charge("load_const", instr)
                continue
            if isinstance(instr, isa.AppendI):
                self.registers[instr.dst] = np.concatenate(
                    [self.registers[instr.a], self.registers[instr.b]]
                )
                self._charge("append", instr)
                continue
            if isinstance(instr, isa.LengthI):
                self.registers[instr.dst] = np.array(
                    [self.registers[instr.src].size], dtype=np.int64
                )
                self._charge("length", instr)
                continue
            if isinstance(instr, isa.EnumerateI):
                self.registers[instr.dst] = np.arange(
                    self.registers[instr.src].size, dtype=np.int64
                )
                self._charge("enumerate", instr)
                continue
            if isinstance(instr, isa.BmRoute):
                self.registers[instr.dst] = bm_route_vec(
                    self.registers[instr.data],
                    self.registers[instr.counts],
                    self.registers[instr.bound],
                )
                self._charge("bm_route", instr)
                continue
            if isinstance(instr, isa.SbmRoute):
                self.registers[instr.dst] = sbm_route_vec(
                    self.registers[instr.bound],
                    self.registers[instr.counts],
                    self.registers[instr.data],
                    self.registers[instr.segments],
                )
                self._charge("sbm_route", instr)
                continue
            if isinstance(instr, isa.Select):
                src = self.registers[instr.src]
                self.registers[instr.dst] = src[src != 0]
                self._charge("select", instr)
                continue
            if isinstance(instr, isa.UnArith):
                self.registers[instr.dst] = _un_arith(instr.op, self.registers[instr.src])
                self._charge(f"un_arith:{instr.op}", instr)
                continue
            if isinstance(instr, isa.FlagMerge):
                self.registers[instr.dst] = flag_merge_vec(
                    self.registers[instr.flags],
                    self.registers[instr.a],
                    self.registers[instr.b],
                )
                self._charge("flag_merge", instr)
                continue
            if isinstance(instr, isa.SegScan):
                self.registers[instr.dst] = seg_scan_vec(
                    instr.op, self.registers[instr.data], self.registers[instr.segments]
                )
                self._charge(f"seg_scan:{instr.op}", instr)
                continue
            if isinstance(instr, isa.SegReduce):
                self.registers[instr.dst] = seg_reduce_vec(
                    instr.op, self.registers[instr.data], self.registers[instr.segments]
                )
                self._charge(f"seg_reduce:{instr.op}", instr)
                continue
            if isinstance(instr, isa.Trap):
                self._charge("trap", instr)
                raise BVRAMError(instr.message)
            raise BVRAMError(f"unknown instruction {instr!r}")

        return RunResult(
            registers=[r.copy() for r in self.registers],
            time=self.time,
            work=self.work,
            trace=list(self.trace),
        )

    def _run_untraced(self, program: isa.Program, max_steps: int) -> None:
        """Back-compat: the ``interp`` backend's dispatch loop."""
        from ..backends.interp import INTERP

        INTERP.execute(self, program, max_steps)

    def _run_fused(self, program: isa.Program, max_steps: int) -> None:
        """Back-compat: the ``fused`` backend's dispatch loop."""
        from ..backends.fused import FUSED

        FUSED.execute(self, program, max_steps)


def run_program(
    program: isa.Program,
    inputs: Sequence[Sequence[int]],
    n_registers: Optional[int] = None,
) -> RunResult:
    """Convenience helper: build a machine, run ``program`` on ``inputs``."""
    machine = BVRAM(n_registers or program.n_registers)
    return machine.run(program, inputs)
