"""The BVRAM interpreter with the Section 2 time/work accounting.

Registers hold NumPy ``int64`` vectors.  For a terminating execution, the
parallel time ``T`` is the number of instructions executed (each instruction
counts 1) and the work ``W`` is the sum over executed instructions of the
lengths of their input and output registers.

Execution has two modes:

* **traced** (``record_trace=True``, the default) — records a
  per-instruction *trace* (opcode, work) so that the butterfly
  implementation (Proposition 2.1) and the Brent scheduler (Proposition 3.2)
  can replay executions step by step;
* **untraced** (``record_trace=False``) — the fast path: the program is
  pre-compiled once into a threaded plan of per-instruction closures
  (cached on the program object), no :class:`TraceEntry` objects are
  allocated, and the ``T``/``W`` counters accumulate in locals that are
  flushed back at every exit (normal, trap, or error).  By default the plan
  is additionally **block-fused** (:mod:`repro.bvram.fuse`): maximal
  straight-line runs of non-jump instructions execute as one *fused* step
  function — a single dispatch per block instead of one per instruction —
  with ``fuse=False`` selecting the per-instruction plan.  In every mode
  the totals are **bit-identical** to a traced run of the same program —
  each executed instruction is charged 1 time unit plus the post-execution
  lengths of its read and written registers — which ``tests/test_optimize.py``
  and ``tests/test_batch.py`` pin.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from . import isa


class BVRAMError(RuntimeError):
    """Raised when a BVRAM execution is undefined (bad lengths, div by zero, ...)."""


@dataclass(frozen=True)
class TraceEntry:
    """One executed instruction: its opcode name and its work."""

    opcode: str
    work: int


@dataclass
class RunResult:
    """Outcome of a BVRAM run: final registers, T, W and the instruction trace."""

    registers: list[np.ndarray]
    time: int
    work: int
    trace: list[TraceEntry] = field(default_factory=list)

    def output(self, i: int = 0) -> list[int]:
        """The ``i``-th output register as a Python list."""
        return self.registers[i].tolist()

    def output_array(self, i: int = 0) -> np.ndarray:
        """The ``i``-th output register as the underlying int64 vector.

        Zero-copy: internal callers (marshalling, benchmarks) must treat the
        array as read-only.
        """
        return self.registers[i]


def _as_vector(values: Sequence[int] | np.ndarray) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise BVRAMError("BVRAM registers hold one-dimensional vectors")
    if arr.size and arr.min() < 0:
        raise BVRAMError("BVRAM registers hold natural numbers")
    return arr


_INT64_LIMIT = 2**63


def _arith_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if a.size == 0:
        return a + b
    # fast path: the sum of the operand maxima fits, so no entry can wrap
    if int(a.max()) + int(b.max()) < _INT64_LIMIT:
        return a + b
    with np.errstate(over="ignore"):
        c = a + b
    # registers hold naturals < 2**63, so a wrapped sum is exactly a
    # negative signed result
    if int(c.min()) < 0:
        raise BVRAMError("overflow in +: result exceeds the int64 register width")
    return c


def _arith_sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.maximum(a - b, 0)  # monus


def _arith_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if a.size == 0:
        return a * b
    # fast path: the product of the operand maxima fits, so no entry can wrap
    if int(a.max()) * int(b.max()) < _INT64_LIMIT:
        return a * b
    with np.errstate(over="ignore"):
        c = a * b
    # widening check: a wrapped product either goes negative or fails to
    # divide back (c = a*b - k*2**64 with k >= 1 can never reach a*b)
    if int(c.min()) < 0 or bool(
        np.any(c // np.where(a == 0, 1, a) != np.where(a == 0, c, b))
    ):
        raise BVRAMError("overflow in *: result exceeds the int64 register width")
    return c


def _arith_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if np.any(b == 0):
        raise BVRAMError("division by zero")
    return a // b


def _arith_mod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if np.any(b == 0):
        raise BVRAMError("modulo by zero")
    return a % b


def _arith_shr(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # numpy shifts by >= 64 bits are undefined behaviour; mathematically
    # floor(a / 2**b) = 0 for any natural a < 2**63 once b >= 63
    return np.where(b >= 63, 0, a >> np.minimum(b, 62))


#: per-op kernels, shared by the traced loop, the untraced plan and ``_arith``
_ARITH_FNS = {
    "+": _arith_add,
    "-": _arith_sub,
    "*": _arith_mul,
    "/": _arith_div,
    "mod": _arith_mod,
    ">>": _arith_shr,
    "min": np.minimum,
    "max": np.maximum,
    "eq": lambda a, b: (a == b).astype(np.int64),
    "le": lambda a, b: (a <= b).astype(np.int64),
    "lt": lambda a, b: (a < b).astype(np.int64),
}


def _arith(op: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    fn = _ARITH_FNS.get(op)
    if fn is None:
        raise BVRAMError(f"unknown arithmetic op {op!r}")
    if a.shape != b.shape:
        raise BVRAMError(f"arith {op}: operands have different lengths {a.size} and {b.size}")
    return fn(a, b)


def _un_arith(op: str, a: np.ndarray) -> np.ndarray:
    if op == "log2":
        # floor(log2(a)); log2(0) = 0 by the NSC convention
        out = np.zeros_like(a)
        pos = a > 0
        if pos.any():
            out[pos] = np.floor(np.log2(a[pos])).astype(np.int64)
            # float rounding near powers of two: fix up exactly.  A natural
            # < 2**63 has floor(log2) <= 62, so out >= 63 (np.log2(2**63 - 1)
            # rounds to exactly 63.0) is always one too big.
            too_big = pos & ((out >= 63) | ((np.int64(1) << np.minimum(out, 62)) > a))
            out[too_big] -= 1
        return out
    if op == "sqrt":
        out = np.sqrt(a.astype(np.float64)).astype(np.int64)
        # isqrt semantics: largest k with k*k <= a (fix float rounding)
        out = np.where(out * out > a, out - 1, out)
        out = np.where((out + 1) * (out + 1) <= a, out + 1, out)
        return out
    raise BVRAMError(f"unknown unary arithmetic op {op!r}")


def flag_merge_vec(flags: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Order-preserving merge of ``a``/``b`` routed by the non-zero flags."""
    n_true = int(np.count_nonzero(flags))
    if a.size != n_true:
        raise BVRAMError(
            f"flag_merge: {n_true} non-zero flags but the true-branch register has length {a.size}"
        )
    if a.size + b.size != flags.size:
        raise BVRAMError(
            f"flag_merge: flags have length {flags.size} but the branches "
            f"have total length {a.size + b.size}"
        )
    out = np.empty(flags.size, dtype=np.int64)
    mask = flags != 0
    out[mask] = a
    out[~mask] = b
    return out


def _check_segments(data: np.ndarray, segments: np.ndarray, opcode: str) -> None:
    if segments.size and int(segments.min()) < 0:
        raise BVRAMError(f"{opcode}: segment descriptor holds negative lengths")
    if int(segments.sum()) != data.size:
        raise BVRAMError(
            f"{opcode}: segment descriptor sums to {int(segments.sum())} "
            f"but the data register has length {data.size}"
        )


def _checked_cumsum(data: np.ndarray, opcode: str) -> np.ndarray:
    """Inclusive int64 cumsum of naturals, trapping on overflow.

    Addends are < 2**63, so a wrapped partial sum shows up as a *decrease*
    (the new value is the true one minus 2**64) — monotonicity is an exact
    overflow test, matching the BVRAMError that ``arith +`` raises.
    """
    with np.errstate(over="ignore"):
        cs = np.cumsum(data)
    if cs.size and (int(cs[0]) < 0 or bool(np.any(cs[1:] < cs[:-1]))):
        raise BVRAMError(f"overflow in {opcode}: partial sum exceeds the int64 register width")
    return cs


def seg_scan_vec(op: str, data: np.ndarray, segments: np.ndarray) -> np.ndarray:
    """Exclusive per-segment scan (identity 0) of ``data`` under ``segments``."""
    _check_segments(data, segments, "seg_scan")
    if data.size == 0:
        return np.zeros(0, dtype=np.int64)
    if op == "+":
        cs = _checked_cumsum(data, "seg_scan +")
        running = np.concatenate([[0], cs[:-1]])
        starts = np.cumsum(segments) - segments  # first data index of each segment
        nonempty = segments > 0
        base = np.repeat(running[starts[nonempty]], segments[nonempty])
        return running - base
    if op == "max":
        # exclusive running max per segment (correct but simple; vectors are
        # the hot path of the *simulated* machine, not of this host code)
        out = np.zeros(data.size, dtype=np.int64)
        pos = 0
        for seg_len in segments.tolist():
            if seg_len:
                seg = data[pos : pos + seg_len]
                if seg_len > 1:
                    out[pos + 1 : pos + seg_len] = np.maximum.accumulate(seg[:-1])
                pos += seg_len
        return out
    raise BVRAMError(f"unknown segmented op {op!r}")


def seg_reduce_vec(op: str, data: np.ndarray, segments: np.ndarray) -> np.ndarray:
    """Per-segment reduction of ``data`` under ``segments`` (identity 0)."""
    _check_segments(data, segments, "seg_reduce")
    if segments.size == 0:
        return np.zeros(0, dtype=np.int64)
    if op == "+":
        if data.size == 0:
            return np.zeros(segments.size, dtype=np.int64)
        total = np.concatenate([[0], _checked_cumsum(data, "seg_reduce +")])
        ends = np.cumsum(segments)
        return (total[ends] - total[ends - segments]).astype(np.int64)
    if op == "max":
        out = np.zeros(segments.size, dtype=np.int64)
        if data.size:
            ids = np.repeat(np.arange(segments.size), segments)
            np.maximum.at(out, ids, data)
        return out
    raise BVRAMError(f"unknown segmented op {op!r}")


def bm_route_vec(data: np.ndarray, counts: np.ndarray, bound: np.ndarray) -> np.ndarray:
    """Bounded monotone routing on vectors (the semantics of the instruction)."""
    if data.size != counts.size:
        raise BVRAMError("bm_route: data and counts must have the same length")
    if int(counts.sum()) != bound.size:
        raise BVRAMError("bm_route: counts must sum to the length of the bound register")
    return np.repeat(data, counts)


def sbm_route_vec(
    bound: np.ndarray, counts: np.ndarray, data: np.ndarray, segments: np.ndarray
) -> np.ndarray:
    """Segmented bounded monotone routing on vectors."""
    if counts.size != segments.size:
        raise BVRAMError("sbm_route: counts and segment descriptor must have the same length")
    if int(segments.sum()) != data.size:
        raise BVRAMError("sbm_route: segment descriptor must sum to the data length")
    out: list[np.ndarray] = []
    pos = 0
    for seg_len, count in zip(segments.tolist(), counts.tolist()):
        seg = data[pos : pos + seg_len]
        pos += seg_len
        if count:
            out.append(np.tile(seg, count))
    result = np.concatenate(out) if out else np.zeros(0, dtype=np.int64)
    # The bound pair (bound, counts) must itself be a nested sequence, i.e.
    # the counts describe a segmentation of the bound register.  This is the
    # restriction that keeps a single instruction from growing the data by
    # more than the product of two register lengths (Section 2).
    if bound.size != int(counts.sum()):
        raise BVRAMError(
            f"sbm_route: bound register has length {bound.size}, expected sum(counts) = {int(counts.sum())}"
        )
    return result


# ---------------------------------------------------------------------------
# The untraced fast path: programs pre-compiled into threaded plans
# ---------------------------------------------------------------------------

#: plan entry kinds
_STEP = 0  # plain register op: fn(regs) executes it
_JUMP = 1  # control flow: fn(regs) returns the next pc, or -1 to fall through
_HALT = 2
_TRAP = 3  # payload is the trap message
_BLOCK = 4  # fused straight-line block: fn(regs, partial) returns (time, work)


def _build_plan(program: isa.Program) -> list[tuple]:
    """Compile a program into ``(kind, payload, rw)`` tuples, one per instruction.

    ``rw`` is the concatenation of the instruction's read and written
    register indices — exactly the registers ``_charge`` sums over — so the
    fast loop can account work without re-deriving them every step.
    """
    labels = program.labels
    plan: list[tuple] = []
    for instr in program.instructions:
        rw = instr.registers_read() + instr.registers_written()
        if isinstance(instr, isa.Arith):
            dst, op, a, b = instr.dst, instr.op, instr.a, instr.b
            fn = _ARITH_FNS[op]  # op already validated by Arith.__post_init__

            def step(regs, dst=dst, op=op, a=a, b=b, fn=fn):
                va, vb = regs[a], regs[b]
                if va.shape != vb.shape:
                    raise BVRAMError(
                        f"arith {op}: operands have different lengths {va.size} and {vb.size}"
                    )
                regs[dst] = fn(va, vb)

            plan.append((_STEP, step, rw))
        elif isinstance(instr, isa.Move):
            dst, src = instr.dst, instr.src

            # No BVRAM instruction mutates a register's array in place (every
            # kernel allocates its output), so the untraced move can alias
            # instead of copying — a list rebind, not a memcpy per phi move.
            def step(regs, dst=dst, src=src):
                regs[dst] = regs[src]

            plan.append((_STEP, step, rw))
        elif isinstance(instr, isa.Select):
            dst, src = instr.dst, instr.src

            def step(regs, dst=dst, src=src):
                v = regs[src]
                regs[dst] = v[v != 0]

            plan.append((_STEP, step, rw))
        elif isinstance(instr, isa.FlagMerge):
            dst, flags, a, b = instr.dst, instr.flags, instr.a, instr.b

            def step(regs, dst=dst, flags=flags, a=a, b=b):
                regs[dst] = flag_merge_vec(regs[flags], regs[a], regs[b])

            plan.append((_STEP, step, rw))
        elif isinstance(instr, isa.AppendI):
            dst, a, b = instr.dst, instr.a, instr.b

            def step(regs, dst=dst, a=a, b=b):
                regs[dst] = np.concatenate([regs[a], regs[b]])

            plan.append((_STEP, step, rw))
        elif isinstance(instr, isa.UnArith):
            dst, op, src = instr.dst, instr.op, instr.src

            def step(regs, dst=dst, op=op, src=src):
                regs[dst] = _un_arith(op, regs[src])

            plan.append((_STEP, step, rw))
        elif isinstance(instr, isa.LengthI):
            dst, src = instr.dst, instr.src

            def step(regs, dst=dst, src=src):
                regs[dst] = np.array([regs[src].size], dtype=np.int64)

            plan.append((_STEP, step, rw))
        elif isinstance(instr, isa.EnumerateI):
            dst, src = instr.dst, instr.src

            def step(regs, dst=dst, src=src):
                regs[dst] = np.arange(regs[src].size, dtype=np.int64)

            plan.append((_STEP, step, rw))
        elif isinstance(instr, isa.LoadEmpty):
            dst = instr.dst

            def step(regs, dst=dst):
                regs[dst] = np.zeros(0, dtype=np.int64)

            plan.append((_STEP, step, rw))
        elif isinstance(instr, isa.LoadConst):
            if instr.value < 0:
                raise BVRAMError("load_const: BVRAM registers hold natural numbers")
            dst, arr = instr.dst, np.array([instr.value], dtype=np.int64)

            def step(regs, dst=dst, arr=arr):
                regs[dst] = arr.copy()

            plan.append((_STEP, step, rw))
        elif isinstance(instr, isa.BmRoute):
            dst, data, counts, bound = instr.dst, instr.data, instr.counts, instr.bound

            def step(regs, dst=dst, data=data, counts=counts, bound=bound):
                regs[dst] = bm_route_vec(regs[data], regs[counts], regs[bound])

            plan.append((_STEP, step, rw))
        elif isinstance(instr, isa.SbmRoute):
            dst, bound, counts, data, segments = (
                instr.dst,
                instr.bound,
                instr.counts,
                instr.data,
                instr.segments,
            )

            def step(regs, dst=dst, bound=bound, counts=counts, data=data, segments=segments):
                regs[dst] = sbm_route_vec(regs[bound], regs[counts], regs[data], regs[segments])

            plan.append((_STEP, step, rw))
        elif isinstance(instr, isa.SegScan):
            dst, op, data, segments = instr.dst, instr.op, instr.data, instr.segments

            def step(regs, dst=dst, op=op, data=data, segments=segments):
                regs[dst] = seg_scan_vec(op, regs[data], regs[segments])

            plan.append((_STEP, step, rw))
        elif isinstance(instr, isa.SegReduce):
            dst, op, data, segments = instr.dst, instr.op, instr.data, instr.segments

            def step(regs, dst=dst, op=op, data=data, segments=segments):
                regs[dst] = seg_reduce_vec(op, regs[data], regs[segments])

            plan.append((_STEP, step, rw))
        elif isinstance(instr, isa.Goto):
            target = labels[instr.label]

            def step(regs, target=target):
                return target

            plan.append((_JUMP, step, rw))
        elif isinstance(instr, isa.GotoIfEmpty):
            target, src = labels[instr.label], instr.src

            def step(regs, target=target, src=src):
                return target if regs[src].size == 0 else -1

            plan.append((_JUMP, step, rw))
        elif isinstance(instr, isa.Halt):
            plan.append((_HALT, None, rw))
        elif isinstance(instr, isa.Trap):
            plan.append((_TRAP, instr.message, rw))
        else:
            raise BVRAMError(f"unknown instruction {instr!r}")
    return plan


#: Guards concurrent plan builds.  The cache write itself is a single
#: attribute store (atomic under the GIL), but without the lock two threads
#: hammering a cold program would both pay the full ``_build_plan`` cost;
#: with it, one builds and the other reuses.  The lock is never held while
#: *executing* a plan, only while building one.
_PLAN_LOCK = threading.Lock()


def _reinit_plan_lock() -> None:
    """Fork handler: a child must never inherit a lock mid-acquisition.

    ``os.fork`` copies the lock in whatever state the forking thread saw —
    if another thread held it at fork time, every plan build in the child
    would deadlock.  Re-initialising in ``after_in_child`` makes the plan
    caches fork-safe by construction (the cached plans themselves are plain
    closures over immutable instruction objects and stay valid in the
    child).
    """
    global _PLAN_LOCK
    _PLAN_LOCK = threading.Lock()


os.register_at_fork(after_in_child=_reinit_plan_lock)


def _plan_for(program: isa.Program) -> list[tuple]:
    """Build (or fetch the cached) fast plan for ``program``.

    The cache lives on the program object, with a snapshot of the exact
    instruction objects it was built from: the snapshot keeps them alive (so
    identity checks cannot be fooled by recycling) and any in-place edit of
    the instruction list — append, replacement, reorder — fails the
    element-wise identity scan and rebuilds.  The scan is a cheap ``is``
    loop, far below the cost of executing even one vector instruction.

    Thread-safe: the lock-free fast path reads one attribute (an atomic
    tuple under the GIL); a miss takes ``_PLAN_LOCK``, re-checks, and
    builds at most once per program generation.
    """
    cached = getattr(program, "_fast_plan", None)
    code = program.instructions
    if cached is not None:
        snapshot, plan = cached
        if len(snapshot) == len(code) and all(
            a is b for a, b in zip(snapshot, code)
        ):
            return plan
    with _PLAN_LOCK:
        cached = getattr(program, "_fast_plan", None)
        if cached is not None:
            snapshot, plan = cached
            if len(snapshot) == len(code) and all(
                a is b for a, b in zip(snapshot, code)
            ):
                return plan
        plan = _build_plan(program)
        program._fast_plan = (tuple(code), plan)
    return plan


class BVRAM:
    """A Bounded Vector Random Access Machine (Section 2)."""

    def __init__(self, n_registers: int = 8):
        if n_registers <= 0:
            raise ValueError("a BVRAM needs at least one register")
        self.n_registers = n_registers
        self.registers: list[np.ndarray] = [np.zeros(0, dtype=np.int64) for _ in range(n_registers)]
        self.time = 0
        self.work = 0
        self.trace: list[TraceEntry] = []

    # -- register access ----------------------------------------------------
    def load(self, i: int, values: Sequence[int] | np.ndarray) -> None:
        """Load an input register before running a program (not counted)."""
        self.registers[i] = _as_vector(values)

    def register(self, i: int) -> list[int]:
        return self.registers[i].tolist()

    def register_array(self, i: int) -> np.ndarray:
        """Register ``i`` as the underlying int64 vector (zero-copy, read-only)."""
        return self.registers[i]

    # -- execution ----------------------------------------------------------
    def _charge(self, opcode: str, instr: isa.Instruction, extra: int = 0) -> None:
        work = extra
        for r in instr.registers_read():
            work += int(self.registers[r].size)
        for r in instr.registers_written():
            work += int(self.registers[r].size)
        self.time += 1
        self.work += work
        self.trace.append(TraceEntry(opcode, work))

    def run(
        self,
        program: isa.Program,
        inputs: Optional[Sequence[Sequence[int]]] = None,
        max_steps: int = 10_000_000,
        record_trace: bool = True,
        fuse: bool = True,
    ) -> RunResult:
        """Execute ``program`` and return the result with T/W counters.

        ``record_trace=False`` selects the untraced fast path: identical
        ``T``/``W`` totals and final registers, but no per-instruction trace
        (``RunResult.trace`` comes back empty) and substantially less
        per-step interpreter overhead.  The untraced path runs the
        **block-fused** plan by default (one dispatch per straight-line run
        of instructions, see :mod:`repro.bvram.fuse`); ``fuse=False`` keeps
        the per-instruction plan — same totals, more dispatch.  ``fuse`` is
        ignored in traced mode, which needs per-instruction entries.
        """
        program.validate()
        if program.n_registers > self.n_registers:
            raise BVRAMError(
                f"program needs {program.n_registers} registers, machine has {self.n_registers}"
            )
        if inputs is not None:
            if len(inputs) != program.n_inputs:
                raise BVRAMError(
                    f"program expects {program.n_inputs} inputs, got {len(inputs)}"
                )
            for i, values in enumerate(inputs):
                self.load(i, values)

        self.time = 0
        self.work = 0
        self.trace = []
        if not record_trace:
            if fuse:
                self._run_fused(program, max_steps)
            else:
                self._run_untraced(program, max_steps)
            return RunResult(
                registers=[r.copy() for r in self.registers],
                time=self.time,
                work=self.work,
                trace=[],
            )
        pc = 0
        steps = 0
        code = program.instructions
        while pc < len(code):
            if steps >= max_steps:
                raise BVRAMError(f"exceeded {max_steps} steps (non-terminating program?)")
            steps += 1
            instr = code[pc]
            pc += 1

            if isinstance(instr, isa.Halt):
                self._charge("halt", instr)
                break
            if isinstance(instr, isa.Goto):
                self._charge("goto", instr)
                pc = program.labels[instr.label]
                continue
            if isinstance(instr, isa.GotoIfEmpty):
                self._charge("goto_if_empty", instr)
                if self.registers[instr.src].size == 0:
                    pc = program.labels[instr.label]
                continue
            if isinstance(instr, isa.Move):
                self.registers[instr.dst] = self.registers[instr.src].copy()
                self._charge("move", instr)
                continue
            if isinstance(instr, isa.Arith):
                self.registers[instr.dst] = _arith(
                    instr.op, self.registers[instr.a], self.registers[instr.b]
                )
                self._charge(f"arith:{instr.op}", instr)
                continue
            if isinstance(instr, isa.LoadEmpty):
                self.registers[instr.dst] = np.zeros(0, dtype=np.int64)
                self._charge("load_empty", instr)
                continue
            if isinstance(instr, isa.LoadConst):
                if instr.value < 0:
                    raise BVRAMError("load_const: BVRAM registers hold natural numbers")
                self.registers[instr.dst] = np.array([instr.value], dtype=np.int64)
                self._charge("load_const", instr)
                continue
            if isinstance(instr, isa.AppendI):
                self.registers[instr.dst] = np.concatenate(
                    [self.registers[instr.a], self.registers[instr.b]]
                )
                self._charge("append", instr)
                continue
            if isinstance(instr, isa.LengthI):
                self.registers[instr.dst] = np.array(
                    [self.registers[instr.src].size], dtype=np.int64
                )
                self._charge("length", instr)
                continue
            if isinstance(instr, isa.EnumerateI):
                self.registers[instr.dst] = np.arange(
                    self.registers[instr.src].size, dtype=np.int64
                )
                self._charge("enumerate", instr)
                continue
            if isinstance(instr, isa.BmRoute):
                self.registers[instr.dst] = bm_route_vec(
                    self.registers[instr.data],
                    self.registers[instr.counts],
                    self.registers[instr.bound],
                )
                self._charge("bm_route", instr)
                continue
            if isinstance(instr, isa.SbmRoute):
                self.registers[instr.dst] = sbm_route_vec(
                    self.registers[instr.bound],
                    self.registers[instr.counts],
                    self.registers[instr.data],
                    self.registers[instr.segments],
                )
                self._charge("sbm_route", instr)
                continue
            if isinstance(instr, isa.Select):
                src = self.registers[instr.src]
                self.registers[instr.dst] = src[src != 0]
                self._charge("select", instr)
                continue
            if isinstance(instr, isa.UnArith):
                self.registers[instr.dst] = _un_arith(instr.op, self.registers[instr.src])
                self._charge(f"un_arith:{instr.op}", instr)
                continue
            if isinstance(instr, isa.FlagMerge):
                self.registers[instr.dst] = flag_merge_vec(
                    self.registers[instr.flags],
                    self.registers[instr.a],
                    self.registers[instr.b],
                )
                self._charge("flag_merge", instr)
                continue
            if isinstance(instr, isa.SegScan):
                self.registers[instr.dst] = seg_scan_vec(
                    instr.op, self.registers[instr.data], self.registers[instr.segments]
                )
                self._charge(f"seg_scan:{instr.op}", instr)
                continue
            if isinstance(instr, isa.SegReduce):
                self.registers[instr.dst] = seg_reduce_vec(
                    instr.op, self.registers[instr.data], self.registers[instr.segments]
                )
                self._charge(f"seg_reduce:{instr.op}", instr)
                continue
            if isinstance(instr, isa.Trap):
                self._charge("trap", instr)
                raise BVRAMError(instr.message)
            raise BVRAMError(f"unknown instruction {instr!r}")

        return RunResult(
            registers=[r.copy() for r in self.registers],
            time=self.time,
            work=self.work,
            trace=list(self.trace),
        )

    def _run_untraced(self, program: isa.Program, max_steps: int) -> None:
        """The fast dispatch loop: threaded plan, local T/W accumulators.

        Accounting parity with the traced loop: a raising instruction is not
        charged (the traced loop charges after executing), ``trap`` is
        charged before raising, and the accumulated totals are flushed back
        to the machine on every exit path.
        """
        plan = _plan_for(program)
        regs = self.registers
        n = len(plan)
        pc = 0
        steps = 0
        time = 0
        work = 0
        try:
            while pc < n:
                if steps >= max_steps:
                    raise BVRAMError(
                        f"exceeded {max_steps} steps (non-terminating program?)"
                    )
                steps += 1
                kind, payload, rw = plan[pc]
                pc += 1
                if kind == _STEP:
                    payload(regs)
                    time += 1
                    for r in rw:
                        work += regs[r].size
                elif kind == _JUMP:
                    target = payload(regs)
                    time += 1
                    for r in rw:
                        work += regs[r].size
                    if target >= 0:
                        pc = target
                elif kind == _HALT:
                    time += 1
                    break
                else:  # _TRAP
                    time += 1
                    raise BVRAMError(payload)
        finally:
            self.time = time
            self.work = work

    def _run_fused(self, program: isa.Program, max_steps: int) -> None:
        """The block-fused dispatch loop: one call per straight-line block.

        Identical accounting to :meth:`_run_untraced` — each instruction
        inside a fused block is charged 1 time unit plus the post-execution
        lengths of its read/written registers, summed per block in the fused
        closure.  A block whose ``j``-th instruction raises reports the
        totals of its first ``j - 1`` instructions through the shared
        ``partial`` cell (the raising instruction itself is not charged,
        matching the traced loop), so error-path totals stay bit-identical.
        """
        from .fuse import fused_plan_for

        plan = fused_plan_for(program)
        regs = self.registers
        n = len(plan)
        pc = 0
        steps = 0
        time = 0
        work = 0
        partial = [0, 0]
        try:
            while pc < n:
                if steps >= max_steps:
                    raise BVRAMError(
                        f"exceeded {max_steps} steps (non-terminating program?)"
                    )
                kind, payload, extra = plan[pc]
                pc += 1
                if kind == _BLOCK:
                    if steps + extra > max_steps:
                        # the budget expires mid-block: drive the block
                        # per-instruction so the run stops (and charges) at
                        # exactly the instruction the unfused loop stops at
                        for fn, rw in payload.steps[: max_steps - steps]:
                            fn(regs)
                            time += 1
                            for r in rw:
                                work += regs[r].size
                        raise BVRAMError(
                            f"exceeded {max_steps} steps (non-terminating program?)"
                        )
                    steps += extra
                    try:
                        t, w = payload(regs, partial)
                    except BaseException:
                        time += partial[0]
                        work += partial[1]
                        raise
                    time += t
                    work += w
                elif kind == _JUMP:
                    steps += 1
                    target = payload(regs)
                    time += 1
                    for r in extra:
                        work += regs[r].size
                    if target >= 0:
                        pc = target
                elif kind == _HALT:
                    steps += 1
                    time += 1
                    break
                else:  # _TRAP
                    time += 1
                    raise BVRAMError(payload)
        finally:
            self.time = time
            self.work = work


def run_program(
    program: isa.Program,
    inputs: Sequence[Sequence[int]],
    n_registers: Optional[int] = None,
) -> RunResult:
    """Convenience helper: build a machine, run ``program`` on ``inputs``."""
    machine = BVRAM(n_registers or program.n_registers)
    return machine.run(program, inputs)
