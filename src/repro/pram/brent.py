"""CREW PRAM with scan primitives: Brent scheduling (Proposition 3.2).

Proposition 3.2: *any NSC function of time complexity T and work complexity W
can be simulated on a CREW PRAM with scan primitives using p processors with
asymptotic complexity O(T + W/p).*

The proof flattens the NSC function onto an extended BVRAM (unbounded
registers) and then work-schedules each vector instruction across the p
processors.  We reproduce the scheduling level: given the instruction trace
of a (B)VRAM execution — or, coarser, just the (T, W) pair of an NSC
evaluation — compute the number of PRAM cycles under Brent's principle: an
instruction of work ``w`` takes ``ceil(w / p) + c_scan`` cycles, where
``c_scan`` is the constant number of scan/prefix operations needed to
allocate the instruction's elements to processors (the "+ scan primitives"
part of the proposition).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Iterable, Sequence

from ..bvram.machine import TraceEntry

#: number of constant-time scan / bookkeeping operations charged per
#: vector instruction when distributing its elements over the processors
SCAN_OVERHEAD = 2


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling a trace on p processors."""

    processors: int
    cycles: int
    time: int
    work: int

    @property
    def speedup_bound(self) -> float:
        """The ideal ``W / cycles`` speedup obtained."""
        return self.work / self.cycles if self.cycles else float("inf")


def schedule_trace(trace: Sequence[TraceEntry], p: int) -> ScheduleResult:
    """Brent-schedule a per-instruction trace on ``p`` processors."""
    if p < 1:
        raise ValueError("need at least one processor")
    cycles = 0
    work = 0
    for entry in trace:
        cycles += ceil(entry.work / p) + SCAN_OVERHEAD if entry.work else 1 + SCAN_OVERHEAD
        work += entry.work
    return ScheduleResult(processors=p, cycles=cycles, time=len(trace), work=work)


def brent_bound(time: int, work: int, p: int) -> int:
    """The O(T + W/p) bound itself (used as the reference curve in E2)."""
    if p < 1:
        raise ValueError("need at least one processor")
    return time + ceil(work / p)


def schedule_outcome(time: int, work: int, p: int) -> ScheduleResult:
    """Schedule an NSC evaluation known only by its (T, W) pair.

    Proposition 3.2 guarantees a per-step decomposition exists with total work
    W spread over T parallel steps; lacking the exact per-step breakdown we
    model the least favourable balanced split (each of the T steps carries
    W/T work), which still exhibits the O(T + W/p) behaviour the experiment
    checks for.
    """
    if p < 1:
        raise ValueError("need at least one processor")
    if time <= 0:
        return ScheduleResult(p, 0, 0, 0)
    per_step = work / time
    cycles = 0
    for _ in range(time):
        cycles += ceil(per_step / p) + SCAN_OVERHEAD
    return ScheduleResult(processors=p, cycles=cycles, time=time, work=work)


def speedup_curve(time: int, work: int, processors: Iterable[int]) -> list[tuple[int, int]]:
    """(p, cycles) pairs for a range of processor counts (the E2 series)."""
    return [(p, schedule_outcome(time, work, p).cycles) for p in processors]
