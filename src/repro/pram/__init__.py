"""CREW PRAM with scan primitives: Brent scheduling of NSC/BVRAM work (Proposition 3.2)."""

from .brent import ScheduleResult, brent_bound, schedule_outcome, schedule_trace, speedup_curve

__all__ = ["ScheduleResult", "brent_bound", "schedule_outcome", "schedule_trace", "speedup_curve"]
