"""Types of the Nested Sequence Calculus (NSC), Section 3 / Appendix A.

The type grammar of the paper is::

    t ::= unit | N | t x t | t + t | [t]

``unit`` has the single value ``()``; ``N`` is the natural numbers; ``s x t``
is the product type; ``s + t`` is the disjoint (tagged) union; ``[t]`` is the
type of finite sequences over ``t``.  The boolean type ``B`` is *defined* as
``unit + unit`` with ``true = inl(())`` and ``false = inr(())``.

Function "types" ``s -> t`` are *not* types of the calculus (NSC is strictly
first order); they are represented separately by :class:`FunType` and may only
appear as the classification of an NSC *function* (lambda abstraction, map,
while, ...), never nested inside a type.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import _fastpickle as fastpickle
from .._fastpickle import FastSlotPickle


class Type(FastSlotPickle):
    """Base class of NSC object types (unit, N, products, sums, sequences)."""

    __slots__ = ()

    # -- structural helpers -------------------------------------------------
    def is_scalar(self) -> bool:
        """A *scalar* type contains no sequence constructor (cf. Section 7.1).

        Scalar types are the ones allowed inside SA's ``map`` of scalar
        functions: ``s ::= unit | N | s x s | s + s``.
        """
        raise NotImplementedError

    def is_flat(self) -> bool:
        """A *flat* type has sequences only of scalars (cf. Section 7.1).

        Flat types: ``t ::= unit | [s] | t x t | t + t`` with ``s`` scalar.
        Every scalar type is also flat.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return str(self)


@dataclass(frozen=True, slots=True)
class UnitType(Type):
    """The one-element type ``unit``."""

    def is_scalar(self) -> bool:
        return True

    def is_flat(self) -> bool:
        return True

    def __str__(self) -> str:
        return "unit"


@dataclass(frozen=True, slots=True)
class NatType(Type):
    """The type ``N`` of non-negative integers."""

    def is_scalar(self) -> bool:
        return True

    def is_flat(self) -> bool:
        return True

    def __str__(self) -> str:
        return "N"


@dataclass(frozen=True, slots=True)
class ProdType(Type):
    """The product type ``left x right``."""

    left: Type
    right: Type

    def is_scalar(self) -> bool:
        return self.left.is_scalar() and self.right.is_scalar()

    def is_flat(self) -> bool:
        return self.left.is_flat() and self.right.is_flat()

    def __str__(self) -> str:
        return f"({self.left} x {self.right})"


@dataclass(frozen=True, slots=True)
class SumType(Type):
    """The disjoint union type ``left + right``."""

    left: Type
    right: Type

    def is_scalar(self) -> bool:
        return self.left.is_scalar() and self.right.is_scalar()

    def is_flat(self) -> bool:
        return self.left.is_flat() and self.right.is_flat()

    def __str__(self) -> str:
        return f"({self.left} + {self.right})"


@dataclass(frozen=True, slots=True)
class SeqType(Type):
    """The finite-sequence type ``[elem]``."""

    elem: Type

    def is_scalar(self) -> bool:
        return False

    def is_flat(self) -> bool:
        return self.elem.is_scalar()

    def __str__(self) -> str:
        return f"[{self.elem}]"


@dataclass(frozen=True, slots=True)
class FunType(FastSlotPickle):
    """The classification ``dom -> cod`` of an NSC *function*.

    Not a first-class type: it cannot occur inside :class:`ProdType`,
    :class:`SumType` or :class:`SeqType` (the paper explicitly rules out
    higher-order functions).
    """

    dom: Type
    cod: Type

    def __str__(self) -> str:
        return f"{self.dom} -> {self.cod}"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return str(self)


# Canonical singletons / abbreviations used throughout the code base.
UNIT = UnitType()
NAT = NatType()
#: The boolean type ``B = unit + unit`` (true = inl(()), false = inr(())).
BOOL = SumType(UNIT, UNIT)


def prod(left: Type, right: Type) -> ProdType:
    """Convenience constructor for product types."""
    return ProdType(left, right)


def sum_t(left: Type, right: Type) -> SumType:
    """Convenience constructor for sum types."""
    return SumType(left, right)


def seq(elem: Type) -> SeqType:
    """Convenience constructor for sequence types."""
    return SeqType(elem)


def fun(dom: Type, cod: Type) -> FunType:
    """Convenience constructor for function classifications."""
    return FunType(dom, cod)


def type_depth(t: Type) -> int:
    """Nesting depth of sequence constructors in ``t``.

    Used by the flattening passes: flat types have depth <= 1.
    """
    if isinstance(t, SeqType):
        return 1 + type_depth(t.elem)
    if isinstance(t, (ProdType, SumType)):
        return max(type_depth(t.left), type_depth(t.right))
    return 0


def types_equal(a: Type, b: Type) -> bool:
    """Structural type equality (dataclass equality already does this)."""
    return a == b


fastpickle.install(Type)
fastpickle.install(FunType)
