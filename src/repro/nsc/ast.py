"""Abstract syntax of the Nested Sequence Calculus (Section 3 / Appendix A).

NSC expressions fall into two syntactic categories:

* **terms** ``M, N, P, ...`` which have an object type ``t``;
* **functions** ``F, G, ...`` which are classified by ``s -> t`` (not a type).

Term formers
    variables, the error term, natural constants, arithmetic ``M op N`` with
    ``op`` drawn from the parameter set Sigma, equality ``M = N``, the unit
    value, pairs and projections, injections and ``case``, function
    application ``F(M)``, and the collection/sequence constructs ``[]``,
    ``[M]``, ``M @ N``, ``flatten``, ``length``, ``get``, ``zip``,
    ``enumerate`` and ``split``.

Function formers
    lambda abstraction ``\\x:s. M``, ``map(F)`` (the only source of
    parallelism) and ``while(P, F)``.

Two *extensions* used by the rest of the code base are also represented here
and are explicitly not part of core NSC:

* :class:`Let` — block structure (Section 4 allows it; it desugars to an
  application of a lambda, which :func:`desugar` performs);
* :class:`RecFun` / :class:`RecCall` — named recursive definitions.  These are
  the input of the map-recursion translation (Definition 4.1 / Theorem 4.2,
  implemented in :mod:`repro.maprec`), which removes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .. import _fastpickle as fastpickle
from .._fastpickle import FastSlotPickle
from .types import Type

# The arithmetic signature Sigma (Section 2/3).  ``-`` is *monus*
# (truncated subtraction), ``/`` is integer division, ``>>`` is right-shift
# and ``log2`` is the floor of the base-2 logarithm (a unary op encoded as a
# binary op ignoring its second argument would be awkward, so it is unary).
BINARY_OPS = ("+", "-", "*", "/", "mod", ">>", "min", "max")
UNARY_OPS = ("log2", "sqrt")


class Expr(FastSlotPickle):
    """Common base class for terms and functions (useful for traversals)."""

    __slots__ = ()

    def children(self) -> Iterator["Expr"]:
        """Iterate over immediate sub-expressions."""
        raise NotImplementedError


class Term(Expr):
    """Base class of NSC terms."""

    __slots__ = ()


class Function(Expr):
    """Base class of NSC functions (classified by ``s -> t``)."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Var(Term):
    """A term variable."""

    name: str

    def children(self) -> Iterator[Expr]:
        return iter(())


@dataclass(frozen=True, slots=True)
class ErrorTerm(Term):
    """The error term Omega, at an annotated type."""

    type: Type

    def children(self) -> Iterator[Expr]:
        return iter(())


@dataclass(frozen=True, slots=True)
class Const(Term):
    """A natural-number constant ``n : N``."""

    value: int

    def children(self) -> Iterator[Expr]:
        return iter(())


@dataclass(frozen=True, slots=True)
class UnitTerm(Term):
    """The empty tuple ``() : unit``."""

    def children(self) -> Iterator[Expr]:
        return iter(())


@dataclass(frozen=True, slots=True)
class BinOp(Term):
    """Arithmetic ``M op N`` with ``op`` in Sigma (both operands of type N)."""

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown arithmetic operation {self.op!r}")

    def children(self) -> Iterator[Expr]:
        yield self.left
        yield self.right


@dataclass(frozen=True, slots=True)
class UnOp(Term):
    """Unary arithmetic (``log2``, ``sqrt``) on a natural."""

    op: str
    arg: Term

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary operation {self.op!r}")

    def children(self) -> Iterator[Expr]:
        yield self.arg


@dataclass(frozen=True, slots=True)
class Eq(Term):
    """Equality test ``M = N : B`` (structural equality on S-objects)."""

    left: Term
    right: Term

    def children(self) -> Iterator[Expr]:
        yield self.left
        yield self.right


@dataclass(frozen=True, slots=True)
class PairTerm(Term):
    """Pairing ``(M, N)``."""

    fst: Term
    snd: Term

    def children(self) -> Iterator[Expr]:
        yield self.fst
        yield self.snd


@dataclass(frozen=True, slots=True)
class Proj(Term):
    """Projection ``pi_1`` / ``pi_2``; ``index`` is 1 or 2."""

    index: int
    arg: Term

    def __post_init__(self) -> None:
        if self.index not in (1, 2):
            raise ValueError("projection index must be 1 or 2")

    def children(self) -> Iterator[Expr]:
        yield self.arg


@dataclass(frozen=True, slots=True)
class Inl(Term):
    """Left injection ``inl(M) : s + t`` (``right`` annotates ``t``)."""

    arg: Term
    right: Optional[Type] = None

    def children(self) -> Iterator[Expr]:
        yield self.arg


@dataclass(frozen=True, slots=True)
class Inr(Term):
    """Right injection ``inr(M) : s + t`` (``left`` annotates ``s``)."""

    arg: Term
    left: Optional[Type] = None

    def children(self) -> Iterator[Expr]:
        yield self.arg


@dataclass(frozen=True, slots=True)
class Case(Term):
    """``case M of inl(x) => N | inr(y) => P``."""

    scrutinee: Term
    left_var: str
    left_body: Term
    right_var: str
    right_body: Term

    def children(self) -> Iterator[Expr]:
        yield self.scrutinee
        yield self.left_body
        yield self.right_body


@dataclass(frozen=True, slots=True)
class Apply(Term):
    """Function application ``F(M)``."""

    fn: "Function"
    arg: Term

    def children(self) -> Iterator[Expr]:
        yield self.fn
        yield self.arg


@dataclass(frozen=True, slots=True)
class EmptySeq(Term):
    """The empty sequence ``[] : [elem]``."""

    elem: Type

    def children(self) -> Iterator[Expr]:
        return iter(())


@dataclass(frozen=True, slots=True)
class Singleton(Term):
    """The singleton sequence ``[M]``."""

    arg: Term

    def children(self) -> Iterator[Expr]:
        yield self.arg


@dataclass(frozen=True, slots=True)
class Append(Term):
    """Sequence append ``M @ N``."""

    left: Term
    right: Term

    def children(self) -> Iterator[Expr]:
        yield self.left
        yield self.right


@dataclass(frozen=True, slots=True)
class Flatten(Term):
    """``flatten(M) : [t]`` for ``M : [[t]]``."""

    arg: Term

    def children(self) -> Iterator[Expr]:
        yield self.arg


@dataclass(frozen=True, slots=True)
class Length(Term):
    """``length(M) : N``."""

    arg: Term

    def children(self) -> Iterator[Expr]:
        yield self.arg


@dataclass(frozen=True, slots=True)
class Get(Term):
    """``get(M) : t`` for ``M : [t]``: get([x]) = x, otherwise the error value."""

    arg: Term

    def children(self) -> Iterator[Expr]:
        yield self.arg


@dataclass(frozen=True, slots=True)
class Zip(Term):
    """``zip(M, N) : [s x t]``; undefined when lengths differ."""

    left: Term
    right: Term

    def children(self) -> Iterator[Expr]:
        yield self.left
        yield self.right


@dataclass(frozen=True, slots=True)
class Enumerate(Term):
    """``enumerate(M) : [N]`` = [0, ..., length(M)-1]."""

    arg: Term

    def children(self) -> Iterator[Expr]:
        yield self.arg


@dataclass(frozen=True, slots=True)
class Split(Term):
    """``split(M, N) : [[t]]`` splits ``M`` according to the counts in ``N``.

    Defined only when the counts in ``N`` sum to ``length(M)``.
    """

    data: Term
    counts: Term

    def children(self) -> Iterator[Expr]:
        yield self.data
        yield self.counts


@dataclass(frozen=True, slots=True)
class Let(Term):
    """Block structure ``let var = bound in body`` (extension; Section 4).

    Desugars to ``(\\var. body)(bound)``; kept as a node for readability of
    the algorithm programs and the pretty printer.
    """

    var: str
    bound: Term
    body: Term
    var_type: Optional[Type] = None

    def children(self) -> Iterator[Expr]:
        yield self.bound
        yield self.body


@dataclass(frozen=True, slots=True)
class RecCall(Term):
    """A call ``f(M)`` to the enclosing named recursive definition (extension)."""

    name: str
    arg: Term

    def children(self) -> Iterator[Expr]:
        yield self.arg


# ---------------------------------------------------------------------------
# Functions
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Lambda(Function):
    """Lambda abstraction ``\\var : var_type . body`` of classification ``s -> t``."""

    var: str
    var_type: Type
    body: Term

    def children(self) -> Iterator[Expr]:
        yield self.body


@dataclass(frozen=True, slots=True)
class MapF(Function):
    """``map(F) : [s] -> [t]`` — the sole parallel construct of NSC."""

    fn: Function

    def children(self) -> Iterator[Expr]:
        yield self.fn


@dataclass(frozen=True, slots=True)
class WhileF(Function):
    """``while(P, F) : t -> t`` with ``P : t -> B`` and ``F : t -> t``."""

    pred: Function
    body: Function

    def children(self) -> Iterator[Expr]:
        yield self.pred
        yield self.body


@dataclass(frozen=True, slots=True)
class RecFun(Function):
    """A named recursive definition ``fun name(var : var_type) = body`` (extension).

    ``body`` may contain :class:`RecCall` nodes referring to ``name``.  The
    map-recursion translation (Theorem 4.2) eliminates these nodes; the
    evaluator also interprets them directly so that translated and direct
    versions can be compared (E3).
    """

    name: str
    var: str
    var_type: Type
    body: Term
    cod: Optional[Type] = None

    def children(self) -> Iterator[Expr]:
        yield self.body


# ---------------------------------------------------------------------------
# Generic helpers
# ---------------------------------------------------------------------------


def walk(e: Expr) -> Iterator[Expr]:
    """Pre-order traversal of an expression tree.

    Iterative (explicit stack): traversal depth is bounded by heap memory,
    not the Python recursion limit — deep ``let`` chains and tall recursion
    trees are first-class citizens of this code base.
    """
    stack = [e]
    while stack:
        node = stack.pop()
        yield node
        children = list(node.children())
        children.reverse()
        stack.extend(children)


def free_vars(e: Expr) -> frozenset[str]:
    """Free term variables of an expression.

    Iterative (explicit stack of ``(node, bound-names)`` pairs) so that the
    evaluator can charge closures of arbitrarily deep function bodies under
    the default recursion limit.
    """
    out: set[str] = set()
    stack: list[tuple[Expr, frozenset[str]]] = [(e, frozenset())]
    while stack:
        node, bound = stack.pop()
        if isinstance(node, Var):
            if node.name not in bound:
                out.add(node.name)
        elif isinstance(node, (Lambda, RecFun)):
            stack.append((node.body, bound | {node.var}))
        elif isinstance(node, Let):
            stack.append((node.bound, bound))
            stack.append((node.body, bound | {node.var}))
        elif isinstance(node, Case):
            stack.append((node.scrutinee, bound))
            stack.append((node.left_body, bound | {node.left_var}))
            stack.append((node.right_body, bound | {node.right_var}))
        else:
            for child in node.children():
                stack.append((child, bound))
    return frozenset(out)


def uses_recursion(e: Expr) -> bool:
    """True when the expression contains a :class:`RecCall` or :class:`RecFun` node."""
    return any(isinstance(node, (RecCall, RecFun)) for node in walk(e))


def uses_let(e: Expr) -> bool:
    """True when the expression contains a :class:`Let` node."""
    return any(isinstance(node, Let) for node in walk(e))


def desugar(e: Expr) -> Expr:
    """Remove :class:`Let` nodes, producing core NSC (plus any recursion nodes).

    ``let x = M in N`` becomes ``(\\x:s. N)(M)``; the variable type must have
    been annotated (the builder and the type checker fill it in).
    """
    if isinstance(e, Let):
        bound = desugar(e.bound)
        body = desugar(e.body)
        if e.var_type is None:
            raise ValueError(
                f"cannot desugar let-binding of {e.var!r}: missing type annotation "
                "(run the type checker first or use the builder)"
            )
        return Apply(Lambda(e.var, e.var_type, body), bound)
    # Rebuild the node with desugared children.  dataclasses are frozen, so we
    # reconstruct via their fields.
    if isinstance(e, (Var, ErrorTerm, Const, UnitTerm, EmptySeq)):
        return e
    kwargs = {}
    for name in e.__dataclass_fields__:  # type: ignore[attr-defined]
        value = getattr(e, name)
        if isinstance(value, Expr):
            kwargs[name] = desugar(value)
        else:
            kwargs[name] = value
    return type(e)(**kwargs)


def count_nodes(e: Expr) -> int:
    """Number of AST nodes (used by tests and the pretty printer)."""
    return sum(1 for _ in walk(e))


fastpickle.install(Expr)
