"""Pretty printer for NSC expressions.

Produces a compact, ML-flavoured rendering close to the notation of the paper
(Figures 1-3).  Used by the examples and by error messages; the output is for
humans and is not meant to be re-parsed.
"""

from __future__ import annotations

from . import ast as A

_BINOP_SYMBOLS = {
    "+": "+",
    "-": "-.",  # monus
    "*": "*",
    "/": "/",
    "mod": "mod",
    ">>": ">>",
    "min": "min",
    "max": "max",
}


def pretty(e: A.Expr, indent: int = 0) -> str:
    """Render an NSC term or function as a string."""
    return _pp(e, indent)


def _pad(indent: int) -> str:
    return "  " * indent


def _pp(e: A.Expr, ind: int) -> str:
    if isinstance(e, A.Var):
        return e.name
    if isinstance(e, A.Const):
        return str(e.value)
    if isinstance(e, A.UnitTerm):
        return "()"
    if isinstance(e, A.ErrorTerm):
        return f"Omega[{e.type}]"
    if isinstance(e, A.BinOp):
        return f"({_pp(e.left, ind)} {_BINOP_SYMBOLS[e.op]} {_pp(e.right, ind)})"
    if isinstance(e, A.UnOp):
        return f"{e.op}({_pp(e.arg, ind)})"
    if isinstance(e, A.Eq):
        return f"({_pp(e.left, ind)} = {_pp(e.right, ind)})"
    if isinstance(e, A.PairTerm):
        return f"({_pp(e.fst, ind)}, {_pp(e.snd, ind)})"
    if isinstance(e, A.Proj):
        return f"pi{e.index}({_pp(e.arg, ind)})"
    if isinstance(e, A.Inl):
        return f"inl({_pp(e.arg, ind)})"
    if isinstance(e, A.Inr):
        return f"inr({_pp(e.arg, ind)})"
    if isinstance(e, A.Case):
        return (
            f"case {_pp(e.scrutinee, ind)} of inl({e.left_var}) => {_pp(e.left_body, ind)}"
            f" | inr({e.right_var}) => {_pp(e.right_body, ind)}"
        )
    if isinstance(e, A.Apply):
        return f"{_pp(e.fn, ind)}({_pp(e.arg, ind)})"
    if isinstance(e, A.EmptySeq):
        return "[]"
    if isinstance(e, A.Singleton):
        return f"[{_pp(e.arg, ind)}]"
    if isinstance(e, A.Append):
        return f"({_pp(e.left, ind)} @ {_pp(e.right, ind)})"
    if isinstance(e, A.Flatten):
        return f"flatten({_pp(e.arg, ind)})"
    if isinstance(e, A.Length):
        return f"length({_pp(e.arg, ind)})"
    if isinstance(e, A.Get):
        return f"get({_pp(e.arg, ind)})"
    if isinstance(e, A.Zip):
        return f"zip({_pp(e.left, ind)}, {_pp(e.right, ind)})"
    if isinstance(e, A.Enumerate):
        return f"enumerate({_pp(e.arg, ind)})"
    if isinstance(e, A.Split):
        return f"split({_pp(e.data, ind)}, {_pp(e.counts, ind)})"
    if isinstance(e, A.Let):
        return (
            f"let {e.var} = {_pp(e.bound, ind)} in\n{_pad(ind + 1)}{_pp(e.body, ind + 1)}"
        )
    if isinstance(e, A.RecCall):
        return f"{e.name}({_pp(e.arg, ind)})"
    if isinstance(e, A.Lambda):
        return f"(\\{e.var} : {e.var_type}. {_pp(e.body, ind)})"
    if isinstance(e, A.MapF):
        return f"map({_pp(e.fn, ind)})"
    if isinstance(e, A.WhileF):
        return f"while({_pp(e.pred, ind)}, {_pp(e.body, ind)})"
    if isinstance(e, A.RecFun):
        return f"fun {e.name}({e.var} : {e.var_type}) = {_pp(e.body, ind + 1)}"
    return repr(e)
