"""Ergonomic construction of NSC programs.

The calculus of Section 3 is deliberately spartan; writing the paper's
programs (Figures 1-3) directly as dataclass constructors would be unreadable.
This module provides short, composable builder functions.  Everything returned
is a plain :mod:`repro.nsc.ast` node — the builders add no new semantics.

Naming follows the paper: ``inl/inr``, ``case_``, ``map_``, ``while_``,
``flatten_``, ``enumerate_``, ``split_``, etc.  ``if_(b, m, n)`` is the
derived conditional ``case b of inl(u) => m | inr(v) => n`` (Section 3).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from . import ast as A
from .types import BOOL, NAT, UNIT, SeqType, Type

TermLike = Union[A.Term, int]

_gensym_counter = 0


def gensym(prefix: str = "v") -> str:
    """Fresh variable name (used by derived forms to avoid capture)."""
    global _gensym_counter
    _gensym_counter += 1
    return f"_{prefix}{_gensym_counter}"


def _term(x: TermLike) -> A.Term:
    if isinstance(x, A.Term):
        return x
    if isinstance(x, bool):
        return true() if x else false()
    if isinstance(x, int):
        return A.Const(x)
    raise TypeError(f"cannot treat {x!r} as an NSC term")


# -- variables, constants, unit, error --------------------------------------


def v(name: str) -> A.Var:
    """A term variable."""
    return A.Var(name)


def c(n: int) -> A.Const:
    """A natural-number constant."""
    return A.Const(n)


def unit() -> A.UnitTerm:
    """The empty tuple ``()``."""
    return A.UnitTerm()


def error(t: Type) -> A.ErrorTerm:
    """The error term Omega at type ``t``."""
    return A.ErrorTerm(t)


# -- arithmetic --------------------------------------------------------------


def add(a: TermLike, b: TermLike) -> A.BinOp:
    return A.BinOp("+", _term(a), _term(b))


def sub(a: TermLike, b: TermLike) -> A.BinOp:
    """Monus (truncated subtraction)."""
    return A.BinOp("-", _term(a), _term(b))


def mul(a: TermLike, b: TermLike) -> A.BinOp:
    return A.BinOp("*", _term(a), _term(b))


def div(a: TermLike, b: TermLike) -> A.BinOp:
    return A.BinOp("/", _term(a), _term(b))


def mod(a: TermLike, b: TermLike) -> A.BinOp:
    return A.BinOp("mod", _term(a), _term(b))


def rshift(a: TermLike, b: TermLike) -> A.BinOp:
    return A.BinOp(">>", _term(a), _term(b))


def nat_min(a: TermLike, b: TermLike) -> A.BinOp:
    return A.BinOp("min", _term(a), _term(b))


def nat_max(a: TermLike, b: TermLike) -> A.BinOp:
    return A.BinOp("max", _term(a), _term(b))


def log2(a: TermLike) -> A.UnOp:
    return A.UnOp("log2", _term(a))


def isqrt(a: TermLike) -> A.UnOp:
    return A.UnOp("sqrt", _term(a))


def eq(a: TermLike, b: TermLike) -> A.Eq:
    """Equality test, of type ``B``."""
    return A.Eq(_term(a), _term(b))


# -- products ----------------------------------------------------------------


def pair(a: TermLike, b: TermLike) -> A.PairTerm:
    return A.PairTerm(_term(a), _term(b))


def fst(a: TermLike) -> A.Proj:
    return A.Proj(1, _term(a))


def snd(a: TermLike) -> A.Proj:
    return A.Proj(2, _term(a))


def tuple_(*parts: TermLike) -> A.Term:
    """Right-nested tuple ``(a, (b, (c, ...)))``."""
    terms = [_term(p) for p in parts]
    if len(terms) < 2:
        raise ValueError("tuple_ needs at least two components")
    out = terms[-1]
    for t in reversed(terms[:-1]):
        out = A.PairTerm(t, out)
    return out


# -- sums and booleans -------------------------------------------------------


def inl(a: TermLike, right: Optional[Type] = None) -> A.Inl:
    return A.Inl(_term(a), right)


def inr(a: TermLike, left: Optional[Type] = None) -> A.Inr:
    return A.Inr(_term(a), left)


def case_(
    scrut: TermLike,
    left_var: str,
    left_body: TermLike,
    right_var: str,
    right_body: TermLike,
) -> A.Case:
    return A.Case(_term(scrut), left_var, _term(left_body), right_var, _term(right_body))


def true() -> A.Term:
    """``true = inl(()) : B``."""
    return A.Inl(A.UnitTerm(), UNIT)


def false() -> A.Term:
    """``false = inr(()) : B``."""
    return A.Inr(A.UnitTerm(), UNIT)


def if_(cond: TermLike, then: TermLike, otherwise: TermLike) -> A.Case:
    """Derived conditional (Section 3): ``case cond of inl(u) => then | inr(v) => otherwise``."""
    return case_(cond, gensym("u"), then, gensym("w"), otherwise)


def not_(b: TermLike) -> A.Case:
    return if_(b, false(), true())


def and_(a: TermLike, b: TermLike) -> A.Case:
    return if_(a, b, false())


def or_(a: TermLike, b: TermLike) -> A.Case:
    return if_(a, true(), b)


def le(a: TermLike, b: TermLike) -> A.Term:
    """``a <= b``, derived as ``(a monus b) = 0``."""
    return eq(sub(a, b), 0)


def lt(a: TermLike, b: TermLike) -> A.Term:
    """``a < b``, derived as ``(a+1 monus b) = 0``."""
    return eq(sub(add(a, 1), b), 0)


def ge(a: TermLike, b: TermLike) -> A.Term:
    return le(b, a)


def gt(a: TermLike, b: TermLike) -> A.Term:
    return lt(b, a)


def is_zero(a: TermLike) -> A.Term:
    return eq(a, 0)


# -- functions ---------------------------------------------------------------


def lam(var: str, var_type: Type, body: TermLike) -> A.Lambda:
    return A.Lambda(var, var_type, _term(body))


def app(fn: A.Function, arg: TermLike) -> A.Apply:
    return A.Apply(fn, _term(arg))


def map_(fn: A.Function) -> A.MapF:
    return A.MapF(fn)


def while_(pred: A.Function, body: A.Function) -> A.WhileF:
    return A.WhileF(pred, body)


def compose(outer: A.Function, inner: A.Function, var: str | None = None, dom: Type | None = None) -> A.Lambda:
    """Function composition ``outer o inner`` as a lambda (NSC has no primitive compose).

    ``dom`` defaults to the inner lambda's domain when available.
    """
    if dom is None:
        if isinstance(inner, A.Lambda):
            dom = inner.var_type
        else:
            raise ValueError("compose needs an explicit domain for non-lambda inner functions")
    x = var or gensym("x")
    return A.Lambda(x, dom, A.Apply(outer, A.Apply(inner, A.Var(x))))


def recfun(name: str, var: str, var_type: Type, body: TermLike, cod: Optional[Type] = None) -> A.RecFun:
    """A named recursive definition (extension; input of Theorem 4.2)."""
    return A.RecFun(name, var, var_type, _term(body), cod)


def reccall(name: str, arg: TermLike) -> A.RecCall:
    return A.RecCall(name, _term(arg))


# -- let blocks --------------------------------------------------------------


def let(var: str, bound: TermLike, body: TermLike, var_type: Optional[Type] = None) -> A.Let:
    return A.Let(var, _term(bound), _term(body), var_type)


def lets(bindings: Sequence[tuple[str, TermLike]], body: TermLike) -> A.Term:
    """Nested let block ``let x1 = e1 ... xn = en in body``."""
    out = _term(body)
    for name, bound in reversed(list(bindings)):
        out = A.Let(name, _term(bound), out, None)
    return out


# -- sequences ---------------------------------------------------------------


def empty(elem: Type) -> A.EmptySeq:
    return A.EmptySeq(elem)


def single(a: TermLike) -> A.Singleton:
    return A.Singleton(_term(a))


def append(a: TermLike, b: TermLike) -> A.Append:
    return A.Append(_term(a), _term(b))


def concat(*parts: TermLike) -> A.Term:
    """Left-nested append of several sequences."""
    terms = [_term(p) for p in parts]
    out = terms[0]
    for t in terms[1:]:
        out = A.Append(out, t)
    return out


def seq_of(items: Iterable[TermLike], elem: Type) -> A.Term:
    """Build a literal sequence ``[a, b, c] : [elem]`` from terms."""
    terms = [_term(i) for i in items]
    out: A.Term = A.EmptySeq(elem)
    for t in terms:
        out = A.Append(out, A.Singleton(t))
    return out


def nat_seq(values: Sequence[int]) -> A.Term:
    """Literal ``[N]`` sequence from Python ints."""
    return seq_of([c(int(x)) for x in values], NAT)


def flatten_(a: TermLike) -> A.Flatten:
    return A.Flatten(_term(a))


def length_(a: TermLike) -> A.Length:
    return A.Length(_term(a))


def get_(a: TermLike) -> A.Get:
    return A.Get(_term(a))


def zip_(a: TermLike, b: TermLike) -> A.Zip:
    return A.Zip(_term(a), _term(b))


def enumerate_(a: TermLike) -> A.Enumerate:
    return A.Enumerate(_term(a))


def split_(data: TermLike, counts: TermLike) -> A.Split:
    return A.Split(_term(data), _term(counts))
