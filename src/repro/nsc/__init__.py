"""The Nested Sequence Calculus (NSC) — the paper's source language (Section 3).

Public surface:

* :mod:`repro.nsc.types` — the type grammar (unit, N, products, sums, sequences);
* :mod:`repro.nsc.values` — S-objects and the unit-cost size measure;
* :mod:`repro.nsc.ast` — terms and functions;
* :mod:`repro.nsc.builder` — ergonomic program construction;
* :mod:`repro.nsc.typecheck` — the Appendix A typing rules;
* :mod:`repro.nsc.eval` — big-step semantics with the Definition 3.1 T/W cost model;
* :mod:`repro.nsc.lib` — the paper's derived functions (p2, bm_route, filter, ...);
* :mod:`repro.nsc.pretty` — a printer in the paper's notation.
"""

from . import ast, builder, lib, pretty, typecheck, types, values
from .eval import NSCEvalError, Outcome, apply_function, evaluate, run
from .typecheck import NSCTypeError, infer_function, infer_term
from .types import BOOL, NAT, UNIT, FunType, ProdType, SeqType, SumType, Type, prod, seq, sum_t
from .values import (
    FALSE,
    TRUE,
    UNIT_VALUE,
    Value,
    VInl,
    VInr,
    VNat,
    VPair,
    VSeq,
    VUnit,
    from_python,
    nat_list,
    to_python,
)

__all__ = [
    "ast",
    "builder",
    "lib",
    "pretty",
    "typecheck",
    "types",
    "values",
    "NSCEvalError",
    "NSCTypeError",
    "Outcome",
    "apply_function",
    "evaluate",
    "run",
    "infer_function",
    "infer_term",
    "BOOL",
    "NAT",
    "UNIT",
    "FunType",
    "ProdType",
    "SeqType",
    "SumType",
    "Type",
    "prod",
    "seq",
    "sum_t",
    "FALSE",
    "TRUE",
    "UNIT_VALUE",
    "Value",
    "VInl",
    "VInr",
    "VNat",
    "VPair",
    "VSeq",
    "VUnit",
    "from_python",
    "nat_list",
    "to_python",
]
