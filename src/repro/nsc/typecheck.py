"""Type checking for NSC (Appendix A).

The paper's typing judgements are ``Gamma |- M : t`` for terms and
``Gamma |- F : s -> t`` for functions.  We implement type *inference*: given a
type context (a mapping of variables to types) the checker reconstructs the
type of a term or the ``s -> t`` classification of a function, raising
:class:`NSCTypeError` on ill-typed programs.

Injections ``inl`` / ``inr`` and empty sequences carry the type annotations
needed for inference (the surface builder inserts them); when a missing
annotation genuinely cannot be resolved, the checker fails with a clear
message rather than guessing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from . import ast as A
from .types import (
    BOOL,
    NAT,
    UNIT,
    FunType,
    NatType,
    ProdType,
    SeqType,
    SumType,
    Type,
    UnitType,
)


class NSCTypeError(TypeError):
    """Raised when an NSC expression does not type-check."""


TypeContext = Mapping[str, Type]


@dataclass(frozen=True)
class _RecSig:
    """Signature of the enclosing named recursive definition."""

    name: str
    dom: Type
    cod: Type


def _expect(t: Type, expected: Type, what: str) -> None:
    if t != expected:
        raise NSCTypeError(f"{what}: expected {expected}, got {t}")


def _expect_seq(t: Type, what: str) -> SeqType:
    if not isinstance(t, SeqType):
        raise NSCTypeError(f"{what}: expected a sequence type, got {t}")
    return t


def _expect_nat(t: Type, what: str) -> None:
    if not isinstance(t, NatType):
        raise NSCTypeError(f"{what}: expected N, got {t}")


def infer_term(
    term: A.Term,
    ctx: Optional[TypeContext] = None,
    rec: Optional[_RecSig] = None,
) -> Type:
    """Infer the type of an NSC term under context ``ctx``."""
    ctx = dict(ctx or {})
    return _infer_term(term, ctx, rec)


def infer_function(
    fn: A.Function,
    ctx: Optional[TypeContext] = None,
    rec: Optional[_RecSig] = None,
) -> FunType:
    """Infer the ``s -> t`` classification of an NSC function under ``ctx``."""
    ctx = dict(ctx or {})
    return _infer_function(fn, ctx, rec)


def _infer_term(term: A.Term, ctx: dict[str, Type], rec: Optional[_RecSig]) -> Type:
    if isinstance(term, A.Var):
        if term.name not in ctx:
            raise NSCTypeError(f"unbound variable {term.name!r}")
        return ctx[term.name]

    if isinstance(term, A.ErrorTerm):
        return term.type

    if isinstance(term, A.Const):
        if term.value < 0:
            raise NSCTypeError("natural constants must be non-negative")
        return NAT

    if isinstance(term, A.UnitTerm):
        return UNIT

    if isinstance(term, A.BinOp):
        _expect_nat(_infer_term(term.left, ctx, rec), f"left operand of {term.op}")
        _expect_nat(_infer_term(term.right, ctx, rec), f"right operand of {term.op}")
        return NAT

    if isinstance(term, A.UnOp):
        _expect_nat(_infer_term(term.arg, ctx, rec), f"operand of {term.op}")
        return NAT

    if isinstance(term, A.Eq):
        lt = _infer_term(term.left, ctx, rec)
        rt = _infer_term(term.right, ctx, rec)
        if lt != rt:
            raise NSCTypeError(f"equality between different types {lt} and {rt}")
        return BOOL

    if isinstance(term, A.PairTerm):
        return ProdType(_infer_term(term.fst, ctx, rec), _infer_term(term.snd, ctx, rec))

    if isinstance(term, A.Proj):
        t = _infer_term(term.arg, ctx, rec)
        if not isinstance(t, ProdType):
            raise NSCTypeError(f"projection pi_{term.index} applied to non-product {t}")
        return t.left if term.index == 1 else t.right

    if isinstance(term, A.Inl):
        left = _infer_term(term.arg, ctx, rec)
        if term.right is None:
            raise NSCTypeError("inl(...) without a right-type annotation cannot be inferred")
        return SumType(left, term.right)

    if isinstance(term, A.Inr):
        right = _infer_term(term.arg, ctx, rec)
        if term.left is None:
            raise NSCTypeError("inr(...) without a left-type annotation cannot be inferred")
        return SumType(term.left, right)

    if isinstance(term, A.Case):
        st = _infer_term(term.scrutinee, ctx, rec)
        if not isinstance(st, SumType):
            raise NSCTypeError(f"case scrutinee must have a sum type, got {st}")
        lctx = dict(ctx)
        lctx[term.left_var] = st.left
        lt = _infer_term(term.left_body, lctx, rec)
        rctx = dict(ctx)
        rctx[term.right_var] = st.right
        rt = _infer_term(term.right_body, rctx, rec)
        if lt != rt:
            raise NSCTypeError(f"case branches have different types {lt} and {rt}")
        return lt

    if isinstance(term, A.Apply):
        ft = _infer_function(term.fn, ctx, rec)
        at = _infer_term(term.arg, ctx, rec)
        if at != ft.dom:
            raise NSCTypeError(f"function expects {ft.dom} but argument has type {at}")
        return ft.cod

    if isinstance(term, A.EmptySeq):
        return SeqType(term.elem)

    if isinstance(term, A.Singleton):
        return SeqType(_infer_term(term.arg, ctx, rec))

    if isinstance(term, A.Append):
        lt = _expect_seq(_infer_term(term.left, ctx, rec), "append left operand")
        rt = _expect_seq(_infer_term(term.right, ctx, rec), "append right operand")
        if lt != rt:
            raise NSCTypeError(f"append of sequences with different types {lt} and {rt}")
        return lt

    if isinstance(term, A.Flatten):
        t = _expect_seq(_infer_term(term.arg, ctx, rec), "flatten operand")
        inner = _expect_seq(t.elem, "flatten operand element")
        return inner

    if isinstance(term, A.Length):
        _expect_seq(_infer_term(term.arg, ctx, rec), "length operand")
        return NAT

    if isinstance(term, A.Get):
        t = _expect_seq(_infer_term(term.arg, ctx, rec), "get operand")
        return t.elem

    if isinstance(term, A.Zip):
        lt = _expect_seq(_infer_term(term.left, ctx, rec), "zip left operand")
        rt = _expect_seq(_infer_term(term.right, ctx, rec), "zip right operand")
        return SeqType(ProdType(lt.elem, rt.elem))

    if isinstance(term, A.Enumerate):
        _expect_seq(_infer_term(term.arg, ctx, rec), "enumerate operand")
        return SeqType(NAT)

    if isinstance(term, A.Split):
        dt = _expect_seq(_infer_term(term.data, ctx, rec), "split data operand")
        ct = _expect_seq(_infer_term(term.counts, ctx, rec), "split counts operand")
        _expect(ct.elem, NAT, "split counts element type")
        return SeqType(dt)

    if isinstance(term, A.Let):
        bt = _infer_term(term.bound, ctx, rec)
        if term.var_type is not None and term.var_type != bt:
            raise NSCTypeError(
                f"let-binding of {term.var!r} annotated {term.var_type} but bound term has type {bt}"
            )
        inner = dict(ctx)
        inner[term.var] = bt
        return _infer_term(term.body, inner, rec)

    if isinstance(term, A.RecCall):
        if rec is None or rec.name != term.name:
            raise NSCTypeError(f"recursive call to unknown function {term.name!r}")
        at = _infer_term(term.arg, ctx, rec)
        if at != rec.dom:
            raise NSCTypeError(
                f"recursive call to {term.name!r} expects {rec.dom} but argument has type {at}"
            )
        return rec.cod

    raise NSCTypeError(f"unknown term node {type(term).__name__}")


def _infer_function(fn: A.Function, ctx: dict[str, Type], rec: Optional[_RecSig]) -> FunType:
    if isinstance(fn, A.Lambda):
        inner = dict(ctx)
        inner[fn.var] = fn.var_type
        cod = _infer_term(fn.body, inner, rec)
        return FunType(fn.var_type, cod)

    if isinstance(fn, A.MapF):
        ft = _infer_function(fn.fn, ctx, rec)
        return FunType(SeqType(ft.dom), SeqType(ft.cod))

    if isinstance(fn, A.WhileF):
        pt = _infer_function(fn.pred, ctx, rec)
        bt = _infer_function(fn.body, ctx, rec)
        if pt.cod != BOOL:
            raise NSCTypeError(f"while predicate must return B, got {pt.cod}")
        if pt.dom != bt.dom or bt.dom != bt.cod:
            raise NSCTypeError(
                f"while requires P : t -> B and F : t -> t over the same t; got P : {pt}, F : {bt}"
            )
        return FunType(bt.dom, bt.cod)

    if isinstance(fn, A.RecFun):
        if fn.cod is None:
            raise NSCTypeError(
                f"recursive definition {fn.name!r} needs a codomain annotation to type-check"
            )
        sig = _RecSig(fn.name, fn.var_type, fn.cod)
        inner = dict(ctx)
        inner[fn.var] = fn.var_type
        body_t = _infer_term(fn.body, inner, sig)
        if body_t != fn.cod:
            raise NSCTypeError(
                f"recursive definition {fn.name!r} annotated to return {fn.cod} "
                f"but body has type {body_t}"
            )
        return FunType(fn.var_type, fn.cod)

    raise NSCTypeError(f"unknown function node {type(fn).__name__}")


def annotate_lets(term: A.Term, ctx: Optional[TypeContext] = None) -> A.Term:
    """Fill missing ``var_type`` annotations on :class:`repro.nsc.ast.Let` nodes.

    This makes :func:`repro.nsc.ast.desugar` applicable to programs written
    with bare ``let`` bindings.
    """
    ctx = dict(ctx or {})
    return _annotate(term, ctx, None)  # type: ignore[return-value]


def _annotate(e: A.Expr, ctx: dict[str, Type], rec: Optional[_RecSig]) -> A.Expr:
    if isinstance(e, A.Let):
        bound = _annotate(e.bound, ctx, rec)
        bt = _infer_term(bound, ctx, rec)  # type: ignore[arg-type]
        inner = dict(ctx)
        inner[e.var] = bt
        body = _annotate(e.body, inner, rec)
        return A.Let(e.var, bound, body, bt)  # type: ignore[arg-type]
    if isinstance(e, A.Lambda):
        inner = dict(ctx)
        inner[e.var] = e.var_type
        return A.Lambda(e.var, e.var_type, _annotate(e.body, inner, rec))  # type: ignore[arg-type]
    if isinstance(e, A.RecFun):
        sig = None
        if e.cod is not None:
            sig = _RecSig(e.name, e.var_type, e.cod)
        inner = dict(ctx)
        inner[e.var] = e.var_type
        return A.RecFun(e.name, e.var, e.var_type, _annotate(e.body, inner, sig), e.cod)  # type: ignore[arg-type]
    if isinstance(e, A.Case):
        st = _infer_term(_annotate(e.scrutinee, ctx, rec), ctx, rec)  # type: ignore[arg-type]
        if not isinstance(st, SumType):
            raise NSCTypeError(f"case scrutinee must have a sum type, got {st}")
        lctx = dict(ctx)
        lctx[e.left_var] = st.left
        rctx = dict(ctx)
        rctx[e.right_var] = st.right
        return A.Case(
            _annotate(e.scrutinee, ctx, rec),  # type: ignore[arg-type]
            e.left_var,
            _annotate(e.left_body, lctx, rec),  # type: ignore[arg-type]
            e.right_var,
            _annotate(e.right_body, rctx, rec),  # type: ignore[arg-type]
        )
    if isinstance(e, (A.Var, A.ErrorTerm, A.Const, A.UnitTerm, A.EmptySeq)):
        return e
    kwargs = {}
    for name in e.__dataclass_fields__:  # type: ignore[attr-defined]
        value = getattr(e, name)
        if isinstance(value, A.Expr):
            kwargs[name] = _annotate(value, ctx, rec)
        else:
            kwargs[name] = value
    return type(e)(**kwargs)
