"""S-objects: the values manipulated by NSC programs (Section 3).

The paper defines S-objects by the grammar::

    C ::= () | n | (C, C) | inl(C) | inr(C) | [C, ..., C]     (n in N)

together with the *unit-cost* size measure::

    size(())            = 1
    size(n)             = 1
    size((C, D))        = 1 + size(C) + size(D)
    size(inl(C))        = 1 + size(C)
    size(inr(C))        = 1 + size(C)
    size([C0,...,Cn-1]) = 1 + sum_i size(Ci)

Sizes drive the work-complexity accounting of Definition 3.1, so they are
computed once at construction time and cached on each value node (an
evaluation may mention the same object in many rules).

``true`` and ``false`` abbreviate ``inl(())`` and ``inr(())``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from .types import (
    BOOL,
    NAT,
    UNIT,
    NatType,
    ProdType,
    SeqType,
    SumType,
    Type,
    UnitType,
)


class Value:
    """Base class of S-objects.  Immutable; ``size`` is cached."""

    __slots__ = ("size",)
    size: int

    def __eq__(self, other: object) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError

    def __hash__(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError


class VUnit(Value):
    """The empty tuple ``()``."""

    __slots__ = ()

    def __init__(self) -> None:
        object.__setattr__(self, "size", 1)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("VUnit is immutable")

    def __reduce__(self):
        # The immutability __setattr__ above also fires during slot-state
        # unpickling, so every Value pickles by replaying its constructor —
        # shard workers (repro.serving.shard) move S-objects between
        # processes.
        return (VUnit, ())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VUnit)

    def __hash__(self) -> int:
        return hash(VUnit)

    def __repr__(self) -> str:
        return "()"


class VNat(Value):
    """A natural number ``n``."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"VNat must be non-negative, got {value}")
        object.__setattr__(self, "value", int(value))
        object.__setattr__(self, "size", 1)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("VNat is immutable")

    def __reduce__(self):
        return (VNat, (self.value,))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VNat) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("VNat", self.value))

    def __repr__(self) -> str:
        return str(self.value)


class VPair(Value):
    """A pair ``(fst, snd)``."""

    __slots__ = ("fst", "snd")

    def __init__(self, fst: Value, snd: Value) -> None:
        object.__setattr__(self, "fst", fst)
        object.__setattr__(self, "snd", snd)
        object.__setattr__(self, "size", 1 + fst.size + snd.size)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("VPair is immutable")

    def __reduce__(self):
        return (VPair, (self.fst, self.snd))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VPair) and self.fst == other.fst and self.snd == other.snd

    def __hash__(self) -> int:
        return hash(("VPair", self.fst, self.snd))

    def __repr__(self) -> str:
        return f"({self.fst!r}, {self.snd!r})"


class VInl(Value):
    """Left injection ``inl(value)`` into a sum type."""

    __slots__ = ("value",)

    def __init__(self, value: Value) -> None:
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "size", 1 + value.size)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("VInl is immutable")

    def __reduce__(self):
        return (VInl, (self.value,))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VInl) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("VInl", self.value))

    def __repr__(self) -> str:
        return f"inl({self.value!r})"


class VInr(Value):
    """Right injection ``inr(value)`` into a sum type."""

    __slots__ = ("value",)

    def __init__(self, value: Value) -> None:
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "size", 1 + value.size)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("VInr is immutable")

    def __reduce__(self):
        return (VInr, (self.value,))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VInr) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("VInr", self.value))

    def __repr__(self) -> str:
        return f"inr({self.value!r})"


class VSeq(Value):
    """A finite sequence ``[x0, ..., xn-1]``."""

    __slots__ = ("items",)

    def __init__(self, items: Iterable[Value]) -> None:
        tup = tuple(items)
        object.__setattr__(self, "items", tup)
        object.__setattr__(self, "size", 1 + sum(v.size for v in tup))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("VSeq is immutable")

    def __reduce__(self):
        return (VSeq, (self.items,))

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Value]:
        return iter(self.items)

    def __getitem__(self, idx: int) -> Value:
        return self.items[idx]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VSeq) and self.items == other.items

    def __hash__(self) -> int:
        return hash(("VSeq", self.items))

    def __repr__(self) -> str:
        return "[" + ", ".join(repr(v) for v in self.items) + "]"


# ---------------------------------------------------------------------------
# Canonical constants and constructors.
# ---------------------------------------------------------------------------

UNIT_VALUE = VUnit()
#: ``true = inl(())``
TRUE = VInl(UNIT_VALUE)
#: ``false = inr(())``
FALSE = VInr(UNIT_VALUE)

#: VNat is immutable and compared by value, so small naturals are interned —
#: decoding a compiled run's output builds tens of thousands of them.
_INTERN_LIMIT = 4096
_SMALL_NATS = tuple(VNat(i) for i in range(_INTERN_LIMIT))


def cached_nat(n: int) -> VNat:
    """A (possibly shared) VNat for ``n`` — the fast constructor."""
    if 0 <= n < _INTERN_LIMIT:
        return _SMALL_NATS[n]
    return VNat(n)


def nat_batch(values: Sequence[int]) -> list[VNat]:
    """Build many VNats at once, hitting the intern table where possible."""
    small = _SMALL_NATS
    limit = _INTERN_LIMIT
    return [small[n] if 0 <= n < limit else VNat(n) for n in values]


def nat_seq_value(values: Sequence[int]) -> VSeq:
    """Build a ``[N]`` S-object from ints without the per-element size walk.

    Every element has size 1, so the sequence's cached size is
    ``1 + len(values)`` — constructing through ``VSeq.__init__`` would
    recompute that with a 20k-element Python ``sum``.
    """
    v = VSeq.__new__(VSeq)
    object.__setattr__(v, "items", tuple(nat_batch(values)))
    object.__setattr__(v, "size", 1 + len(values))
    return v


def nat(n: int) -> VNat:
    """Build a natural-number value."""
    return VNat(n)


def pair(a: Value, b: Value) -> VPair:
    """Build a pair value."""
    return VPair(a, b)


def vseq(items: Iterable[Value]) -> VSeq:
    """Build a sequence value."""
    return VSeq(items)


def bool_value(b: bool) -> Value:
    """Encode a Python bool as the NSC boolean (inl(()) / inr(()))."""
    return TRUE if b else FALSE


def truth(v: Value) -> bool:
    """Decode an NSC boolean; raises on non-boolean shapes."""
    if v == TRUE:
        return True
    if v == FALSE:
        return False
    raise TypeError(f"not a boolean S-object: {v!r}")


def from_python(obj: object) -> Value:
    """Convert nested Python data (ints, tuples, lists, bools, None) to an S-object.

    * ``None`` -> ``()``
    * ``bool`` -> ``true`` / ``false``
    * ``int`` -> ``n``
    * 2-``tuple`` -> pair (longer tuples right-nest)
    * ``list`` -> sequence
    """
    if obj is None:
        return UNIT_VALUE
    if isinstance(obj, Value):
        return obj
    if isinstance(obj, bool):
        return bool_value(obj)
    if isinstance(obj, int):
        return VNat(obj)
    if isinstance(obj, tuple):
        if len(obj) < 2:
            raise ValueError("tuples must have at least 2 components")
        values = [from_python(o) for o in obj]
        result = values[-1]
        for v in reversed(values[:-1]):
            result = VPair(v, result)
        return result
    if isinstance(obj, list):
        return VSeq(from_python(o) for o in obj)
    raise TypeError(f"cannot convert {type(obj).__name__} to an S-object")


def to_python(v: Value) -> object:
    """Inverse of :func:`from_python` (pairs become 2-tuples, booleans stay sums)."""
    if isinstance(v, VUnit):
        return None
    if isinstance(v, VNat):
        return v.value
    if isinstance(v, VPair):
        return (to_python(v.fst), to_python(v.snd))
    if isinstance(v, VSeq):
        return [to_python(x) for x in v.items]
    if isinstance(v, VInl):
        if isinstance(v.value, VUnit):
            return True
        return ("inl", to_python(v.value))
    if isinstance(v, VInr):
        if isinstance(v.value, VUnit):
            return False
        return ("inr", to_python(v.value))
    raise TypeError(f"unknown value {v!r}")


def size(v: Value) -> int:
    """Unit-cost size of an S-object (Section 3)."""
    return v.size


def check_value_type(v: Value, t: Type) -> bool:
    """Check that S-object ``v`` inhabits type ``t``."""
    if isinstance(t, UnitType):
        return isinstance(v, VUnit)
    if isinstance(t, NatType):
        return isinstance(v, VNat)
    if isinstance(t, ProdType):
        return isinstance(v, VPair) and check_value_type(v.fst, t.left) and check_value_type(v.snd, t.right)
    if isinstance(t, SumType):
        if isinstance(v, VInl):
            return check_value_type(v.value, t.left)
        if isinstance(v, VInr):
            return check_value_type(v.value, t.right)
        return False
    if isinstance(t, SeqType):
        return isinstance(v, VSeq) and all(check_value_type(x, t.elem) for x in v.items)
    raise TypeError(f"unknown type {t!r}")


def nat_list(values: Sequence[int]) -> VSeq:
    """Build a sequence of naturals from Python ints."""
    return VSeq(VNat(int(v)) for v in values)


def seq_of_nats_to_list(v: Value) -> list[int]:
    """Extract a flat ``[N]`` S-object into a Python list of ints."""
    if not isinstance(v, VSeq):
        raise TypeError(f"expected a sequence, got {v!r}")
    out: list[int] = []
    for item in v.items:
        if not isinstance(item, VNat):
            raise TypeError(f"expected a sequence of naturals, got element {item!r}")
        out.append(item.value)
    return out
