"""Derived NSC functions (Section 3, "From this small set of primitives...").

All of these are *definable* in core NSC — they are built here exactly as the
paper sketches, from the primitives, so that their time and work complexity is
whatever Definition 3.1 assigns to the derived form:

* database projections  ``Pi_i = map(pi_i)``;
* the conditional ``if x then M else N`` (via ``case``);
* broadcasting ``p2(x, ys) = [(x, y0), ..., (x, yn-1)]``;
* bounded monotone routing ``bm_route`` (Pi1 . flatten . map(p2) . zip . split);
* the selections ``sigma1`` / ``sigma2`` on sequences of sums;
* ``filter(P)``;
* positional access ``first``, ``tail``, ``last``, ``remove_last``, ``nth`` —
  all with constant parallel time and O(n) work, as the paper promises;
* ``is_empty``, ``pairwise`` and a logarithmic-time ``reduce_add``
  (``while``-based summation, used by the permutation experiments).

Because NSC is monomorphic, each combinator is a Python function taking the
relevant element :class:`~repro.nsc.types.Type` s and returning a fresh
:class:`~repro.nsc.ast.Lambda`.
"""

from __future__ import annotations

from . import ast as A
from . import builder as B
from .types import BOOL, NAT, ProdType, SeqType, SumType, Type, prod, seq


# ---------------------------------------------------------------------------
# Projections and broadcasting
# ---------------------------------------------------------------------------


def proj_map(index: int, left: Type, right: Type) -> A.Function:
    """Database projection ``Pi_index : [left x right] -> [left or right]`` = map(pi_index)."""
    x = B.gensym("p")
    return B.map_(B.lam(x, prod(left, right), B.fst(B.v(x)) if index == 1 else B.snd(B.v(x))))


def p2(s: Type, t: Type) -> A.Lambda:
    """Broadcast ``p2 : s x [t] -> [s x t]``, ``p2(x, ys) = [(x,y) for y in ys]``.

    Defined, as in the paper, by ``p2(x, y) = map(\\v.(x, v))(y)``.  The first
    component is bound to its own variable before the ``map`` so that the
    mapped function's closure (which the cost model charges per element — the
    broadcast) contains only ``x`` and not the whole argument pair.
    """
    z = B.gensym("z")
    xvar = B.gensym("x")
    velt = B.gensym("v")
    body = B.let(
        xvar,
        B.fst(B.v(z)),
        B.app(
            B.map_(B.lam(velt, t, B.pair(B.v(xvar), B.v(velt)))),
            B.snd(B.v(z)),
        ),
    )
    return B.lam(z, prod(s, seq(t)), body)


# ---------------------------------------------------------------------------
# Bounded monotone routing
# ---------------------------------------------------------------------------


def bm_route(s: Type, t: Type) -> A.Lambda:
    """``bm_route : ([s] x [N]) x [t] -> [t]`` (Section 3).

    ``bm_route((u, d), x)`` replicates each ``x_i`` exactly ``d_i`` times; the
    *bound* ``u`` must have length ``sum(d)`` (it prevents building a long
    sequence in constant parallel time).  Defined as::

        Pi_1(flatten(map(p2)(zip(x, split(u, d)))))
    """
    arg = B.gensym("a")
    u = B.fst(B.fst(B.v(arg)))  # [s]
    d = B.snd(B.fst(B.v(arg)))  # [N]
    x = B.snd(B.v(arg))  # [t]
    zipped = B.zip_(x, B.split_(u, d))  # [t x [s]]
    routed = B.flatten_(B.app(B.map_(p2(t, s)), zipped))  # [t x s]
    projected = B.app(proj_map(1, t, s), routed)  # [t]
    return B.lam(arg, prod(prod(seq(s), seq(NAT)), seq(t)), projected)


def bm_route_nat(t: Type) -> A.Lambda:
    """Convenience instance of :func:`bm_route` whose bound is a ``[N]`` sequence."""
    return bm_route(NAT, t)


# ---------------------------------------------------------------------------
# Selections and filter
# ---------------------------------------------------------------------------


def sigma1(s: Type, t: Type) -> A.Lambda:
    """``sigma_1 : [s + t] -> [s]`` keeps the payloads of the ``inl`` elements."""
    x = B.gensym("x")
    u = B.gensym("u")
    u1 = B.gensym("u1")
    u2 = B.gensym("u2")
    body = B.flatten_(
        B.app(
            B.map_(
                B.lam(
                    u,
                    SumType(s, t),
                    B.case_(B.v(u), u1, B.single(B.v(u1)), u2, B.empty(s)),
                )
            ),
            B.v(x),
        )
    )
    return B.lam(x, seq(SumType(s, t)), body)


def sigma2(s: Type, t: Type) -> A.Lambda:
    """``sigma_2 : [s + t] -> [t]`` keeps the payloads of the ``inr`` elements."""
    x = B.gensym("x")
    u = B.gensym("u")
    u1 = B.gensym("u1")
    u2 = B.gensym("u2")
    body = B.flatten_(
        B.app(
            B.map_(
                B.lam(
                    u,
                    SumType(s, t),
                    B.case_(B.v(u), u1, B.empty(t), u2, B.single(B.v(u2))),
                )
            ),
            B.v(x),
        )
    )
    return B.lam(x, seq(SumType(s, t)), body)


def filter_fn(pred: A.Function, t: Type) -> A.Lambda:
    """``filter(P) : [t] -> [t]`` = flatten(map(\\u. if P(u) then [u] else []))."""
    x = B.gensym("x")
    u = B.gensym("u")
    body = B.flatten_(
        B.app(
            B.map_(B.lam(u, t, B.if_(B.app(pred, B.v(u)), B.single(B.v(u)), B.empty(t)))),
            B.v(x),
        )
    )
    return B.lam(x, seq(t), body)


# ---------------------------------------------------------------------------
# Positional access: first, tail, last, remove_last, nth
# ---------------------------------------------------------------------------


def _select_by_index(t: Type, keep: A.Function) -> A.Lambda:
    """Keep the elements of a sequence whose position satisfies ``keep : N x N -> B``.

    ``keep`` receives the pair (position, length).  Constant parallel time and
    O(n) work: implemented with a single map over ``zip(x, enumerate(x))``.
    """
    x = B.gensym("x")
    p = B.gensym("p")
    body = B.let(
        "_n",
        B.length_(B.v(x)),
        B.flatten_(
            B.app(
                B.map_(
                    B.lam(
                        p,
                        prod(t, NAT),
                        B.if_(
                            B.app(keep, B.pair(B.snd(B.v(p)), B.v("_n"))),
                            B.single(B.fst(B.v(p))),
                            B.empty(t),
                        ),
                    )
                ),
                B.zip_(B.v(x), B.enumerate_(B.v(x))),
            )
        ),
    )
    return B.lam(x, seq(t), body)


def first(t: Type) -> A.Lambda:
    """``first : [t] -> t`` — the first element (error on the empty sequence).

    Constant parallel time, O(n) work (Section 3's "operations on lists").
    """
    x = B.gensym("x")
    q = B.gensym("q")
    keep = B.lam(q, prod(NAT, NAT), B.eq(B.fst(B.v(q)), 0))
    return B.lam(x, seq(t), B.get_(B.app(_select_by_index(t, keep), B.v(x))))


def last(t: Type) -> A.Lambda:
    """``last : [t] -> t`` — the last element (error on the empty sequence)."""
    x = B.gensym("x")
    q = B.gensym("q")
    keep = B.lam(q, prod(NAT, NAT), B.eq(B.add(B.fst(B.v(q)), 1), B.snd(B.v(q))))
    return B.lam(x, seq(t), B.get_(B.app(_select_by_index(t, keep), B.v(x))))


def tail(t: Type) -> A.Lambda:
    """``tail : [t] -> [t]`` — everything but the first element."""
    q = B.gensym("q")
    keep = B.lam(q, prod(NAT, NAT), B.not_(B.eq(B.fst(B.v(q)), 0)))
    return _select_by_index(t, keep)


def remove_last(t: Type) -> A.Lambda:
    """``remove_last : [t] -> [t]`` — everything but the last element."""
    q = B.gensym("q")
    keep = B.lam(q, prod(NAT, NAT), B.not_(B.eq(B.add(B.fst(B.v(q)), 1), B.snd(B.v(q)))))
    return _select_by_index(t, keep)


def nth(t: Type) -> A.Lambda:
    """``nth : [t] x N -> t`` — positional access in O(1) time and O(n) work."""
    a = B.gensym("a")
    p = B.gensym("p")
    x = B.fst(B.v(a))
    i = B.snd(B.v(a))
    body = B.get_(
        B.flatten_(
            B.app(
                B.map_(
                    B.lam(
                        p,
                        prod(t, NAT),
                        B.if_(B.eq(B.snd(B.v(p)), i), B.single(B.fst(B.v(p))), B.empty(t)),
                    )
                ),
                B.zip_(x, B.enumerate_(x)),
            )
        )
    )
    return B.lam(a, prod(seq(t), NAT), body)


# ---------------------------------------------------------------------------
# Miscellaneous derived forms
# ---------------------------------------------------------------------------


def is_empty(t: Type) -> A.Lambda:
    """``is_empty : [t] -> B``."""
    x = B.gensym("x")
    return B.lam(x, seq(t), B.eq(B.length_(B.v(x)), 0))


def pairwise(t: Type) -> A.Lambda:
    """``pairwise : [t] -> [[t]]`` — group a sequence into adjacent pairs.

    Odd-length sequences leave a final singleton group.  Constant time,
    O(n) work; a building block of the logarithmic reduction below.
    """
    x = B.gensym("x")
    i = B.gensym("i")
    nvar = B.gensym("n")
    # counts = [2, 2, ..., 2(, 1)] built from enumerate(x) by keeping one count
    # per even position.  The length is let-bound so the mapped lambda's
    # closure (charged per element) is a single number, not the sequence.
    counts = B.flatten_(
        B.app(
            B.map_(
                B.lam(
                    i,
                    NAT,
                    B.if_(
                        B.eq(B.mod(B.v(i), 2), 0),
                        B.single(B.nat_min(2, B.sub(B.v(nvar), B.v(i)))),
                        B.empty(NAT),
                    ),
                )
            ),
            B.enumerate_(B.v(x)),
        )
    )
    return B.lam(x, seq(t), B.let(nvar, B.length_(B.v(x)), B.split_(B.v(x), counts)))


def reduce_add() -> A.Lambda:
    """``reduce_add : [N] -> N`` — summation in O(log n) time and O(n) work.

    Implemented with ``while``: repeatedly replace the sequence by the sums of
    adjacent pairs until a single element remains; empty input sums to 0.
    This is the paper's style of expressing logarithmic-depth reductions
    without a scan primitive.
    """
    x = B.gensym("x")
    g = B.gensym("g")
    # predicate: length(x) > 1
    pred = B.lam(x, seq(NAT), B.gt(B.length_(B.v(x)), 1))
    # body: map over pairwise groups, summing each group (of size 1 or 2).
    sum_group = B.lam(
        g,
        seq(NAT),
        B.if_(
            B.eq(B.length_(B.v(g)), 1),
            B.get_(B.v(g)),
            B.add(
                B.app(first(NAT), B.v(g)),
                B.app(last(NAT), B.v(g)),
            ),
        ),
    )
    body = B.lam(x, seq(NAT), B.app(B.map_(sum_group), B.app(pairwise(NAT), B.v(x))))
    w = B.gensym("w")
    return B.lam(
        w,
        seq(NAT),
        B.if_(
            B.eq(B.length_(B.v(w)), 0),
            B.c(0),
            B.get_(B.app(B.while_(pred, body), B.v(w))),
        ),
    )


def iota() -> A.Lambda:
    """``iota : N -> [N]`` — [0, 1, ..., n-1], built with a while loop.

    Not constant-time (deliberately: the paper notes that a constant-time
    "range" primitive would break the polynomial-size-increase property), the
    loop doubles the sequence each iteration, so T = O(log n), W = O(n log n).
    """
    n = B.gensym("n")
    st = B.gensym("s")
    # State: (target, current) where current is a [N] prefix [0..k-1].
    state_t = prod(NAT, seq(NAT))
    pred = B.lam(st, state_t, B.lt(B.length_(B.snd(B.v(st))), B.fst(B.v(st))))
    i = B.gensym("i")
    # One step: current := take(target, current @ map(+k)(current)) where
    # k = length(current); the take is done with a filter on positions.  The
    # target and k are let-bound so the mapped lambdas capture only numbers.
    kvar = B.gensym("k")
    tvar = B.gensym("tgt")
    dvar = B.gensym("dbl")
    doubled = B.append(
        B.snd(B.v(st)),
        B.app(B.map_(B.lam(i, NAT, B.add(B.v(i), B.v(kvar)))), B.snd(B.v(st))),
    )
    p = B.gensym("p")
    take = B.flatten_(
        B.app(
            B.map_(
                B.lam(
                    p,
                    prod(NAT, NAT),
                    B.if_(
                        B.lt(B.snd(B.v(p)), B.v(tvar)),
                        B.single(B.fst(B.v(p))),
                        B.empty(NAT),
                    ),
                )
            ),
            B.zip_(B.v(dvar), B.enumerate_(B.v(dvar))),
        )
    )
    body = B.lam(
        st,
        state_t,
        B.lets(
            [
                (kvar, B.length_(B.snd(B.v(st)))),
                (tvar, B.fst(B.v(st))),
                (dvar, doubled),
            ],
            B.pair(B.v(tvar), take),
        ),
    )
    return B.lam(
        n,
        NAT,
        B.if_(
            B.eq(B.v(n), 0),
            B.empty(NAT),
            B.snd(B.app(B.while_(pred, body), B.pair(B.v(n), B.single(B.c(0))))),
        ),
    )


def m_route(t: Type) -> A.Lambda:
    """Unbounded monotone routing ``m_route : ([N] x [t]) -> [t]`` (Section 3).

    ``m_route(d, x)`` replicates ``x_i`` exactly ``d_i`` times with *no* bound
    sequence, so it cannot run in constant parallel time: the output length is
    not polynomially bounded by a constant number of steps.  Implemented by
    building the bound with a while loop (via the total count) and then using
    ``bm_route``; T = O(log(sum d)), W = O(n + sum d * log(sum d)).
    """
    a = B.gensym("a")
    d = B.fst(B.v(a))
    x = B.snd(B.v(a))
    total = B.app(reduce_add(), d)
    bound = B.app(iota(), total)
    body = B.app(bm_route(NAT, t), B.pair(B.pair(bound, d), x))
    return B.lam(a, prod(seq(NAT), seq(t)), body)
