"""Big-step operational semantics of NSC with the T/W cost model.

Implements Appendix B (natural semantics with environments) together with
Definition 3.1, which assigns to every evaluation ``M \\Downarrow C`` a
*parallel time* ``T`` and a *work* ``W``:

* for every rule except ``map`` and ``while``::

      T = 1 + sum of the premises' T
      W = SIZE + sum of the premises' W

  where ``SIZE`` is the total size of the S-objects mentioned in the rule
  (the premises' results and the conclusion's result).  For the
  function-application rules SIZE additionally includes the values of the
  *free variables* of the function being applied — the closure an
  implementation has to materialise (and, under ``map``, broadcast to every
  element; this is what makes the paper's ``p2`` cost ``O(n * |x|)``).
  Charging only the captured free variables rather than the whole ambient
  environment is the one place where we refine the letter of Definition 3.1
  ("including the environments"): charging the full environment at every rule
  would bill unrelated bindings once per AST node and the paper's own derived
  operations would not meet their stated costs;

* for the ``map`` rule the ``W`` equation is unchanged but::

      T = 1 + max_i T(F, C_i)

  reflecting that the ``n`` applications of ``F`` run in parallel;

* for the ``while`` rule the final output is *not* re-counted at every
  iteration (otherwise a result surviving ``n`` iterations would be charged
  ``n`` times)::

      T(while(P,F), C) = 1 + T(P,C) + T(F,C) + T(while(P,F), C')
      W(while(P,F), C) = size(C) + size(C') + W(P,C) + W(F,C) + W(while(P,F), C')

Errors and undefinedness (division by zero, ``zip`` of unequal lengths,
``split`` with a bad count vector, the error term Omega, ...) are modelled as
the :class:`NSCEvalError` exception — the paper treats these outcomes as "the
result of P might be undefined".

The evaluator also interprets the two extensions carried by the AST:
``let`` blocks (Section 4's block structure) and named recursive definitions
(:class:`repro.nsc.ast.RecFun`), which are the input of the map-recursion
translation of Theorem 4.2.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Optional

from . import ast as A
from .values import (
    FALSE,
    TRUE,
    UNIT_VALUE,
    Value,
    VInl,
    VInr,
    VNat,
    VPair,
    VSeq,
    VUnit,
    bool_value,
)

# Deep while-loops and divide-and-conquer programs produce deep Python call
# stacks (the AST depth times the recursion depth); make room for them.
if sys.getrecursionlimit() < 100_000:
    sys.setrecursionlimit(100_000)


class NSCEvalError(RuntimeError):
    """Raised when an NSC evaluation is undefined (error term, zip mismatch, ...)."""


class Env:
    """Persistent evaluation environment with a cached total size.

    The work complexity of Definition 3.1 counts the size of the environment
    mentioned by each rule, so the size of the whole environment must be
    available in O(1).
    """

    __slots__ = ("_name", "_value", "_parent", "size", "_depth")

    def __init__(
        self,
        name: Optional[str] = None,
        value: Optional[Value] = None,
        parent: Optional["Env"] = None,
    ) -> None:
        self._name = name
        self._value = value
        self._parent = parent
        parent_size = parent.size if parent is not None else 0
        self.size = parent_size + (value.size if value is not None else 0)
        self._depth = (parent._depth + 1) if parent is not None else 0

    @staticmethod
    def empty() -> "Env":
        return _EMPTY_ENV

    def extend(self, name: str, value: Value) -> "Env":
        """Return a new environment with ``name`` bound to ``value``."""
        return Env(name, value, self)

    def lookup(self, name: str) -> Value:
        env: Optional[Env] = self
        while env is not None:
            if env._name == name:
                assert env._value is not None
                return env._value
            env = env._parent
        raise NSCEvalError(f"unbound variable {name!r} at run time")

    def names(self) -> list[str]:
        out = []
        env: Optional[Env] = self
        while env is not None:
            if env._name is not None:
                out.append(env._name)
            env = env._parent
        return out


_EMPTY_ENV = Env()


@dataclass(frozen=True)
class Outcome:
    """Result of an evaluation: the value plus its time and work complexity."""

    value: Value
    time: int
    work: int


@dataclass(frozen=True)
class _RecBinding:
    """A named recursive definition together with its defining environment."""

    defn: A.RecFun
    env: Env


RecEnv = dict[str, _RecBinding]


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def evaluate(term: A.Term, env: Optional[dict[str, Value]] = None) -> Outcome:
    """Evaluate a term under bindings ``env`` and report its value, T and W."""
    e = _EMPTY_ENV
    for name, value in (env or {}).items():
        e = e.extend(name, value)
    value, t, w = _eval_term(term, e, {})
    return Outcome(value, t, w)


def apply_function(fn: A.Function, arg: Value, env: Optional[dict[str, Value]] = None) -> Outcome:
    """Apply an NSC function to an S-object and report the value, T and W."""
    e = _EMPTY_ENV
    for name, value in (env or {}).items():
        e = e.extend(name, value)
    value, t, w = _apply(fn, arg, e, {})
    return Outcome(value, t, w)


def run(fn: A.Function, arg: Value) -> Value:
    """Apply ``fn`` and return only the value (convenience wrapper)."""
    return apply_function(fn, arg).value


# ---------------------------------------------------------------------------
# Arithmetic
# ---------------------------------------------------------------------------


def _arith(op: str, a: int, b: int) -> int:
    if op == "+":
        return a + b
    if op == "-":
        # monus: truncated subtraction (Section 2)
        return a - b if a >= b else 0
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            raise NSCEvalError("division by zero")
        return a // b
    if op == "mod":
        if b == 0:
            raise NSCEvalError("modulo by zero")
        return a % b
    if op == ">>":
        return a >> b
    if op == "min":
        return min(a, b)
    if op == "max":
        return max(a, b)
    raise NSCEvalError(f"unknown arithmetic operation {op!r}")


def _unary(op: str, a: int) -> int:
    if op == "log2":
        return a.bit_length() - 1 if a > 0 else 0
    if op == "sqrt":
        import math

        return math.isqrt(a)
    raise NSCEvalError(f"unknown unary operation {op!r}")


# ---------------------------------------------------------------------------
# Term evaluation
# ---------------------------------------------------------------------------


def _eval_term(term: A.Term, env: Env, rec: RecEnv) -> tuple[Value, int, int]:
    # Axioms (no premises): SIZE = size(result).
    if isinstance(term, A.Var):
        v = env.lookup(term.name)
        return v, 1, v.size

    if isinstance(term, A.Const):
        v = VNat(term.value)
        return v, 1, v.size

    if isinstance(term, A.UnitTerm):
        return UNIT_VALUE, 1, 1

    if isinstance(term, A.ErrorTerm):
        raise NSCEvalError("evaluation of the error term Omega")

    if isinstance(term, A.EmptySeq):
        v = VSeq(())
        return v, 1, v.size

    if isinstance(term, A.BinOp):
        lv, lt, lw = _eval_term(term.left, env, rec)
        rv, rt, rw = _eval_term(term.right, env, rec)
        if not isinstance(lv, VNat) or not isinstance(rv, VNat):
            raise NSCEvalError(f"arithmetic {term.op} on non-naturals")
        v = VNat(_arith(term.op, lv.value, rv.value))
        size = lv.size + rv.size + v.size
        return v, 1 + lt + rt, size + lw + rw

    if isinstance(term, A.UnOp):
        av, at, aw = _eval_term(term.arg, env, rec)
        if not isinstance(av, VNat):
            raise NSCEvalError(f"unary {term.op} on a non-natural")
        v = VNat(_unary(term.op, av.value))
        return v, 1 + at, av.size + v.size + aw

    if isinstance(term, A.Eq):
        lv, lt, lw = _eval_term(term.left, env, rec)
        rv, rt, rw = _eval_term(term.right, env, rec)
        v = bool_value(lv == rv)
        size = lv.size + rv.size + v.size
        return v, 1 + lt + rt, size + lw + rw

    if isinstance(term, A.PairTerm):
        fv, ft, fw = _eval_term(term.fst, env, rec)
        sv, st, sw = _eval_term(term.snd, env, rec)
        v = VPair(fv, sv)
        size = fv.size + sv.size + v.size
        return v, 1 + ft + st, size + fw + sw

    if isinstance(term, A.Proj):
        av, at, aw = _eval_term(term.arg, env, rec)
        if not isinstance(av, VPair):
            raise NSCEvalError("projection applied to a non-pair")
        v = av.fst if term.index == 1 else av.snd
        return v, 1 + at, av.size + v.size + aw

    if isinstance(term, A.Inl):
        av, at, aw = _eval_term(term.arg, env, rec)
        v = VInl(av)
        return v, 1 + at, av.size + v.size + aw

    if isinstance(term, A.Inr):
        av, at, aw = _eval_term(term.arg, env, rec)
        v = VInr(av)
        return v, 1 + at, av.size + v.size + aw

    if isinstance(term, A.Case):
        sv, st, sw = _eval_term(term.scrutinee, env, rec)
        if isinstance(sv, VInl):
            branch_env = env.extend(term.left_var, sv.value)
            bv, bt, bw = _eval_term(term.left_body, branch_env, rec)
        elif isinstance(sv, VInr):
            branch_env = env.extend(term.right_var, sv.value)
            bv, bt, bw = _eval_term(term.right_body, branch_env, rec)
        else:
            raise NSCEvalError("case scrutinee is not an injection")
        size = sv.size + bv.size
        return bv, 1 + st + bt, size + sw + bw

    if isinstance(term, A.Apply):
        av, at, aw = _eval_term(term.arg, env, rec)
        fv, ft, fw = _apply(term.fn, av, env, rec)
        size = av.size + fv.size
        return fv, 1 + at + ft, size + aw + fw

    if isinstance(term, A.Singleton):
        av, at, aw = _eval_term(term.arg, env, rec)
        v = VSeq((av,))
        return v, 1 + at, av.size + v.size + aw

    if isinstance(term, A.Append):
        lv, lt, lw = _eval_term(term.left, env, rec)
        rv, rt, rw = _eval_term(term.right, env, rec)
        if not isinstance(lv, VSeq) or not isinstance(rv, VSeq):
            raise NSCEvalError("append of non-sequences")
        v = VSeq(lv.items + rv.items)
        size = lv.size + rv.size + v.size
        return v, 1 + lt + rt, size + lw + rw

    if isinstance(term, A.Flatten):
        av, at, aw = _eval_term(term.arg, env, rec)
        if not isinstance(av, VSeq):
            raise NSCEvalError("flatten of a non-sequence")
        items: list[Value] = []
        for inner in av.items:
            if not isinstance(inner, VSeq):
                raise NSCEvalError("flatten of a sequence whose elements are not sequences")
            items.extend(inner.items)
        v = VSeq(items)
        return v, 1 + at, av.size + v.size + aw

    if isinstance(term, A.Length):
        av, at, aw = _eval_term(term.arg, env, rec)
        if not isinstance(av, VSeq):
            raise NSCEvalError("length of a non-sequence")
        v = VNat(len(av))
        return v, 1 + at, av.size + v.size + aw

    if isinstance(term, A.Get):
        av, at, aw = _eval_term(term.arg, env, rec)
        if not isinstance(av, VSeq):
            raise NSCEvalError("get of a non-sequence")
        if len(av) != 1:
            # get([x]) = x; get([]) = get([x0, x1, ...]) = Omega
            raise NSCEvalError(f"get applied to a sequence of length {len(av)}")
        v = av[0]
        return v, 1 + at, av.size + v.size + aw

    if isinstance(term, A.Zip):
        lv, lt, lw = _eval_term(term.left, env, rec)
        rv, rt, rw = _eval_term(term.right, env, rec)
        if not isinstance(lv, VSeq) or not isinstance(rv, VSeq):
            raise NSCEvalError("zip of non-sequences")
        if len(lv) != len(rv):
            raise NSCEvalError(f"zip of sequences with different lengths {len(lv)} and {len(rv)}")
        v = VSeq(VPair(a, b) for a, b in zip(lv.items, rv.items))
        size = lv.size + rv.size + v.size
        return v, 1 + lt + rt, size + lw + rw

    if isinstance(term, A.Enumerate):
        av, at, aw = _eval_term(term.arg, env, rec)
        if not isinstance(av, VSeq):
            raise NSCEvalError("enumerate of a non-sequence")
        v = VSeq(VNat(i) for i in range(len(av)))
        return v, 1 + at, av.size + v.size + aw

    if isinstance(term, A.Split):
        dv, dt, dw = _eval_term(term.data, env, rec)
        cv, ct, cw = _eval_term(term.counts, env, rec)
        if not isinstance(dv, VSeq) or not isinstance(cv, VSeq):
            raise NSCEvalError("split of non-sequences")
        counts = []
        for c in cv.items:
            if not isinstance(c, VNat):
                raise NSCEvalError("split counts must be naturals")
            counts.append(c.value)
        if sum(counts) != len(dv):
            raise NSCEvalError(
                f"split counts sum to {sum(counts)} but the sequence has length {len(dv)}"
            )
        groups: list[VSeq] = []
        pos = 0
        for c in counts:
            groups.append(VSeq(dv.items[pos : pos + c]))
            pos += c
        v = VSeq(groups)
        size = dv.size + cv.size + v.size
        return v, 1 + dt + ct, size + dw + cw

    if isinstance(term, A.Let):
        bv, bt, bw = _eval_term(term.bound, env, rec)
        inner = env.extend(term.var, bv)
        rv, rt, rw = _eval_term(term.body, inner, rec)
        size = bv.size + rv.size
        return rv, 1 + bt + rt, size + bw + rw

    if isinstance(term, A.RecCall):
        if term.name not in rec:
            raise NSCEvalError(f"call to unknown recursive function {term.name!r}")
        av, at, aw = _eval_term(term.arg, env, rec)
        binding = rec[term.name]
        fv, ft, fw = _apply(binding.defn, av, binding.env, rec)
        size = av.size + fv.size
        return fv, 1 + at + ft, size + aw + fw

    raise NSCEvalError(f"unknown term node {type(term).__name__}")


# ---------------------------------------------------------------------------
# Function application (the ternary relation  F(C) \Downarrow C')
# ---------------------------------------------------------------------------

# Free-variable sets are memoised per function node: they are needed on every
# application to charge the size of the captured closure.
_FREE_VARS_CACHE: dict[int, frozenset[str]] = {}


def _closure_size(fn: A.Function, env: Env) -> int:
    """Total size of the values captured by ``fn`` from ``env`` (its closure).

    This is what an implementation has to materialise when applying ``fn`` —
    and, under ``map``, broadcast to every element — so it is part of the
    SIZE charged by the application rules.
    """
    key = id(fn)
    names = _FREE_VARS_CACHE.get(key)
    if names is None:
        names = A.free_vars(fn)
        _FREE_VARS_CACHE[key] = names
    total = 0
    for name in names:
        try:
            total += env.lookup(name).size
        except NSCEvalError:
            # a free variable of a nested recursive definition may be bound
            # only at its own application site
            continue
    return total


def _apply(fn: A.Function, arg: Value, env: Env, rec: RecEnv) -> tuple[Value, int, int]:
    if isinstance(fn, A.Lambda):
        inner = env.extend(fn.var, arg)
        bv, bt, bw = _eval_term(fn.body, inner, rec)
        size = _closure_size(fn, env) + arg.size + bv.size
        return bv, 1 + bt, size + bw

    if isinstance(fn, A.MapF):
        if not isinstance(arg, VSeq):
            raise NSCEvalError("map applied to a non-sequence")
        results: list[Value] = []
        max_t = 0
        total_w = 0
        for item in arg.items:
            v, t, w = _apply(fn.fn, item, env, rec)
            results.append(v)
            if t > max_t:
                max_t = t
            total_w += w
        out = VSeq(results)
        # T = 1 + max_i T(F, C_i); W = SIZE + sum_i W(F, C_i)
        size = arg.size + out.size
        return out, 1 + max_t, size + total_w

    if isinstance(fn, A.WhileF):
        # Iterative unfolding of the two while rules of Definition 3.1.
        current = arg
        total_t = 0
        total_w = 0
        while True:
            pv, pt, pw = _apply(fn.pred, current, env, rec)
            if pv == FALSE:
                # while(P, F)(C) \Downarrow C  when P(C) \Downarrow false
                total_t += 1 + pt
                total_w += current.size + pw
                return current, total_t, total_w
            if pv != TRUE:
                raise NSCEvalError("while predicate did not return a boolean")
            bv, bt, bw = _apply(fn.body, current, env, rec)
            # W(while(P,F),C) = size(C) + size(C') + W(P,C) + W(F,C) + W(while, C')
            total_t += 1 + pt + bt
            total_w += current.size + bv.size + pw + bw
            current = bv

    if isinstance(fn, A.RecFun):
        rec2 = dict(rec)
        rec2[fn.name] = _RecBinding(fn, env)
        inner = env.extend(fn.var, arg)
        bv, bt, bw = _eval_term(fn.body, inner, rec2)
        size = _closure_size(fn, env) + arg.size + bv.size
        return bv, 1 + bt, size + bw

    raise NSCEvalError(f"unknown function node {type(fn).__name__}")
