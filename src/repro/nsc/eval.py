"""Big-step operational semantics of NSC with the T/W cost model.

Implements Appendix B (natural semantics with environments) together with
Definition 3.1, which assigns to every evaluation ``M \\Downarrow C`` a
*parallel time* ``T`` and a *work* ``W``:

* for every rule except ``map`` and ``while``::

      T = 1 + sum of the premises' T
      W = SIZE + sum of the premises' W

  where ``SIZE`` is the total size of the S-objects mentioned in the rule
  (the premises' results and the conclusion's result).  For the
  function-application rules SIZE additionally includes the values of the
  *free variables* of the function being applied — the closure an
  implementation has to materialise (and, under ``map``, broadcast to every
  element; this is what makes the paper's ``p2`` cost ``O(n * |x|)``).
  Charging only the captured free variables rather than the whole ambient
  environment is the one place where we refine the letter of Definition 3.1
  ("including the environments"): charging the full environment at every rule
  would bill unrelated bindings once per AST node and the paper's own derived
  operations would not meet their stated costs;

* for the ``map`` rule the ``W`` equation is unchanged but::

      T = 1 + max_i T(F, C_i)

  reflecting that the ``n`` applications of ``F`` run in parallel;

* for the ``while`` rule the final output is *not* re-counted at every
  iteration (otherwise a result surviving ``n`` iterations would be charged
  ``n`` times)::

      T(while(P,F), C) = 1 + T(P,C) + T(F,C) + T(while(P,F), C')
      W(while(P,F), C) = size(C) + size(C') + W(P,C) + W(F,C) + W(while(P,F), C')

Errors and undefinedness (division by zero, ``zip`` of unequal lengths,
``split`` with a bad count vector, the error term Omega, ...) are modelled as
the :class:`NSCEvalError` exception — the paper treats these outcomes as "the
result of P might be undefined".

The evaluator also interprets the two extensions carried by the AST:
``let`` blocks (Section 4's block structure) and named recursive definitions
(:class:`repro.nsc.ast.RecFun`), which are the input of the map-recursion
translation of Theorem 4.2.

Iterative evaluation engine
===========================

The evaluator is an **explicit-stack machine** (a defunctionalized-CPS /
work-stack interpreter), not a recursive tree walker.  Evaluation depth is
therefore bounded only by heap memory, never by the C stack: a
100 000-iteration ``while`` loop or a depth-10 000 map-recursion tree runs
under the default ``sys.getrecursionlimit()`` of 1000, and importing this
module mutates no global interpreter state.

The machine keeps two heap stacks:

``tasks``
    pending work items, each a tuple (or, for the stateful ``map``/``while``
    frames, a list) whose first element is a small integer opcode;

``results``
    completed premises as ``(value, T, W)`` triples.

There are two *control* opcodes and a family of *continuation* frames:

``_EV term env rec``
    evaluate a term.  Leaf terms (variables, constants, ``()``, ``[]``) push
    their triple onto ``results`` directly; compound terms push one of the
    continuation frames below followed by ``_EV`` tasks for their premises
    (last premise pushed first is evaluated first, preserving the recursive
    evaluator's left-to-right order and hence which error surfaces first).

``_AP fn arg env rec``
    apply a function value-level: ``Lambda``/``RecFun`` charge their closure
    and push ``_K_LAMBODY`` over the body's evaluation; ``map`` and ``while``
    install the stateful frames below.

``_K_BIN .. _K_LETBODY``
    defunctionalized continuations, one per evaluation rule with premises.
    Each frame stores exactly the already-known summands of its rule's T/W
    equations (e.g. ``_K_CALL`` carries the argument's ``(T, W, size)``) and,
    when executed, pops its remaining premises from ``results`` and pushes the
    rule's conclusion triple.  The T/W arithmetic is carried over from the
    recursive evaluator verbatim, so the engine is cost-identical to it
    (``tests/test_eval_golden.py`` pins this with recorded goldens).

``_K_MAP``
    a mutable frame ``[op, F, items, env, rec, i, out, max_t, sum_w, size]``
    that applies ``F`` to one element at a time, folding ``max`` over the
    premises' T and ``sum`` over their W — the map rule's cost shape.

``_K_WPRED`` / ``_K_WBODY``
    the two halves of one ``while`` iteration, sharing a mutable
    ``[current, T, W]`` accumulator; ``_K_WPRED`` dispatches on the
    predicate's boolean and either finishes the loop or schedules the body,
    whose ``_K_WBODY`` frame re-arms ``_K_WPRED`` for the next iteration —
    constant stack depth per iteration.

Per-evaluation caches remove the per-application overhead the recursive
evaluator paid: free-variable sets are memoised per function node, and the
total *closure size* is memoised per ``(function, environment)`` pair — under
``map(F)`` the closure of ``F`` is charged once per element but now computed
once per sequence.  The memos live on the machine, keep strong references to
their keys (a recycled ``id`` can never alias a dead node — a latent bug of
the recursive evaluator's module-level cache), and are dropped when the
top-level ``evaluate``/``apply_function`` call returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from . import ast as A
from .values import (
    FALSE,
    TRUE,
    UNIT_VALUE,
    Value,
    VInl,
    VInr,
    VNat,
    VPair,
    VSeq,
    VUnit,
    bool_value,
)


class NSCEvalError(RuntimeError):
    """Raised when an NSC evaluation is undefined (error term, zip mismatch, ...)."""


class Env:
    """Persistent evaluation environment with a cached total size.

    The work complexity of Definition 3.1 counts the size of the environment
    mentioned by each rule, so the size of the whole environment must be
    available in O(1).
    """

    __slots__ = ("_name", "_value", "_parent", "size", "_depth")

    def __init__(
        self,
        name: Optional[str] = None,
        value: Optional[Value] = None,
        parent: Optional["Env"] = None,
    ) -> None:
        self._name = name
        self._value = value
        self._parent = parent
        parent_size = parent.size if parent is not None else 0
        self.size = parent_size + (value.size if value is not None else 0)
        self._depth = (parent._depth + 1) if parent is not None else 0

    @staticmethod
    def empty() -> "Env":
        return _EMPTY_ENV

    def extend(self, name: str, value: Value) -> "Env":
        """Return a new environment with ``name`` bound to ``value``."""
        return Env(name, value, self)

    def lookup(self, name: str) -> Value:
        env: Optional[Env] = self
        while env is not None:
            if env._name == name:
                assert env._value is not None
                return env._value
            env = env._parent
        raise NSCEvalError(f"unbound variable {name!r} at run time")

    def names(self) -> list[str]:
        out = []
        env: Optional[Env] = self
        while env is not None:
            if env._name is not None:
                out.append(env._name)
            env = env._parent
        return out


_EMPTY_ENV = Env()


@dataclass(frozen=True)
class Outcome:
    """Result of an evaluation: the value plus its time and work complexity."""

    value: Value
    time: int
    work: int


@dataclass(frozen=True)
class _RecBinding:
    """A named recursive definition together with its defining environment."""

    defn: A.RecFun
    env: Env


RecEnv = dict[str, _RecBinding]


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def evaluate(term: A.Term, env: Optional[dict[str, Value]] = None) -> Outcome:
    """Evaluate a term under bindings ``env`` and report its value, T and W."""
    e = _EMPTY_ENV
    for name, value in (env or {}).items():
        e = e.extend(name, value)
    value, t, w = _Machine().run((_EV, term, e, _EMPTY_REC))
    return Outcome(value, t, w)


def apply_function(fn: A.Function, arg: Value, env: Optional[dict[str, Value]] = None) -> Outcome:
    """Apply an NSC function to an S-object and report the value, T and W."""
    e = _EMPTY_ENV
    for name, value in (env or {}).items():
        e = e.extend(name, value)
    value, t, w = _Machine().run((_AP, fn, arg, e, _EMPTY_REC))
    return Outcome(value, t, w)


def run(fn: A.Function, arg: Value) -> Value:
    """Apply ``fn`` and return only the value (convenience wrapper)."""
    return apply_function(fn, arg).value


# ---------------------------------------------------------------------------
# Arithmetic
# ---------------------------------------------------------------------------


def _arith(op: str, a: int, b: int) -> int:
    if op == "+":
        return a + b
    if op == "-":
        # monus: truncated subtraction (Section 2)
        return a - b if a >= b else 0
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            raise NSCEvalError("division by zero")
        return a // b
    if op == "mod":
        if b == 0:
            raise NSCEvalError("modulo by zero")
        return a % b
    if op == ">>":
        return a >> b
    if op == "min":
        return min(a, b)
    if op == "max":
        return max(a, b)
    raise NSCEvalError(f"unknown arithmetic operation {op!r}")


def _unary(op: str, a: int) -> int:
    if op == "log2":
        return a.bit_length() - 1 if a > 0 else 0
    if op == "sqrt":
        import math

        return math.isqrt(a)
    raise NSCEvalError(f"unknown unary operation {op!r}")


# ---------------------------------------------------------------------------
# The explicit-stack machine
# ---------------------------------------------------------------------------

_EMPTY_REC: RecEnv = {}

# Control opcodes.
_EV = 0  # (op, term, env, rec)       evaluate a term
_AP = 1  # (op, fn, arg, env, rec)    apply a function to a value

# Continuation frames (consume completed premises from the results stack).
_K_BIN = 2  # (op, arith_op)
_K_UN = 3  # (op, arith_op)
_K_EQ = 4
_K_PAIR = 5
_K_PROJ = 6  # (op, index)
_K_INL = 7
_K_INR = 8
_K_CASE = 9  # (op, term, env, rec)
_K_BRANCH = 10  # (op, scrut_t, scrut_w, scrut_size)
_K_APPARG = 11  # (op, fn, env, rec)
_K_CALL = 12  # (op, arg_t, arg_w, arg_size)
_K_SINGLE = 13
_K_APPEND = 14
_K_FLATTEN = 15
_K_LEN = 16
_K_GET = 17
_K_ZIP = 18
_K_ENUM = 19
_K_SPLIT = 20
_K_LETBOUND = 21  # (op, var, body, env, rec)
_K_LETBODY = 22  # (op, bound_t, bound_w, bound_size)
_K_RECARG = 23  # (op, name, rec)
_K_LAMBODY = 24  # (op, closure_size + arg_size)
_K_MAP = 25  # [op, fn, items, env, rec, idx, out, max_t, sum_w, arg_size]
_K_WPRED = 26  # (op, while_fn, env, rec, state)   state = [current, T, W]
_K_WBODY = 27  # (op, while_fn, env, rec, state, pred_t, pred_w)

# Term-class dispatch table (one dict lookup instead of ~20 isinstance checks
# per node, as the recursive evaluator paid).
_T_VAR = 0
_T_CONST = 1
_T_UNIT = 2
_T_ERROR = 3
_T_EMPTY = 4
_T_BINOP = 5
_T_UNOP = 6
_T_EQ = 7
_T_PAIR = 8
_T_PROJ = 9
_T_INL = 10
_T_INR = 11
_T_CASE = 12
_T_APPLY = 13
_T_SINGLE = 14
_T_APPEND = 15
_T_FLATTEN = 16
_T_LEN = 17
_T_GET = 18
_T_ZIP = 19
_T_ENUM = 20
_T_SPLIT = 21
_T_LET = 22
_T_RECCALL = 23

_TERM_KIND: dict[type, int] = {
    A.Var: _T_VAR,
    A.Const: _T_CONST,
    A.UnitTerm: _T_UNIT,
    A.ErrorTerm: _T_ERROR,
    A.EmptySeq: _T_EMPTY,
    A.BinOp: _T_BINOP,
    A.UnOp: _T_UNOP,
    A.Eq: _T_EQ,
    A.PairTerm: _T_PAIR,
    A.Proj: _T_PROJ,
    A.Inl: _T_INL,
    A.Inr: _T_INR,
    A.Case: _T_CASE,
    A.Apply: _T_APPLY,
    A.Singleton: _T_SINGLE,
    A.Append: _T_APPEND,
    A.Flatten: _T_FLATTEN,
    A.Length: _T_LEN,
    A.Get: _T_GET,
    A.Zip: _T_ZIP,
    A.Enumerate: _T_ENUM,
    A.Split: _T_SPLIT,
    A.Let: _T_LET,
    A.RecCall: _T_RECCALL,
}

#: the (immutable) empty sequence, shared by every ``[]`` evaluation
_EMPTY_SEQ = VSeq(())

#: interned small naturals — arithmetic, ``length`` and ``enumerate`` results
#: overwhelmingly land here, and VNat construction is the machine's hottest
#: allocation (values are immutable, so sharing is invisible)
_SMALL_NATS = tuple(VNat(i) for i in range(1025))
_N_SMALL = len(_SMALL_NATS)

# Preallocated payload-free continuation frames (one shared tuple per opcode
# instead of a fresh allocation per AST node visited).
_F_EQ = (_K_EQ,)
_F_PAIR = (_K_PAIR,)
_F_INL = (_K_INL,)
_F_INR = (_K_INR,)
_F_SINGLE = (_K_SINGLE,)
_F_APPEND = (_K_APPEND,)
_F_FLATTEN = (_K_FLATTEN,)
_F_LEN = (_K_LEN,)
_F_GET = (_K_GET,)
_F_ZIP = (_K_ZIP,)
_F_ENUM = (_K_ENUM,)
_F_SPLIT = (_K_SPLIT,)
_BIN_FRAMES = {op: (_K_BIN, op) for op in A.BINARY_OPS}
_UN_FRAMES = {op: (_K_UN, op) for op in A.UNARY_OPS}
_PROJ_FRAMES = {1: (_K_PROJ, 1), 2: (_K_PROJ, 2)}


class _Machine:
    """One top-level evaluation: a task stack, a results stack, per-run caches.

    All three memos live on the machine (not the module) so their entries —
    which pin the cached AST nodes with strong references, making a recycled
    ``id()`` unable to alias a dead node — are dropped when the evaluation
    finishes, instead of accumulating for the lifetime of the process.
    """

    __slots__ = ("_csize", "_fv", "_consts")

    def __init__(self) -> None:
        # (id(fn), id(env)) -> (fn, env, size); strong refs pin the ids.
        self._csize: dict[tuple[int, int], tuple[A.Function, Env, int]] = {}
        # id(fn) -> (fn, free-variable names)
        self._fv: dict[int, tuple[A.Function, tuple[str, ...]]] = {}
        # id(term) -> (term, interned VNat), for constants >= _N_SMALL
        self._consts: dict[int, tuple[A.Const, VNat]] = {}

    def _free_var_names(self, fn: A.Function) -> tuple[str, ...]:
        key = id(fn)
        hit = self._fv.get(key)
        if hit is not None and hit[0] is fn:
            return hit[1]
        names = tuple(A.free_vars(fn))
        self._fv[key] = (fn, names)
        return names

    def _closure_size(self, fn: A.Function, env: Env) -> int:
        """Total size of the values captured by ``fn`` from ``env`` (its closure).

        This is what an implementation has to materialise when applying
        ``fn`` — and, under ``map``, broadcast to every element — so it is
        part of the SIZE charged by the application rules.
        """
        names = self._free_var_names(fn)
        if not names:
            return 0
        key = (id(fn), id(env))
        hit = self._csize.get(key)
        if hit is not None and hit[0] is fn and hit[1] is env:
            return hit[2]
        size = 0
        for name in names:
            try:
                size += env.lookup(name).size
            except NSCEvalError:
                # a free variable of a nested recursive definition may be
                # bound only at its own application site
                continue
        self._csize[key] = (fn, env, size)
        return size

    def run(self, task: tuple) -> tuple[Value, int, int]:
        tasks: list = [task]
        results: list[tuple[Value, int, int]] = []
        push = tasks.append
        emit = results.append
        kind_of = _TERM_KIND.get
        const_cache = self._consts

        # The outer loop pops one frame per round.  Frames that end with a
        # term still to evaluate (an _EV task, a function body, a case branch,
        # a let body) fall through to the *inner* loop at the bottom, which
        # walks the leftmost spine of the term without going through the task
        # stack at all — only right-hand siblings are materialised as _EV
        # tasks.  This preserves the recursive evaluator's evaluation order
        # exactly while roughly halving the stack traffic.
        while tasks:
            frame = tasks.pop()
            op = frame[0]

            if op == _EV:
                term = frame[1]
                env = frame[2]
                rec = frame[3]

            # ---------------- control: apply a function ----------------
            elif op == _AP:
                fn = frame[1]
                arg = frame[2]
                env = frame[3]
                rec = frame[4]
                cls = fn.__class__
                if cls is A.Lambda:
                    push((_K_LAMBODY, self._closure_size(fn, env) + arg.size))
                    term = fn.body
                    env = env.extend(fn.var, arg)
                elif cls is A.MapF:
                    if not isinstance(arg, VSeq):
                        raise NSCEvalError("map applied to a non-sequence")
                    items = arg.items
                    if not items:
                        # T = 1 + max over zero premises; W = SIZE.
                        emit((_EMPTY_SEQ, 1, arg.size + 1))
                    else:
                        push([_K_MAP, fn.fn, items, env, rec, 0, [], 0, 0, arg.size])
                        push((_AP, fn.fn, items[0], env, rec))
                    continue
                elif cls is A.WhileF:
                    state = [arg, 0, 0]  # [current, total_t, total_w]
                    push((_K_WPRED, fn, env, rec, state))
                    push((_AP, fn.pred, arg, env, rec))
                    continue
                elif cls is A.RecFun:
                    push((_K_LAMBODY, self._closure_size(fn, env) + arg.size))
                    rec = dict(rec)
                    rec[fn.name] = _RecBinding(fn, env)
                    term = fn.body
                    env = env.extend(fn.var, arg)
                else:
                    raise NSCEvalError(f"unknown function node {type(fn).__name__}")

            # ---------------- continuations ----------------
            elif op == _K_CASE:
                sv, st, sw = results.pop()
                cterm = frame[1]
                env = frame[2]
                rec = frame[3]
                if isinstance(sv, VInl):
                    env = env.extend(cterm.left_var, sv.value)
                    term = cterm.left_body
                elif isinstance(sv, VInr):
                    env = env.extend(cterm.right_var, sv.value)
                    term = cterm.right_body
                else:
                    raise NSCEvalError("case scrutinee is not an injection")
                push((_K_BRANCH, st, sw, sv.size))
            elif op == _K_LETBOUND:
                bv, bt, bw = results.pop()
                push((_K_LETBODY, bt, bw, bv.size))
                term = frame[2]
                env = frame[3].extend(frame[1], bv)
                rec = frame[4]
            elif op == _K_BIN:
                rv, rt, rw = results.pop()
                lv, lt, lw = results.pop()
                if not isinstance(lv, VNat) or not isinstance(rv, VNat):
                    raise NSCEvalError(f"arithmetic {frame[1]} on non-naturals")
                n = _arith(frame[1], lv.value, rv.value)
                v = _SMALL_NATS[n] if n < _N_SMALL else VNat(n)
                # all three S-objects are naturals of size 1: SIZE = 3
                emit((v, 1 + lt + rt, 3 + lw + rw))
                continue
            elif op == _K_UN:
                av, at, aw = results.pop()
                if not isinstance(av, VNat):
                    raise NSCEvalError(f"unary {frame[1]} on a non-natural")
                n = _unary(frame[1], av.value)
                v = _SMALL_NATS[n] if n < _N_SMALL else VNat(n)
                emit((v, 1 + at, 2 + aw))
                continue
            elif op == _K_EQ:
                rv, rt, rw = results.pop()
                lv, lt, lw = results.pop()
                v = bool_value(lv == rv)
                emit((v, 1 + lt + rt, lv.size + rv.size + v.size + lw + rw))
                continue
            elif op == _K_PAIR:
                sv, st, sw = results.pop()
                fv, ft, fw = results.pop()
                v = VPair(fv, sv)
                emit((v, 1 + ft + st, fv.size + sv.size + v.size + fw + sw))
                continue
            elif op == _K_PROJ:
                av, at, aw = results.pop()
                if not isinstance(av, VPair):
                    raise NSCEvalError("projection applied to a non-pair")
                v = av.fst if frame[1] == 1 else av.snd
                emit((v, 1 + at, av.size + v.size + aw))
                continue
            elif op == _K_INL:
                av, at, aw = results.pop()
                v = VInl(av)
                emit((v, 1 + at, av.size + v.size + aw))
                continue
            elif op == _K_INR:
                av, at, aw = results.pop()
                v = VInr(av)
                emit((v, 1 + at, av.size + v.size + aw))
                continue
            elif op == _K_BRANCH:
                bv, bt, bw = results.pop()
                emit((bv, 1 + frame[1] + bt, frame[3] + bv.size + frame[2] + bw))
                continue
            elif op == _K_APPARG:
                av, at, aw = results.pop()
                push((_K_CALL, at, aw, av.size))
                push((_AP, frame[1], av, frame[2], frame[3]))
                continue
            elif op == _K_CALL:
                fv, ft, fw = results.pop()
                emit((fv, 1 + frame[1] + ft, frame[3] + fv.size + frame[2] + fw))
                continue
            elif op == _K_SINGLE:
                av, at, aw = results.pop()
                v = VSeq((av,))
                emit((v, 1 + at, av.size + v.size + aw))
                continue
            elif op == _K_APPEND:
                rv, rt, rw = results.pop()
                lv, lt, lw = results.pop()
                if not isinstance(lv, VSeq) or not isinstance(rv, VSeq):
                    raise NSCEvalError("append of non-sequences")
                v = VSeq(lv.items + rv.items)
                emit((v, 1 + lt + rt, lv.size + rv.size + v.size + lw + rw))
                continue
            elif op == _K_FLATTEN:
                av, at, aw = results.pop()
                if not isinstance(av, VSeq):
                    raise NSCEvalError("flatten of a non-sequence")
                items: list[Value] = []
                for inner in av.items:
                    if not isinstance(inner, VSeq):
                        raise NSCEvalError(
                            "flatten of a sequence whose elements are not sequences"
                        )
                    items.extend(inner.items)
                v = VSeq(items)
                emit((v, 1 + at, av.size + v.size + aw))
                continue
            elif op == _K_LEN:
                av, at, aw = results.pop()
                if not isinstance(av, VSeq):
                    raise NSCEvalError("length of a non-sequence")
                n = len(av)
                v = _SMALL_NATS[n] if n < _N_SMALL else VNat(n)
                emit((v, 1 + at, av.size + 1 + aw))
                continue
            elif op == _K_GET:
                av, at, aw = results.pop()
                if not isinstance(av, VSeq):
                    raise NSCEvalError("get of a non-sequence")
                if len(av) != 1:
                    # get([x]) = x; get([]) = get([x0, x1, ...]) = Omega
                    raise NSCEvalError(f"get applied to a sequence of length {len(av)}")
                v = av[0]
                emit((v, 1 + at, av.size + v.size + aw))
                continue
            elif op == _K_ZIP:
                rv, rt, rw = results.pop()
                lv, lt, lw = results.pop()
                if not isinstance(lv, VSeq) or not isinstance(rv, VSeq):
                    raise NSCEvalError("zip of non-sequences")
                if len(lv) != len(rv):
                    raise NSCEvalError(
                        f"zip of sequences with different lengths {len(lv)} and {len(rv)}"
                    )
                v = VSeq(VPair(a, b) for a, b in zip(lv.items, rv.items))
                emit((v, 1 + lt + rt, lv.size + rv.size + v.size + lw + rw))
                continue
            elif op == _K_ENUM:
                av, at, aw = results.pop()
                if not isinstance(av, VSeq):
                    raise NSCEvalError("enumerate of a non-sequence")
                n = len(av)
                if n <= _N_SMALL:
                    v = VSeq(_SMALL_NATS[:n])
                else:
                    v = VSeq(
                        _SMALL_NATS[i] if i < _N_SMALL else VNat(i) for i in range(n)
                    )
                emit((v, 1 + at, av.size + v.size + aw))
                continue
            elif op == _K_SPLIT:
                cv, ct, cw = results.pop()
                dv, dt, dw = results.pop()
                if not isinstance(dv, VSeq) or not isinstance(cv, VSeq):
                    raise NSCEvalError("split of non-sequences")
                counts = []
                for c in cv.items:
                    if not isinstance(c, VNat):
                        raise NSCEvalError("split counts must be naturals")
                    counts.append(c.value)
                if sum(counts) != len(dv):
                    raise NSCEvalError(
                        f"split counts sum to {sum(counts)} but the sequence has length {len(dv)}"
                    )
                groups: list[VSeq] = []
                pos = 0
                for c in counts:
                    groups.append(VSeq(dv.items[pos : pos + c]))
                    pos += c
                v = VSeq(groups)
                emit((v, 1 + dt + ct, dv.size + cv.size + v.size + dw + cw))
                continue
            elif op == _K_LETBODY:
                rv, rt, rw = results.pop()
                emit((rv, 1 + frame[1] + rt, frame[3] + rv.size + frame[2] + rw))
                continue
            elif op == _K_RECARG:
                av, at, aw = results.pop()
                binding = frame[2][frame[1]]
                push((_K_CALL, at, aw, av.size))
                push((_AP, binding.defn, av, binding.env, frame[2]))
                continue
            elif op == _K_LAMBODY:
                bv, bt, bw = results.pop()
                emit((bv, 1 + bt, frame[1] + bv.size + bw))
                continue
            elif op == _K_MAP:
                v, t, w = results.pop()
                frame[6].append(v)
                if t > frame[7]:
                    frame[7] = t
                frame[8] += w
                i = frame[5] + 1
                items = frame[2]
                if i < len(items):
                    frame[5] = i
                    push(frame)
                    push((_AP, frame[1], items[i], frame[3], frame[4]))
                else:
                    out = VSeq(frame[6])
                    # T = 1 + max_i T(F, C_i); W = SIZE + sum_i W(F, C_i)
                    emit((out, 1 + frame[7], frame[9] + out.size + frame[8]))
                continue
            elif op == _K_WPRED:
                pv, pt, pw = results.pop()
                state = frame[4]
                current = state[0]
                if pv is FALSE or pv == FALSE:
                    # while(P, F)(C) \Downarrow C  when P(C) \Downarrow false
                    emit((current, state[1] + 1 + pt, state[2] + current.size + pw))
                elif pv is TRUE or pv == TRUE:
                    push((_K_WBODY, frame[1], frame[2], frame[3], state, pt, pw))
                    push((_AP, frame[1].body, current, frame[2], frame[3]))
                else:
                    raise NSCEvalError("while predicate did not return a boolean")
                continue
            elif op == _K_WBODY:
                bv, bt, bw = results.pop()
                state = frame[4]
                current = state[0]
                # W(while(P,F),C) = size(C) + size(C') + W(P,C) + W(F,C) + W(while, C')
                state[1] += 1 + frame[5] + bt
                state[2] += current.size + bv.size + frame[6] + bw
                state[0] = bv
                push((_K_WPRED, frame[1], frame[2], frame[3], state))
                push((_AP, frame[1].pred, bv, frame[2], frame[3]))
                continue
            else:  # pragma: no cover - opcodes are exhaustive
                raise NSCEvalError(f"unknown machine opcode {op}")

            # ------------- inner loop: walk the leftmost spine -------------
            # Reached with (term, env, rec) set by one of the fall-through
            # branches above.  Leaf terms emit their axiom triple and leave;
            # compound terms push their continuation frame plus _EV tasks for
            # every premise but the first, then iterate into the first premise
            # directly.
            while True:
                kind = kind_of(term.__class__)

                if kind == _T_VAR:
                    # inlined Env.lookup (the hottest single operation)
                    name = term.name
                    e = env
                    while e is not None:
                        if e._name == name:
                            v = e._value
                            break
                        e = e._parent
                    else:
                        raise NSCEvalError(f"unbound variable {name!r} at run time")
                    emit((v, 1, v.size))
                    break
                elif kind == _T_CONST:
                    n = term.value
                    if 0 <= n < _N_SMALL:
                        v = _SMALL_NATS[n]
                    else:
                        # n < 0 reaches VNat below, which rejects it
                        key = id(term)
                        hit = const_cache.get(key)
                        if hit is not None and hit[0] is term:
                            v = hit[1]
                        else:
                            v = VNat(n)
                            const_cache[key] = (term, v)
                    emit((v, 1, 1))
                    break
                elif kind == _T_BINOP:
                    push(_BIN_FRAMES[term.op])
                    push((_EV, term.right, env, rec))
                    term = term.left
                elif kind == _T_APPLY:
                    push((_K_APPARG, term.fn, env, rec))
                    term = term.arg
                elif kind == _T_LET:
                    push((_K_LETBOUND, term.var, term.body, env, rec))
                    term = term.bound
                elif kind == _T_CASE:
                    push((_K_CASE, term, env, rec))
                    term = term.scrutinee
                elif kind == _T_EQ:
                    push(_F_EQ)
                    push((_EV, term.right, env, rec))
                    term = term.left
                elif kind == _T_PAIR:
                    push(_F_PAIR)
                    push((_EV, term.snd, env, rec))
                    term = term.fst
                elif kind == _T_PROJ:
                    push(_PROJ_FRAMES[term.index])
                    term = term.arg
                elif kind == _T_INL:
                    push(_F_INL)
                    term = term.arg
                elif kind == _T_INR:
                    push(_F_INR)
                    term = term.arg
                elif kind == _T_UNOP:
                    push(_UN_FRAMES[term.op])
                    term = term.arg
                elif kind == _T_SINGLE:
                    push(_F_SINGLE)
                    term = term.arg
                elif kind == _T_APPEND:
                    push(_F_APPEND)
                    push((_EV, term.right, env, rec))
                    term = term.left
                elif kind == _T_FLATTEN:
                    push(_F_FLATTEN)
                    term = term.arg
                elif kind == _T_LEN:
                    push(_F_LEN)
                    term = term.arg
                elif kind == _T_GET:
                    push(_F_GET)
                    term = term.arg
                elif kind == _T_ZIP:
                    push(_F_ZIP)
                    push((_EV, term.right, env, rec))
                    term = term.left
                elif kind == _T_ENUM:
                    push(_F_ENUM)
                    term = term.arg
                elif kind == _T_SPLIT:
                    push(_F_SPLIT)
                    push((_EV, term.counts, env, rec))
                    term = term.data
                elif kind == _T_RECCALL:
                    if term.name not in rec:
                        raise NSCEvalError(
                            f"call to unknown recursive function {term.name!r}"
                        )
                    push((_K_RECARG, term.name, rec))
                    term = term.arg
                elif kind == _T_UNIT:
                    emit((UNIT_VALUE, 1, 1))
                    break
                elif kind == _T_EMPTY:
                    emit((_EMPTY_SEQ, 1, 1))
                    break
                elif kind == _T_ERROR:
                    raise NSCEvalError("evaluation of the error term Omega")
                else:
                    raise NSCEvalError(f"unknown term node {type(term).__name__}")

        assert len(results) == 1, "machine finished with an unbalanced results stack"
        return results[0]
