"""The ``vector`` backend: each fused block compiled to ONE generated function.

Where the ``fused`` backend still loops over per-instruction closures inside
a block, this backend *generates Python source* for every maximal
straight-line block — a single function of NumPy mega-ops — and ``exec``'s
it once per program.  Inside a generated block there is **no dispatch at
all**: registers are plain locals (``v3``), each instruction is an inline
NumPy expression, and the ``T``/``W`` accounting is unrolled into constant
stores and ``+=`` lines.

Interval bounds: the generated guards
-------------------------------------

The expensive part of the interpreted kernels is not the arithmetic — it is
the *guards*: ``arith +`` reduces both operand maxima before every add to
prove no int64 wrap, ``/`` scans for zero divisors, ``seg_scan +`` checks
cumsum monotonicity.  Generated blocks instead thread **per-register
interval bounds** (``lo[r]``/``hi[r]``, plain Python ints) through the run:

* every generated instruction updates its destination's bounds with O(1)
  Python-int arithmetic (``hi`` of a monus is ``hi[a]``, of a ``mod`` is
  ``min(hi[a], hi[b] - 1)``, ...);
* a guard is skipped exactly when the bounds *prove* it cannot fire
  (``hi[a] + hi[b] < 2**63`` — no add can wrap; ``lo[b] > 0`` — no zero
  divisor), otherwise the original checked kernel runs unchanged, raising
  the identical :class:`~repro.bvram.errors.BVRAMError`;
* bounds are **sound upper/lower bounds for non-empty registers** and
  merely vacuous for empty ones — every fast path degenerates correctly on
  empty operands (an empty array cannot overflow or divide by zero), so
  vacuous bounds cannot misfire.  Checked slow paths re-tighten ``hi`` from
  the actual result, and ``lo`` is clamped at ``2**63``, so bounds stay
  small integers for the whole run.

Accounting is bit-identical to the traced interpreter: each instruction is
charged 1 time unit plus the post-execution sizes of its read and written
registers *immediately* after it executes (``t = k``/``w +=`` lines in the
generated source), and a raising instruction leaves ``t``/``w`` at the
completed-prefix totals, reported through the shared ``partial`` cell —
exactly the fused backend's protocol.  Blocks, plan indices and the
``max_steps`` mid-block fallback (driving the interp closures) are shared
with :mod:`repro.backends.fused`, so step budgets stop at the identical
instruction.

``vector-jit`` is the same generator with the numba-compiled kernels of
:mod:`repro.backends.jit` spliced into the exec namespace when numba is
importable; without numba it falls back to the pure-NumPy namespace and is
behaviourally identical to ``vector``.
"""

from __future__ import annotations

import math

import numpy as np

from ..bvram import isa
from ..bvram.errors import BVRAMError
from . import jit, kernels
from .base import (
    BLOCK,
    HALT,
    JUMP,
    Backend,
    register_backend,
    step_budget_error,
)
from .fused import group_entries, jump_entry
from .interp import plan_for
from .registry import PlanCache


def _amax(a: np.ndarray) -> int:
    return int(a.max()) if a.size else 0


#: globals of every generated module; per-program constants are added per build
_NAMESPACE = {
    "_np": np,
    "_i64": np.int64,
    "_L": kernels.INT64_LIMIT,
    "_EMPTY": np.zeros(0, dtype=np.int64),
    "_err": BVRAMError,
    "_amax": _amax,
    "_isqrt": math.isqrt,
    "_maximum": np.maximum,
    "_minimum": np.minimum,
    "_concat": np.concatenate,
    "_full": np.full,
    "_array": np.array,
    "_arange": np.arange,
    "_k_add": kernels.arith_add,
    "_k_mul": kernels.arith_mul,
    "_k_div": kernels.arith_div,
    "_k_mod": kernels.arith_mod,
    "_k_shr": kernels.arith_shr,
    "_k_log2": lambda a: kernels.un_arith("log2", a),
    "_k_sqrt": lambda a: kernels.un_arith("sqrt", a),
    "_k_flag_merge": kernels.flag_merge_vec,
    "_k_seg_scan": kernels.seg_scan_vec,
    "_k_seg_reduce": kernels.seg_reduce_vec,
    "_k_seg_scan_add": kernels.seg_scan_add_nooverflow,
    "_k_seg_reduce_add": kernels.seg_reduce_add_nooverflow,
    "_k_bm_route": kernels.bm_route_vec,
    "_k_sbm_route": kernels.sbm_route_vec,
}


class _BlockGen:
    """Source generator for one straight-line block."""

    def __init__(self, consts: dict[int, str]) -> None:
        self.lines: list[str] = []
        self.loaded: set[int] = set()
        self.sloaded: set[int] = set()
        self.bloaded: set[int] = set()
        self.bdirty: set[int] = set()
        #: registers whose bounds this block reads before writing them —
        #: the executor must seed lo/hi for exactly these (see execute())
        self.binit: set[int] = set()
        self.consts = consts

    def emit(self, line: str, depth: int = 0) -> None:
        self.lines.append("    " * depth + line)

    def use(self, *regs: int) -> None:
        for r in regs:
            if r not in self.loaded:
                self.emit(f"v{r} = regs[{r}]")
                self.loaded.add(r)

    def usen(self, *regs: int) -> None:
        """Bind ``n{r}`` size locals — one attribute lookup per register version."""
        for r in regs:
            if r not in self.sloaded:
                self.emit(f"n{r} = v{r}.size")
                self.sloaded.add(r)

    def useb(self, *regs: int) -> None:
        for r in regs:
            if r not in self.bloaded:
                self.emit(f"l{r} = lo[{r}]")
                self.emit(f"h{r} = hi[{r}]")
                self.bloaded.add(r)
                self.binit.add(r)

    def const(self, value: int) -> str:
        name = self.consts.get(value)
        if name is None:
            name = f"_K{len(self.consts)}"
            self.consts[value] = name
        return name

    def shape_guard(self, op: str, a: int, b: int) -> None:
        self.usen(a, b)
        self.emit(f"if n{a} != n{b}:")
        self.emit(
            f'raise _err("arith {op}: operands have different lengths '
            f'%d and %d" % (n{a}, n{b}))',
            1,
        )

    def finish(
        self,
        d: int,
        instr: isa.Instruction,
        j: int,
        bounds: bool = True,
        size: str | None = None,
    ) -> None:
        """Common tail: bounds/size store, eager writeback, T/W accounting.

        ``size`` is an int expression for the destination's new length
        (evaluated against the *pre-instruction* size locals); without it
        the generated code falls back to a ``.size`` lookup.  W charges
        post-execution lengths, so the w line runs after ``n{d}`` updates.
        """
        if bounds:
            self.emit(f"l{d} = _l")
            self.emit(f"h{d} = _h")
            self.bloaded.add(d)
            self.bdirty.add(d)
        self.loaded.add(d)
        rw = instr.registers_read() + instr.registers_written()
        self.usen(*[r for r in rw if r != d])
        self.emit(f"n{d} = {size}" if size else f"n{d} = v{d}.size")
        self.sloaded.add(d)
        self.emit(f"regs[{d}] = v{d}")
        self.emit(f"t = {j + 1}")
        self.emit("w += " + " + ".join(f"n{r}" for r in rw))

    # -- per-instruction emission -------------------------------------------

    def gen(self, instr: isa.Instruction, j: int) -> None:
        self.emit(f"# {j}: {instr!r}")
        if isinstance(instr, isa.Arith):
            self.gen_arith(instr, j)
        elif isinstance(instr, isa.Move):
            d, s = instr.dst, instr.src
            self.use(s)
            self.usen(s)
            self.useb(s)
            self.emit(f"v{d} = v{s}")
            self.emit(f"_l = l{s}")
            self.emit(f"_h = h{s}")
            self.finish(d, instr, j, size=f"n{s}")
        elif isinstance(instr, isa.Select):
            d, s = instr.dst, instr.src
            self.use(s)
            self.useb(s)
            self.emit(f"v{d} = v{s}[v{s} != 0]")
            self.emit(f"_l = l{s} if l{s} > 1 else 1")
            self.emit(f"_h = h{s}")
            self.finish(d, instr, j)
        elif isinstance(instr, isa.FlagMerge):
            d, f, a, b = instr.dst, instr.flags, instr.a, instr.b
            self.use(f, a, b)
            self.usen(f)
            self.useb(a, b)
            self.emit(f"v{d} = _k_flag_merge(v{f}, v{a}, v{b})")
            self.emit(f"_l = l{a} if l{a} < l{b} else l{b}")
            self.emit(f"_h = h{a} if h{a} > h{b} else h{b}")
            self.finish(d, instr, j, size=f"n{f}")
        elif isinstance(instr, isa.AppendI):
            d, a, b = instr.dst, instr.a, instr.b
            self.use(a, b)
            self.usen(a, b)
            self.useb(a, b)
            self.emit(f"v{d} = _concat((v{a}, v{b}))")
            self.emit(f"_l = l{a} if l{a} < l{b} else l{b}")
            self.emit(f"_h = h{a} if h{a} > h{b} else h{b}")
            self.finish(d, instr, j, size=f"n{a} + n{b}")
        elif isinstance(instr, isa.UnArith):
            d, s = instr.dst, instr.src
            self.use(s)
            self.usen(s)
            self.useb(s)
            if instr.op == "log2":
                self.emit(f"v{d} = _k_log2(v{s})")
                self.emit(f"_l = l{s}.bit_length() - 1 if l{s} > 0 else 0")
                self.emit(f"_h = h{s}.bit_length() - 1 if h{s} > 0 else 0")
            else:  # sqrt
                self.emit(f"v{d} = _k_sqrt(v{s})")
                self.emit(f"_l = _isqrt(l{s})")
                self.emit(f"_h = _isqrt(h{s})")
            self.finish(d, instr, j, size=f"n{s}")
        elif isinstance(instr, isa.LengthI):
            d, s = instr.dst, instr.src
            self.use(s)
            self.usen(s)
            self.emit(f"v{d} = _array([n{s}], _i64)")
            self.emit(f"_l = n{s}")
            self.emit("_h = _l")
            self.finish(d, instr, j, size="1")
        elif isinstance(instr, isa.EnumerateI):
            d, s = instr.dst, instr.src
            self.use(s)
            self.usen(s)
            self.emit(f"v{d} = _arange(n{s}, dtype=_i64)")
            self.emit("_l = 0")
            self.emit(f"_h = n{s} - 1 if n{s} > 1 else 0")
            self.finish(d, instr, j, size=f"n{s}")
        elif isinstance(instr, isa.LoadEmpty):
            d = instr.dst
            # aliasing the shared empty is safe: no kernel mutates in place
            self.emit(f"v{d} = _EMPTY")
            self.emit("_l = 0")
            self.emit("_h = 0")
            self.finish(d, instr, j, size="0")
        elif isinstance(instr, isa.LoadConst):
            d = instr.dst
            self.emit(f"v{d} = {self.const(instr.value)}")
            self.emit(f"_l = {instr.value}")
            self.emit("_h = _l")
            self.finish(d, instr, j, size="1")
        elif isinstance(instr, isa.BmRoute):
            d = instr.dst
            dt, c, bn = instr.data, instr.counts, instr.bound
            self.use(dt, c, bn)
            self.usen(dt, c, bn)
            self.useb(dt)
            # scalar broadcast (a literal routed up to a vector's length) is
            # by far the most common routing shape: one C-level repeat beats
            # the kernel's counts.sum() reduction plus bound checks
            self.emit(f"if n{dt} == 1 and n{c} == 1:")
            self.emit(f"_n = v{c}[0]", 1)
            self.emit(f"if _n != n{bn}:", 1)
            self.emit(
                'raise _err("bm_route: counts must sum to the length '
                'of the bound register")',
                2,
            )
            self.emit(f"v{d} = v{dt}.repeat(_n)", 1)
            self.emit("else:")
            self.emit(f"v{d} = _k_bm_route(v{dt}, v{c}, v{bn})", 1)
            self.emit(f"_l = l{dt}")
            self.emit(f"_h = h{dt}")
            self.finish(d, instr, j)
        elif isinstance(instr, isa.SbmRoute):
            d = instr.dst
            self.use(instr.bound, instr.counts, instr.data, instr.segments)
            self.useb(instr.data)
            self.emit(
                f"v{d} = _k_sbm_route(v{instr.bound}, v{instr.counts}, "
                f"v{instr.data}, v{instr.segments})"
            )
            self.emit(f"_l = l{instr.data}")
            self.emit(f"_h = h{instr.data}")
            self.finish(d, instr, j)
        elif isinstance(instr, (isa.SegScan, isa.SegReduce)):
            d, s, g = instr.dst, instr.data, instr.segments
            scan = isinstance(instr, isa.SegScan)
            checked = "_k_seg_scan" if scan else "_k_seg_reduce"
            self.use(s, g)
            self.usen(s, g)
            self.useb(s)
            if instr.op == "+":
                # per-segment (partial) sums are bounded by hi[data] * len(data):
                # below 2**63 the cumsum provably cannot wrap, so the
                # monotonicity scan is skipped (descriptor checks still run)
                self.emit(f"_b = h{s} * n{s}")
                self.emit("if _b < _L:")
                self.emit(f"v{d} = {checked}_add(v{s}, v{g})", 1)
                self.emit("_h = _b", 1)
                self.emit("else:")
                self.emit(f"v{d} = {checked}('+', v{s}, v{g})", 1)
                self.emit(f"_h = _amax(v{d})", 1)
            else:  # max
                self.emit(f"v{d} = {checked}('max', v{s}, v{g})")
                self.emit(f"_h = h{s}")
            self.emit("_l = 0")
            self.finish(d, instr, j, size=f"n{s}" if scan else f"n{g}")
        else:
            raise BVRAMError(f"vector backend: unknown instruction {instr!r}")

    def gen_arith(self, instr: isa.Arith, j: int) -> None:
        d, op, a, b = instr.dst, instr.op, instr.a, instr.b
        self.use(a, b)
        self.shape_guard(op, a, b)
        if op == "+":
            self.useb(a, b)
            self.emit(f"_b = h{a} + h{b}")
            self.emit("if _b < _L:")
            self.emit(f"v{d} = v{a} + v{b}", 1)
            self.emit("_h = _b", 1)
            self.emit("else:")
            self.emit(f"v{d} = _k_add(v{a}, v{b})", 1)
            self.emit(f"_h = _amax(v{d})", 1)
            self.emit(f"_l = l{a} + l{b}")
            self.emit("if _l > _L:")
            self.emit("_l = _L", 1)
        elif op == "*":
            self.useb(a, b)
            self.emit(f"_b = h{a} * h{b}")
            self.emit("if _b < _L:")
            self.emit(f"v{d} = v{a} * v{b}", 1)
            self.emit("_h = _b", 1)
            self.emit("else:")
            self.emit(f"v{d} = _k_mul(v{a}, v{b})", 1)
            self.emit(f"_h = _amax(v{d})", 1)
            self.emit(f"_l = l{a} * l{b}")
            self.emit("if _l > _L:")
            self.emit("_l = _L", 1)
        elif op == "-":
            self.useb(a, b)
            self.emit(f"v{d} = _maximum(v{a} - v{b}, 0)")
            self.emit(f"_l = l{a} - h{b}")
            self.emit("if _l < 0:")
            self.emit("_l = 0", 1)
            self.emit(f"_h = h{a}")
        elif op == "/":
            self.useb(a, b)
            self.emit(f"if l{b} > 0:")
            self.emit(f"v{d} = v{a} // v{b}", 1)
            self.emit("else:")
            self.emit(f"v{d} = _k_div(v{a}, v{b})", 1)
            self.emit(f"_l = l{a} // h{b} if h{b} > 0 else 0")
            self.emit(f"_h = h{a} // l{b} if l{b} > 0 else h{a}")
        elif op == "mod":
            self.useb(a, b)
            self.emit(f"if l{b} > 0:")
            self.emit(f"v{d} = v{a} % v{b}", 1)
            self.emit("else:")
            self.emit(f"v{d} = _k_mod(v{a}, v{b})", 1)
            self.emit("_l = 0")
            self.emit(f"_h = h{b} - 1")
            self.emit(f"if h{a} < _h:")
            self.emit(f"_h = h{a}", 1)
            self.emit("if _h < 0:")
            self.emit("_h = 0", 1)
        elif op == ">>":
            self.useb(a, b)
            self.emit(f"if h{b} < 63:")
            self.emit(f"v{d} = v{a} >> v{b}", 1)
            self.emit("else:")
            self.emit(f"v{d} = _k_shr(v{a}, v{b})", 1)
            self.emit(f"_l = l{a} >> h{b} if h{b} < 63 else 0")
            self.emit(f"_h = h{a} >> l{b} if l{b} < 63 else 0")
        elif op == "min":
            self.useb(a, b)
            self.emit(f"v{d} = _minimum(v{a}, v{b})")
            self.emit(f"_l = l{a} if l{a} < l{b} else l{b}")
            self.emit(f"_h = h{a} if h{a} < h{b} else h{b}")
        elif op == "max":
            self.useb(a, b)
            self.emit(f"v{d} = _maximum(v{a}, v{b})")
            self.emit(f"_l = l{a} if l{a} > l{b} else l{b}")
            self.emit(f"_h = h{a} if h{a} > h{b} else h{b}")
        else:  # eq / le / lt
            py_op = {"eq": "==", "le": "<=", "lt": "<"}[op]
            self.emit(f"v{d} = (v{a} {py_op} v{b}).astype(_i64)")
            self.emit("_l = 0")
            self.emit("_h = 1")
        self.finish(d, instr, j, size=f"n{a}")


def gen_block_source(
    name: str, instrs: list[isa.Instruction], consts: dict[int, str]
) -> tuple[str, set[int]]:
    """The generated function for one block: ``fn(regs, lo, hi, partial)``.

    Returns the source and the set of registers whose ``lo``/``hi`` the
    block loads before writing them (the executor seeds exactly those).
    """
    g = _BlockGen(consts)
    for j, instr in enumerate(instrs):
        g.gen(instr, j)
    body = "\n".join("        " + ln for ln in g.lines)
    writeback = "\n".join(
        f"    lo[{r}] = l{r}\n    hi[{r}] = h{r}" for r in sorted(g.bdirty)
    )
    if writeback:
        writeback += "\n"
    source = (
        f"def {name}(regs, lo, hi, partial):\n"
        f"    t = 0\n"
        f"    w = 0\n"
        f"    try:\n"
        f"{body}\n"
        f"    except BaseException:\n"
        f"        partial[0] = t\n"
        f"        partial[1] = w\n"
        f"        raise\n"
        f"{writeback}"
        f"    return {len(instrs)}, w\n"
    )
    return source, g.binit


class VectorPlan:
    """Entries in the fused-plan layout plus the generated module source.

    ``binit`` is the union over blocks of registers whose bounds are read
    before written: only these need exact ``min``/``max`` seeding at run
    start — every other slot gets the sound vacuous interval.
    """

    __slots__ = ("entries", "source", "binit")

    def __init__(self, entries: list[tuple], source: str, binit: tuple[int, ...]) -> None:
        self.entries = entries
        self.source = source
        self.binit = binit


def build_vector_plan(program: isa.Program, use_jit: bool = False) -> VectorPlan:
    """Generate, compile and link the vector plan for ``program``."""
    base = plan_for(program)  # also surfaces build-time errors (negative const)
    groups, entry_target = group_entries(program, base)
    consts: dict[int, str] = {}
    parts: list[str] = []
    block_names: dict[int, str] = {}
    binit: set[int] = set()
    for gi, (kind, idxs) in enumerate(groups):
        if kind != BLOCK:
            continue
        name = f"_blk{gi}"
        block_names[gi] = name
        src, blk_binit = gen_block_source(
            name, [program.instructions[j] for j in idxs], consts
        )
        parts.append(src)
        binit |= blk_binit
    source = "\n".join(parts)
    ns = dict(_NAMESPACE)
    if use_jit:
        ns.update(jit.jit_kernels())
    for value, cname in consts.items():
        ns[cname] = np.array([value], dtype=np.int64)
    exec(compile(source, "<repro-vector-plan>", "exec"), ns)
    entries: list[tuple] = []
    for gi, (kind, idxs) in enumerate(groups):
        first = idxs[0]
        if kind == BLOCK:
            fn = ns[block_names[gi]]
            # the executor drives the interp closures through this attribute
            # when the step budget expires mid-block (exact max_steps parity)
            fn.steps = tuple((base[j][1], base[j][2]) for j in idxs)
            entries.append((BLOCK, fn, len(idxs)))
        elif kind == JUMP:
            entries.append(jump_entry(program, base, first, entry_target))
        else:  # HALT / TRAP
            entries.append((kind, base[first][1], base[first][2]))
    return VectorPlan(entries, source, tuple(sorted(binit)))


class VectorBackend(Backend):
    """Generated mega-kernel execution with interval-bound guard elision."""

    def __init__(self, name: str, cache_attr: str, use_jit: bool = False) -> None:
        self.name = name
        self.cache_attr = cache_attr
        self.use_jit = use_jit
        self._cache = PlanCache(
            cache_attr, lambda program: build_vector_plan(program, use_jit=use_jit)
        )

    def plan(self, program) -> VectorPlan:
        return self._cache.lookup(program)

    def execute(self, machine, program, max_steps: int) -> None:
        vplan = self._cache.lookup(program)
        plan = vplan.entries
        regs = machine.registers
        # only registers whose bounds some block reads before writing need
        # exact seeding; the rest get the vacuous (sound) full interval and
        # are overwritten by block writeback before any possible read
        lo = [0] * len(regs)
        hi = [kernels.INT64_LIMIT - 1] * len(regs)
        for i in vplan.binit:
            r = regs[i]
            if r.size:
                lo[i] = int(r.min())
                hi[i] = int(r.max())
            else:
                hi[i] = 0
        n = len(plan)
        pc = 0
        steps = 0
        time = 0
        work = 0
        partial = [0, 0]
        try:
            while pc < n:
                if steps >= max_steps:
                    raise step_budget_error(max_steps)
                kind, payload, extra = plan[pc]
                pc += 1
                if kind == BLOCK:
                    if steps + extra > max_steps:
                        # budget expires mid-block: drive the interp closures
                        # so the run stops (and charges) at exactly the
                        # instruction the unfused loop stops at
                        for fn, rw in payload.steps[: max_steps - steps]:
                            fn(regs)
                            time += 1
                            for r in rw:
                                work += regs[r].size
                        raise step_budget_error(max_steps)
                    steps += extra
                    try:
                        t, w = payload(regs, lo, hi, partial)
                    except BaseException:
                        time += partial[0]
                        work += partial[1]
                        raise
                    time += t
                    work += w
                elif kind == JUMP:
                    steps += 1
                    target = payload(regs)
                    time += 1
                    for r in extra:
                        work += regs[r].size
                    if target >= 0:
                        pc = target
                elif kind == HALT:
                    steps += 1
                    time += 1
                    break
                else:  # TRAP
                    time += 1
                    raise BVRAMError(payload)
        finally:
            machine.time = time
            machine.work = work

    def disassemble(self, program) -> str:
        return self.plan(program).source


VECTOR = register_backend(VectorBackend("vector", "_vector_plan"))
VECTOR_JIT = register_backend(VectorBackend("vector-jit", "_vector_jit_plan", use_jit=True))
