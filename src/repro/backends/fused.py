"""The ``fused`` backend: superinstructions over the interp plan (PR 4).

Maximal straight-line runs of non-jump instructions execute as one *fused*
step function — a single dispatch per block instead of one per instruction —
with the ``T``/``W`` totals accumulated inside the closure.

Block boundaries are forced by control flow only:

* any instruction that is the target of a ``goto`` / ``goto_if_empty``
  starts a new block (execution may enter there mid-stream);
* ``goto`` / ``goto_if_empty`` / ``halt`` / ``trap`` each stay a plan entry
  of their own (they leave the block or the program).

Accounting is **bit-identical** to the traced interpreter (pinned by
``tests/test_optimize.py`` and the ``tests/test_batch.py`` battery): every
instruction is charged 1 time unit plus the post-execution lengths of its
read and written registers, sampled immediately after it executes — a later
instruction in the same block may resize a register, so the work loop cannot
be hoisted out.  When an instruction raises mid-block, the totals of the
instructions before it are reported through a shared ``partial`` cell and
the raising instruction is not charged, matching the traced loop's
charge-after-execute discipline.

The grouping pass (:func:`group_entries`) and the jump re-targeting
(:func:`jump_entry`) are shared with the vector backend, which compiles the
very same blocks into generated NumPy mega-ops instead of closure loops —
both backends therefore agree exactly on plan indices and ``max_steps``
block boundaries.
"""

from __future__ import annotations

from ..bvram import isa
from ..bvram.errors import BVRAMError
from .base import (
    BLOCK,
    HALT,
    JUMP,
    STEP,
    Backend,
    format_listing,
    register_backend,
    step_budget_error,
)
from .interp import plan_for
from .registry import PlanCache


def make_block(steps: list[tuple]) -> tuple:
    """Fuse ``(kernel, rw)`` pairs into one step closure.

    The closure returns ``(time, work)`` for the whole block; if a kernel
    raises, the totals of the completed prefix are written into ``partial``
    before the exception propagates.
    """
    k = len(steps)
    if k == 1:
        fn, rw = steps[0]

        def fused_one(regs, partial, fn=fn, rw=rw):
            fn(regs)
            w = 0
            for r in rw:
                w += regs[r].size
            return 1, w

        # a raising kernel leaves partial untouched: zero completed steps
        fused_one.steps = (steps[0],)
        return fused_one, 1

    def fused(regs, partial, steps=tuple(steps), k=k):
        t = 0
        w = 0
        try:
            for fn, rw in steps:
                fn(regs)
                t += 1
                for r in rw:
                    w += regs[r].size
        except BaseException:
            partial[0] = t
            partial[1] = w
            raise
        return k, w

    # the executor drives the block per-instruction through this attribute
    # when the step budget would expire mid-block (exact max_steps parity)
    fused.steps = tuple(steps)
    return fused, k


def group_entries(program: isa.Program, base: list[tuple]):
    """Group instruction indices into fused-plan entries.

    Returns ``(groups, entry_target)``: ``groups`` is a list of
    ``(entry kind, covered instruction indices)`` in plan order, and
    ``entry_target`` maps an instruction index that is a jump target to its
    plan-entry index (every jump target is a block boundary by
    construction, so the mapping is total; a label one past the end maps to
    ``len(groups)``, falling off the plan).
    """
    code = program.instructions
    labels = program.labels
    targets = {
        labels[instr.label]
        for instr in code
        if isinstance(instr, (isa.Goto, isa.GotoIfEmpty))
    }
    n = len(base)

    groups: list[tuple[int, list[int]]] = []
    i = 0
    while i < n:
        kind = base[i][0]
        if kind != STEP:
            groups.append((kind, [i]))
            i += 1
            continue
        run = [i]
        j = i + 1
        while j < n and base[j][0] == STEP and j not in targets:
            run.append(j)
            j += 1
        groups.append((BLOCK, run))
        i = j

    start_to_entry = {idxs[0]: gi for gi, (_, idxs) in enumerate(groups)}

    def entry_target(instr_index: int) -> int:
        if instr_index >= n:  # label past the last instruction: fall off the end
            return len(groups)
        return start_to_entry[instr_index]

    return groups, entry_target


def jump_entry(program: isa.Program, base: list[tuple], first: int, entry_target) -> tuple:
    """The re-targeted ``(JUMP, fn, rw)`` plan entry for instruction ``first``."""
    instr = program.instructions[first]
    target = entry_target(program.labels[instr.label])
    rw = base[first][2]
    if isinstance(instr, isa.Goto):

        def jump(regs, target=target):
            return target

    else:  # GotoIfEmpty
        src = instr.src

        def jump(regs, target=target, src=src):
            return target if regs[src].size == 0 else -1

    return (JUMP, jump, rw)


def build_fused_plan(program: isa.Program) -> list[tuple]:
    """Compile ``program`` into ``(kind, payload, extra)`` fused-plan entries.

    ``BLOCK`` entries carry ``(fused closure, instruction count)``; jump
    entries are re-targeted from instruction indices to fused-plan indices.
    Entry kinds other than ``BLOCK`` keep the per-instruction plan's
    payload/rw layout.
    """
    base = plan_for(program)
    groups, entry_target = group_entries(program, base)
    plan: list[tuple] = []
    for kind, idxs in groups:
        first = idxs[0]
        if kind == BLOCK:
            steps = [(base[j][1], base[j][2]) for j in idxs]
            plan.append((BLOCK, *make_block(steps)))
        elif kind == JUMP:
            plan.append(jump_entry(program, base, first, entry_target))
        else:  # HALT / TRAP: keep the per-instruction payload
            plan.append((kind, base[first][1], base[first][2]))
    return plan


_CACHE = PlanCache("_fused_plan", build_fused_plan)


def fused_plan_for(program: isa.Program) -> list[tuple]:
    """Build (or fetch the cached) fused plan for ``program``."""
    return _CACHE.lookup(program)


class FusedBackend(Backend):
    """Superinstruction dispatch: one closure call per straight-line block."""

    name = "fused"
    cache_attr = _CACHE.attr

    def plan(self, program):
        return fused_plan_for(program)

    def execute(self, machine, program, max_steps: int) -> None:
        """The block-fused dispatch loop: one call per straight-line block.

        Identical accounting to the interp backend — each instruction inside
        a fused block is charged 1 time unit plus the post-execution lengths
        of its read/written registers, summed per block in the fused
        closure.  A block whose ``j``-th instruction raises reports the
        totals of its first ``j - 1`` instructions through the shared
        ``partial`` cell (the raising instruction itself is not charged,
        matching the traced loop), so error-path totals stay bit-identical.
        """
        plan = fused_plan_for(program)
        regs = machine.registers
        n = len(plan)
        pc = 0
        steps = 0
        time = 0
        work = 0
        partial = [0, 0]
        try:
            while pc < n:
                if steps >= max_steps:
                    raise step_budget_error(max_steps)
                kind, payload, extra = plan[pc]
                pc += 1
                if kind == BLOCK:
                    if steps + extra > max_steps:
                        # the budget expires mid-block: drive the block
                        # per-instruction so the run stops (and charges) at
                        # exactly the instruction the unfused loop stops at
                        for fn, rw in payload.steps[: max_steps - steps]:
                            fn(regs)
                            time += 1
                            for r in rw:
                                work += regs[r].size
                        raise step_budget_error(max_steps)
                    steps += extra
                    try:
                        t, w = payload(regs, partial)
                    except BaseException:
                        time += partial[0]
                        work += partial[1]
                        raise
                    time += t
                    work += w
                elif kind == JUMP:
                    steps += 1
                    target = payload(regs)
                    time += 1
                    for r in extra:
                        work += regs[r].size
                    if target >= 0:
                        pc = target
                elif kind == HALT:
                    steps += 1
                    time += 1
                    break
                else:  # TRAP
                    time += 1
                    raise BVRAMError(payload)
        finally:
            machine.time = time
            machine.work = work

    def disassemble(self, program) -> str:
        base = plan_for(program)
        groups, _ = group_entries(program, base)
        group_of = {}
        for gi, (_, idxs) in enumerate(groups):
            for j in idxs:
                group_of[j] = gi
        header = "".join(
            f"# entry {gi}: {'block' if kind == BLOCK else 'control'} "
            f"[{idxs[0]}..{idxs[-1]}]\n"
            for gi, (kind, idxs) in enumerate(groups)
        )
        return header + format_listing(program, group_of)


FUSED = register_backend(FusedBackend())
