"""Pluggable execution backends for untraced BVRAM runs (PR 6).

A backend turns a validated program into a cached *plan* and drives it with
the exact Section 2 ``T``/``W`` accounting.  Three ship here:

* ``interp`` — one Python closure per instruction (the PR 3 fast path);
* ``fused`` — one closure call per straight-line block (the PR 4/5 default);
* ``vector`` / ``vector-jit`` — each block compiled to one *generated*
  Python function of NumPy mega-ops with interval-bound guard elision
  (``vector-jit`` additionally splices in numba kernels when available).

Select per call (``run(..., backend="vector")``), per program
(``compile_nsc(fn, backend="vector")`` — the choice survives pickling to
shard workers), or per process (``REPRO_BACKEND=vector``).
"""

from .base import (
    BLOCK,
    HALT,
    JUMP,
    STEP,
    TRAP,
    Backend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from . import interp, fused, vector  # noqa: F401  (import registers the backends)
from .interp import INTERP
from .fused import FUSED
from .jit import HAVE_NUMBA
from .vector import VECTOR, VECTOR_JIT

__all__ = [
    "Backend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "STEP",
    "JUMP",
    "HALT",
    "TRAP",
    "BLOCK",
    "INTERP",
    "FUSED",
    "VECTOR",
    "VECTOR_JIT",
    "HAVE_NUMBA",
]
