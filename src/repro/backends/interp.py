"""The ``interp`` backend: one Python closure per instruction.

This is the untraced fast path as it existed before block fusion (PR 3):
the program is pre-compiled once into a threaded plan of per-instruction
closures, no :class:`~repro.bvram.machine.TraceEntry` objects are allocated,
and the ``T``/``W`` counters accumulate in locals flushed back on every
exit.  It remains the reference implementation the other backends build on
— the fused and vector builders both start from :func:`plan_for`'s
``(kind, payload, rw)`` entries, and their mid-block ``max_steps`` fallback
drives these very closures.
"""

from __future__ import annotations

import numpy as np

from ..bvram import isa
from ..bvram.errors import BVRAMError
from . import kernels
from .base import (
    HALT,
    JUMP,
    STEP,
    TRAP,
    Backend,
    format_listing,
    register_backend,
    step_budget_error,
)
from .registry import PlanCache


def build_plan(program: isa.Program) -> list[tuple]:
    """Compile a program into ``(kind, payload, rw)`` tuples, one per instruction.

    ``rw`` is the concatenation of the instruction's read and written
    register indices — exactly the registers the traced loop's ``_charge``
    sums over — so the fast loop can account work without re-deriving them
    every step.
    """
    labels = program.labels
    plan: list[tuple] = []
    for instr in program.instructions:
        rw = instr.registers_read() + instr.registers_written()
        if isinstance(instr, isa.Arith):
            dst, op, a, b = instr.dst, instr.op, instr.a, instr.b
            fn = kernels.ARITH_KERNELS[op]  # op already validated by Arith.__post_init__

            def step(regs, dst=dst, op=op, a=a, b=b, fn=fn):
                va, vb = regs[a], regs[b]
                if va.shape != vb.shape:
                    raise BVRAMError(
                        f"arith {op}: operands have different lengths {va.size} and {vb.size}"
                    )
                regs[dst] = fn(va, vb)

            plan.append((STEP, step, rw))
        elif isinstance(instr, isa.Move):
            dst, src = instr.dst, instr.src

            # No BVRAM instruction mutates a register's array in place (every
            # kernel allocates its output), so the untraced move can alias
            # instead of copying — a list rebind, not a memcpy per phi move.
            def step(regs, dst=dst, src=src):
                regs[dst] = regs[src]

            plan.append((STEP, step, rw))
        elif isinstance(instr, isa.Select):
            dst, src = instr.dst, instr.src

            def step(regs, dst=dst, src=src):
                v = regs[src]
                regs[dst] = v[v != 0]

            plan.append((STEP, step, rw))
        elif isinstance(instr, isa.FlagMerge):
            dst, flags, a, b = instr.dst, instr.flags, instr.a, instr.b

            def step(regs, dst=dst, flags=flags, a=a, b=b):
                regs[dst] = kernels.flag_merge_vec(regs[flags], regs[a], regs[b])

            plan.append((STEP, step, rw))
        elif isinstance(instr, isa.AppendI):
            dst, a, b = instr.dst, instr.a, instr.b

            def step(regs, dst=dst, a=a, b=b):
                regs[dst] = np.concatenate([regs[a], regs[b]])

            plan.append((STEP, step, rw))
        elif isinstance(instr, isa.UnArith):
            dst, op, src = instr.dst, instr.op, instr.src

            def step(regs, dst=dst, op=op, src=src):
                regs[dst] = kernels.un_arith(op, regs[src])

            plan.append((STEP, step, rw))
        elif isinstance(instr, isa.LengthI):
            dst, src = instr.dst, instr.src

            def step(regs, dst=dst, src=src):
                regs[dst] = np.array([regs[src].size], dtype=np.int64)

            plan.append((STEP, step, rw))
        elif isinstance(instr, isa.EnumerateI):
            dst, src = instr.dst, instr.src

            def step(regs, dst=dst, src=src):
                regs[dst] = np.arange(regs[src].size, dtype=np.int64)

            plan.append((STEP, step, rw))
        elif isinstance(instr, isa.LoadEmpty):
            dst = instr.dst

            def step(regs, dst=dst):
                regs[dst] = np.zeros(0, dtype=np.int64)

            plan.append((STEP, step, rw))
        elif isinstance(instr, isa.LoadConst):
            if instr.value < 0:
                raise BVRAMError("load_const: BVRAM registers hold natural numbers")
            dst, arr = instr.dst, np.array([instr.value], dtype=np.int64)

            def step(regs, dst=dst, arr=arr):
                regs[dst] = arr.copy()

            plan.append((STEP, step, rw))
        elif isinstance(instr, isa.BmRoute):
            dst, data, counts, bound = instr.dst, instr.data, instr.counts, instr.bound

            def step(regs, dst=dst, data=data, counts=counts, bound=bound):
                regs[dst] = kernels.bm_route_vec(regs[data], regs[counts], regs[bound])

            plan.append((STEP, step, rw))
        elif isinstance(instr, isa.SbmRoute):
            dst, bound, counts, data, segments = (
                instr.dst,
                instr.bound,
                instr.counts,
                instr.data,
                instr.segments,
            )

            def step(regs, dst=dst, bound=bound, counts=counts, data=data, segments=segments):
                regs[dst] = kernels.sbm_route_vec(
                    regs[bound], regs[counts], regs[data], regs[segments]
                )

            plan.append((STEP, step, rw))
        elif isinstance(instr, isa.SegScan):
            dst, op, data, segments = instr.dst, instr.op, instr.data, instr.segments

            def step(regs, dst=dst, op=op, data=data, segments=segments):
                regs[dst] = kernels.seg_scan_vec(op, regs[data], regs[segments])

            plan.append((STEP, step, rw))
        elif isinstance(instr, isa.SegReduce):
            dst, op, data, segments = instr.dst, instr.op, instr.data, instr.segments

            def step(regs, dst=dst, op=op, data=data, segments=segments):
                regs[dst] = kernels.seg_reduce_vec(op, regs[data], regs[segments])

            plan.append((STEP, step, rw))
        elif isinstance(instr, isa.Goto):
            target = labels[instr.label]

            def step(regs, target=target):
                return target

            plan.append((JUMP, step, rw))
        elif isinstance(instr, isa.GotoIfEmpty):
            target, src = labels[instr.label], instr.src

            def step(regs, target=target, src=src):
                return target if regs[src].size == 0 else -1

            plan.append((JUMP, step, rw))
        elif isinstance(instr, isa.Halt):
            plan.append((HALT, None, rw))
        elif isinstance(instr, isa.Trap):
            plan.append((TRAP, instr.message, rw))
        else:
            raise BVRAMError(f"unknown instruction {instr!r}")
    return plan


_CACHE = PlanCache("_fast_plan", build_plan)


def plan_for(program: isa.Program) -> list[tuple]:
    """Build (or fetch the cached) per-instruction plan for ``program``."""
    return _CACHE.lookup(program)


class InterpBackend(Backend):
    """Per-instruction closure dispatch (the PR 3 untraced loop)."""

    name = "interp"
    cache_attr = _CACHE.attr

    def plan(self, program):
        return plan_for(program)

    def execute(self, machine, program, max_steps: int) -> None:
        """The fast dispatch loop: threaded plan, local T/W accumulators.

        Accounting parity with the traced loop: a raising instruction is not
        charged (the traced loop charges after executing), ``trap`` is
        charged before raising, and the accumulated totals are flushed back
        to the machine on every exit path.
        """
        plan = plan_for(program)
        regs = machine.registers
        n = len(plan)
        pc = 0
        steps = 0
        time = 0
        work = 0
        try:
            while pc < n:
                if steps >= max_steps:
                    raise step_budget_error(max_steps)
                steps += 1
                kind, payload, rw = plan[pc]
                pc += 1
                if kind == STEP:
                    payload(regs)
                    time += 1
                    for r in rw:
                        work += regs[r].size
                elif kind == JUMP:
                    target = payload(regs)
                    time += 1
                    for r in rw:
                        work += regs[r].size
                    if target >= 0:
                        pc = target
                elif kind == HALT:
                    time += 1
                    break
                else:  # TRAP
                    time += 1
                    raise BVRAMError(payload)
        finally:
            machine.time = time
            machine.work = work

    def disassemble(self, program) -> str:
        self.plan(program)  # surface build-time errors exactly like a run
        return format_listing(program)


INTERP = register_backend(InterpBackend())
