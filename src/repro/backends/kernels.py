"""The per-op vector kernels and overflow guards, shared by every backend.

One definition per BVRAM operation, used by the traced interpreter loop, the
``interp`` closure plans, the ``fused`` superinstructions and the generated
code of the ``vector`` backend.  Before PR 6 these lived in
``repro.bvram.machine`` (with the overflow discipline re-stated in
``fuse``); they now sit below the machine so the backends can import them
without a cycle (``bvram.errors <- backends.kernels <- bvram.machine``).

Semantics are exactly the Section 2 machine's:

* registers hold **naturals below 2**63** in int64 vectors; ``+`` and ``*``
  trap (:class:`~repro.bvram.errors.BVRAMError`) on overflow, detected
  exactly (a wrapped natural shows up negative / fails the widening check);
* ``-`` is monus, ``/`` and ``mod`` trap on zero divisors, ``>>`` saturates
  the mathematically-zero shifts numpy leaves undefined;
* the segmented ops validate their descriptors and trap with the same
  messages in every backend — error paths are part of the bit-identical
  contract the differential battery pins.

The ``*_nooverflow`` variants at the bottom are for callers that have
*proved* the partial sums fit (the vector backend's interval bounds): they
keep every descriptor check but skip the cumsum monotonicity scan.  Feeding
them sums that can wrap is a correctness bug, not a slow path.
"""

from __future__ import annotations

import numpy as np

from ..bvram.errors import BVRAMError

#: registers hold naturals strictly below this (signed int64 width)
INT64_LIMIT = 2**63


def arith_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if a.size == 0:
        return a + b
    # fast path: the sum of the operand maxima fits, so no entry can wrap
    if int(a.max()) + int(b.max()) < INT64_LIMIT:
        return a + b
    with np.errstate(over="ignore"):
        c = a + b
    # registers hold naturals < 2**63, so a wrapped sum is exactly a
    # negative signed result
    if int(c.min()) < 0:
        raise BVRAMError("overflow in +: result exceeds the int64 register width")
    return c


def arith_sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.maximum(a - b, 0)  # monus


def arith_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if a.size == 0:
        return a * b
    # fast path: the product of the operand maxima fits, so no entry can wrap
    if int(a.max()) * int(b.max()) < INT64_LIMIT:
        return a * b
    with np.errstate(over="ignore"):
        c = a * b
    # widening check: a wrapped product either goes negative or fails to
    # divide back (c = a*b - k*2**64 with k >= 1 can never reach a*b)
    if int(c.min()) < 0 or bool(
        np.any(c // np.where(a == 0, 1, a) != np.where(a == 0, c, b))
    ):
        raise BVRAMError("overflow in *: result exceeds the int64 register width")
    return c


def arith_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if np.any(b == 0):
        raise BVRAMError("division by zero")
    return a // b


def arith_mod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if np.any(b == 0):
        raise BVRAMError("modulo by zero")
    return a % b


def arith_shr(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # numpy shifts by >= 64 bits are undefined behaviour; mathematically
    # floor(a / 2**b) = 0 for any natural a < 2**63 once b >= 63
    return np.where(b >= 63, 0, a >> np.minimum(b, 62))


#: per-op binary kernels, shared by every backend's emission of ``arith``
ARITH_KERNELS = {
    "+": arith_add,
    "-": arith_sub,
    "*": arith_mul,
    "/": arith_div,
    "mod": arith_mod,
    ">>": arith_shr,
    "min": np.minimum,
    "max": np.maximum,
    "eq": lambda a, b: (a == b).astype(np.int64),
    "le": lambda a, b: (a <= b).astype(np.int64),
    "lt": lambda a, b: (a < b).astype(np.int64),
}


def arith(op: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    fn = ARITH_KERNELS.get(op)
    if fn is None:
        raise BVRAMError(f"unknown arithmetic op {op!r}")
    if a.shape != b.shape:
        raise BVRAMError(f"arith {op}: operands have different lengths {a.size} and {b.size}")
    return fn(a, b)


def un_arith(op: str, a: np.ndarray) -> np.ndarray:
    if op == "log2":
        # floor(log2(a)); log2(0) = 0 by the NSC convention
        out = np.zeros_like(a)
        pos = a > 0
        if pos.any():
            out[pos] = np.floor(np.log2(a[pos])).astype(np.int64)
            # float rounding near powers of two: fix up exactly.  A natural
            # < 2**63 has floor(log2) <= 62, so out >= 63 (np.log2(2**63 - 1)
            # rounds to exactly 63.0) is always one too big.
            too_big = pos & ((out >= 63) | ((np.int64(1) << np.minimum(out, 62)) > a))
            out[too_big] -= 1
        return out
    if op == "sqrt":
        out = np.sqrt(a.astype(np.float64)).astype(np.int64)
        # isqrt semantics: largest k with k*k <= a (fix float rounding)
        out = np.where(out * out > a, out - 1, out)
        out = np.where((out + 1) * (out + 1) <= a, out + 1, out)
        return out
    raise BVRAMError(f"unknown unary arithmetic op {op!r}")


def flag_merge_vec(flags: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Order-preserving merge of ``a``/``b`` routed by the non-zero flags."""
    n_true = int(np.count_nonzero(flags))
    if a.size != n_true:
        raise BVRAMError(
            f"flag_merge: {n_true} non-zero flags but the true-branch register has length {a.size}"
        )
    if a.size + b.size != flags.size:
        raise BVRAMError(
            f"flag_merge: flags have length {flags.size} but the branches "
            f"have total length {a.size + b.size}"
        )
    out = np.empty(flags.size, dtype=np.int64)
    mask = flags != 0
    out[mask] = a
    out[~mask] = b
    return out


def check_segments(data: np.ndarray, segments: np.ndarray, opcode: str) -> None:
    if segments.size and int(segments.min()) < 0:
        raise BVRAMError(f"{opcode}: segment descriptor holds negative lengths")
    if int(segments.sum()) != data.size:
        raise BVRAMError(
            f"{opcode}: segment descriptor sums to {int(segments.sum())} "
            f"but the data register has length {data.size}"
        )


def checked_cumsum(data: np.ndarray, opcode: str) -> np.ndarray:
    """Inclusive int64 cumsum of naturals, trapping on overflow.

    Addends are < 2**63, so a wrapped partial sum shows up as a *decrease*
    (the new value is the true one minus 2**64) — monotonicity is an exact
    overflow test, matching the BVRAMError that ``arith +`` raises.
    """
    with np.errstate(over="ignore"):
        cs = np.cumsum(data)
    if cs.size and (int(cs[0]) < 0 or bool(np.any(cs[1:] < cs[:-1]))):
        raise BVRAMError(f"overflow in {opcode}: partial sum exceeds the int64 register width")
    return cs


def _seg_scan_add(cs: np.ndarray, segments: np.ndarray) -> np.ndarray:
    """Exclusive segmented prefix sums from the inclusive cumsum ``cs``."""
    running = np.concatenate([[0], cs[:-1]])
    starts = np.cumsum(segments) - segments  # first data index of each segment
    nonempty = segments > 0
    base = np.repeat(running[starts[nonempty]], segments[nonempty])
    return running - base


def seg_scan_vec(op: str, data: np.ndarray, segments: np.ndarray) -> np.ndarray:
    """Exclusive per-segment scan (identity 0) of ``data`` under ``segments``."""
    check_segments(data, segments, "seg_scan")
    if data.size == 0:
        return np.zeros(0, dtype=np.int64)
    if op == "+":
        return _seg_scan_add(checked_cumsum(data, "seg_scan +"), segments)
    if op == "max":
        # exclusive running max per segment (correct but simple; vectors are
        # the hot path of the *simulated* machine, not of this host code)
        out = np.zeros(data.size, dtype=np.int64)
        pos = 0
        for seg_len in segments.tolist():
            if seg_len:
                seg = data[pos : pos + seg_len]
                if seg_len > 1:
                    out[pos + 1 : pos + seg_len] = np.maximum.accumulate(seg[:-1])
                pos += seg_len
        return out
    raise BVRAMError(f"unknown segmented op {op!r}")


def seg_reduce_vec(op: str, data: np.ndarray, segments: np.ndarray) -> np.ndarray:
    """Per-segment reduction of ``data`` under ``segments`` (identity 0)."""
    check_segments(data, segments, "seg_reduce")
    if segments.size == 0:
        return np.zeros(0, dtype=np.int64)
    if op == "+":
        if data.size == 0:
            return np.zeros(segments.size, dtype=np.int64)
        total = np.concatenate([[0], checked_cumsum(data, "seg_reduce +")])
        ends = np.cumsum(segments)
        return (total[ends] - total[ends - segments]).astype(np.int64)
    if op == "max":
        out = np.zeros(segments.size, dtype=np.int64)
        if data.size:
            ids = np.repeat(np.arange(segments.size), segments)
            np.maximum.at(out, ids, data)
        return out
    raise BVRAMError(f"unknown segmented op {op!r}")


def seg_scan_add_nooverflow(data: np.ndarray, segments: np.ndarray) -> np.ndarray:
    """``seg_scan_vec('+', ...)`` for callers that proved the sums fit."""
    check_segments(data, segments, "seg_scan")
    if data.size == 0:
        return np.zeros(0, dtype=np.int64)
    return _seg_scan_add(np.cumsum(data), segments)


def seg_reduce_add_nooverflow(data: np.ndarray, segments: np.ndarray) -> np.ndarray:
    """``seg_reduce_vec('+', ...)`` for callers that proved the sums fit."""
    check_segments(data, segments, "seg_reduce")
    if segments.size == 0:
        return np.zeros(0, dtype=np.int64)
    if data.size == 0:
        return np.zeros(segments.size, dtype=np.int64)
    total = np.concatenate([[0], np.cumsum(data)])
    ends = np.cumsum(segments)
    return (total[ends] - total[ends - segments]).astype(np.int64)


def bm_route_vec(data: np.ndarray, counts: np.ndarray, bound: np.ndarray) -> np.ndarray:
    """Bounded monotone routing on vectors (the semantics of the instruction)."""
    if data.size != counts.size:
        raise BVRAMError("bm_route: data and counts must have the same length")
    if int(counts.sum()) != bound.size:
        raise BVRAMError("bm_route: counts must sum to the length of the bound register")
    return np.repeat(data, counts)


def sbm_route_vec(
    bound: np.ndarray, counts: np.ndarray, data: np.ndarray, segments: np.ndarray
) -> np.ndarray:
    """Segmented bounded monotone routing on vectors."""
    if counts.size != segments.size:
        raise BVRAMError("sbm_route: counts and segment descriptor must have the same length")
    if int(segments.sum()) != data.size:
        raise BVRAMError("sbm_route: segment descriptor must sum to the data length")
    out: list[np.ndarray] = []
    pos = 0
    for seg_len, count in zip(segments.tolist(), counts.tolist()):
        seg = data[pos : pos + seg_len]
        pos += seg_len
        if count:
            out.append(np.tile(seg, count))
    result = np.concatenate(out) if out else np.zeros(0, dtype=np.int64)
    # The bound pair (bound, counts) must itself be a nested sequence, i.e.
    # the counts describe a segmentation of the bound register.  This is the
    # restriction that keeps a single instruction from growing the data by
    # more than the product of two register lengths (Section 2).
    if bound.size != int(counts.sum()):
        raise BVRAMError(
            f"sbm_route: bound register has length {bound.size}, expected sum(counts) = {int(counts.sum())}"
        )
    return result
