"""Optional numba tier for the kernels the ``vector`` backend can't fuse.

Two kernels keep Python-level loops even under the vector backend:
``seg_scan 'max'`` (exclusive running max per segment) and ``sbm_route``
(nested tile loop).  When numba is importable, :func:`jit_kernels` returns
``@njit``-compiled replacements for them; the ``vector-jit`` backend splices
these into its generated-code namespace.  Without numba the dict is empty
and ``vector-jit`` degrades to the plain ``vector`` namespace — same
results, same errors, just slower on those two kernels.

The container this repo targets does **not** ship numba, so everything here
is probe-gated: importing this module never raises, and the numba-specific
tests skip clean.  Validation (descriptor checks, error messages) stays in
the Python wrappers, byte-identical to :mod:`repro.backends.kernels`, so
the differential battery cannot tell the tiers apart.
"""

from __future__ import annotations

import numpy as np

from ..bvram.errors import BVRAMError
from . import kernels

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # the supported default in this container
    njit = None
    HAVE_NUMBA = False


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @njit(cache=True)
    def _seg_scan_max_inner(data, segments, out):
        pos = 0
        for si in range(segments.size):
            seg_len = segments[si]
            running = np.int64(0)
            for k in range(seg_len):
                out[pos + k] = running
                if data[pos + k] > running:
                    running = data[pos + k]
            pos += seg_len

    @njit(cache=True)
    def _sbm_route_inner(counts, data, segments, out):
        pos = 0
        opos = 0
        for si in range(segments.size):
            seg_len = segments[si]
            for _ in range(counts[si]):
                for k in range(seg_len):
                    out[opos] = data[pos + k]
                    opos += 1
            pos += seg_len

    def seg_scan_vec(op, data, segments):
        if op != "max":
            return kernels.seg_scan_vec(op, data, segments)
        kernels.check_segments(data, segments, "seg_scan")
        out = np.zeros(data.size, dtype=np.int64)
        if data.size:
            _seg_scan_max_inner(data, segments, out)
        return out

    def sbm_route_vec(bound, counts, data, segments):
        if counts.size != segments.size:
            raise BVRAMError(
                "sbm_route: counts and segment descriptor must have the same length"
            )
        if int(segments.sum()) != data.size:
            raise BVRAMError("sbm_route: segment descriptor must sum to the data length")
        total = int((segments * counts).sum())
        out = np.empty(total, dtype=np.int64)
        if total:
            _sbm_route_inner(counts, data, segments, out)
        if bound.size != int(counts.sum()):
            raise BVRAMError(
                f"sbm_route: bound register has length {bound.size}, "
                f"expected sum(counts) = {int(counts.sum())}"
            )
        return out


def jit_kernels() -> dict:
    """Namespace overrides for the ``vector-jit`` backend (empty sans numba)."""
    if not HAVE_NUMBA:
        return {}
    return {"_k_seg_scan": seg_scan_vec, "_k_sbm_route": sbm_route_vec}
