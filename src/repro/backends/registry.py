"""One fork-safe home for every lazily-built execution cache.

PRs 3-5 each grew a private ``threading.Lock`` plus its own
``os.register_at_fork`` handler (``machine._reinit_plan_lock``,
``fuse._reinit_fuse_lock``, the batched-twin lock in
``repro.compiler.batch``).  Three copies of the same idiom is two too many,
and a fourth was about to appear for the vector backend's plan cache.  This
module is the single replacement:

* :class:`ForkSafeLock` — a ``threading.Lock`` that re-initialises itself in
  forked children.  ``os.fork`` copies a lock in whatever state the forking
  thread saw; if any *other* thread held it at fork time, every acquisition
  in the child would deadlock.  One process-wide ``after_in_child`` handler
  walks the registry and replaces every registered lock with a fresh one.
* :class:`PlanCache` — the identity-snapshot, double-checked cache the plan
  builders all share.  The cached value lives on the program object under
  ``attr`` together with a snapshot of the exact instruction objects it was
  built from: the snapshot keeps them alive, and any in-place edit of the
  instruction list — append, replacement, reorder — fails the snapshot
  comparison and rebuilds.  The comparison is a single C-level list ``==``
  (identity-shortcut per element), far below the cost of one instruction.

Both are meant for **module-level singletons** (a handful per process): the
registry holds strong references to every registered reset callback for the
life of the process, by design — cache locks are process-lifetime objects.
"""

from __future__ import annotations

import os
import threading
from typing import Callable

_RESETS: list[Callable[[], None]] = []
_REGISTRY_LOCK = threading.Lock()


def register_reset(fn: Callable[[], None]) -> None:
    """Register ``fn`` to run in every forked child (after-in-child).

    Used by :class:`ForkSafeLock` automatically; other fork-sensitive caches
    may register their own reset.  Callbacks run in registration order and
    must not raise.
    """
    with _REGISTRY_LOCK:
        _RESETS.append(fn)


def _after_fork_in_child() -> None:
    # the registry lock itself is subject to the same mid-acquisition hazard
    global _REGISTRY_LOCK
    _REGISTRY_LOCK = threading.Lock()
    for fn in list(_RESETS):
        fn()


os.register_at_fork(after_in_child=_after_fork_in_child)


class ForkSafeLock:
    """A mutex whose child-side copy is always released after ``os.fork``.

    Drop-in for the ``threading.Lock`` subset the caches use (context
    manager, ``acquire(timeout=...)``, ``release``, ``locked``).  Never held
    while *executing* a plan — only while building one — so replacing the
    inner lock in a forked child cannot strand a critical section that
    matters in that child.
    """

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()
        register_reset(self._reset)

    def _reset(self) -> None:
        self._lock = threading.Lock()

    def __enter__(self) -> "ForkSafeLock":
        self._lock.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self._lock.release()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        return self._lock.acquire(blocking, timeout)

    def release(self) -> None:
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()


class PlanCache:
    """Identity-snapshot plan cache stored on the program object.

    ``attr`` names the per-program attribute (it must be listed in
    ``CompiledProgram._CACHE_ATTRS`` so plans never cross a pickle
    boundary); ``build`` compiles a plan from a program.  Thread-safe: the
    lock-free fast path reads one attribute (an atomic tuple under the GIL);
    a miss takes the cache's own :class:`ForkSafeLock`, re-checks, and
    builds at most once per program generation.

    Nested lookups (the fused and vector builders call the interp cache for
    the base plan) are safe because every cache has its *own* lock and the
    build dependencies are acyclic — the acquisition order is fixed by the
    builder chain, so plain non-reentrant locks suffice.
    """

    __slots__ = ("attr", "_build", "_lock")

    def __init__(self, attr: str, build: Callable) -> None:
        self.attr = attr
        self._build = build
        self._lock = ForkSafeLock()

    def _get(self, program):
        cached = getattr(program, self.attr, None)
        if cached is not None:
            snapshot, plan = cached
            # list ``==`` short-circuits on element *identity* before falling
            # back to value equality, so an untouched program costs one
            # C-level pointer scan — and a value-equal replacement (same
            # instruction, new object) soundly keeps the plan
            if snapshot == program.instructions:
                return plan
        return None

    def lookup(self, program):
        """The cached plan for ``program``, building it on first use."""
        plan = self._get(program)
        if plan is not None:
            return plan
        with self._lock:
            plan = self._get(program)
            if plan is not None:
                return plan
            plan = self._build(program)
            setattr(program, self.attr, (list(program.instructions), plan))
        return plan
