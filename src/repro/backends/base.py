"""The ``Backend`` interface and the named-backend registry.

A *backend* owns one way of executing a validated BVRAM program in untraced
mode: it compiles the program into a **plan** (cached on the program object
under its own ``cache_attr``, see :class:`~repro.backends.registry.PlanCache`)
and drives that plan with exact Section 2 accounting.  The contract every
implementation must honour — pinned by ``tests/test_optimize.py``,
``tests/test_backends.py`` and the differential fuzz battery:

* final register contents, ``T'`` and ``W'`` are **bit-identical** to a
  traced run, including on every error path (a raising instruction is not
  charged; ``trap`` is charged before raising; a ``max_steps`` overrun stops
  and charges at exactly the instruction the traced loop stops at);
* plans are derived state: they must never cross a pickle boundary
  (``CompiledProgram._CACHE_ATTRS`` lists every ``cache_attr``) and must be
  rebuildable from the program alone, so a shard worker that receives the
  bare program re-derives the plan of the program's *selected* backend;
* plan caches are fork-safe (their locks live in
  :mod:`repro.backends.registry`); a forked child inherits warm plans and
  may keep using them.

Selection (:func:`resolve_backend`) is by name, in precedence order:
explicit ``backend=`` argument, the program's own ``backend`` attribute
(survives pickling — this is how a shard worker learns the choice), the
``REPRO_BACKEND`` environment variable, then the ``fused`` default.
``BVRAM.run(..., fuse=False)`` keeps its historical meaning: the
per-instruction ``interp`` backend.
"""

from __future__ import annotations

import os

from ..bvram.errors import BVRAMError

#: plan entry kinds, shared by every backend's plan representation
STEP = 0  # plain register op: fn(regs) executes it
JUMP = 1  # control flow: fn(regs) returns the next pc, or -1 to fall through
HALT = 2
TRAP = 3  # payload is the trap message
BLOCK = 4  # fused straight-line block: one call executes many instructions


class Backend:
    """One untraced execution strategy for BVRAM programs."""

    #: registry name (``backend="..."`` selects it)
    name: str = "?"
    #: program attribute holding this backend's cached plan; every value
    #: must be listed in ``CompiledProgram._CACHE_ATTRS``
    cache_attr: str = "?"

    def plan(self, program):
        """Build (or fetch the cached) execution plan for ``program``."""
        raise NotImplementedError

    def execute(self, machine, program, max_steps: int) -> None:
        """Run ``program`` on ``machine``, leaving T/W on the machine.

        Accounting flushes to ``machine.time`` / ``machine.work`` on every
        exit path (normal, trap, error, step overrun).
        """
        raise NotImplementedError

    def disassemble(self, program) -> str:
        """Human-readable plan listing / generated source, for debugging."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


_BACKENDS: dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    _BACKENDS[backend.name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def get_backend(name: str) -> Backend:
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(sorted(_BACKENDS))}"
        ) from None


def resolve_backend(backend=None, program=None, fuse: bool = True) -> Backend:
    """The backend to run with, per the module-docstring precedence order."""
    if isinstance(backend, Backend):
        return backend
    if backend is None:
        if not fuse:
            backend = "interp"
        else:
            backend = (
                getattr(program, "backend", None)
                or os.environ.get("REPRO_BACKEND")
                or "fused"
            )
    return get_backend(backend)


def format_listing(program, group_of=None) -> str:
    """A labelled instruction listing, optionally annotated with block ids.

    ``group_of`` maps an instruction index to the plan-entry index covering
    it (the fused/vector disassemblers pass it to show superinstruction
    boundaries).
    """
    by_index: dict[int, list[str]] = {}
    for lbl, idx in sorted(program.labels.items()):
        by_index.setdefault(idx, []).append(lbl)
    lines = []
    for i, instr in enumerate(program.instructions):
        for lbl in by_index.get(i, ()):
            lines.append(f"{lbl}:")
        entry = "" if group_of is None else f"  [entry {group_of[i]}]"
        lines.append(f"  {i:4d}  {instr!r}{entry}")
    for lbl in by_index.get(len(program.instructions), ()):
        lines.append(f"{lbl}:")
    return "\n".join(lines) + "\n"


def step_budget_error(max_steps: int) -> BVRAMError:
    """The uniform ``max_steps`` overrun trap every backend raises."""
    return BVRAMError(f"exceeded {max_steps} steps (non-terminating program?)")
