"""Zero-copy span transport: ship batch encodings by reference, not by value.

The motivating measurement (ROADMAP: "Distributed serving tier + zero-copy
transport"): the shard executor's original wire format pickled every span's
S-objects through a ``multiprocessing.Queue``, and on small machines the
serialize/copy/deserialize round-trip *cost more than the parallelism won* —
0.94–0.98x against single-process serving.  The fix exploits the compiler's
canonical flat encoding: a batch of B inputs is already a handful of
contiguous ``int64`` vectors (see :func:`repro.compiler.codegen.encode_batch`),
so the parent can encode **once**, place the vectors in one
``multiprocessing.shared_memory`` segment, and describe each span to its
worker as ``(offset, length)`` pairs — the worker builds its register file
as read-only views into the mapping and runs without any per-span re-encode.
Results return the same way: the batched twin's output registers are again
flat vectors, copied once into a worker-created segment the parent adopts.

Three transports, best first:

``shm``
    Shared-memory segments as above.  One segment per dispatched batch
    (refcounted by its pending spans) plus one per span result; explicit
    lifecycle via :class:`SegmentLedger` — create/adopt, retain/release,
    unlink-at-zero, and a leak check on close.
``oob``
    The fallback when shared memory is unavailable: the span's field views
    are serialized with pickle protocol 5 and ``buffer_callback``, so the
    payload crossing the queue is a tiny metadata pickle plus raw
    out-of-band frames — a straight ``memcpy`` of contiguous buffers, still
    no S-object graph walk and no per-span re-encode.
``pickle``
    The legacy values-by-pickle wire format, kept for programs whose inputs
    cannot be batch-encoded (and as an escape hatch, ``REPRO_SHARD_TRANSPORT=pickle``).

Resource-tracker discipline (the part everyone gets wrong): Python's
``resource_tracker`` registers a segment not only on create but *also on
attach* (opt-out arrives only with 3.13's ``track=False``).  The saving
grace is that every worker inherits the parent's tracker process (the pipe
fd crosses both fork and spawn), and the tracker's registry is a *set* —
so a worker re-registering a parent-owned segment is an idempotent no-op,
and the one ``unlink()`` the owning side eventually performs is also the
one unregister.  The rule here is therefore: **never unregister manually**
(an early unregister from a non-owner cancels the owner's registration and
turns the final unlink into a tracker ``KeyError``); let ``unlink`` settle
the books, and have :func:`sweep_orphans` unregister the segments it
reaps on a dead worker's behalf.  Net effect: a segment is unlinked
exactly once, and anything orphaned by a crash is still reclaimed — by
the sweep immediately, or by the tracker at shutdown as a last resort.
"""

from __future__ import annotations

import glob
import os
import pickle
import threading
from itertools import count as _count
from typing import Optional, Sequence

import numpy as np

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shm_mod
except ImportError:  # pragma: no cover
    _shm_mod = None
try:  # pragma: no cover
    from multiprocessing import resource_tracker as _tracker
except ImportError:  # pragma: no cover
    _tracker = None

TRANSPORT_SHM = "shm"
TRANSPORT_OOB = "oob"
TRANSPORT_PICKLE = "pickle"
TRANSPORTS = (TRANSPORT_SHM, TRANSPORT_OOB, TRANSPORT_PICKLE)

#: environment override for the executor's transport choice
ENV_TRANSPORT = "REPRO_SHARD_TRANSPORT"

#: every segment name starts with this; the orphan sweep globs for it
SEGMENT_PREFIX = "repro-shard"

_ITEMSIZE = 8  # the whole encoding is int64
_seg_counter = _count()
_shm_probe: Optional[bool] = None


def shm_available() -> bool:
    """Probe (once) whether shared-memory segments actually work here."""
    global _shm_probe
    if _shm_probe is None:
        if _shm_mod is None:
            _shm_probe = False
        else:
            try:
                seg = _shm_mod.SharedMemory(create=True, size=_ITEMSIZE)
                seg.close()
                seg.unlink()
                _shm_probe = True
            except Exception:
                _shm_probe = False
    return _shm_probe


def resolve_transport(requested: Optional[str] = None) -> str:
    """The effective transport: explicit arg, else env, else best available.

    ``"auto"`` (and the unset default) picks ``shm`` when the probe
    succeeds and ``oob`` otherwise; an explicit ``shm`` request also
    degrades to ``oob`` when the platform has no shared memory — the
    transports are semantically identical, so silently falling back is
    safer than failing dispatch.
    """
    name = requested or os.environ.get(ENV_TRANSPORT) or "auto"
    if name == "auto":
        return TRANSPORT_SHM if shm_available() else TRANSPORT_OOB
    if name not in TRANSPORTS:
        raise ValueError(
            f"unknown shard transport {name!r} (choose from {', '.join(TRANSPORTS)} or auto)"
        )
    if name == TRANSPORT_SHM and not shm_available():
        return TRANSPORT_OOB
    return name


def _unregister(name: str) -> None:
    """Drop a reaped segment from the shared resource tracker (see module doc)."""
    if _tracker is None:  # pragma: no cover - import guard
        return
    try:
        _tracker.unregister("/" + name if not name.startswith("/") else name,
                            "shared_memory")
    except Exception:  # pragma: no cover - tracker already gone
        pass


def _destroy(seg) -> None:
    try:
        seg.close()
    except Exception:
        pass
    try:
        seg.unlink()
    except FileNotFoundError:
        pass
    except Exception:
        pass


def _create_named(nbytes: int):
    """A fresh uniquely-named segment (pid + counter; retries collisions)."""
    last: Optional[BaseException] = None
    for _ in range(64):
        name = f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_seg_counter)}"
        try:
            return _shm_mod.SharedMemory(name=name, create=True, size=max(1, nbytes))
        except FileExistsError as e:  # pid reuse over a leaked segment
            last = e
    raise last  # pragma: no cover - 64 consecutive collisions


class SegmentLedger:
    """Parent-side registry of live shared-memory segments, refcounted.

    A batch segment enters with one reference per dispatched span and loses
    one as each span completes (result collected, worker error recomputed,
    or span reclaimed from a dead worker) — at zero it is closed and
    unlinked.  Result segments enter via :meth:`adopt` with a single
    reference.  :meth:`close` force-releases everything and returns the
    names that were still referenced: the leak check the tests assert
    empty.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._live: dict[str, list] = {}  # name -> [segment, refcount]
        self.created = 0
        self.adopted = 0
        self.bytes_shipped = 0

    def create(self, nbytes: int, refs: int):
        seg = _create_named(nbytes)
        with self._lock:
            self._live[seg.name] = [seg, refs]
            self.created += 1
            self.bytes_shipped += nbytes
        return seg

    def adopt(self, name: str):
        """Attach a worker-created segment, taking ownership (we will unlink)."""
        seg = _shm_mod.SharedMemory(name=name)
        with self._lock:
            self._live[name] = [seg, 1]
            self.adopted += 1
        return seg

    def release(self, name: Optional[str], n: int = 1) -> None:
        if name is None:
            return
        with self._lock:
            entry = self._live.get(name)
            if entry is None:
                return
            entry[1] -= n
            if entry[1] > 0:
                return
            del self._live[name]
            seg = entry[0]
        _destroy(seg)

    def live(self) -> list[str]:
        """Names of segments currently held (for the tests' leak assertions)."""
        with self._lock:
            return sorted(self._live)

    def close(self) -> list[str]:
        """Force-release every segment; returns the names that leaked."""
        with self._lock:
            leaked = sorted(self._live)
            entries = list(self._live.values())
            self._live.clear()
        for seg, _ in entries:
            _destroy(seg)
        return leaked


def sweep_orphans(pids: Sequence[int]) -> list[str]:
    """Best-effort unlink of segments created by the given (dead) processes.

    A worker killed between creating a result segment and the parent
    adopting it leaves an orphan no live process owns; its name carries the
    creator's pid, so the executor sweeps ``/dev/shm`` for the pids of
    workers it buried (and settles the dead worker's resource-tracker
    registration).  Only ever called for processes known to be dead.
    """
    removed: list[str] = []
    base = "/dev/shm"
    if not os.path.isdir(base):  # pragma: no cover - non-Linux shm layout
        return removed
    for pid in pids:
        for path in glob.glob(os.path.join(base, f"{SEGMENT_PREFIX}-{pid}-*")):
            name = os.path.basename(path)
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - raced with the tracker
                continue
            _unregister(name)
            removed.append(name)
    return removed


# -- shm codec ----------------------------------------------------------------


def pack_fields(
    ledger: SegmentLedger, fields: Sequence[np.ndarray], refs: int
) -> tuple[Optional[str], list[int]]:
    """Copy one batch's field vectors into a single ledger-owned segment.

    This is the **one** copy the transport pays on the way in (the encode
    itself wrote into ordinary heap arrays).  Returns the segment name and
    the element offset of each field within it; a zero-element batch
    encoding needs no segment at all (``None``).
    """
    total = sum(int(f.size) for f in fields)
    if total == 0:
        return None, [0] * len(fields)
    seg = ledger.create(total * _ITEMSIZE, refs)
    buf = np.ndarray(total, dtype=np.int64, buffer=seg.buf)
    bases: list[int] = []
    off = 0
    for f in fields:
        n = int(f.size)
        buf[off : off + n] = f
        bases.append(off)
        off += n
    return seg.name, bases


def span_descriptor(
    views: Sequence[np.ndarray], fields: Sequence[np.ndarray], bases: Sequence[int]
) -> list[tuple[int, int]]:
    """``(element offset, length)`` into the packed segment per field view.

    ``views`` is one span's entry of
    :func:`repro.compiler.codegen.split_batch` over exactly these
    ``fields``; each view is a contiguous slice of its field, so its offset
    is plain pointer arithmetic against the field base.
    """
    desc: list[tuple[int, int]] = []
    for v, f, b in zip(views, fields, bases):
        if v.size and f.size:
            off = (
                v.__array_interface__["data"][0] - f.__array_interface__["data"][0]
            ) // _ITEMSIZE
        else:
            off = 0
        desc.append((int(b) + int(off), int(v.size)))
    return desc


def attach_span(name: Optional[str], desc: Sequence[tuple[int, int]]):
    """Worker-side: map the batch segment, build read-only span field views.

    Returns ``(segment, views)``; the caller must ``close()`` the segment
    when the span is done (never unlink — the parent owns it).  The views
    are marked read-only so a kernel that ever tried to mutate an input
    register in place would fail loudly instead of corrupting a sibling
    span's data.
    """
    if name is None:
        return None, [np.empty(ln, dtype=np.int64) for _, ln in desc]
    seg = _shm_mod.SharedMemory(name=name)
    views = []
    for off, ln in desc:
        v = np.ndarray(ln, dtype=np.int64, buffer=seg.buf, offset=off * _ITEMSIZE)
        v.flags.writeable = False
        views.append(v)
    return seg, views


def pack_registers(
    arrays: Sequence[np.ndarray],
) -> tuple[Optional[str], list[tuple[int, int]]]:
    """Worker-side: copy output registers into a fresh segment, then close it.

    Returns ``(name, descriptors)``; ownership crosses the process boundary
    with the message — the parent adopts the segment by name, decodes the
    outputs, and unlinks it.  All-empty outputs ship without a segment.
    """
    arrs = [np.asarray(a, dtype=np.int64) for a in arrays]
    total = sum(int(a.size) for a in arrs)
    if total == 0:
        return None, [(0, int(a.size)) for a in arrs]
    seg = _create_named(total * _ITEMSIZE)
    buf = np.ndarray(total, dtype=np.int64, buffer=seg.buf)
    desc: list[tuple[int, int]] = []
    off = 0
    for a in arrs:
        n = int(a.size)
        buf[off : off + n] = a
        desc.append((off, n))
        off += n
    seg.close()
    return seg.name, desc


def adopt_views(
    ledger: SegmentLedger, name: Optional[str], desc: Sequence[tuple[int, int]]
) -> list[np.ndarray]:
    """Parent-side: adopt a result segment and view its field vectors.

    The caller decodes the views and then ``ledger.release(name)``s the
    segment; with ``name=None`` (all-empty outputs) the views are plain
    empty arrays.
    """
    if name is None:
        return [np.empty(ln, dtype=np.int64) for _, ln in desc]
    seg = ledger.adopt(name)
    return [
        np.ndarray(ln, dtype=np.int64, buffer=seg.buf, offset=off * _ITEMSIZE)
        for off, ln in desc
    ]


# -- pickle-5 out-of-band codec ----------------------------------------------


def pack_oob(arrays: Sequence[np.ndarray]) -> tuple[bytes, list[bytes]]:
    """Serialize field vectors as (metadata pickle, raw out-of-band frames).

    Pickle protocol 5's ``buffer_callback`` hands each array's contiguous
    buffer out instead of embedding it, so the metadata stays tiny and the
    frames are verbatim ``memcpy``s of the int64 data — no object graph, no
    per-element work.  NumPy ≥ 1.16 implements the out-of-band protocol for
    C-contiguous arrays; the split-batch views are 1-D unit-stride slices,
    hence always eligible.
    """
    arrs = [np.ascontiguousarray(a, dtype=np.int64) for a in arrays]
    buffers: list = []
    meta = pickle.dumps(arrs, protocol=5, buffer_callback=buffers.append)
    return meta, [pb.raw().tobytes() for pb in buffers]


def unpack_oob(meta: bytes, frames: Sequence[bytes]) -> list[np.ndarray]:
    """Rebuild the field vectors over the received frames (read-only views)."""
    return pickle.loads(meta, buffers=[memoryview(f) for f in frames])
