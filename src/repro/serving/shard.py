"""Multi-core shard execution: spread one large batch across worker processes.

``run_batch`` amortises Python dispatch over the batch, but one process is
still one core — at batch 512 the single machine run saturates it.  The
paper's Brent bound (``O(T' + W'/p)``, Proposition 3.2) says the work side
scales with processors, and the batch axis is the trivially safe place to
cut: requests are independent, so splitting the batch into contiguous spans
and running each span's batched machine on its own core changes nothing
about any request's semantics.

:class:`ShardExecutor` owns a pool of **persistent** worker processes.  Each
worker receives a program at most once (pickled without its run-time caches,
see ``CompiledProgram.__getstate__``), compiles its batched twin and
execution plans locally on first use, and keeps them in a bounded per-worker
cache.

Spans travel over the **zero-copy transport** (:mod:`repro.serving.transport`):
the parent encodes the batch once into its canonical flat ``int64`` vectors,
places them in one shared-memory segment, and each worker builds its register
file as read-only views addressed by ``(offset, length)`` descriptors — no
per-span re-encode, no pickled S-object graphs.  Results return the same way
(the batched twin's output registers, copied once into a worker-created
segment the parent adopts and decodes).  Segment lifecycle is explicit: a
batch segment holds one reference per pending span and is unlinked when the
last span completes; :meth:`ShardExecutor.close` force-releases everything,
records what leaked, and sweeps orphans left by dead workers.  Where shared
memory is unavailable the spans ship as pickle-5 out-of-band frames
(``oob``), and programs whose inputs cannot be batch-encoded fall back to
the legacy pickled-values wire format per batch.

When a compile cache is configured (:mod:`repro.cache`, ``REPRO_CACHE_DIR``
or the ``cache=`` constructor knob), workers **warm from the cache instead
of being shipped pickled programs**: the executor writes each program's
envelope into the store once (reusing the very bytes it would have shipped)
and sends only the content digest; the worker reads the artifact from disk.
The resolved cache directory *and size bound* are pinned into the worker's
spawn arguments, so a worker never re-reads ``REPRO_CACHE_DIR`` /
``REPRO_CACHE_MAX_MB`` from an environment that may differ from the
parent's.  The blob-shipping path remains the fallback whenever the store
misses, so correctness never depends on the cache; :meth:`warm` additionally
pre-loads a program list into every worker before any traffic arrives (the
router's cache warm-up).

Semantics mirror :func:`repro.compiler.batch.run_batch` exactly:

* results are reassembled **order-preserving** (span order = batch order);
* a trapping input is attributed to its **global** batch index — a worker
  reports shard-local indices and the executor re-bases them by the span
  offset (:meth:`BatchError.rebased`);
* ``return_exceptions=True`` places each input's :class:`BatchError` in its
  own slot with every sibling — including siblings in *other* shards —
  computed exactly; with ``return_exceptions=False`` the error with the
  smallest global index is raised (the same first-failure rule as the
  single-process fallback loop);
* a worker that dies mid-task is detected, its spans are re-run in-process
  (correctness never depends on the pool), and a replacement worker is
  spawned for subsequent batches.  Every worker reports into its **own**
  result queue, so a worker killed mid-``put()`` — which leaves a partial
  frame its queue's reader would block on forever — poisons only a queue
  nobody will ever read again, never a shared feeder.
"""

from __future__ import annotations

import os
import pickle
import queue as queue_mod
import threading
import time
from collections import OrderedDict
from typing import Optional, Sequence

import multiprocessing as mp
from multiprocessing import connection as mp_connection

import numpy as np

from ..cache.store import ENV_DEFAULT, CompileCache, resolve_cache
from ..compiler.batch import BatchError, run_batch_fields, split_shards
from ..nsc.values import Value, from_python
from . import transport as _tp
from .transport import (
    TRANSPORT_OOB,
    TRANSPORT_PICKLE,
    TRANSPORT_SHM,
    SegmentLedger,
    resolve_transport,
)

#: per-worker program cache bound — old entries are evicted LRU and
#: transparently re-shipped on the next miss (the "need_prog" reply)
_WORKER_CACHE_SIZE = 64

_STATUS_OK = "ok"
_STATUS_OK_SHM = "ok_shm"
_STATUS_OK_OOB = "ok_oob"
_STATUS_ERROR = "error"
_STATUS_NEED_PROG = "need_prog"
_STATUS_WARM = "warm_ok"

_KIND_SPAN = "span"
_KIND_WARM = "warm"


class ShardExecutorClosed(RuntimeError):
    """The executor was closed; no further batches can be dispatched."""


def _worker_main(in_q, out_q, cache_dir=None, cache_max_bytes=None) -> None:
    """Worker loop: cache programs by key, run batched spans, report results.

    Every shard runs with per-input isolation (``return_exceptions=True``
    semantics) so one trapping input cannot poison its shard siblings; the
    parent decides whether to raise.  With ``cache_dir`` set, a program
    absent from the in-process cache is first looked up in the on-disk
    compile cache by its content ``digest`` (the parent wrote the artifact
    before dispatching); only a disk miss triggers the ``need_prog`` resend
    round-trip.  The cache location *and* its size bound arrive as spawn
    arguments — the worker never consults its own environment, which may
    disagree with the parent's.
    """
    cache: OrderedDict[int, object] = OrderedDict()
    warmed: dict[str, object] = {}  # digest -> program, via "warm" messages
    store = None
    if cache_dir:
        try:
            store = CompileCache(cache_dir, max_bytes=cache_max_bytes)
        except Exception:
            store = None  # an unusable cache degrades to blob shipping
    while True:
        msg = in_q.get()
        if msg is None:
            return
        if msg[0] == _KIND_WARM:
            loaded = 0
            if store is not None:
                for digest in msg[1]:
                    try:
                        prog = store.get(digest)
                    except Exception:
                        prog = None
                    if prog is not None:
                        warmed[digest] = prog
                        loaded += 1
            out_q.put((0, 0, _STATUS_WARM, loaded))
            continue
        (_, task_id, shard_idx, key, blob, digest, payload, count, max_steps,
         backend) = msg
        seg = None
        try:
            prog = cache.get(key)
            if prog is None:
                if blob is not None:
                    prog = pickle.loads(blob)
                elif digest is not None:
                    prog = warmed.pop(digest, None)
                    if prog is None and store is not None:
                        prog = store.get(digest)  # warm path: a cache read
                if prog is None:
                    # evicted / never shipped / cache miss: ask for the blob
                    out_q.put((task_id, shard_idx, _STATUS_NEED_PROG, None))
                    continue
                cache[key] = prog
                while len(cache) > _WORKER_CACHE_SIZE:
                    cache.popitem(last=False)
            else:
                cache.move_to_end(key)
            kind = payload[0]
            if kind == TRANSPORT_PICKLE:
                # legacy values-by-pickle wire format; an explicit per-call
                # backend rides the message, the program's own pickled
                # ``backend`` field applies otherwise
                results = prog.run_batch(
                    payload[1], max_steps=max_steps, return_exceptions=True,
                    backend=backend,
                )
                out_q.put((task_id, shard_idx, _STATUS_OK, results))
                continue
            if kind == TRANSPORT_SHM:
                seg, fields = _tp.attach_span(payload[1], payload[2])
            else:  # TRANSPORT_OOB
                fields = _tp.unpack_oob(payload[1], payload[2])
            tag, res = run_batch_fields(
                prog, fields, count, max_steps=max_steps, backend=backend
            )
            if tag == "registers":
                # fast path: ship the output registers by reference — no
                # S-object was ever built on this side of the boundary
                if kind == TRANSPORT_SHM:
                    name, desc = _tp.pack_registers(res)
                    out_q.put(
                        (task_id, shard_idx, _STATUS_OK_SHM, (name, desc, count))
                    )
                else:
                    meta, frames = _tp.pack_oob(res)
                    out_q.put(
                        (task_id, shard_idx, _STATUS_OK_OOB, (meta, frames, count))
                    )
            else:
                # the twin degraded to the per-input fallback loop: results
                # are S-objects and in-slot BatchErrors — both pickle by
                # construction (Value.__reduce__ / BatchError.__reduce__)
                out_q.put((task_id, shard_idx, _STATUS_OK, res))
        except BaseException as e:  # noqa: BLE001 - must cross the process boundary
            # mp.Queue pickles in a background feeder thread, so put()
            # never raises on an unpicklable payload — it would be dropped
            # silently and the parent would wait forever.  Probe first.
            try:
                pickle.dumps(e)
            except Exception:
                e = RuntimeError(repr(e))
            out_q.put((task_id, shard_idx, _STATUS_ERROR, e))
        finally:
            if seg is not None:
                try:
                    seg.close()  # unmap only; the parent's ledger unlinks
                except Exception:
                    pass


class _Worker:
    """One persistent worker process plus the parent-side shipped-key view."""

    __slots__ = ("process", "in_q", "out_q", "shipped", "stats")

    def __init__(self) -> None:
        self.shipped: OrderedDict[int, None] = OrderedDict()
        self.in_q = None  # set by ShardExecutor._spawn
        self.out_q = None  # set by ShardExecutor._spawn (per-respawn queue)
        self.process = None  # set by ShardExecutor._spawn
        #: parent-side per-worker counters (the worker wire protocol carries
        #: no metrics): spans/items completed, infrastructure errors,
        #: program re-ships, cold dispatches served from the compile cache
        #: (digest-only send, no ``need_prog`` came back), programs
        #: pre-loaded by :meth:`ShardExecutor.warm`, respawns after death,
        #: spans recomputed in-parent, and busy seconds (span dispatch ->
        #: collection)
        self.stats = {
            "spans": 0,
            "items": 0,
            "errors": 0,
            "need_prog": 0,
            "cache_warm": 0,
            "warm_loads": 0,
            "respawns": 0,
            "fallback_spans": 0,
            "busy_s": 0.0,
        }

    def mark_shipped(self, key: int) -> None:
        self.shipped[key] = None
        self.shipped.move_to_end(key)
        # mirror the worker-side bound; divergence is harmless because a
        # worker-side miss replies "need_prog" and the parent resends
        while len(self.shipped) > _WORKER_CACHE_SIZE:
            self.shipped.popitem(last=False)


class ShardExecutor:
    """A persistent ``multiprocessing`` pool executing batch shards.

    ``n_workers`` defaults to the machine's core count.  ``start_method``
    defaults to ``fork`` where available (instant worker start; the plan
    caches and their locks are fork-safe, see ``repro.bvram.machine``),
    falling back to ``spawn``.  ``transport`` selects the span wire format
    (``shm`` / ``oob`` / ``pickle``; default: ``REPRO_SHARD_TRANSPORT``,
    then the best available — see :mod:`repro.serving.transport`).
    Dispatch is serialised by an internal lock, so one executor may be
    shared by many threads (e.g. the server's executor threads).
    """

    def __init__(
        self,
        n_workers: Optional[int] = None,
        start_method: Optional[str] = None,
        cache: object = ENV_DEFAULT,
        transport: Optional[str] = None,
    ) -> None:
        if n_workers is not None and n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self.n_workers = n_workers or os.cpu_count() or 1
        #: the compile cache workers warm from (default: ``REPRO_CACHE_DIR``,
        #: ``None``/``False`` = classic blob shipping)
        self._cache = resolve_cache(cache)
        self.transport = resolve_transport(transport)
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = mp.get_context(start_method)
        self.start_method = start_method
        self._ledger = SegmentLedger()
        #: segment names still referenced when :meth:`close` ran — the leak
        #: check; stays ``None`` until close, ``[]`` on a clean shutdown
        self.leaked_segments: Optional[list[str]] = None
        self._lock = threading.Lock()
        self._task_counter = 0
        self._closed = False
        #: recently dispatched programs: id(prog) -> (prog, wire key, blob).
        #: The strong ref pins id() while the entry lives; the *wire* key is
        #: a monotonic counter, never reused, so an evicted entry whose
        #: id() is later recycled by a new program can never alias a stale
        #: worker-cache slot.  LRU-bounded like the worker-side cache.
        self._programs: OrderedDict[int, tuple[object, int, bytes]] = OrderedDict()
        self._next_key = 0
        self._workers: list[_Worker] = []
        for _ in range(self.n_workers):
            w = _Worker()
            self._spawn(w)
            self._workers.append(w)

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self, worker: _Worker) -> None:
        # Fresh queues per (re)spawn: a worker killed while blocked in
        # ``in_q.get()`` may die holding the queue's reader lock, and one
        # killed mid-``put()`` leaves a partial frame in its result queue
        # that any later read would block on forever.  Both queues die with
        # the worker; the replacement starts on clean pipes.
        if worker.out_q is not None:
            try:
                worker.out_q.close()  # parent never wrote to it: safe drop
            except Exception:
                pass
        worker.in_q = self._ctx.Queue()
        worker.out_q = self._ctx.Queue()
        cache_dir = self._cache.path if self._cache is not None else None
        cache_max = self._cache.max_bytes if self._cache is not None else None
        worker.process = self._ctx.Process(
            target=_worker_main,
            args=(worker.in_q, worker.out_q, cache_dir, cache_max),
            daemon=True,
        )
        worker.process.start()
        worker.shipped.clear()

    def close(self) -> None:
        """Stop every worker, release every segment, record leaks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        pids = []
        for w in self._workers:
            if w.process is not None and w.process.pid is not None:
                pids.append(w.process.pid)
            try:
                w.in_q.put(None)
            except Exception:
                pass
        for w in self._workers:
            w.process.join(timeout=5)
            if w.process.is_alive():
                w.process.terminate()
                w.process.join(timeout=5)
        # explicit lifecycle first (the leak check), then the orphan sweep
        # for result segments a dead worker created but never handed over
        self.leaked_segments = self._ledger.close()
        _tp.sweep_orphans(pids)

    def respawn_dead(self) -> int:
        """Proactively respawn any dead worker (the router's health check).

        Dispatch already survives deaths reactively (spans are reclaimed
        in-parent); this removes the first-batch latency hit by rebuilding
        the pool *between* batches.  Returns the number respawned.
        """
        if self._closed:
            return 0
        with self._lock:
            pids = []
            for w in self._workers:
                if w.process is not None and not w.process.is_alive():
                    if w.process.pid is not None:
                        pids.append(w.process.pid)
                    w.stats["respawns"] += 1
                    self._spawn(w)
            if pids:
                _tp.sweep_orphans(pids)
            return len(pids)

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- observability -------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Per-worker stats plus their fold into one aggregate dict.

        The counters are maintained parent-side at collection time (the
        worker wire protocol carries no metrics), so a snapshot is a plain
        read — safe to call from another thread while a batch is in flight;
        counters are monotone, a concurrent batch at worst under-reports.
        ``busy_s`` measures dispatch-to-collection wall time per span;
        spans on the same worker overlap when ``shards > n_workers``, so it
        is an upper bound on the worker's actual busy time.  ``segments``
        reports the transport ledger: segments created/adopted/live and
        batch bytes shipped by reference.
        """
        from ..obs.export import aggregate_worker_metrics

        workers = []
        for i, w in enumerate(self._workers):
            d: dict = {
                "worker": i,
                "alive": bool(w.process is not None and w.process.is_alive()),
            }
            d.update(w.stats)
            d["busy_s"] = round(d["busy_s"], 6)
            workers.append(d)
        return {
            "workers": workers,
            "aggregate": aggregate_worker_metrics(workers),
            "transport": self.transport,
            "segments": {
                "created": self._ledger.created,
                "adopted": self._ledger.adopted,
                "live": len(self._ledger.live()),
                "bytes_shipped": self._ledger.bytes_shipped,
            },
        }

    # -- dispatch ------------------------------------------------------------

    def _blob_for(self, prog) -> tuple[int, bytes, Optional[str]]:
        pid = id(prog)
        entry = self._programs.get(pid)
        if entry is None or entry[0] is not prog:
            self._next_key += 1
            blob = pickle.dumps(prog, protocol=pickle.HIGHEST_PROTOCOL)
            digest = None
            if self._cache is not None and getattr(prog, "source_fn", None) is not None:
                from ..cache.key import cache_key

                # seed the store with the exact bytes a ship would carry, so
                # every worker (and every later process) finds the artifact
                # under its content address
                digest = cache_key(
                    prog.source_fn,
                    eps=prog.eps,
                    opt_level=prog.opt_level,
                    batch_axis=prog.batch_axis,
                    backend=prog.backend,
                )
                try:
                    self._cache.put(digest, prog, payload=blob)
                except OSError:
                    digest = None  # unwritable store: fall back to shipping
            entry = (prog, self._next_key, blob, digest)
            self._programs[pid] = entry
            while len(self._programs) > _WORKER_CACHE_SIZE:
                self._programs.popitem(last=False)
        else:
            self._programs.move_to_end(pid)
        return entry[1], entry[2], entry[3]

    def warm(self, progs: Sequence[object]) -> int:
        """Pre-load programs into every live worker's cache; returns loads.

        Writes each program into the compile cache (exactly as a dispatch
        would) and tells every worker to read the artifacts *now*, so the
        first real batch after a (re)start pays no cold-ship round-trip —
        the router calls this when it builds or drain-restarts a plane.
        Without a configured cache this is a no-op returning 0.
        """
        if self._closed:
            raise ShardExecutorClosed("ShardExecutor is closed")
        with self._lock:
            if self._cache is None:
                return 0
            digests = []
            for prog in progs:
                _, _, digest = self._blob_for(prog)
                if digest is not None:
                    digests.append(digest)
            if not digests:
                return 0
            alive = [w for w in self._workers if w.process.is_alive()]
            for w in alive:
                w.in_q.put((_KIND_WARM, digests))
            total = 0
            for w in alive:
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    try:
                        msg = w.out_q.get(timeout=0.25)
                    except queue_mod.Empty:
                        if not w.process.is_alive():
                            break
                        continue
                    if msg[2] == _STATUS_WARM:
                        w.stats["warm_loads"] += msg[3]
                        total += msg[3]
                        break
                    # anything else here is a stale frame from an abandoned
                    # task on this (still-alive) worker: drop and keep waiting
            return total

    def _payload(self, kind, seg_name, bases, fields, views, chunk):
        """The wire payload for one span under the chosen transport."""
        if kind == TRANSPORT_SHM:
            return (TRANSPORT_SHM, seg_name, _tp.span_descriptor(views, fields, bases))
        if kind == TRANSPORT_OOB:
            meta, frames = _tp.pack_oob(views)
            return (TRANSPORT_OOB, meta, frames)
        return (TRANSPORT_PICKLE, list(chunk))

    def _send(
        self,
        worker: _Worker,
        task_id,
        shard_idx,
        key,
        blob,
        digest,
        payload,
        count,
        max_steps,
        backend,
        force_blob: bool = False,
    ) -> bool:
        """Dispatch one span; True when this was a digest-only cold send.

        A cold key normally ships the pickled program; with a compile cache
        configured the send is *optimistic* — digest only — and the worker
        warms from disk (``force_blob`` overrides after a ``need_prog``).
        """
        ship = None
        optimistic = False
        if key not in worker.shipped:
            if digest is not None and not force_blob:
                optimistic = True
            else:
                ship = blob
            worker.mark_shipped(key)
        worker.in_q.put(
            (_KIND_SPAN, task_id, shard_idx, key, ship, digest, payload, count,
             max_steps, backend)
        )
        return optimistic

    def run_batch(
        self,
        prog,
        values: Sequence[object],
        shards: Optional[int] = None,
        max_steps: int = 10_000_000,
        return_exceptions: bool = False,
        backend: Optional[str] = None,
    ) -> list:
        """Run ``prog`` over ``values`` split into ``shards`` worker spans.

        See the module docstring for the exact semantics; ``shards``
        defaults to the worker count.  More shards than workers is allowed
        (spans round-robin onto workers and each worker drains its spans in
        order) — useful for tests and for bounding per-message size.
        ``backend`` selects the untraced engine *inside the workers* for
        this call; without it the program's own pickled ``backend`` field
        (then the worker's environment) decides.
        """
        if self._closed:
            raise ShardExecutorClosed("ShardExecutor is closed")
        values = list(values)
        if not values:
            return []
        n_shards = shards or self.n_workers
        spans = split_shards(len(values), n_shards)

        with self._lock:
            # key/blob assignment must happen under the dispatch lock: two
            # threads registering different cold programs concurrently could
            # otherwise read the same wire key, aliasing worker cache slots
            key, blob, digest = self._blob_for(prog)
            self._task_counter += 1
            task_id = self._task_counter

            # encode ONCE, split into views; a program that cannot express
            # the flat transport (no ``dom``, encode failure) degrades this
            # batch to the legacy pickled-values wire format
            kind = self.transport
            fields = span_views = None
            if kind != TRANSPORT_PICKLE:
                try:
                    vals = [
                        v if isinstance(v, Value) else from_python(v) for v in values
                    ]
                    fields = [
                        np.asarray(f, dtype=np.int64)
                        for f in prog.encode_batch_fields(vals)
                    ]
                    span_views = prog.split_batch_fields(fields, spans)
                except Exception:
                    kind = TRANSPORT_PICKLE

            seg_name = None
            bases = None
            active = sum(1 for _, length in spans if length > 0)
            if kind == TRANSPORT_SHM:
                try:
                    # one segment per batch, one reference per dispatched span
                    seg_name, bases = _tp.pack_fields(self._ledger, fields, active)
                except Exception:
                    kind = TRANSPORT_OOB  # shm ran dry mid-flight: degrade

            assignment = {}  # shard_idx -> (worker, offset, chunk)
            payloads = {}  # shard_idx -> wire payload (kept for resends)
            sent_at = {}  # shard_idx -> dispatch perf_counter (worker busy_s)
            optimistic = set()  # shards sent digest-only (cache_warm on OK)
            done: dict[int, list] = {}
            for shard_idx, (off, length) in enumerate(spans):
                if length == 0:
                    done[shard_idx] = []  # nothing to run: never dispatched
                    continue
                worker = self._workers[shard_idx % self.n_workers]
                chunk = values[off : off + length]
                payload = self._payload(
                    kind, seg_name, bases, fields,
                    span_views[shard_idx] if span_views is not None else None,
                    chunk,
                )
                assignment[shard_idx] = (worker, off, chunk)
                payloads[shard_idx] = payload
                sent_at[shard_idx] = time.perf_counter()
                if self._send(
                    worker, task_id, shard_idx, key, blob, digest, payload,
                    length, max_steps, backend,
                ):
                    optimistic.add(shard_idx)
            self._collect(
                prog, task_id, key, blob, digest, assignment, payloads, sent_at,
                optimistic, max_steps, backend, seg_name, done,
            )

        out: list = []
        first_error: Optional[BatchError] = None
        for shard_idx in range(len(spans)):
            off = spans[shard_idx][0]
            for local_idx, res in enumerate(done[shard_idx]):
                if isinstance(res, BatchError):
                    res = res.rebased(off)
                    if first_error is None or res.index < first_error.index:
                        first_error = res
                out.append(res)
        if first_error is not None and not return_exceptions:
            raise first_error
        return out

    def _collect(
        self, prog, task_id, key, blob, digest, assignment, payloads, sent_at,
        optimistic, max_steps, backend, seg_name, done,
    ) -> None:
        """Gather one result per assigned shard, surviving worker deaths.

        Drains every waiting worker's own result queue with non-blocking
        reads, then blocks on a ``connection.wait`` select over the queue
        pipes until something arrives.  A queue is **never** read once its
        worker is seen dead — a kill mid-``put()`` leaves a partial frame
        that ``poll()`` reports readable but a read would block on forever;
        the dead worker's spans are recomputed in-parent, its segment
        references released, and a replacement spawned on fresh pipes.
        """
        pending = set(assignment)
        # workers whose blob resend is already in flight for this task: a
        # second need_prog from the same worker (a later span dispatched
        # before the blob arrived) must not re-count the miss or ship the
        # blob again — FIFO guarantees the earlier resend lands first
        resent: set[int] = set()

        def complete(shard_idx: int) -> None:
            pending.discard(shard_idx)
            self._ledger.release(seg_name)

        def recompute(shard_idx: int) -> None:
            chunk = assignment[shard_idx][2]
            done[shard_idx] = prog.run_batch(
                chunk, max_steps=max_steps, return_exceptions=True, backend=backend
            )
            complete(shard_idx)

        def handle(msg) -> None:
            rid, shard_idx, status, payload = msg
            if rid != task_id or shard_idx not in pending:
                return  # stale result from an abandoned task
            worker = assignment[shard_idx][0]
            if status == _STATUS_NEED_PROG:
                # worker-cache eviction, or the optimistic digest-only send
                # missed the worker's on-disk store (e.g. LRU-evicted
                # between send and read): resend — with the blob exactly
                # once per worker per task
                wid = id(worker)
                if wid not in resent:
                    worker.shipped.pop(key, None)
                    worker.stats["need_prog"] += 1
                    resent.add(wid)
                optimistic.discard(shard_idx)
                self._send(
                    worker, task_id, shard_idx, key, blob, digest,
                    payloads[shard_idx], len(assignment[shard_idx][2]),
                    max_steps, backend, force_blob=True,
                )
                return
            if status == _STATUS_ERROR:
                # infrastructure failure inside the worker (not an input
                # trap — those come back as in-slot BatchErrors): recompute
                # the span in-process so the caller still gets exact results
                recompute(shard_idx)
                worker.stats["errors"] += 1
                worker.stats["fallback_spans"] += 1
                return
            chunk = assignment[shard_idx][2]
            if status == _STATUS_OK:
                done[shard_idx] = payload
            else:
                # outputs shipped by reference: adopt/unpack and decode the
                # flat fields back to S-objects — the only decode that ever
                # happens, and it happens exactly once, parent-side
                try:
                    if status == _STATUS_OK_SHM:
                        name, desc, count = payload
                        try:
                            views = _tp.adopt_views(self._ledger, name, desc)
                            done[shard_idx] = prog.decode_batch_fields(views, count)
                        finally:
                            self._ledger.release(name)
                    else:  # _STATUS_OK_OOB
                        meta, frames, count = payload
                        views = _tp.unpack_oob(meta, frames)
                        done[shard_idx] = prog.decode_batch_fields(views, count)
                except Exception:
                    # a torn result (e.g. the segment vanished under us) is
                    # an infrastructure failure, not a caller-visible one
                    recompute(shard_idx)
                    worker.stats["errors"] += 1
                    worker.stats["fallback_spans"] += 1
                    return
            complete(shard_idx)
            worker.stats["spans"] += 1
            worker.stats["items"] += len(chunk)
            worker.stats["busy_s"] += time.perf_counter() - sent_at[shard_idx]
            if shard_idx in optimistic:
                # the digest-only cold send completed without a need_prog
                # round-trip: the worker warmed this program from the cache
                optimistic.discard(shard_idx)
                worker.stats["cache_warm"] += 1

        while pending:
            waiting: list[_Worker] = []
            seen: set[int] = set()
            for s in sorted(pending):
                w = assignment[s][0]
                if id(w) not in seen:
                    seen.add(id(w))
                    waiting.append(w)
            progressed = False
            dead: list[_Worker] = []
            for w in waiting:
                if not w.process.is_alive():
                    dead.append(w)  # never read a dead worker's queue
                    continue
                while True:
                    try:
                        msg = w.out_q.get_nowait()
                    except queue_mod.Empty:
                        break
                    except (OSError, EOFError):  # broken pipe: treat as dead
                        dead.append(w)
                        break
                    handle(msg)
                    progressed = True
            if not pending:
                break
            if dead:
                # reclaim EVERY pending span of every dead worker before
                # respawning (a replacement passes the is_alive() check but
                # reads fresh queues, so unreclaimed spans would hang), then
                # sweep result segments the dead process may have orphaned
                dead_ids = {id(w) for w in dead}
                for shard_idx in sorted(pending):
                    worker = assignment[shard_idx][0]
                    if id(worker) in dead_ids:
                        recompute(shard_idx)
                        worker.stats["fallback_spans"] += 1
                pids = [w.process.pid for w in dead if w.process.pid is not None]
                for w in dead:
                    w.stats["respawns"] += 1
                    self._spawn(w)
                _tp.sweep_orphans(pids)
                continue
            if progressed:
                continue
            # nothing ready anywhere: block on a select over the live
            # workers' queue pipes (or time out and re-check liveness)
            readers = [
                w.out_q._reader for w in waiting if hasattr(w.out_q, "_reader")
            ]
            if readers:
                try:
                    mp_connection.wait(readers, timeout=0.25)
                except OSError:
                    time.sleep(0.05)
            else:  # pragma: no cover - exotic Queue implementation
                time.sleep(0.05)
