"""Multi-core shard execution: spread one large batch across worker processes.

``run_batch`` amortises Python dispatch over the batch, but one process is
still one core — at batch 512 the single machine run saturates it.  The
paper's Brent bound (``O(T' + W'/p)``, Proposition 3.2) says the work side
scales with processors, and the batch axis is the trivially safe place to
cut: requests are independent, so splitting the batch into contiguous spans
and running each span's batched machine on its own core changes nothing
about any request's semantics.

:class:`ShardExecutor` owns a pool of **persistent** worker processes.  Each
worker receives a program at most once (pickled without its run-time caches,
see ``CompiledProgram.__getstate__``), compiles its batched twin and
execution plans locally on first use, and keeps them in a bounded per-worker
cache — the steady-state cost of a shard is one values-in/values-out message
round-trip, not a recompile.

Semantics mirror :func:`repro.compiler.batch.run_batch` exactly:

* results are reassembled **order-preserving** (span order = batch order);
* a trapping input is attributed to its **global** batch index — a worker
  reports shard-local indices and the executor re-bases them by the span
  offset (:meth:`BatchError.rebased`);
* ``return_exceptions=True`` places each input's :class:`BatchError` in its
  own slot with every sibling — including siblings in *other* shards —
  computed exactly; with ``return_exceptions=False`` the error with the
  smallest global index is raised (the same first-failure rule as the
  single-process fallback loop);
* a worker that dies mid-task is detected, its spans are re-run in-process
  (correctness never depends on the pool), and a replacement worker is
  spawned for subsequent batches.
"""

from __future__ import annotations

import os
import pickle
import queue as queue_mod
import threading
import time
from collections import OrderedDict
from typing import Optional, Sequence

import multiprocessing as mp

from ..compiler.batch import BatchError, split_shards

#: per-worker program cache bound — old entries are evicted LRU and
#: transparently re-shipped on the next miss (the "need_prog" reply)
_WORKER_CACHE_SIZE = 64

_STATUS_OK = "ok"
_STATUS_ERROR = "error"
_STATUS_NEED_PROG = "need_prog"


class ShardExecutorClosed(RuntimeError):
    """The executor was closed; no further batches can be dispatched."""


def _worker_main(in_q, out_q) -> None:
    """Worker loop: cache programs by key, run batched spans, report results.

    Every shard runs with ``return_exceptions=True`` so one trapping input
    cannot poison its shard siblings; the parent decides whether to raise.
    """
    cache: OrderedDict[int, object] = OrderedDict()
    while True:
        msg = in_q.get()
        if msg is None:
            return
        task_id, shard_idx, key, blob, values, max_steps, backend = msg
        try:
            prog = cache.get(key)
            if prog is None:
                if blob is None:
                    # evicted (or never shipped): ask the parent to resend
                    out_q.put((task_id, shard_idx, _STATUS_NEED_PROG, None))
                    continue
                prog = pickle.loads(blob)
                cache[key] = prog
                while len(cache) > _WORKER_CACHE_SIZE:
                    cache.popitem(last=False)
            else:
                cache.move_to_end(key)
            # an explicit per-call backend rides the message; the program's
            # own pickled ``backend`` field applies otherwise
            results = prog.run_batch(
                values, max_steps=max_steps, return_exceptions=True, backend=backend
            )
            # results are S-objects and BatchErrors — both pickle by
            # construction (Value.__reduce__ / BatchError.__reduce__)
            out_q.put((task_id, shard_idx, _STATUS_OK, results))
        except BaseException as e:  # noqa: BLE001 - must cross the process boundary
            # mp.Queue pickles in a background feeder thread, so put()
            # never raises on an unpicklable payload — it would be dropped
            # silently and the parent would wait forever.  Probe first.
            try:
                pickle.dumps(e)
            except Exception:
                e = RuntimeError(repr(e))
            out_q.put((task_id, shard_idx, _STATUS_ERROR, e))


class _Worker:
    """One persistent worker process plus the parent-side shipped-key view."""

    __slots__ = ("process", "in_q", "shipped", "stats")

    def __init__(self) -> None:
        self.shipped: OrderedDict[int, None] = OrderedDict()
        self.in_q = None  # set by ShardExecutor._spawn
        self.process = None  # set by ShardExecutor._spawn
        #: parent-side per-worker counters (the worker wire protocol is
        #: untouched): spans/items completed, infrastructure errors,
        #: program re-ships, respawns after death, spans recomputed
        #: in-parent, and busy seconds (span dispatch -> collection)
        self.stats = {
            "spans": 0,
            "items": 0,
            "errors": 0,
            "need_prog": 0,
            "respawns": 0,
            "fallback_spans": 0,
            "busy_s": 0.0,
        }

    def mark_shipped(self, key: int) -> None:
        self.shipped[key] = None
        self.shipped.move_to_end(key)
        # mirror the worker-side bound; divergence is harmless because a
        # worker-side miss replies "need_prog" and the parent resends
        while len(self.shipped) > _WORKER_CACHE_SIZE:
            self.shipped.popitem(last=False)


class ShardExecutor:
    """A persistent ``multiprocessing`` pool executing batch shards.

    ``n_workers`` defaults to the machine's core count.  ``start_method``
    defaults to ``fork`` where available (instant worker start; the plan
    caches and their locks are fork-safe, see ``repro.bvram.machine``),
    falling back to ``spawn``.  Dispatch is serialised by an internal lock,
    so one executor may be shared by many threads (e.g. the server's
    executor threads).
    """

    def __init__(
        self,
        n_workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if n_workers is not None and n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self.n_workers = n_workers or os.cpu_count() or 1
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = mp.get_context(start_method)
        self.start_method = start_method
        self._out = self._ctx.Queue()
        self._lock = threading.Lock()
        self._task_counter = 0
        self._closed = False
        #: recently dispatched programs: id(prog) -> (prog, wire key, blob).
        #: The strong ref pins id() while the entry lives; the *wire* key is
        #: a monotonic counter, never reused, so an evicted entry whose
        #: id() is later recycled by a new program can never alias a stale
        #: worker-cache slot.  LRU-bounded like the worker-side cache.
        self._programs: OrderedDict[int, tuple[object, int, bytes]] = OrderedDict()
        self._next_key = 0
        self._workers: list[_Worker] = []
        for _ in range(self.n_workers):
            w = _Worker()
            self._spawn(w)
            self._workers.append(w)

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self, worker: _Worker) -> None:
        # A fresh input queue per (re)spawn: a worker killed while blocked in
        # ``in_q.get()`` may die holding the queue's reader lock, and a
        # replacement reading the old queue would block on it forever.
        worker.in_q = self._ctx.Queue()
        worker.process = self._ctx.Process(
            target=_worker_main, args=(worker.in_q, self._out), daemon=True
        )
        worker.process.start()
        worker.shipped.clear()

    def close(self) -> None:
        """Stop every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for w in self._workers:
            try:
                w.in_q.put(None)
            except Exception:
                pass
        for w in self._workers:
            w.process.join(timeout=5)
            if w.process.is_alive():
                w.process.terminate()
                w.process.join(timeout=5)

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- observability -------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Per-worker stats plus their fold into one aggregate dict.

        The counters are maintained parent-side at collection time (the
        worker wire protocol carries no metrics), so a snapshot is a plain
        read — safe to call from another thread while a batch is in flight;
        counters are monotone, a concurrent batch at worst under-reports.
        ``busy_s`` measures dispatch-to-collection wall time per span;
        spans on the same worker overlap when ``shards > n_workers``, so it
        is an upper bound on the worker's actual busy time.
        """
        from ..obs.export import aggregate_worker_metrics

        workers = []
        for i, w in enumerate(self._workers):
            d: dict = {
                "worker": i,
                "alive": bool(w.process is not None and w.process.is_alive()),
            }
            d.update(w.stats)
            d["busy_s"] = round(d["busy_s"], 6)
            workers.append(d)
        return {"workers": workers, "aggregate": aggregate_worker_metrics(workers)}

    # -- dispatch ------------------------------------------------------------

    def _blob_for(self, prog) -> tuple[int, bytes]:
        pid = id(prog)
        entry = self._programs.get(pid)
        if entry is None or entry[0] is not prog:
            self._next_key += 1
            entry = (
                prog,
                self._next_key,
                pickle.dumps(prog, protocol=pickle.HIGHEST_PROTOCOL),
            )
            self._programs[pid] = entry
            while len(self._programs) > _WORKER_CACHE_SIZE:
                self._programs.popitem(last=False)
        else:
            self._programs.move_to_end(pid)
        return entry[1], entry[2]

    def _send(
        self, worker: _Worker, task_id, shard_idx, key, blob, values, max_steps, backend
    ):
        ship = None
        if key not in worker.shipped:
            ship = blob
            worker.mark_shipped(key)
        worker.in_q.put(
            (task_id, shard_idx, key, ship, list(values), max_steps, backend)
        )

    def run_batch(
        self,
        prog,
        values: Sequence[object],
        shards: Optional[int] = None,
        max_steps: int = 10_000_000,
        return_exceptions: bool = False,
        backend: Optional[str] = None,
    ) -> list:
        """Run ``prog`` over ``values`` split into ``shards`` worker spans.

        See the module docstring for the exact semantics; ``shards``
        defaults to the worker count.  More shards than workers is allowed
        (spans round-robin onto workers and each worker drains its spans in
        order) — useful for tests and for bounding per-message size.
        ``backend`` selects the untraced engine *inside the workers* for
        this call; without it the program's own pickled ``backend`` field
        (then the worker's environment) decides.
        """
        if self._closed:
            raise ShardExecutorClosed("ShardExecutor is closed")
        values = list(values)
        if not values:
            return []
        n_shards = shards or self.n_workers
        spans = split_shards(len(values), n_shards)

        with self._lock:
            # key/blob assignment must happen under the dispatch lock: two
            # threads registering different cold programs concurrently could
            # otherwise read the same wire key, aliasing worker cache slots
            key, blob = self._blob_for(prog)
            self._task_counter += 1
            task_id = self._task_counter
            assignment = {}  # shard_idx -> (worker, offset, chunk)
            sent_at = {}  # shard_idx -> dispatch perf_counter (worker busy_s)
            for shard_idx, (off, length) in enumerate(spans):
                worker = self._workers[shard_idx % self.n_workers]
                chunk = values[off : off + length]
                assignment[shard_idx] = (worker, off, chunk)
                sent_at[shard_idx] = time.perf_counter()
                self._send(
                    worker, task_id, shard_idx, key, blob, chunk, max_steps, backend
                )
            per_shard = self._collect(
                prog, task_id, key, blob, assignment, sent_at, max_steps, backend
            )

        out: list = []
        first_error: Optional[BatchError] = None
        for shard_idx in range(len(spans)):
            off = spans[shard_idx][0]
            for local_idx, res in enumerate(per_shard[shard_idx]):
                if isinstance(res, BatchError):
                    res = res.rebased(off)
                    if first_error is None or res.index < first_error.index:
                        first_error = res
                out.append(res)
        if first_error is not None and not return_exceptions:
            raise first_error
        return out

    def _collect(
        self, prog, task_id, key, blob, assignment, sent_at, max_steps, backend
    ) -> dict:
        """Gather one result per assigned shard, surviving worker deaths."""
        done: dict[int, list] = {}
        pending = set(assignment)
        while pending:
            try:
                rid, shard_idx, status, payload = self._out.get(timeout=0.25)
            except queue_mod.Empty:
                # no progress: find dead workers, reclaim EVERY pending span
                # assigned to them, then respawn.  (Respawning before all of
                # a worker's spans are reclaimed would hang: the replacement
                # passes the is_alive() check but reads a fresh queue, so
                # the remaining spans would never complete.)
                dead = [w for w in self._workers if not w.process.is_alive()]
                if not dead:
                    continue
                dead_ids = {id(w) for w in dead}
                for shard_idx in sorted(pending):
                    worker, off, chunk = assignment[shard_idx]
                    if id(worker) in dead_ids:
                        done[shard_idx] = prog.run_batch(
                            chunk,
                            max_steps=max_steps,
                            return_exceptions=True,
                            backend=backend,
                        )
                        pending.discard(shard_idx)
                        worker.stats["fallback_spans"] += 1
                for w in dead:
                    w.stats["respawns"] += 1
                    self._spawn(w)
                continue
            if rid != task_id or shard_idx not in pending:
                continue  # stale result from an abandoned task
            worker = assignment[shard_idx][0]
            if status == _STATUS_NEED_PROG:
                # the worker evicted this program: resend with the blob
                worker.shipped.pop(key, None)
                worker.stats["need_prog"] += 1
                self._send(
                    worker, task_id, shard_idx, key, blob,
                    assignment[shard_idx][2], max_steps, backend,
                )
                continue
            if status == _STATUS_ERROR:
                # infrastructure failure inside the worker (not an input
                # trap — those come back as in-slot BatchErrors): recompute
                # the span in-process so the caller still gets exact results
                done[shard_idx] = prog.run_batch(
                    assignment[shard_idx][2],
                    max_steps=max_steps,
                    return_exceptions=True,
                    backend=backend,
                )
                pending.discard(shard_idx)
                worker.stats["errors"] += 1
                worker.stats["fallback_spans"] += 1
                continue
            done[shard_idx] = payload
            pending.discard(shard_idx)
            worker.stats["spans"] += 1
            worker.stats["items"] += len(assignment[shard_idx][2])
            worker.stats["busy_s"] += time.perf_counter() - sent_at[shard_idx]
        return done
