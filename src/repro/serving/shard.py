"""Multi-core shard execution: spread one large batch across worker processes.

``run_batch`` amortises Python dispatch over the batch, but one process is
still one core — at batch 512 the single machine run saturates it.  The
paper's Brent bound (``O(T' + W'/p)``, Proposition 3.2) says the work side
scales with processors, and the batch axis is the trivially safe place to
cut: requests are independent, so splitting the batch into contiguous spans
and running each span's batched machine on its own core changes nothing
about any request's semantics.

:class:`ShardExecutor` owns a pool of **persistent** worker processes.  Each
worker receives a program at most once (pickled without its run-time caches,
see ``CompiledProgram.__getstate__``), compiles its batched twin and
execution plans locally on first use, and keeps them in a bounded per-worker
cache — the steady-state cost of a shard is one values-in/values-out message
round-trip, not a recompile.

When a compile cache is configured (:mod:`repro.cache`, ``REPRO_CACHE_DIR``
or the ``cache=`` constructor knob), workers **warm from the cache instead
of being shipped pickled programs**: the executor writes each program's
envelope into the store once (reusing the very bytes it would have shipped)
and sends only the content digest; the worker reads the artifact from disk.
A cold dispatch shrinks from a program-sized message to a fixed-size one,
the ``need_prog`` reply becomes a cache read, and a worker surviving across
executor restarts (or a CI job restoring the cache directory) starts warm.
The blob-shipping path remains the fallback whenever the store misses, so
correctness never depends on the cache.

Semantics mirror :func:`repro.compiler.batch.run_batch` exactly:

* results are reassembled **order-preserving** (span order = batch order);
* a trapping input is attributed to its **global** batch index — a worker
  reports shard-local indices and the executor re-bases them by the span
  offset (:meth:`BatchError.rebased`);
* ``return_exceptions=True`` places each input's :class:`BatchError` in its
  own slot with every sibling — including siblings in *other* shards —
  computed exactly; with ``return_exceptions=False`` the error with the
  smallest global index is raised (the same first-failure rule as the
  single-process fallback loop);
* a worker that dies mid-task is detected, its spans are re-run in-process
  (correctness never depends on the pool), and a replacement worker is
  spawned for subsequent batches.
"""

from __future__ import annotations

import os
import pickle
import queue as queue_mod
import threading
import time
from collections import OrderedDict
from typing import Optional, Sequence

import multiprocessing as mp

from ..cache.store import ENV_DEFAULT, CompileCache, resolve_cache
from ..compiler.batch import BatchError, split_shards

#: per-worker program cache bound — old entries are evicted LRU and
#: transparently re-shipped on the next miss (the "need_prog" reply)
_WORKER_CACHE_SIZE = 64

_STATUS_OK = "ok"
_STATUS_ERROR = "error"
_STATUS_NEED_PROG = "need_prog"


class ShardExecutorClosed(RuntimeError):
    """The executor was closed; no further batches can be dispatched."""


def _worker_main(in_q, out_q, cache_dir=None) -> None:
    """Worker loop: cache programs by key, run batched spans, report results.

    Every shard runs with ``return_exceptions=True`` so one trapping input
    cannot poison its shard siblings; the parent decides whether to raise.
    With ``cache_dir`` set, a program absent from the in-process cache is
    first looked up in the on-disk compile cache by its content ``digest``
    (the parent wrote the artifact before dispatching); only a disk miss
    triggers the ``need_prog`` resend round-trip.
    """
    cache: OrderedDict[int, object] = OrderedDict()
    store = None
    if cache_dir:
        try:
            store = CompileCache(cache_dir)
        except Exception:
            store = None  # an unusable cache degrades to blob shipping
    while True:
        msg = in_q.get()
        if msg is None:
            return
        task_id, shard_idx, key, blob, digest, values, max_steps, backend = msg
        try:
            prog = cache.get(key)
            if prog is None:
                if blob is not None:
                    prog = pickle.loads(blob)
                elif store is not None and digest is not None:
                    prog = store.get(digest)  # the warm path: a cache read
                if prog is None:
                    # evicted / never shipped / cache miss: ask for the blob
                    out_q.put((task_id, shard_idx, _STATUS_NEED_PROG, None))
                    continue
                cache[key] = prog
                while len(cache) > _WORKER_CACHE_SIZE:
                    cache.popitem(last=False)
            else:
                cache.move_to_end(key)
            # an explicit per-call backend rides the message; the program's
            # own pickled ``backend`` field applies otherwise
            results = prog.run_batch(
                values, max_steps=max_steps, return_exceptions=True, backend=backend
            )
            # results are S-objects and BatchErrors — both pickle by
            # construction (Value.__reduce__ / BatchError.__reduce__)
            out_q.put((task_id, shard_idx, _STATUS_OK, results))
        except BaseException as e:  # noqa: BLE001 - must cross the process boundary
            # mp.Queue pickles in a background feeder thread, so put()
            # never raises on an unpicklable payload — it would be dropped
            # silently and the parent would wait forever.  Probe first.
            try:
                pickle.dumps(e)
            except Exception:
                e = RuntimeError(repr(e))
            out_q.put((task_id, shard_idx, _STATUS_ERROR, e))


class _Worker:
    """One persistent worker process plus the parent-side shipped-key view."""

    __slots__ = ("process", "in_q", "shipped", "stats")

    def __init__(self) -> None:
        self.shipped: OrderedDict[int, None] = OrderedDict()
        self.in_q = None  # set by ShardExecutor._spawn
        self.process = None  # set by ShardExecutor._spawn
        #: parent-side per-worker counters (the worker wire protocol carries
        #: no metrics): spans/items completed, infrastructure errors,
        #: program re-ships, cold dispatches served from the compile cache
        #: (digest-only send, no ``need_prog`` came back), respawns after
        #: death, spans recomputed in-parent, and busy seconds (span
        #: dispatch -> collection)
        self.stats = {
            "spans": 0,
            "items": 0,
            "errors": 0,
            "need_prog": 0,
            "cache_warm": 0,
            "respawns": 0,
            "fallback_spans": 0,
            "busy_s": 0.0,
        }

    def mark_shipped(self, key: int) -> None:
        self.shipped[key] = None
        self.shipped.move_to_end(key)
        # mirror the worker-side bound; divergence is harmless because a
        # worker-side miss replies "need_prog" and the parent resends
        while len(self.shipped) > _WORKER_CACHE_SIZE:
            self.shipped.popitem(last=False)


class ShardExecutor:
    """A persistent ``multiprocessing`` pool executing batch shards.

    ``n_workers`` defaults to the machine's core count.  ``start_method``
    defaults to ``fork`` where available (instant worker start; the plan
    caches and their locks are fork-safe, see ``repro.bvram.machine``),
    falling back to ``spawn``.  Dispatch is serialised by an internal lock,
    so one executor may be shared by many threads (e.g. the server's
    executor threads).
    """

    def __init__(
        self,
        n_workers: Optional[int] = None,
        start_method: Optional[str] = None,
        cache: object = ENV_DEFAULT,
    ) -> None:
        if n_workers is not None and n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self.n_workers = n_workers or os.cpu_count() or 1
        #: the compile cache workers warm from (default: ``REPRO_CACHE_DIR``,
        #: ``None``/``False`` = classic blob shipping)
        self._cache = resolve_cache(cache)
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = mp.get_context(start_method)
        self.start_method = start_method
        self._out = self._ctx.Queue()
        self._lock = threading.Lock()
        self._task_counter = 0
        self._closed = False
        #: recently dispatched programs: id(prog) -> (prog, wire key, blob).
        #: The strong ref pins id() while the entry lives; the *wire* key is
        #: a monotonic counter, never reused, so an evicted entry whose
        #: id() is later recycled by a new program can never alias a stale
        #: worker-cache slot.  LRU-bounded like the worker-side cache.
        self._programs: OrderedDict[int, tuple[object, int, bytes]] = OrderedDict()
        self._next_key = 0
        self._workers: list[_Worker] = []
        for _ in range(self.n_workers):
            w = _Worker()
            self._spawn(w)
            self._workers.append(w)

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self, worker: _Worker) -> None:
        # A fresh input queue per (re)spawn: a worker killed while blocked in
        # ``in_q.get()`` may die holding the queue's reader lock, and a
        # replacement reading the old queue would block on it forever.
        worker.in_q = self._ctx.Queue()
        cache_dir = self._cache.path if self._cache is not None else None
        worker.process = self._ctx.Process(
            target=_worker_main, args=(worker.in_q, self._out, cache_dir), daemon=True
        )
        worker.process.start()
        worker.shipped.clear()

    def close(self) -> None:
        """Stop every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for w in self._workers:
            try:
                w.in_q.put(None)
            except Exception:
                pass
        for w in self._workers:
            w.process.join(timeout=5)
            if w.process.is_alive():
                w.process.terminate()
                w.process.join(timeout=5)

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- observability -------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Per-worker stats plus their fold into one aggregate dict.

        The counters are maintained parent-side at collection time (the
        worker wire protocol carries no metrics), so a snapshot is a plain
        read — safe to call from another thread while a batch is in flight;
        counters are monotone, a concurrent batch at worst under-reports.
        ``busy_s`` measures dispatch-to-collection wall time per span;
        spans on the same worker overlap when ``shards > n_workers``, so it
        is an upper bound on the worker's actual busy time.
        """
        from ..obs.export import aggregate_worker_metrics

        workers = []
        for i, w in enumerate(self._workers):
            d: dict = {
                "worker": i,
                "alive": bool(w.process is not None and w.process.is_alive()),
            }
            d.update(w.stats)
            d["busy_s"] = round(d["busy_s"], 6)
            workers.append(d)
        return {"workers": workers, "aggregate": aggregate_worker_metrics(workers)}

    # -- dispatch ------------------------------------------------------------

    def _blob_for(self, prog) -> tuple[int, bytes, Optional[str]]:
        pid = id(prog)
        entry = self._programs.get(pid)
        if entry is None or entry[0] is not prog:
            self._next_key += 1
            blob = pickle.dumps(prog, protocol=pickle.HIGHEST_PROTOCOL)
            digest = None
            if self._cache is not None and getattr(prog, "source_fn", None) is not None:
                from ..cache.key import cache_key

                # seed the store with the exact bytes a ship would carry, so
                # every worker (and every later process) finds the artifact
                # under its content address
                digest = cache_key(
                    prog.source_fn,
                    eps=prog.eps,
                    opt_level=prog.opt_level,
                    batch_axis=prog.batch_axis,
                    backend=prog.backend,
                )
                try:
                    self._cache.put(digest, prog, payload=blob)
                except OSError:
                    digest = None  # unwritable store: fall back to shipping
            entry = (prog, self._next_key, blob, digest)
            self._programs[pid] = entry
            while len(self._programs) > _WORKER_CACHE_SIZE:
                self._programs.popitem(last=False)
        else:
            self._programs.move_to_end(pid)
        return entry[1], entry[2], entry[3]

    def _send(
        self,
        worker: _Worker,
        task_id,
        shard_idx,
        key,
        blob,
        digest,
        values,
        max_steps,
        backend,
        force_blob: bool = False,
    ) -> bool:
        """Dispatch one span; True when this was a digest-only cold send.

        A cold key normally ships the pickled program; with a compile cache
        configured the send is *optimistic* — digest only — and the worker
        warms from disk (``force_blob`` overrides after a ``need_prog``).
        """
        ship = None
        optimistic = False
        if key not in worker.shipped:
            if digest is not None and not force_blob:
                optimistic = True
            else:
                ship = blob
            worker.mark_shipped(key)
        worker.in_q.put(
            (task_id, shard_idx, key, ship, digest, list(values), max_steps, backend)
        )
        return optimistic

    def run_batch(
        self,
        prog,
        values: Sequence[object],
        shards: Optional[int] = None,
        max_steps: int = 10_000_000,
        return_exceptions: bool = False,
        backend: Optional[str] = None,
    ) -> list:
        """Run ``prog`` over ``values`` split into ``shards`` worker spans.

        See the module docstring for the exact semantics; ``shards``
        defaults to the worker count.  More shards than workers is allowed
        (spans round-robin onto workers and each worker drains its spans in
        order) — useful for tests and for bounding per-message size.
        ``backend`` selects the untraced engine *inside the workers* for
        this call; without it the program's own pickled ``backend`` field
        (then the worker's environment) decides.
        """
        if self._closed:
            raise ShardExecutorClosed("ShardExecutor is closed")
        values = list(values)
        if not values:
            return []
        n_shards = shards or self.n_workers
        spans = split_shards(len(values), n_shards)

        with self._lock:
            # key/blob assignment must happen under the dispatch lock: two
            # threads registering different cold programs concurrently could
            # otherwise read the same wire key, aliasing worker cache slots
            key, blob, digest = self._blob_for(prog)
            self._task_counter += 1
            task_id = self._task_counter
            assignment = {}  # shard_idx -> (worker, offset, chunk)
            sent_at = {}  # shard_idx -> dispatch perf_counter (worker busy_s)
            optimistic = set()  # shards sent digest-only (cache_warm on OK)
            for shard_idx, (off, length) in enumerate(spans):
                worker = self._workers[shard_idx % self.n_workers]
                chunk = values[off : off + length]
                assignment[shard_idx] = (worker, off, chunk)
                sent_at[shard_idx] = time.perf_counter()
                if self._send(
                    worker, task_id, shard_idx, key, blob, digest, chunk,
                    max_steps, backend,
                ):
                    optimistic.add(shard_idx)
            per_shard = self._collect(
                prog, task_id, key, blob, digest, assignment, sent_at,
                optimistic, max_steps, backend,
            )

        out: list = []
        first_error: Optional[BatchError] = None
        for shard_idx in range(len(spans)):
            off = spans[shard_idx][0]
            for local_idx, res in enumerate(per_shard[shard_idx]):
                if isinstance(res, BatchError):
                    res = res.rebased(off)
                    if first_error is None or res.index < first_error.index:
                        first_error = res
                out.append(res)
        if first_error is not None and not return_exceptions:
            raise first_error
        return out

    def _collect(
        self, prog, task_id, key, blob, digest, assignment, sent_at,
        optimistic, max_steps, backend,
    ) -> dict:
        """Gather one result per assigned shard, surviving worker deaths."""
        done: dict[int, list] = {}
        pending = set(assignment)
        while pending:
            try:
                rid, shard_idx, status, payload = self._out.get(timeout=0.25)
            except queue_mod.Empty:
                # no progress: find dead workers, reclaim EVERY pending span
                # assigned to them, then respawn.  (Respawning before all of
                # a worker's spans are reclaimed would hang: the replacement
                # passes the is_alive() check but reads a fresh queue, so
                # the remaining spans would never complete.)
                dead = [w for w in self._workers if not w.process.is_alive()]
                if not dead:
                    continue
                dead_ids = {id(w) for w in dead}
                for shard_idx in sorted(pending):
                    worker, off, chunk = assignment[shard_idx]
                    if id(worker) in dead_ids:
                        done[shard_idx] = prog.run_batch(
                            chunk,
                            max_steps=max_steps,
                            return_exceptions=True,
                            backend=backend,
                        )
                        pending.discard(shard_idx)
                        worker.stats["fallback_spans"] += 1
                for w in dead:
                    w.stats["respawns"] += 1
                    self._spawn(w)
                continue
            if rid != task_id or shard_idx not in pending:
                continue  # stale result from an abandoned task
            worker = assignment[shard_idx][0]
            if status == _STATUS_NEED_PROG:
                # worker-cache eviction, or the optimistic digest-only send
                # missed the worker's on-disk store: resend with the blob
                worker.shipped.pop(key, None)
                worker.stats["need_prog"] += 1
                optimistic.discard(shard_idx)
                self._send(
                    worker, task_id, shard_idx, key, blob, digest,
                    assignment[shard_idx][2], max_steps, backend,
                    force_blob=True,
                )
                continue
            if status == _STATUS_ERROR:
                # infrastructure failure inside the worker (not an input
                # trap — those come back as in-slot BatchErrors): recompute
                # the span in-process so the caller still gets exact results
                done[shard_idx] = prog.run_batch(
                    assignment[shard_idx][2],
                    max_steps=max_steps,
                    return_exceptions=True,
                    backend=backend,
                )
                pending.discard(shard_idx)
                worker.stats["errors"] += 1
                worker.stats["fallback_spans"] += 1
                continue
            done[shard_idx] = payload
            pending.discard(shard_idx)
            worker.stats["spans"] += 1
            worker.stats["items"] += len(assignment[shard_idx][2])
            worker.stats["busy_s"] += time.perf_counter() - sent_at[shard_idx]
            if shard_idx in optimistic:
                # the digest-only cold send completed without a need_prog
                # round-trip: the worker warmed this program from the cache
                optimistic.discard(shard_idx)
                worker.stats["cache_warm"] += 1
        return done
