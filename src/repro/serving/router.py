"""The multi-process serving router: one front door over N compute planes.

The single-process :class:`~repro.serving.Server` tops out at one core plus
whatever its attached shard pool wins back; the millions-of-users shape the
ROADMAP names is the next rung: a :class:`Router` owning N serving
**planes**, each a full ``Server`` + :class:`~repro.serving.ShardExecutor`
worker group, with requests routed by **consistent hashing on the program's
content digest**.  Digest routing is the load-bearing choice: every request
for one program lands on the same plane, so its compiled twin, execution
plans and worker caches are hot exactly once per plane actually serving it —
not once per plane times programs, and never thrashing between planes.
Virtual ring nodes smooth the assignment; when a plane is draining or
unhealthy the walk continues around the ring, so failover is a cache-warm
neighbour, not a cold restart.

The router closes the operational loop the shard tier left open:

* **cache warm-up** — :meth:`warm` compiles each function through the
  content-addressed compile cache (PR 8) and has every plane's workers read
  the artifacts *before* traffic arrives; a drain-restarted plane re-warms
  from the same set automatically.
* **health** — :meth:`health_check` respawns dead shard workers between
  batches; :meth:`restart_plane` drains a plane (in-flight batches finish,
  queued requests fail fast), tears it down with the transport's segment
  leak check, and rebuilds it warm.
* **observability** — :meth:`metrics_endpoint` aggregates
  :class:`~repro.serving.metrics.ServerMetrics` across planes (counters
  sum; percentiles pool the raw latency windows — never an average of
  percentiles) and renders per-plane labelled Prometheus series.

Requests enter either async (:meth:`submit`, the serving path through the
plane's micro-batching scheduler) or synchronously (:meth:`run_batch`,
straight onto the routed plane's shard pool — the differential-testing
path).  Both preserve the batch contract: order-preserving results, trap
indices global to the submitted batch.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import os
import pickle
import threading
from collections import OrderedDict
from typing import Optional, Sequence, Union

from ..cache.store import ENV_DEFAULT, CompileCache, resolve_cache
from ..compiler import CompiledProgram, compile_nsc
from ..nsc import ast as A
from ..obs.export import (
    aggregate_server_snapshots,
    render_cache_prometheus,
    render_router_prometheus,
)
from .scheduler import Server
from .shard import ShardExecutor
from .slo import SLOConfig


class RouterClosed(RuntimeError):
    """The router is closed (or closing); the request was not accepted."""


class _Plane:
    """One compute plane: a Server front end over its own shard pool."""

    __slots__ = ("index", "server", "executor", "healthy", "restarts")

    def __init__(self, index: int, server: Server, executor: ShardExecutor) -> None:
        self.index = index
        self.server = server
        self.executor = executor
        self.healthy = True
        self.restarts = 0


class Router:
    """N serving planes behind consistent-hash routing on program digests.

    Knobs: ``planes`` is the plane count; ``workers_per_plane`` sizes each
    plane's shard pool (default: one — planes are the scaling axis);
    ``virtual_nodes`` sets ring smoothness (96 gives a plane-count-
    independent ±few-percent key spread); ``transport`` selects the span
    wire format per plane (see :mod:`repro.serving.transport`).  The
    remaining knobs are forwarded to every plane's :class:`Server`
    (micro-batching, SLO, backend) and are documented there.  All planes
    share one resolved compile cache, which is what makes digest routing,
    warm-up and failover line up: the digest a request routes by is the
    artifact's content address in the shared store.
    """

    def __init__(
        self,
        planes: int = 2,
        *,
        workers_per_plane: int = 1,
        virtual_nodes: int = 96,
        max_batch: int = 64,
        max_delay_ms: float = 2.0,
        max_queue: int = 1024,
        shards: Optional[int] = None,
        shard_threshold: Optional[int] = None,
        worker_threads: int = 1,
        max_steps: int = 10_000_000,
        backend: Optional[str] = None,
        cache: object = ENV_DEFAULT,
        slo: Optional[SLOConfig] = None,
        transport: Optional[str] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if planes <= 0:
            raise ValueError(f"planes must be positive, got {planes}")
        if virtual_nodes <= 0:
            raise ValueError(f"virtual_nodes must be positive, got {virtual_nodes}")
        self.n_planes = planes
        self.workers_per_plane = workers_per_plane
        self.virtual_nodes = virtual_nodes
        self.max_batch = max_batch
        self.max_delay_ms = max_delay_ms
        self.max_queue = max_queue
        self.shards = shards
        self.shard_threshold = shard_threshold
        self.worker_threads = worker_threads
        self.max_steps = max_steps
        self.backend = backend
        self.slo = slo
        self.transport = transport
        self.start_method = start_method
        resolved = resolve_cache(cache)
        if isinstance(resolved, (str, bytes, os.PathLike)):
            resolved = CompileCache(os.fspath(resolved))
        self._cache = resolved
        self._lock = threading.Lock()
        self._closed = False
        #: programs to (re-)warm every plane with, keyed by digest — a
        #: restarted plane rebuilds its workers' caches from this set
        self._warmset: "OrderedDict[str, CompiledProgram]" = OrderedDict()
        #: digest memo: id(prog) -> (prog, digest); same discipline as the
        #: executor's program table (strong ref pins the id)
        self._digests: "OrderedDict[int, tuple[object, str]]" = OrderedDict()
        self._compiled: "OrderedDict[int, tuple[object, CompiledProgram]]" = (
            OrderedDict()
        )
        #: routing counters: requests routed, ring walks that skipped an
        #: unhealthy plane, programs loaded into workers by warm-up
        self.routed = 0
        self.failovers = 0
        self.warm_loads = 0
        #: segment names still referenced at plane teardown (leak check)
        self.leaked_segments: list[str] = []
        self._planes = [self._build_plane(i) for i in range(planes)]
        self._ring: list[tuple[int, int]] = []
        self._build_ring()

    # -- construction --------------------------------------------------------

    def _build_plane(self, index: int) -> _Plane:
        executor = ShardExecutor(
            n_workers=self.workers_per_plane,
            start_method=self.start_method,
            cache=self._cache,
            transport=self.transport,
        )
        server = Server(
            max_batch=self.max_batch,
            max_delay_ms=self.max_delay_ms,
            max_queue=self.max_queue,
            executor=executor,
            shards=self.shards,
            shard_threshold=self.shard_threshold,
            worker_threads=self.worker_threads,
            max_steps=self.max_steps,
            backend=self.backend,
            cache=self._cache,
            slo=self.slo,
        )
        return _Plane(index, server, executor)

    def _build_ring(self) -> None:
        ring: list[tuple[int, int]] = []
        for plane in self._planes:
            for replica in range(self.virtual_nodes):
                token = f"plane-{plane.index}:{replica}".encode()
                h = int.from_bytes(hashlib.sha256(token).digest()[:8], "big")
                ring.append((h, plane.index))
        ring.sort()
        self._ring = ring

    # -- routing -------------------------------------------------------------

    def _resolve(self, fn: Union[CompiledProgram, A.Function]) -> CompiledProgram:
        """Accept a CompiledProgram directly or compile (and memoize) a fn."""
        if isinstance(fn, CompiledProgram):
            return fn
        key = id(fn)
        entry = self._compiled.get(key)
        if entry is None or entry[0] is not fn:
            entry = (fn, compile_nsc(fn, backend=self.backend, cache=self._cache))
            self._compiled[key] = entry
            while len(self._compiled) > 256:
                self._compiled.popitem(last=False)
        else:
            self._compiled.move_to_end(key)
        return entry[1]

    def digest(self, prog: CompiledProgram) -> str:
        """The program's routing key: its compile-cache content address.

        Programs with a ``source_fn`` use :func:`repro.cache.key.cache_key`
        — the very digest shard workers warm from, so routing and cache
        warm-up agree by construction.  Hand-built programs fall back to a
        hash of their pickled form (stable across calls, not across knobs).
        """
        pid = id(prog)
        entry = self._digests.get(pid)
        if entry is not None and entry[0] is prog:
            self._digests.move_to_end(pid)
            return entry[1]
        if getattr(prog, "source_fn", None) is not None:
            from ..cache.key import cache_key

            d = cache_key(
                prog.source_fn,
                eps=prog.eps,
                opt_level=prog.opt_level,
                batch_axis=prog.batch_axis,
                backend=prog.backend,
            )
        else:
            blob = pickle.dumps(prog, protocol=pickle.HIGHEST_PROTOCOL)
            d = hashlib.sha256(blob).hexdigest()
        self._digests[pid] = (prog, d)
        while len(self._digests) > 256:
            self._digests.popitem(last=False)
        return d

    def plane_for(self, digest: str) -> _Plane:
        """The ring walk: first healthy plane clockwise of the digest point."""
        if self._closed:
            raise RouterClosed("router is closed")
        h = int.from_bytes(hashlib.sha256(digest.encode()).digest()[:8], "big")
        n = len(self._ring)
        start = bisect.bisect_left(self._ring, (h, -1)) % n
        home = self._planes[self._ring[start][1]]
        for step in range(n):
            plane = self._planes[self._ring[(start + step) % n][1]]
            if plane.healthy:
                if plane is not home:
                    self.failovers += 1
                self.routed += 1
                return plane
        raise RouterClosed("no healthy plane to route to")

    # -- request entry points ------------------------------------------------

    async def submit(self, fn: Union[CompiledProgram, A.Function], value: object):
        """Route one request to its plane's micro-batching scheduler."""
        if self._closed:
            raise RouterClosed("router is closed")
        prog = self._resolve(fn)
        plane = self.plane_for(self.digest(prog))
        return await plane.server.submit(prog, value)

    def run_batch(
        self,
        fn: Union[CompiledProgram, A.Function],
        values: Sequence[object],
        shards: Optional[int] = None,
        max_steps: Optional[int] = None,
        return_exceptions: bool = False,
        backend: Optional[str] = None,
    ) -> list:
        """Route one whole batch straight onto its plane's shard pool.

        Bypasses the async scheduler (no event loop required) but exercises
        the full routing + zero-copy transport path — the entry point the
        differential battery pins ``routed == sharded == run_batch`` with,
        including global trap-index attribution.
        """
        if self._closed:
            raise RouterClosed("router is closed")
        prog = self._resolve(fn)
        plane = self.plane_for(self.digest(prog))
        return plane.executor.run_batch(
            prog,
            values,
            shards=shards,
            max_steps=self.max_steps if max_steps is None else max_steps,
            return_exceptions=return_exceptions,
            backend=backend if backend is not None else self.backend,
        )

    # -- warm-up / health ----------------------------------------------------

    def warm(self, fns: Sequence[Union[CompiledProgram, A.Function]]) -> int:
        """Compile through the shared cache and pre-load every plane's workers.

        Every plane receives the full warm set (failover can land any
        digest anywhere), and the set is remembered: a drain-restarted
        plane re-warms from it before taking traffic.  Returns the total
        number of worker-side artifact loads (0 without a configured
        cache).
        """
        if self._closed:
            raise RouterClosed("router is closed")
        progs = [self._resolve(fn) for fn in fns]
        with self._lock:
            for prog in progs:
                self._warmset[self.digest(prog)] = prog
            while len(self._warmset) > 256:
                self._warmset.popitem(last=False)
            warmset = list(self._warmset.values())
        total = 0
        for plane in self._planes:
            if plane.healthy:
                total += plane.executor.warm(warmset)
        self.warm_loads += total
        return total

    def health_check(self) -> dict:
        """Probe every plane's worker pool, respawning dead workers now.

        Returns ``{plane_index: {"healthy", "workers_alive", "respawned"}}``.
        Planes mid-restart (``healthy=False``) are reported but not probed.
        """
        report: dict = {}
        for plane in self._planes:
            if not plane.healthy:
                report[plane.index] = {
                    "healthy": False,
                    "workers_alive": 0,
                    "respawned": 0,
                }
                continue
            respawned = plane.executor.respawn_dead()
            snap = plane.executor.metrics_snapshot()
            report[plane.index] = {
                "healthy": True,
                "workers_alive": snap["aggregate"]["alive"],
                "respawned": respawned,
            }
        return report

    async def restart_plane(self, index: int) -> list[str]:
        """Drain one plane, tear it down, rebuild it warm.

        While draining, the ring routes the plane's digests to its healthy
        neighbours (counted as failovers).  In-flight batches finish;
        queued requests fail with ``ServerClosed``.  Returns the segment
        names the old executor leaked (``[]`` on a clean drain — the tests'
        assertion).
        """
        if self._closed:
            raise RouterClosed("router is closed")
        plane = self._planes[index]
        plane.healthy = False
        await plane.server.close()
        plane.executor.close()
        leaked = list(plane.executor.leaked_segments or [])
        self.leaked_segments.extend(leaked)
        fresh = self._build_plane(index)
        plane.server = fresh.server
        plane.executor = fresh.executor
        with self._lock:
            warmset = list(self._warmset.values())
        if warmset:
            self.warm_loads += plane.executor.warm(warmset)
        plane.restarts += 1
        plane.healthy = True
        return leaked

    # -- observability -------------------------------------------------------

    def _router_snapshot(self) -> dict:
        return {
            "planes": self.n_planes,
            "healthy_planes": sum(1 for p in self._planes if p.healthy),
            "workers_per_plane": self.workers_per_plane,
            "routed": self.routed,
            "failovers": self.failovers,
            "warm_loads": self.warm_loads,
            "restarts": sum(p.restarts for p in self._planes),
            "leaked_segments": len(self.leaked_segments),
            "transport": self._planes[0].executor.transport if self._planes else None,
        }

    async def metrics_endpoint(self, format: str = "json") -> tuple[str, str]:
        """One scrape across every plane: ``(content_type, body)``.

        JSON serves the cross-plane aggregate (pooled percentiles), the
        router's own counters, and each plane's full server + shard
        snapshot.  Prometheus renders the aggregate under ``repro_router``
        and per-plane series under ``repro_server``/``repro_shard`` with
        ``plane`` labels — mirroring
        :meth:`repro.serving.Server.metrics_endpoint` one level up.
        """
        plane_snaps = [p.server.metrics.snapshot() for p in self._planes]
        shard_snaps = [p.executor.metrics_snapshot() for p in self._planes]
        windows = [list(p.server.metrics._latencies) for p in self._planes]
        agg = aggregate_server_snapshots(plane_snaps, latencies=windows)
        router = self._router_snapshot()
        cache = self._cache.snapshot() if self._cache is not None else None
        if format in ("prometheus", "text"):
            body = render_router_prometheus(agg, plane_snaps, shard_snaps, router)
            if cache is not None:
                body += render_cache_prometheus(cache)
            return "text/plain; version=0.0.4; charset=utf-8", body
        if format != "json":
            raise ValueError(f"unknown metrics format {format!r} (json/prometheus)")
        doc: dict = {
            "aggregate": agg,
            "router": router,
            "planes": [
                {
                    "plane": p.index,
                    "healthy": p.healthy,
                    "restarts": p.restarts,
                    "server": snap,
                    "shard_executor": shard,
                }
                for p, snap, shard in zip(self._planes, plane_snaps, shard_snaps)
            ],
        }
        if cache is not None:
            doc["compile_cache"] = cache
        if self.slo is not None:
            doc["slo_lanes"] = [
                lane.ctrl.snapshot()
                for p in self._planes
                for lane in p.server._lanes.values()
                if lane.ctrl is not None
            ]
        return "application/json", json.dumps(doc, sort_keys=True)

    # -- lifecycle -----------------------------------------------------------

    async def close(self) -> None:
        """Drain and stop every plane; collect the segment leak check."""
        if self._closed:
            return
        self._closed = True
        for plane in self._planes:
            plane.healthy = False
            await plane.server.close()
            plane.executor.close()
            self.leaked_segments.extend(plane.executor.leaked_segments or [])

    async def __aenter__(self) -> "Router":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
