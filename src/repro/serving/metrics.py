"""Serving metrics: what an operator of the async front door watches.

One :class:`ServerMetrics` object per :class:`repro.serving.Server`.  All
updates happen on the event-loop thread (the scheduler observes batches
after the executor thread returns), so plain counters suffice — no atomics.

The latency reservoir keeps the most recent ``window`` request latencies;
p50/p99 are computed over that sliding window, which is the usual serving
convention (a quiet hour must not dilute the current tail).
"""

from __future__ import annotations

import time
from collections import Counter, deque
from typing import Optional


class ServerMetrics:
    """Counters, batch-size histogram and latency percentiles for a server."""

    def __init__(
        self,
        window: int = 8192,
        clock=time.perf_counter,
        rate_window_s: float = 30.0,
    ) -> None:
        self._clock = clock
        self.started_at = clock()
        #: trailing window requests_per_sec() is computed over (seconds)
        self.rate_window_s = rate_window_s
        #: requests accepted into a queue
        self.submitted = 0
        #: requests completed with a value
        self.completed = 0
        #: requests completed with an exception (their own trap)
        self.failed = 0
        #: requests refused by backpressure (bounded queue full)
        self.rejected = 0
        #: requests refused by SLO admission control (predicted too expensive)
        self.admission_rejected = 0
        #: requests routed to an isolation lane by SLO admission control
        self.admission_isolated = 0
        #: batches executed
        self.batches = 0
        #: current number of queued-but-not-yet-executing requests
        self.queue_depth = 0
        #: batch size -> number of batches of that size
        self.batch_sizes: Counter[int] = Counter()
        self._latencies: deque[float] = deque(maxlen=window)
        #: completion timestamps inside the trailing rate window (evicted on
        #: both record and read, so the deque holds at most one window)
        self._completions: deque[float] = deque()

    # -- recording (called by the scheduler) --------------------------------

    def observe_batch(self, size: int) -> None:
        self.batches += 1
        self.batch_sizes[size] += 1

    def observe_request(self, latency_s: float, ok: bool) -> None:
        if ok:
            self.completed += 1
        else:
            self.failed += 1
        self._latencies.append(latency_s)
        now = self._clock()
        self._completions.append(now)
        self._evict_completions(now)

    def _evict_completions(self, now: float) -> None:
        cutoff = now - self.rate_window_s
        while self._completions and self._completions[0] < cutoff:
            self._completions.popleft()

    # -- derived views -------------------------------------------------------

    def latency_percentile(self, p: float) -> Optional[float]:
        """The ``p``-th latency percentile (seconds) over the window.

        Nearest-rank on the sorted window; ``None`` before the first
        completion.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._latencies:
            return None
        ordered = sorted(self._latencies)
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    @property
    def p50_latency_s(self) -> Optional[float]:
        return self.latency_percentile(50.0)

    @property
    def p99_latency_s(self) -> Optional[float]:
        return self.latency_percentile(99.0)

    @property
    def mean_batch_size(self) -> float:
        return (self.completed + self.failed) / self.batches if self.batches else 0.0

    def requests_per_sec(self) -> float:
        """Finished requests (values + traps) per second, over the trailing window.

        Windowed like the latency reservoir, and for the same reason: the
        lifetime average dilutes toward zero after any idle period, so it
        says nothing about the *current* rate.  The divisor is capped at the
        server's actual age, so a young server isn't under-reported — but
        never below one second: right after startup the age can be
        microseconds, and dividing a single completion by it reported
        absurd six-figure rates (one request 50µs after start is not
        20,000 req/s).  A sub-second-old server, or a window holding a
        single completion, therefore reports at most ``n`` req/s.  The
        lifetime figure survives as :meth:`lifetime_requests_per_sec`.
        """
        now = self._clock()
        self._evict_completions(now)
        n = len(self._completions)
        if n == 0:
            return 0.0
        elapsed = min(self.rate_window_s, now - self.started_at)
        if n == 1 or elapsed < 1.0:
            elapsed = max(elapsed, 1.0)
        return n / elapsed

    def lifetime_requests_per_sec(self) -> float:
        """Finished requests (values + traps) per second of server lifetime."""
        elapsed = self._clock() - self.started_at
        return (self.completed + self.failed) / elapsed if elapsed > 0 else 0.0

    def snapshot(self) -> dict:
        """A JSON-able view of everything above (the monitoring endpoint)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "admission_rejected": self.admission_rejected,
            "admission_isolated": self.admission_isolated,
            "batches": self.batches,
            "queue_depth": self.queue_depth,
            "batch_size_hist": dict(sorted(self.batch_sizes.items())),
            "mean_batch_size": round(self.mean_batch_size, 2),
            "p50_latency_s": self.p50_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "requests_per_sec": round(self.requests_per_sec(), 1),
            "lifetime_requests_per_sec": round(self.lifetime_requests_per_sec(), 1),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServerMetrics({self.snapshot()!r})"
