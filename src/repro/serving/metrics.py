"""Serving metrics: what an operator of the async front door watches.

One :class:`ServerMetrics` object per :class:`repro.serving.Server`.  All
updates happen on the event-loop thread (the scheduler observes batches
after the executor thread returns), so plain counters suffice — no atomics.

The latency reservoir keeps the most recent ``window`` request latencies;
p50/p99 are computed over that sliding window, which is the usual serving
convention (a quiet hour must not dilute the current tail).
"""

from __future__ import annotations

import time
from collections import Counter, deque
from typing import Optional


class ServerMetrics:
    """Counters, batch-size histogram and latency percentiles for a server."""

    def __init__(self, window: int = 8192, clock=time.perf_counter) -> None:
        self._clock = clock
        self.started_at = clock()
        #: requests accepted into a queue
        self.submitted = 0
        #: requests completed with a value
        self.completed = 0
        #: requests completed with an exception (their own trap)
        self.failed = 0
        #: requests refused by backpressure (bounded queue full)
        self.rejected = 0
        #: batches executed
        self.batches = 0
        #: current number of queued-but-not-yet-executing requests
        self.queue_depth = 0
        #: batch size -> number of batches of that size
        self.batch_sizes: Counter[int] = Counter()
        self._latencies: deque[float] = deque(maxlen=window)

    # -- recording (called by the scheduler) --------------------------------

    def observe_batch(self, size: int) -> None:
        self.batches += 1
        self.batch_sizes[size] += 1

    def observe_request(self, latency_s: float, ok: bool) -> None:
        if ok:
            self.completed += 1
        else:
            self.failed += 1
        self._latencies.append(latency_s)

    # -- derived views -------------------------------------------------------

    def latency_percentile(self, p: float) -> Optional[float]:
        """The ``p``-th latency percentile (seconds) over the window.

        Nearest-rank on the sorted window; ``None`` before the first
        completion.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._latencies:
            return None
        ordered = sorted(self._latencies)
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    @property
    def p50_latency_s(self) -> Optional[float]:
        return self.latency_percentile(50.0)

    @property
    def p99_latency_s(self) -> Optional[float]:
        return self.latency_percentile(99.0)

    @property
    def mean_batch_size(self) -> float:
        return (self.completed + self.failed) / self.batches if self.batches else 0.0

    def requests_per_sec(self) -> float:
        """Finished requests (values + traps) per second of server lifetime."""
        elapsed = self._clock() - self.started_at
        return (self.completed + self.failed) / elapsed if elapsed > 0 else 0.0

    def snapshot(self) -> dict:
        """A JSON-able view of everything above (the monitoring endpoint)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "batches": self.batches,
            "queue_depth": self.queue_depth,
            "batch_size_hist": dict(sorted(self.batch_sizes.items())),
            "mean_batch_size": round(self.mean_batch_size, 2),
            "p50_latency_s": self.p50_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "requests_per_sec": round(self.requests_per_sec(), 1),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServerMetrics({self.snapshot()!r})"
