"""SLO-driven adaptive control for the serving scheduler.

The paper's cost model makes serving *predictable*: a batch's ``T'`` is the
max over its requests (batching is one more segment level, Theorem 7.1) while
``W'`` sums, and PR 7's measured fit ``wall ~ alpha*T' + beta*W'``
(:func:`repro.obs.costcheck.cost_check`) turns those machine costs into
seconds.  This module spends that predictability twice:

* **auto-tuning** — a :class:`LaneController` per program lane watches the
  lane's live p99 over its own small sliding window and AIMD-adjusts the
  lane's effective ``max_batch`` / ``max_delay_ms`` against
  ``SLOConfig.target_p99_ms``: over target halves both (multiplicative
  decrease), comfortably under target grows them additively back toward the
  server-wide caps.  The decrease clears the controller's window, so the
  next verdict reflects the *new* knobs, not stale pre-tightening samples.

* **admission control** — the controller calibrates ``alpha``/``beta`` by
  profiling one representative request, then predicts each arrival's solo
  wall time by scaling the calibrated ``W'`` with the request's size (the
  paper's work measure is size-linear per element touched; ``T'`` is taken
  as the calibrated depth, conservative for the usual fixed-program case).
  A request predicted to blow the SLO on its own — or predicted
  ``admit_factor`` times costlier than the calibrated baseline, which would
  stretch every co-batched sibling's ``T' = max`` — is **rejected**
  (:class:`AdmissionRejected`) or **lane-isolated** (run in a separate
  lane so siblings keep their latency), per ``SLOConfig.mode``.

Everything here is event-loop-side bookkeeping on plain floats; the only
heavy call is the one-off calibration profile, which the scheduler runs on
its executor thread alongside the first batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .metrics import ServerMetrics


class AdmissionRejected(RuntimeError):
    """SLO admission control refused the request (predicted too expensive)."""


@dataclass(frozen=True)
class SLOConfig:
    """Declarative SLO for a :class:`repro.serving.Server`.

    ``target_p99_ms``
        The latency objective: the controller tunes each lane until its
        windowed p99 sits at or under this.
    ``mode``
        What happens to a predicted-expensive request: ``"reject"`` raises
        :class:`AdmissionRejected` at submit time, ``"isolate"`` accepts it
        but runs it in a per-program isolation lane so ordinary requests
        never share its batch.
    ``admit_factor``
        Outlier threshold: a request predicted more than this many times the
        calibrated baseline request's wall is expensive (it would stretch
        the whole batch, ``T' = max``).  A request predicted over the target
        on its own is always expensive, whatever the factor.
    ``min_batch`` / ``min_delay_ms``
        Floors for the multiplicative decrease — the controller never tunes
        a lane below single-request dispatch.
    ``adjust_every``
        Batches between controller verdicts (gives a fresh window a chance
        to fill before the next decision).
    ``grow_headroom``
        Fraction of the target under which the additive increase kicks in
        (between ``grow_headroom * target`` and ``target`` the controller
        holds steady — hysteresis against oscillation).
    ``window``
        The controller's private latency window (requests); small by design
        so verdicts track the *current* knobs.
    ``calibrate``
        Set ``False`` to skip profiling (admission control then stays off;
        p99 auto-tuning still runs).
    """

    target_p99_ms: float
    mode: str = "reject"
    admit_factor: float = 16.0
    min_batch: int = 1
    min_delay_ms: float = 0.0
    adjust_every: int = 4
    grow_headroom: float = 0.5
    window: int = 256
    calibrate: bool = True

    def __post_init__(self) -> None:
        if self.target_p99_ms <= 0:
            raise ValueError(f"target_p99_ms must be positive, got {self.target_p99_ms}")
        if self.mode not in ("reject", "isolate"):
            raise ValueError(f"mode must be 'reject' or 'isolate', got {self.mode!r}")
        if self.admit_factor < 1.0:
            raise ValueError(f"admit_factor must be >= 1, got {self.admit_factor}")
        if self.min_batch < 1:
            raise ValueError(f"min_batch must be >= 1, got {self.min_batch}")
        if not 0.0 < self.grow_headroom <= 1.0:
            raise ValueError(
                f"grow_headroom must be in (0, 1], got {self.grow_headroom}"
            )
        if self.adjust_every < 1:
            raise ValueError(f"adjust_every must be >= 1, got {self.adjust_every}")


def request_size(value: object) -> float:
    """A unit-cost size measure for one request (S-object or plain Python).

    Matches :attr:`repro.nsc.values.Value.size` for S-objects; plain Python
    payloads are counted structurally (every scalar and every sequence node
    is one unit).  Iterative, so deeply nested request data cannot overflow
    the recursion limit.
    """
    from ..nsc.values import Value

    if isinstance(value, Value):
        return float(value.size)
    total = 0
    stack = [value]
    while stack:
        v = stack.pop()
        total += 1
        if isinstance(v, (list, tuple)):
            stack.extend(v)
    return float(total)


class LaneController:
    """Per-lane SLO state: calibrated cost model + AIMD-tuned batch knobs.

    The scheduler reads :attr:`max_batch` / :attr:`max_delay_s` when forming
    each batch, calls :meth:`calibrate` (executor thread) before the lane's
    first run, :meth:`classify` at submit time, and :meth:`observe` /
    :meth:`note_batch` after each completion.  All mutation happens on the
    event-loop thread except ``calibrate``, which writes its results once
    and is ordered before any ``classify`` can see ``calibrated=True``.
    """

    def __init__(
        self, cfg: SLOConfig, hard_max_batch: int, hard_max_delay_s: float
    ) -> None:
        self.cfg = cfg
        self.hard_max_batch = hard_max_batch
        self.hard_max_delay_s = hard_max_delay_s
        #: the lane's *effective* knobs (start at the server-wide caps)
        self.max_batch = hard_max_batch
        self.max_delay_s = hard_max_delay_s
        #: private latency window — deliberately small, see SLOConfig.window
        self.metrics = ServerMetrics(window=cfg.window)
        self.calibrated = False
        self.alpha_s = 0.0  #: fitted seconds per T' unit
        self.beta_s = 0.0  #: fitted seconds per W' unit
        self.t_cal = 0  #: calibrated T' (one representative request)
        self.w_cal = 0  #: calibrated W'
        self.size_cal = 1.0  #: calibrated request size
        self._batches_since_adjust = 0
        #: controller decisions, for observability
        self.tightenings = 0
        self.growths = 0

    # -- calibration ----------------------------------------------------------

    def calibrate(self, prog, value: object) -> None:
        """Fit alpha/beta by profiling ``value`` on ``prog`` (once, best-effort).

        A trapping or unprofilable request leaves the controller
        uncalibrated — admission control stays off, auto-tuning still works —
        and the next batch's representative is tried instead.
        """
        if self.calibrated or not self.cfg.calibrate:
            return
        from ..obs.costcheck import cost_check

        try:
            report = prog.profile(value)
            if report.error is not None or report.work <= 0:
                return
            fit = cost_check(report)
            size = request_size(value)
        except Exception:
            return
        self.alpha_s = max(fit.alpha_s, 0.0)
        self.beta_s = max(fit.beta_s, 0.0)
        if self.beta_s == 0.0:
            # Degenerate fit (collinear blocks or timer noise priced W' at
            # <= 0): with beta 0 a prediction never scales with request
            # size, so admission control would be silently off.  Price the
            # whole measured wall on W' instead — conservative: large
            # requests are over-, never under-predicted.
            self.alpha_s = 0.0
            self.beta_s = max(report.wall_s, 1e-9) / report.work
        self.t_cal = report.time
        self.w_cal = report.work
        self.size_cal = max(size, 1.0)
        self.calibrated = True

    # -- prediction + admission ----------------------------------------------

    def predict_request_s(self, value: object) -> Optional[float]:
        """Predicted solo wall seconds for ``value`` (``None`` uncalibrated).

        ``W'`` scales with the request's size relative to the calibration
        request (the work measure is per-element); ``T'`` is held at the
        calibrated depth — for a fixed program the depth is size-logarithmic
        at worst, and under-predicting ``T'`` only makes admission more
        permissive, never wrong.
        """
        if not self.calibrated:
            return None
        scale = request_size(value) / self.size_cal
        return self.alpha_s * self.t_cal + self.beta_s * self.w_cal * scale

    def predict_batch_s(self, values: list) -> Optional[float]:
        """Predicted wall seconds for one batched run of ``values``.

        The paper's batching property priced in seconds: ``T'`` is the max
        over the batch (one more segment level), ``W'`` sums.
        """
        if not self.calibrated or not values:
            return None
        scales = [request_size(v) / self.size_cal for v in values]
        return self.alpha_s * self.t_cal + self.beta_s * self.w_cal * sum(scales)

    def classify(self, value: object) -> Optional[str]:
        """``None`` to admit normally, else the configured expensive-mode.

        Expensive = predicted solo wall over the SLO target (it cannot meet
        the target even alone), or over ``admit_factor`` times the
        calibrated baseline (it would stretch every sibling, ``T' = max``).
        """
        pred = self.predict_request_s(value)
        if pred is None:
            return None
        target_s = self.cfg.target_p99_ms / 1000.0
        baseline = self.alpha_s * self.t_cal + self.beta_s * self.w_cal
        if pred > target_s or (baseline > 0 and pred > self.cfg.admit_factor * baseline):
            return self.cfg.mode
        return None

    # -- feedback loop ---------------------------------------------------------

    def observe(self, latency_s: float, ok: bool) -> None:
        self.metrics.observe_request(latency_s, ok=ok)

    def note_batch(self, size: int) -> None:
        self.metrics.observe_batch(size)
        self._batches_since_adjust += 1

    def maybe_adjust(self) -> bool:
        """Run one AIMD verdict if due; True when a knob changed."""
        if self._batches_since_adjust < self.cfg.adjust_every:
            return False
        self._batches_since_adjust = 0
        p99 = self.metrics.p99_latency_s
        if p99 is None:
            return False
        target_s = self.cfg.target_p99_ms / 1000.0
        if p99 > target_s:
            new_batch = max(self.cfg.min_batch, self.max_batch // 2)
            new_delay = max(self.cfg.min_delay_ms / 1000.0, self.max_delay_s / 2)
            changed = (new_batch, new_delay) != (self.max_batch, self.max_delay_s)
            self.max_batch, self.max_delay_s = new_batch, new_delay
            if changed:
                self.tightenings += 1
                # stale samples were measured under the old, looser knobs;
                # the next verdict must reflect the new ones
                self.metrics = ServerMetrics(window=self.cfg.window)
            return changed
        if p99 < self.cfg.grow_headroom * target_s:
            new_batch = min(self.hard_max_batch, self.max_batch + 1)
            new_delay = min(
                self.hard_max_delay_s,
                self.max_delay_s + self.hard_max_delay_s / 8.0,
            )
            changed = (new_batch, new_delay) != (self.max_batch, self.max_delay_s)
            self.max_batch, self.max_delay_s = new_batch, new_delay
            if changed:
                self.growths += 1
            return changed
        return False

    def snapshot(self) -> dict:
        """JSON-able controller state for the metrics endpoint."""
        return {
            "max_batch": self.max_batch,
            "max_delay_ms": round(self.max_delay_s * 1000.0, 3),
            "calibrated": self.calibrated,
            "alpha_s_per_t": self.alpha_s,
            "beta_s_per_w": self.beta_s,
            "t_cal": self.t_cal,
            "w_cal": self.w_cal,
            "size_cal": self.size_cal,
            "tightenings": self.tightenings,
            "growths": self.growths,
            "window_p99_s": self.metrics.p99_latency_s,
        }
