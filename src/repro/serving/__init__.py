"""Serving: the async micro-batching front door and the multi-core shard pool.

This package turns the repo's batched machine (:mod:`repro.compiler.batch`,
PR 4) into something a traffic-facing service can sit behind:

* :class:`Server` (:mod:`repro.serving.scheduler`) — an asyncio request
  scheduler.  ``await server.submit(fn, value)`` queues the request; an
  adaptive micro-batching drainer packs waiting requests into one
  ``run_batch`` machine run when either ``max_batch`` is reached or the
  oldest request has waited ``max_delay_ms``.  Bounded queues give
  backpressure, ``return_exceptions=True`` gives per-request trap
  isolation, and :class:`ServerMetrics` exposes queue depth, the batch-size
  histogram, p50/p99 latency and requests/sec.

* :class:`ShardExecutor` (:mod:`repro.serving.shard`) — a persistent
  ``multiprocessing`` worker pool.  Batches are split along the batch axis
  into contiguous spans, each span runs its own batched machine on its own
  core (programs pickled and compiled once per worker), results reassemble
  order-preserving, and trap indices are re-based to the global batch — the
  Brent ``O(T' + W'/p)`` work-sharing made real instead of simulated.

* :class:`SLOConfig` / :class:`LaneController` (:mod:`repro.serving.slo`) —
  the SLO layer.  Given a ``target_p99_ms``, each program lane AIMD-tunes
  its effective ``max_batch``/``max_delay_ms`` against its live windowed
  p99, and admission control prices every arrival with the fitted
  ``wall ~ alpha*T' + beta*W'`` cost model (PR 7), rejecting
  (:class:`AdmissionRejected`) or lane-isolating requests predicted to
  blow the SLO.

Both layers warm from the content-addressed compile cache
(:mod:`repro.cache`) when one is configured: the server compiles through
it and shard workers read artifacts from it instead of being shipped
pickled programs.

Benchmark E11 (``benchmarks/bench_e11_async_serving.py``) measures both
levels; the differential fuzz battery (``tests/test_fuzz_differential.py``)
pins interpreter == compiled == batched == sharded across random programs.
"""

from .metrics import ServerMetrics
from .scheduler import Server, ServerClosed, ServerOverloaded
from .shard import ShardExecutor, ShardExecutorClosed
from .slo import AdmissionRejected, LaneController, SLOConfig

__all__ = [
    "AdmissionRejected",
    "LaneController",
    "SLOConfig",
    "Server",
    "ServerClosed",
    "ServerMetrics",
    "ServerOverloaded",
    "ShardExecutor",
    "ShardExecutorClosed",
]
