"""Serving: the async micro-batching front door and the multi-core shard pool.

This package turns the repo's batched machine (:mod:`repro.compiler.batch`,
PR 4) into something a traffic-facing service can sit behind:

* :class:`Server` (:mod:`repro.serving.scheduler`) — an asyncio request
  scheduler.  ``await server.submit(fn, value)`` queues the request; an
  adaptive micro-batching drainer packs waiting requests into one
  ``run_batch`` machine run when either ``max_batch`` is reached or the
  oldest request has waited ``max_delay_ms``.  Bounded queues give
  backpressure, ``return_exceptions=True`` gives per-request trap
  isolation, and :class:`ServerMetrics` exposes queue depth, the batch-size
  histogram, p50/p99 latency and requests/sec.

* :class:`ShardExecutor` (:mod:`repro.serving.shard`) — a persistent
  ``multiprocessing`` worker pool.  Batches are split along the batch axis
  into contiguous spans, each span runs its own batched machine on its own
  core, results reassemble order-preserving, and trap indices are re-based
  to the global batch — the Brent ``O(T' + W'/p)`` work-sharing made real
  instead of simulated.  Spans travel over the **zero-copy transport**
  (:mod:`repro.serving.transport`): the batch is encoded once into its flat
  ``int64`` vectors, spans ship as shared-memory views (pickle-5
  out-of-band frames where shm is unavailable), and results return the same
  way — the pickled-S-object round-trip that used to eat the multi-core win
  is gone.

* :class:`Router` (:mod:`repro.serving.router`) — the multi-process front
  door: N serving *planes* (each a :class:`Server` over its own
  :class:`ShardExecutor`), requests routed by consistent hashing on the
  program's content digest, worker caches pre-warmed from the compile
  cache, health checks with drain-restarts, and
  ``ServerMetrics``/SLO state aggregated across planes through one
  ``metrics_endpoint``.

* :class:`SLOConfig` / :class:`LaneController` (:mod:`repro.serving.slo`) —
  the SLO layer.  Given a ``target_p99_ms``, each program lane AIMD-tunes
  its effective ``max_batch``/``max_delay_ms`` against its live windowed
  p99, and admission control prices every arrival with the fitted
  ``wall ~ alpha*T' + beta*W'`` cost model (PR 7), rejecting
  (:class:`AdmissionRejected`) or lane-isolating requests predicted to
  blow the SLO.

All layers warm from the content-addressed compile cache
(:mod:`repro.cache`) when one is configured: the server compiles through
it, shard workers read artifacts from it instead of being shipped pickled
programs, and the router pre-loads every worker before traffic arrives.

Benchmarks E11 (``benchmarks/bench_e11_async_serving.py``) and E12
(``benchmarks/bench_e12_router.py``) measure the layers; the differential
fuzz battery (``tests/test_fuzz_differential.py``) pins interpreter ==
compiled == batched == sharded == routed across random programs.
"""

from .metrics import ServerMetrics
from .router import Router, RouterClosed
from .scheduler import Server, ServerClosed, ServerOverloaded
from .shard import ShardExecutor, ShardExecutorClosed
from .slo import AdmissionRejected, LaneController, SLOConfig

__all__ = [
    "AdmissionRejected",
    "LaneController",
    "Router",
    "RouterClosed",
    "SLOConfig",
    "Server",
    "ServerClosed",
    "ServerMetrics",
    "ServerOverloaded",
    "ShardExecutor",
    "ShardExecutorClosed",
]
