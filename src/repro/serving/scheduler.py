"""The asyncio front door: adaptive micro-batching over ``run_batch``.

The paper's point — batching is one more segment level — makes the *machine*
side of serving trivial; what a real server adds is the **scheduler** that
forms those batches under load.  :class:`Server` implements the standard
continuous-batching recipe:

* requests to the same program queue in a per-program *lane* (a bounded
  ``asyncio.Queue`` — the bound is the backpressure surface);
* a drainer task per lane collects a batch and dispatches it as **one**
  ``run_batch`` call when either ``max_batch`` requests are waiting or the
  oldest request has waited ``max_delay_ms`` (the latency/throughput knob);
* the machine run happens on an executor thread, so the event loop keeps
  accepting requests while a batch executes — the next batch forms during
  the current one (continuous batching);
* batches at or above ``shard_threshold`` are routed to a
  :class:`~repro.serving.shard.ShardExecutor` when one is attached, spreading
  the batch across cores;
* every batch runs with ``return_exceptions=True``: a trapping request
  resolves *its* future with :class:`~repro.compiler.batch.BatchError` while
  every sibling gets its exact value (per-request trap isolation).

Quickstart::

    server = Server(max_batch=64, max_delay_ms=2.0)
    async with server:
        results = await asyncio.gather(
            *(server.submit(fn, v) for v in requests)
        )
    print(server.metrics.snapshot())
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Union

from ..cache.store import ENV_DEFAULT, resolve_cache
from ..compiler import CompiledProgram, compile_nsc
from ..nsc import ast as A
from ..obs.export import (
    render_cache_prometheus,
    render_prometheus,
    render_shard_prometheus,
)
from ..obs.trace import Trace, activate
from ..obs.trace import current as current_trace
from .metrics import ServerMetrics
from .shard import ShardExecutor
from .slo import AdmissionRejected, LaneController, SLOConfig


class ServerClosed(RuntimeError):
    """The server is closed (or closing); the request was not accepted."""


class ServerOverloaded(RuntimeError):
    """Backpressure: the program's request queue is at ``max_queue``."""


class _Lane:
    """One compiled program's queue plus its drainer task."""

    __slots__ = ("prog", "queue", "drainer", "exec_lock", "idle", "ctrl")

    def __init__(self, prog: CompiledProgram, max_queue: int) -> None:
        self.prog = prog
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=max_queue)
        self.drainer: Optional[asyncio.Task] = None
        #: held while a batch executes; close() acquires it to let the
        #: in-flight batch deliver its results before cancelling the drainer
        self.exec_lock = asyncio.Lock()
        #: True exactly while the drainer waits for the *first* request of a
        #: batch (empty queue, nothing forming, nothing executing) — the
        #: only state in which the lane can be evicted without losing work
        self.idle = False
        #: the lane's SLO controller (None without an SLO, and always None
        #: on isolation lanes — an isolated outlier must not steer the
        #: knobs its siblings run under)
        self.ctrl: Optional[LaneController] = None


class Server:
    """Async request scheduler with adaptive micro-batching.

    Knobs:

    ``max_batch``
        Largest batch one machine run serves.  Reaching it dispatches
        immediately (throughput bound).
    ``max_delay_ms``
        Longest a request may wait for co-batching before the partial batch
        dispatches anyway (latency bound).  ``0`` dispatches whatever is
        queued at drain time without waiting.
    ``max_queue``
        Per-program queue bound.  :meth:`submit` awaits a slot (natural
        backpressure); :meth:`try_submit` raises :class:`ServerOverloaded`
        instead of waiting.
    ``executor`` / ``shards`` / ``shard_threshold``
        When an :class:`~repro.serving.shard.ShardExecutor` is attached,
        batches of at least ``shard_threshold`` requests are split into
        ``shards`` spans (default: one per worker) and executed across
        cores.  ``shard_threshold`` defaults to ``max_batch`` (every full
        batch shards); an explicit threshold above ``max_batch`` is
        rejected — the scheduler never forms a batch that large, so the
        executor would silently go unused.
    ``worker_threads``
        Executor threads running the (GIL-releasing NumPy) machine calls;
        more than one only helps when several lanes are active.
    ``cache``
        The compile cache (:mod:`repro.cache`) server-side compiles go
        through.  Defaults to the ``REPRO_CACHE_DIR`` environment variable
        (unset = no cache); pass a :class:`~repro.cache.CompileCache`
        explicitly, or ``None``/``False`` to disable.  A warm cache makes a
        server restart skip every compile.
    ``slo``
        An :class:`~repro.serving.slo.SLOConfig` switches the scheduler to
        SLO mode: per-lane controllers auto-tune the effective
        ``max_batch``/``max_delay_ms`` against the target p99 (the
        constructor values become the hard caps), and admission control
        rejects (:class:`~repro.serving.slo.AdmissionRejected`) or
        lane-isolates requests whose predicted cost would blow the SLO.
    """

    def __init__(
        self,
        *,
        max_batch: int = 64,
        max_delay_ms: float = 2.0,
        max_queue: int = 1024,
        executor: Optional[ShardExecutor] = None,
        shards: Optional[int] = None,
        shard_threshold: Optional[int] = None,
        worker_threads: int = 1,
        max_steps: int = 10_000_000,
        max_programs: int = 64,
        backend: Optional[str] = None,
        tracer: Optional[Trace] = None,
        cache: object = ENV_DEFAULT,
        slo: Optional[SLOConfig] = None,
    ) -> None:
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_delay_ms < 0:
            raise ValueError(f"max_delay_ms must be >= 0, got {max_delay_ms}")
        if max_queue <= 0:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        if shard_threshold is None:
            shard_threshold = max_batch
        elif executor is not None and shard_threshold > max_batch:
            raise ValueError(
                f"shard_threshold {shard_threshold} exceeds max_batch "
                f"{max_batch}: no batch would ever reach the shard executor"
            )
        self.max_batch = max_batch
        self.max_delay_s = max_delay_ms / 1000.0
        self.max_queue = max_queue
        self.executor = executor
        self.shards = shards
        self.shard_threshold = shard_threshold
        self.max_steps = max_steps
        #: untraced backend every batch dispatches with (None: each
        #: program's own field / the environment decide); functions compiled
        #: by the server inherit it as their program-level pin
        self.backend = backend
        #: soft bound on live per-program state (lanes + compile cache):
        #: above it, idle lanes are evicted LRU and the compile cache drops
        #: old entries.  Soft — lanes with queued, forming or executing
        #: requests are never evicted, so a burst over `max_programs`
        #: concurrently-active programs grows past the bound rather than
        #: failing requests.
        self.max_programs = max_programs
        #: explicit span tracer for the serving path (``repro.obs.trace``).
        #: ``None`` falls back to the ambient trace active when a batch
        #: dispatches; an explicit tracer is more robust because drainer
        #: tasks and executor threads do not reliably inherit the
        #: submitter's contextvars.
        self.tracer = tracer
        #: the compile cache functions are compiled through (resolved once:
        #: ``REPRO_CACHE_DIR`` by default, an explicit CompileCache, or
        #: ``None``/``False`` for no caching); also surfaced by
        #: :meth:`metrics_endpoint`
        self._cache = resolve_cache(cache)
        #: the serving SLO (see :class:`repro.serving.slo.SLOConfig`);
        #: ``None`` keeps the classic fixed-knob scheduler
        self.slo = slo
        self.metrics = ServerMetrics()
        self._lanes: OrderedDict[int, _Lane] = OrderedDict()
        self._pool = ThreadPoolExecutor(
            max_workers=worker_threads, thread_name_prefix="repro-serve"
        )
        self._closed = False
        self._compiled: OrderedDict[int, tuple[object, CompiledProgram]] = OrderedDict()

    # -- program resolution --------------------------------------------------

    def _resolve(self, fn: Union[CompiledProgram, A.Function]) -> CompiledProgram:
        """Accept a CompiledProgram directly or compile (and cache) an NSC fn."""
        if isinstance(fn, CompiledProgram):
            return fn
        key = id(fn)
        entry = self._compiled.get(key)
        if entry is None or entry[0] is not fn:
            entry = (fn, compile_nsc(fn, backend=self.backend, cache=self._cache))
            self._compiled[key] = entry
            while len(self._compiled) > self.max_programs:
                self._compiled.popitem(last=False)  # harmless: recompiles
        else:
            self._compiled.move_to_end(key)
        return entry[1]

    def _evict_idle_lanes(self) -> None:
        """Drop LRU lanes that are provably at rest (see ``_Lane.idle``).

        Safe because eviction and ``submit`` both run on the event-loop
        thread, and an idle drainer's forming batch is empty — cancelling it
        fails no request.  ``submit`` has no await point between looking a
        lane up and enqueueing into it on the non-full path, so a lane
        observed idle cannot be receiving a request concurrently.
        """
        for key, cand in list(self._lanes.items()):
            if len(self._lanes) < self.max_programs:
                break
            if cand.idle and cand.queue.empty() and not cand.exec_lock.locked():
                if cand.drainer is not None:
                    cand.drainer.cancel()
                del self._lanes[key]

    def _lane(self, prog: CompiledProgram, isolated: bool = False) -> _Lane:
        key: object = ("iso", id(prog)) if isolated else id(prog)
        lane = self._lanes.get(key)
        if lane is None or lane.prog is not prog:
            if len(self._lanes) >= self.max_programs:
                self._evict_idle_lanes()
            lane = _Lane(prog, self.max_queue)
            if self.slo is not None and not isolated:
                lane.ctrl = LaneController(self.slo, self.max_batch, self.max_delay_s)
            lane.drainer = asyncio.get_running_loop().create_task(
                self._drain(lane), name=f"repro-serve-drain-{id(prog):x}"
            )
            self._lanes[key] = lane
        else:
            self._lanes.move_to_end(key)
        return lane

    def _route(self, fn: Union[CompiledProgram, A.Function], value: object) -> _Lane:
        """Resolve the request's lane, applying SLO admission control.

        A predicted-expensive request either raises
        :class:`~repro.serving.slo.AdmissionRejected` (``mode="reject"``) or
        is diverted to the program's *isolation lane* (``mode="isolate"``) —
        a separate queue and drainer, so ordinary requests never share a
        batch (and therefore a ``T' = max``) with the outlier.
        """
        prog = self._resolve(fn)
        lane = self._lane(prog)
        if lane.ctrl is not None:
            verdict = lane.ctrl.classify(value)
            if verdict == "reject":
                self.metrics.admission_rejected += 1
                pred = lane.ctrl.predict_request_s(value)
                raise AdmissionRejected(
                    f"predicted request wall {pred * 1000.0:.3f}ms would blow the "
                    f"{self.slo.target_p99_ms}ms p99 target"
                )
            if verdict == "isolate":
                self.metrics.admission_isolated += 1
                lane = self._lane(prog, isolated=True)
        return lane

    # -- submission ----------------------------------------------------------

    async def submit(self, fn: Union[CompiledProgram, A.Function], value: object):
        """Submit one request; completes with its result value.

        Awaiting the returned coroutine yields the request's result exactly
        as ``prog.run(value)`` would produce it; a trapping request raises
        its own :class:`~repro.compiler.batch.BatchError` here without
        affecting any co-batched sibling.  When the lane queue is full this
        *waits* for a slot — backpressure propagates to the caller's rate.
        """
        if self._closed:
            raise ServerClosed("server is closed")
        lane = self._route(fn, value)
        fut = asyncio.get_running_loop().create_future()
        await lane.queue.put((value, fut, time.perf_counter()))
        if self._closed:
            # the server closed while we waited for a queue slot: close()
            # may already have drained the queue, so nobody would ever
            # resolve this future
            fut.cancel()
            raise ServerClosed("server closed while the request waited for a slot")
        self.metrics.submitted += 1
        self.metrics.queue_depth = self._depth()
        return await fut

    def try_submit(
        self, fn: Union[CompiledProgram, A.Function], value: object
    ) -> asyncio.Future:
        """Non-waiting submit: returns the request future, or raises
        :class:`ServerOverloaded` immediately when the queue is full."""
        if self._closed:
            raise ServerClosed("server is closed")
        lane = self._route(fn, value)
        fut = asyncio.get_running_loop().create_future()
        try:
            lane.queue.put_nowait((value, fut, time.perf_counter()))
        except asyncio.QueueFull:
            self.metrics.rejected += 1
            # refresh the gauge on the reject path too: the failed put
            # changed nothing, but the last published value may predate
            # batches that have since drained
            self.metrics.queue_depth = self._depth()
            raise ServerOverloaded(
                f"queue full ({self.max_queue} requests waiting for this program)"
            ) from None
        self.metrics.submitted += 1
        self.metrics.queue_depth = self._depth()
        return fut

    def _depth(self) -> int:
        return sum(lane.queue.qsize() for lane in self._lanes.values())

    # -- the scheduler core --------------------------------------------------

    async def _drain(self, lane: _Lane) -> None:
        """Form batches adaptively and execute them, forever."""
        loop = asyncio.get_running_loop()
        q = lane.queue
        batch: list = []
        try:
            while True:
                lane.idle = True  # evictable: empty hands, empty queue
                first = await q.get()  # block until there is work
                lane.idle = False
                # effective knobs for THIS batch: the lane's SLO controller
                # when one is attached (re-read per batch, so a mid-stream
                # tightening applies from the very next batch), the
                # server-wide values otherwise
                if lane.ctrl is not None:
                    max_batch = lane.ctrl.max_batch
                    max_delay_s = lane.ctrl.max_delay_s
                else:
                    max_batch = self.max_batch
                    max_delay_s = self.max_delay_s
                batch = [first]
                # opportunistic fill: whatever is queued rides along free
                while len(batch) < max_batch:
                    try:
                        batch.append(q.get_nowait())
                    except asyncio.QueueEmpty:
                        break
                # adaptive wait: hold the partial batch open to the deadline
                if len(batch) < max_batch and max_delay_s > 0:
                    deadline = loop.time() + max_delay_s
                    while len(batch) < max_batch:
                        timeout = deadline - loop.time()
                        if timeout <= 0:
                            break
                        try:
                            batch.append(await asyncio.wait_for(q.get(), timeout))
                        except asyncio.TimeoutError:
                            break
                        while len(batch) < max_batch:
                            try:
                                batch.append(q.get_nowait())
                            except asyncio.QueueEmpty:
                                break
                self.metrics.queue_depth = self._depth()
                if self._closed:
                    # close() is tearing the server down between batches;
                    # these requests were still queued, so they get the
                    # queued-request failure rather than an execution
                    raise asyncio.CancelledError
                async with lane.exec_lock:
                    await self._execute(lane, batch)
                batch = []
        except asyncio.CancelledError:
            # close() cancelled us: requests already popped off the queue
            # into the forming batch would otherwise vanish silently
            err = ServerClosed("server closed while the batch was forming")
            for _, fut, _ in batch:
                if not fut.done():
                    fut.set_exception(err)
            raise

    def _trace(self) -> Optional[Trace]:
        return self.tracer if self.tracer is not None else current_trace()

    async def _execute(self, lane: _Lane, batch: list) -> None:
        values = [value for value, _, _ in batch]
        prog = lane.prog
        tracer = self._trace()
        t_dispatch = time.perf_counter()
        if tracer is not None:
            # enqueue -> batch-form wait, one event per co-batched request
            for _, _, t_submit in batch:
                tracer.add_complete(
                    "serve/queued", t_submit, t_dispatch - t_submit, "serve"
                )

        def work():
            # executor threads do not inherit the loop task's contextvars;
            # re-activate the tracer so batch/encode-execute-decode spans
            # (repro.compiler.batch) land in the same trace
            with activate(tracer):
                if lane.ctrl is not None and not lane.ctrl.calibrated:
                    # one-off cost-model fit on a representative request —
                    # on this executor thread, so the event loop keeps
                    # accepting while the profile runs
                    lane.ctrl.calibrate(prog, values[0])
                return _run()

        def _run():
            if (
                self.executor is not None
                and len(values) >= self.shard_threshold
            ):
                return self.executor.run_batch(
                    prog,
                    values,
                    shards=self.shards,
                    max_steps=self.max_steps,
                    return_exceptions=True,
                    backend=self.backend,
                )
            return prog.run_batch(
                values,
                max_steps=self.max_steps,
                return_exceptions=True,
                backend=self.backend,
            )

        try:
            results = await asyncio.get_running_loop().run_in_executor(
                self._pool, work
            )
        except asyncio.CancelledError:
            # close() cancelled the drainer mid-batch: the thread finishes
            # harmlessly (close() waits on the pool), but these callers must
            # not hang on futures nobody will resolve
            err = ServerClosed("server closed while the batch was executing")
            for _, fut, _ in batch:
                if not fut.done():
                    fut.set_exception(err)
            raise
        except BaseException as e:  # infrastructure failure: fail the batch
            self.metrics.observe_batch(len(batch))
            now = time.perf_counter()
            for _, fut, t_submit in batch:
                if not fut.done():
                    fut.set_exception(e)
                self.metrics.observe_request(now - t_submit, ok=False)
                if lane.ctrl is not None:
                    lane.ctrl.observe(now - t_submit, ok=False)
            if lane.ctrl is not None:
                lane.ctrl.note_batch(len(batch))
                lane.ctrl.maybe_adjust()
            return
        now = time.perf_counter()
        self.metrics.observe_batch(len(batch))
        if tracer is not None:
            tracer.add_complete(
                "serve/batch", t_dispatch, now - t_dispatch, "serve",
                {"batch": len(batch)},
            )
        for (_, fut, t_submit), res in zip(batch, results):
            ok = not isinstance(res, BaseException)
            if not fut.done():  # the caller may have been cancelled
                if ok:
                    fut.set_result(res)
                else:
                    fut.set_exception(res)
            self.metrics.observe_request(now - t_submit, ok=ok)
            if lane.ctrl is not None:
                lane.ctrl.observe(now - t_submit, ok=ok)
            if tracer is not None:
                tracer.add_complete(
                    "serve/request", t_submit, now - t_submit, "serve", {"ok": ok}
                )
        if lane.ctrl is not None:
            lane.ctrl.note_batch(len(batch))
            lane.ctrl.maybe_adjust()

    # -- observability --------------------------------------------------------

    async def metrics_endpoint(self, format: str = "json") -> tuple[str, str]:
        """One metrics scrape: returns ``(content_type, body)``.

        ``format="json"`` serves the :meth:`ServerMetrics.snapshot` dict
        (plus the shard executor's per-worker/aggregate snapshot when one is
        attached) as a JSON document; ``format="prometheus"`` (or
        ``"text"``) serves the text exposition format, ready to mount
        behind any HTTP framework's ``/metrics`` route::

            content_type, body = await server.metrics_endpoint("prometheus")
        """
        snap = self.metrics.snapshot()
        shard = (
            self.executor.metrics_snapshot() if self.executor is not None else None
        )
        cache = self._cache.snapshot() if self._cache is not None else None
        if format in ("prometheus", "text"):
            body = render_prometheus(snap)
            if shard is not None:
                body += render_shard_prometheus(shard)
            if cache is not None:
                body += render_cache_prometheus(cache)
            return "text/plain; version=0.0.4; charset=utf-8", body
        if format != "json":
            raise ValueError(f"unknown metrics format {format!r} (json/prometheus)")
        if shard is not None:
            snap["shard_executor"] = shard
        if cache is not None:
            snap["compile_cache"] = cache
        if self.slo is not None:
            snap["slo_lanes"] = [
                lane.ctrl.snapshot()
                for lane in self._lanes.values()
                if lane.ctrl is not None
            ]
        return "application/json", json.dumps(snap, sort_keys=True)

    # -- lifecycle -----------------------------------------------------------

    async def close(self) -> None:
        """Stop the drainers, fail queued requests, release the thread pool.

        Requests whose batch is already executing complete normally (the
        in-flight batch is awaited via the lane's ``exec_lock`` before its
        drainer is cancelled); requests still queued — or still forming a
        batch — fail with :class:`ServerClosed`.
        """
        if self._closed:
            return
        self._closed = True
        for lane in self._lanes.values():
            # let an in-flight batch deliver its results before cancelling
            async with lane.exec_lock:
                pass
            if lane.drainer is not None:
                lane.drainer.cancel()
        for lane in self._lanes.values():
            if lane.drainer is not None:
                try:
                    await lane.drainer
                except asyncio.CancelledError:
                    pass
        err = ServerClosed("server closed with the request still queued")
        for lane in self._lanes.values():
            while True:
                try:
                    _, fut, _ = lane.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if not fut.done():
                    fut.set_exception(err)
        # the drain above emptied every queue without going through the
        # normal dispatch path; republish the gauge so it provably reads 0
        # after close() instead of freezing at its pre-close value
        self.metrics.queue_depth = self._depth()
        self._pool.shutdown(wait=True)

    async def __aenter__(self) -> "Server":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
