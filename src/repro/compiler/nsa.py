"""Pass 1 of the NSC->BVRAM compiler: variable elimination into the NSA IR.

Section 7 compiles NSC in three steps; the first ("NSA", the *flat* fragment
the paper obtains by eliminating variables) is implemented here as a lowering
of the NSC abstract syntax into a small **first-order, administrative-normal-
form IR**:

* every intermediate value is bound to a fresh :class:`NVar` (alpha-renaming
  makes every binder unique, so the later passes never worry about capture);
* lambda abstraction disappears: ``F(M)`` with ``F`` a literal lambda is
  beta-inlined (NSC is first order and every function position is a literal,
  so this is linear — no code duplication);
* ``let`` blocks become plain bindings;
* the remaining *functional* constructs — ``map``, ``while`` and ``case`` —
  carry their sub-programs as :class:`Block` values with explicit parameters
  and (computed on demand) free-variable lists: exactly the closure record
  whose size Definition 3.1 charges at each application.

Every :class:`NVar` is annotated with its NSC object type; the lowering
doubles as a (re-)type-checker and raises :class:`CompileError` on programs
outside the supported fragment (named recursion must first be removed by the
Theorem 4.2 translation in :mod:`repro.maprec`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..nsc import ast as A
from ..nsc.types import (
    BOOL,
    NAT,
    UNIT,
    NatType,
    ProdType,
    SeqType,
    SumType,
    Type,
    UnitType,
)


class CompileError(Exception):
    """Raised when a program lies outside the compiler's supported NSC fragment."""


# ---------------------------------------------------------------------------
# IR definition
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NVar:
    """A typed IR variable (identified by a globally unique integer)."""

    id: int
    type: Type

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"%{self.id}:{self.type}"


class NOp:
    """Base class of NSA operations (the right-hand sides of bindings)."""

    __slots__ = ()

    def operands(self) -> tuple["NVar", ...]:
        return ()

    def blocks(self) -> tuple["Block", ...]:
        return ()


@dataclass(frozen=True)
class NConst(NOp):
    value: int


@dataclass(frozen=True)
class NUnit(NOp):
    pass


@dataclass(frozen=True)
class NError(NOp):
    """The error term Omega: evaluating it is undefined."""


@dataclass(frozen=True)
class NBin(NOp):
    op: str
    a: NVar
    b: NVar

    def operands(self) -> tuple[NVar, ...]:
        return (self.a, self.b)


@dataclass(frozen=True)
class NUn(NOp):
    op: str
    a: NVar

    def operands(self) -> tuple[NVar, ...]:
        return (self.a,)


@dataclass(frozen=True)
class NEq(NOp):
    a: NVar
    b: NVar

    def operands(self) -> tuple[NVar, ...]:
        return (self.a, self.b)


@dataclass(frozen=True)
class NPair(NOp):
    a: NVar
    b: NVar

    def operands(self) -> tuple[NVar, ...]:
        return (self.a, self.b)


@dataclass(frozen=True)
class NProj(NOp):
    index: int
    a: NVar

    def operands(self) -> tuple[NVar, ...]:
        return (self.a,)


@dataclass(frozen=True)
class NInl(NOp):
    a: NVar

    def operands(self) -> tuple[NVar, ...]:
        return (self.a,)


@dataclass(frozen=True)
class NInr(NOp):
    a: NVar

    def operands(self) -> tuple[NVar, ...]:
        return (self.a,)


@dataclass(frozen=True)
class NCase(NOp):
    """``case scrut of inl(x) => left | inr(y) => right`` (each block: 1 param)."""

    scrut: NVar
    left: "Block"
    right: "Block"

    def operands(self) -> tuple[NVar, ...]:
        return (self.scrut,)

    def blocks(self) -> tuple["Block", ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class NMap(NOp):
    """Apply ``body`` to every element of ``src`` in parallel."""

    body: "Block"
    src: NVar

    def operands(self) -> tuple[NVar, ...]:
        return (self.src,)

    def blocks(self) -> tuple["Block", ...]:
        return (self.body,)


@dataclass(frozen=True)
class NWhile(NOp):
    """``while(pred, body)`` applied to ``init`` (blocks: 1 param each)."""

    pred: "Block"
    body: "Block"
    init: NVar

    def operands(self) -> tuple[NVar, ...]:
        return (self.init,)

    def blocks(self) -> tuple["Block", ...]:
        return (self.pred, self.body)


@dataclass(frozen=True)
class NEmpty(NOp):
    pass


@dataclass(frozen=True)
class NSingle(NOp):
    a: NVar

    def operands(self) -> tuple[NVar, ...]:
        return (self.a,)


@dataclass(frozen=True)
class NAppend(NOp):
    a: NVar
    b: NVar

    def operands(self) -> tuple[NVar, ...]:
        return (self.a, self.b)


@dataclass(frozen=True)
class NFlatten(NOp):
    a: NVar

    def operands(self) -> tuple[NVar, ...]:
        return (self.a,)


@dataclass(frozen=True)
class NLength(NOp):
    a: NVar

    def operands(self) -> tuple[NVar, ...]:
        return (self.a,)


@dataclass(frozen=True)
class NGet(NOp):
    a: NVar

    def operands(self) -> tuple[NVar, ...]:
        return (self.a,)


@dataclass(frozen=True)
class NZip(NOp):
    a: NVar
    b: NVar

    def operands(self) -> tuple[NVar, ...]:
        return (self.a, self.b)


@dataclass(frozen=True)
class NEnumerate(NOp):
    a: NVar

    def operands(self) -> tuple[NVar, ...]:
        return (self.a,)


@dataclass(frozen=True)
class NSplit(NOp):
    data: NVar
    counts: NVar

    def operands(self) -> tuple[NVar, ...]:
        return (self.data, self.counts)


#: operand (NVar) fields per op class — the structural companion to
#: :meth:`NOp.operands`, used by the optimizer for substitution and
#: value-numbering keys.
OPERAND_FIELDS: dict[type, tuple[str, ...]] = {
    NBin: ("a", "b"),
    NUn: ("a",),
    NEq: ("a", "b"),
    NPair: ("a", "b"),
    NProj: ("a",),
    NInl: ("a",),
    NInr: ("a",),
    NCase: ("scrut",),
    NMap: ("src",),
    NWhile: ("init",),
    NSingle: ("a",),
    NAppend: ("a", "b"),
    NFlatten: ("a",),
    NLength: ("a",),
    NGet: ("a",),
    NZip: ("a", "b"),
    NEnumerate: ("a",),
    NSplit: ("data", "counts"),
}

#: sub-block fields per op class — the companion to :meth:`NOp.blocks`.
BLOCK_FIELDS: dict[type, tuple[str, ...]] = {
    NCase: ("left", "right"),
    NMap: ("body",),
    NWhile: ("pred", "body"),
}


@dataclass(frozen=True)
class Bind:
    dst: NVar
    op: NOp


@dataclass(frozen=True)
class Block:
    """A first-order sub-program: parameters, a binding list and a result var."""

    params: tuple[NVar, ...]
    binds: tuple[Bind, ...]
    result: NVar


def block_free_vars(block: Block) -> tuple[NVar, ...]:
    """Free variables of ``block`` in deterministic (id) order.

    These are exactly the values an implementation must materialise as the
    block's closure — the quantity the Definition 3.1 application rules add
    to ``SIZE`` (and, under ``map``, broadcast to every element).
    """
    bound: set[int] = {p.id for p in block.params}
    free: dict[int, NVar] = {}

    def visit(b: Block, outer_bound: set[int]) -> None:
        local = set(outer_bound)
        local.update(p.id for p in b.params)
        for bind in b.binds:
            op = bind.op
            for v in op.operands():
                if v.id not in local:
                    free.setdefault(v.id, v)
            for sub in op.blocks():
                visit(sub, local)
            local.add(bind.dst.id)
        if b.result.id not in local:
            free.setdefault(b.result.id, b.result)

    visit(block, bound)
    return tuple(free[i] for i in sorted(free))


def hoist_projections(block: Block) -> Block:
    """Hoist map-invariant projections out of ``map`` bodies.

    A mapped function whose body projects a component out of a free *pair*
    (e.g. ``nth``'s ``snd(a)``) would otherwise force the whole pair — often
    containing a sequence — into the distributed closure.  Projections are
    pure and total, so moving them in front of the ``map`` is semantics- and
    cost-preserving (it can only shrink the broadcast closure, which is
    exactly the paper's "charge only what the function captures" refinement).
    """
    new_binds: list[Bind] = []
    for bind in block.binds:
        op = bind.op
        subs = op.blocks()
        if subs:
            hoisted_subs = tuple(hoist_projections(s) for s in subs)
            if isinstance(op, NMap):
                body = hoisted_subs[0]
                outer, inner = _split_invariant_projections(body)
                new_binds.extend(outer)
                op = NMap(Block(body.params, tuple(inner), body.result), op.src)
            elif isinstance(op, NCase):
                op = NCase(op.scrut, hoisted_subs[0], hoisted_subs[1])
            elif isinstance(op, NWhile):
                op = NWhile(hoisted_subs[0], hoisted_subs[1], op.init)
        new_binds.append(Bind(bind.dst, op))
    return Block(block.params, tuple(new_binds), block.result)


def _split_invariant_projections(body: Block) -> tuple[list[Bind], list[Bind]]:
    """Partition a map body's bindings into (hoistable prefix ops, the rest)."""
    local: set[int] = {p.id for p in body.params}
    outer: list[Bind] = []
    inner: list[Bind] = []
    for bind in body.binds:
        op = bind.op
        if isinstance(op, NProj) and op.a.id not in local:
            outer.append(bind)
        else:
            local.add(bind.dst.id)
            inner.append(bind)
    return outer, inner


def block_size(block: Block) -> int:
    """Number of bindings, including nested blocks (compile-size reporting)."""
    total = len(block.binds)
    for bind in block.binds:
        for sub in bind.op.blocks():
            total += block_size(sub)
    return total


# ---------------------------------------------------------------------------
# Lowering NSC -> NSA
# ---------------------------------------------------------------------------


class _Lowerer:
    def __init__(self) -> None:
        self._counter = 0

    def fresh(self, t: Type) -> NVar:
        self._counter += 1
        return NVar(self._counter, t)

    # -- helpers ------------------------------------------------------------

    def _bind(self, binds: list[Bind], op: NOp, t: Type) -> NVar:
        dst = self.fresh(t)
        binds.append(Bind(dst, op))
        return dst

    @staticmethod
    def _expect_seq(t: Type, what: str) -> SeqType:
        if not isinstance(t, SeqType):
            raise CompileError(f"{what}: expected a sequence type, got {t}")
        return t

    @staticmethod
    def _expect_nat(t: Type, what: str) -> None:
        if not isinstance(t, NatType):
            raise CompileError(f"{what}: expected N, got {t}")

    # -- terms --------------------------------------------------------------

    def lower_term(self, term: A.Term, env: dict[str, NVar], binds: list[Bind]) -> NVar:
        if isinstance(term, A.Var):
            if term.name not in env:
                raise CompileError(f"unbound variable {term.name!r}")
            return env[term.name]

        if isinstance(term, A.Const):
            if term.value < 0:
                raise CompileError("natural constants must be non-negative")
            return self._bind(binds, NConst(term.value), NAT)

        if isinstance(term, A.UnitTerm):
            return self._bind(binds, NUnit(), UNIT)

        if isinstance(term, A.ErrorTerm):
            return self._bind(binds, NError(), term.type)

        if isinstance(term, A.BinOp):
            a = self.lower_term(term.left, env, binds)
            b = self.lower_term(term.right, env, binds)
            self._expect_nat(a.type, f"left operand of {term.op}")
            self._expect_nat(b.type, f"right operand of {term.op}")
            return self._bind(binds, NBin(term.op, a, b), NAT)

        if isinstance(term, A.UnOp):
            a = self.lower_term(term.arg, env, binds)
            self._expect_nat(a.type, f"operand of {term.op}")
            return self._bind(binds, NUn(term.op, a), NAT)

        if isinstance(term, A.Eq):
            a = self.lower_term(term.left, env, binds)
            b = self.lower_term(term.right, env, binds)
            if a.type != b.type:
                raise CompileError(f"equality between different types {a.type} and {b.type}")
            if not (isinstance(a.type, NatType) or a.type == BOOL):
                raise CompileError(
                    f"equality on type {a.type} is outside the compiled fragment "
                    "(only N and B comparisons flatten to a single vector op)"
                )
            return self._bind(binds, NEq(a, b), BOOL)

        if isinstance(term, A.PairTerm):
            a = self.lower_term(term.fst, env, binds)
            b = self.lower_term(term.snd, env, binds)
            return self._bind(binds, NPair(a, b), ProdType(a.type, b.type))

        if isinstance(term, A.Proj):
            a = self.lower_term(term.arg, env, binds)
            if not isinstance(a.type, ProdType):
                raise CompileError(f"projection pi_{term.index} of non-product {a.type}")
            out = a.type.left if term.index == 1 else a.type.right
            return self._bind(binds, NProj(term.index, a), out)

        if isinstance(term, A.Inl):
            a = self.lower_term(term.arg, env, binds)
            if term.right is None:
                raise CompileError("inl(...) without a right-type annotation")
            return self._bind(binds, NInl(a), SumType(a.type, term.right))

        if isinstance(term, A.Inr):
            a = self.lower_term(term.arg, env, binds)
            if term.left is None:
                raise CompileError("inr(...) without a left-type annotation")
            return self._bind(binds, NInr(a), SumType(term.left, a.type))

        if isinstance(term, A.Case):
            scrut = self.lower_term(term.scrutinee, env, binds)
            if not isinstance(scrut.type, SumType):
                raise CompileError(f"case scrutinee must have a sum type, got {scrut.type}")
            left = self._lower_branch(term.left_var, scrut.type.left, term.left_body, env)
            right = self._lower_branch(term.right_var, scrut.type.right, term.right_body, env)
            if left.result.type != right.result.type:
                raise CompileError(
                    f"case branches have different types {left.result.type} and {right.result.type}"
                )
            return self._bind(binds, NCase(scrut, left, right), left.result.type)

        if isinstance(term, A.Apply):
            return self.lower_apply(term.fn, term.arg, env, binds)

        if isinstance(term, A.Let):
            bound = self.lower_term(term.bound, env, binds)
            if term.var_type is not None and term.var_type != bound.type:
                raise CompileError(
                    f"let-binding of {term.var!r} annotated {term.var_type} "
                    f"but bound term has type {bound.type}"
                )
            inner = dict(env)
            inner[term.var] = bound
            return self.lower_term(term.body, inner, binds)

        if isinstance(term, A.EmptySeq):
            return self._bind(binds, NEmpty(), SeqType(term.elem))

        if isinstance(term, A.Singleton):
            a = self.lower_term(term.arg, env, binds)
            return self._bind(binds, NSingle(a), SeqType(a.type))

        if isinstance(term, A.Append):
            a = self.lower_term(term.left, env, binds)
            b = self.lower_term(term.right, env, binds)
            self._expect_seq(a.type, "append left operand")
            if a.type != b.type:
                raise CompileError(f"append of different sequence types {a.type} and {b.type}")
            return self._bind(binds, NAppend(a, b), a.type)

        if isinstance(term, A.Flatten):
            a = self.lower_term(term.arg, env, binds)
            t = self._expect_seq(a.type, "flatten operand")
            inner = self._expect_seq(t.elem, "flatten operand element")
            return self._bind(binds, NFlatten(a), inner)

        if isinstance(term, A.Length):
            a = self.lower_term(term.arg, env, binds)
            self._expect_seq(a.type, "length operand")
            return self._bind(binds, NLength(a), NAT)

        if isinstance(term, A.Get):
            a = self.lower_term(term.arg, env, binds)
            t = self._expect_seq(a.type, "get operand")
            return self._bind(binds, NGet(a), t.elem)

        if isinstance(term, A.Zip):
            a = self.lower_term(term.left, env, binds)
            b = self.lower_term(term.right, env, binds)
            ta = self._expect_seq(a.type, "zip left operand")
            tb = self._expect_seq(b.type, "zip right operand")
            return self._bind(binds, NZip(a, b), SeqType(ProdType(ta.elem, tb.elem)))

        if isinstance(term, A.Enumerate):
            a = self.lower_term(term.arg, env, binds)
            self._expect_seq(a.type, "enumerate operand")
            return self._bind(binds, NEnumerate(a), SeqType(NAT))

        if isinstance(term, A.Split):
            d = self.lower_term(term.data, env, binds)
            c = self.lower_term(term.counts, env, binds)
            td = self._expect_seq(d.type, "split data operand")
            tc = self._expect_seq(c.type, "split counts operand")
            if tc.elem != NAT:
                raise CompileError(f"split counts must be [N], got {tc}")
            return self._bind(binds, NSplit(d, c), SeqType(td))

        if isinstance(term, A.RecCall):
            raise CompileError(
                f"recursive call to {term.name!r}: named recursion is not directly "
                "compilable — remove it first with the Theorem 4.2 translation "
                "(repro.maprec.translate.translate)"
            )

        raise CompileError(f"unknown term node {type(term).__name__}")

    def _lower_branch(self, var: str, var_t: Type, body: A.Term, env: dict[str, NVar]) -> Block:
        param = self.fresh(var_t)
        inner = dict(env)
        inner[var] = param
        binds: list[Bind] = []
        result = self.lower_term(body, inner, binds)
        return Block((param,), tuple(binds), result)

    # -- functions ----------------------------------------------------------

    def lower_apply(
        self, fn: A.Function, arg: A.Term, env: dict[str, NVar], binds: list[Bind]
    ) -> NVar:
        a = self.lower_term(arg, env, binds)

        if isinstance(fn, A.Lambda):
            if a.type != fn.var_type:
                raise CompileError(
                    f"function expects {fn.var_type} but argument has type {a.type}"
                )
            inner = dict(env)
            inner[fn.var] = a
            return self.lower_term(fn.body, inner, binds)

        if isinstance(fn, A.MapF):
            t = self._expect_seq(a.type, "map argument")
            body = self.lower_fn_block(fn.fn, t.elem, env)
            return self._bind(binds, NMap(body, a), SeqType(body.result.type))

        if isinstance(fn, A.WhileF):
            pred = self.lower_fn_block(fn.pred, a.type, env)
            body = self.lower_fn_block(fn.body, a.type, env)
            if pred.result.type != BOOL:
                raise CompileError(f"while predicate must return B, got {pred.result.type}")
            if body.result.type != a.type:
                raise CompileError(
                    f"while body must preserve the state type {a.type}, "
                    f"got {body.result.type}"
                )
            return self._bind(binds, NWhile(pred, body, a), a.type)

        if isinstance(fn, A.RecFun):
            raise CompileError(
                f"named recursive definition {fn.name!r} is not directly compilable — "
                "remove the recursion first with the Theorem 4.2 translation "
                "(repro.maprec.translate.translate)"
            )

        raise CompileError(f"unknown function node {type(fn).__name__}")

    def lower_fn_block(self, fn: A.Function, dom: Type, env: dict[str, NVar]) -> Block:
        """Lower a function position into a one-parameter :class:`Block`."""
        param = self.fresh(dom)
        binds: list[Bind] = []
        var = A.Var("__nsa_param")
        inner = dict(env)
        inner["__nsa_param"] = param
        result = self.lower_apply(fn, var, inner, binds)
        return Block((param,), tuple(binds), result)


def lower_function(fn: A.Function, dom: Optional[Type] = None) -> Block:
    """Lower a closed NSC function into a one-parameter NSA block.

    ``dom`` may be omitted for lambdas / map / while towers whose domain is
    recoverable from the syntax (the usual case).
    """
    if dom is None:
        dom = _function_domain(fn)
    return _Lowerer().lower_fn_block(fn, dom, {})


def _function_domain(fn: A.Function) -> Type:
    if isinstance(fn, A.Lambda):
        return fn.var_type
    if isinstance(fn, A.MapF):
        return SeqType(_function_domain(fn.fn))
    if isinstance(fn, A.WhileF):
        return _function_domain(fn.body)
    if isinstance(fn, A.RecFun):
        raise CompileError(
            f"named recursive definition {fn.name!r} is not directly compilable — "
            "remove the recursion first with the Theorem 4.2 translation"
        )
    raise CompileError(f"cannot determine the domain of {type(fn).__name__}")
