"""Differential testing: interpreter vs compiled BVRAM, with T'/W' envelopes.

Theorem 7.1 makes two claims that can be checked mechanically for every
program in the supported fragment:

* **Equivalence** — running the NSC interpreter (Appendix B semantics) and
  the compiled BVRAM program on the same input yields the same S-object;
* **Complexity** — the measured machine costs satisfy ``T' = O(T)`` and
  ``W' = O(W^(1+eps))`` where ``(T, W)`` are the Definition 3.1 costs
  reported by the interpreter.

:func:`run_differential` performs one such check; :func:`suite` enumerates a
battery of programs spanning every construct the compiler supports — scalar
arithmetic, ``map``, the filter idiom (``case`` under ``map``), segmented
library combinators, root- and lifted ``while`` (the Lemma 7.2 staged
scheme), sums with payloads, and the Theorem 4.2 translations of the
Section 4/5 algorithms (quicksort, the g-schema mergesort, the recursion
schemata) — closing the paper's chain end to end.

The envelope constants below are deliberately generous: the theorem claims
asymptotics, and the tests pin *constant-factor* behaviour so a regression
that breaks the bound class (e.g. an accidental O(T*W) re-touching) fails
loudly while honest constant drift does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..algorithms.mergesort import direct_merge_fn, mergesort_def
from ..algorithms.quicksort import quicksort_def
from ..algorithms.schemata import (
    balanced_sum,
    countdown,
    halving_tail,
    skewed_sum,
    two_or_three_way_sum,
)
from ..maprec.translate import translate
from ..nsc import ast as A
from ..nsc import builder as B
from ..nsc import lib
from ..nsc.eval import apply_function
from ..nsc.types import NAT
from ..nsc.values import Value, from_python
from . import CompiledProgram, compile_nsc

#: ``T' <= TIME_FACTOR * T + TIME_PROGRAM_FACTOR * |program| + TIME_SLACK``:
#: T' is within a constant factor of T plus a once-through of the emitted
#: straight-line code (a compile-time constant, independent of the input —
#: the compiled program executes its body even when every context is empty).
TIME_FACTOR = 30
TIME_PROGRAM_FACTOR = 3
TIME_SLACK = 100

#: `W' <= WORK_FACTOR * (W + WORK_SLACK) ** (1 + eps)` — the Lemma 7.2 envelope.
WORK_FACTOR = 30
WORK_SLACK = 400


@dataclass(frozen=True)
class DiffRecord:
    """Outcome of one interpreter-vs-compiled differential run."""

    name: str
    eps: float
    value_matches: bool
    interp_time: int
    interp_work: int
    bvram_time: int
    bvram_work: int
    instructions: int
    registers: int
    opt_level: int = 2

    @property
    def time_ok(self) -> bool:
        bound = (
            TIME_FACTOR * self.interp_time
            + TIME_PROGRAM_FACTOR * self.instructions
            + TIME_SLACK
        )
        return self.bvram_time <= bound

    @property
    def work_ok(self) -> bool:
        bound = WORK_FACTOR * float(self.interp_work + WORK_SLACK) ** (1.0 + self.eps)
        return self.bvram_work <= bound

    @property
    def ok(self) -> bool:
        return self.value_matches and self.time_ok and self.work_ok


def run_differential(
    name: str,
    fn: A.Function,
    arg: object,
    eps: float = 0.5,
    compiled: CompiledProgram | None = None,
    opt_level: int = 2,
) -> DiffRecord:
    """Run ``fn`` through both the interpreter and the compiled BVRAM.

    The compiled side uses the untraced fast path — its ``T'``/``W'``
    totals are bit-identical to a traced run.
    """
    value = from_python(arg) if not isinstance(arg, Value) else arg
    interp = apply_function(fn, value)
    prog = compiled if compiled is not None else compile_nsc(fn, eps=eps, opt_level=opt_level)
    result, run = prog.run(value)
    return DiffRecord(
        name=name,
        eps=prog.eps,
        value_matches=result == interp.value,
        interp_time=interp.time,
        interp_work=interp.work,
        bvram_time=run.time,
        bvram_work=run.work,
        instructions=len(prog),
        registers=prog.n_registers,
        opt_level=prog.opt_level,
    )


# ---------------------------------------------------------------------------
# The program suite
# ---------------------------------------------------------------------------


def _map_square() -> A.Function:
    x = B.gensym("x")
    return B.map_(B.lam(x, NAT, B.mul(B.v(x), B.v(x))))


def _map_affine() -> A.Function:
    x = B.gensym("x")
    return B.map_(B.lam(x, NAT, B.mod(B.add(B.mul(B.v(x), 7), 3), 101)))


def _collatz_steps() -> A.Function:
    """``map(while(x > 1, collatz step))`` — the Lemma 7.2 stress case.

    Elements need wildly different iteration counts, which is exactly the
    spread the staged working-set compaction is designed to absorb.
    """
    x = B.gensym("x")
    pred = B.lam(x, NAT, B.gt(B.v(x), 1))
    y = B.gensym("y")
    step = B.lam(
        y,
        NAT,
        B.if_(
            B.eq(B.mod(B.v(y), 2), 0),
            B.div(B.v(y), 2),
            B.add(B.mul(B.v(y), 3), 1),
        ),
    )
    return B.map_(B.while_(pred, step))


def _filter_lt(k: int) -> A.Function:
    z = B.gensym("z")
    return lib.filter_fn(B.lam(z, NAT, B.lt(B.v(z), k)), NAT)


def _while_double() -> A.Function:
    x = B.gensym("x")
    y = B.gensym("y")
    return B.while_(B.lam(x, NAT, B.lt(B.v(x), 100)), B.lam(y, NAT, B.mul(B.v(y), 2)))


def suite() -> list[tuple[str, A.Function, list[object]]]:
    """``(name, function, inputs)`` triples covering the compiled fragment."""
    return [
        ("map_square", _map_square(), [[1, 2, 3, 4, 5, 6, 7], [], [9]]),
        ("map_affine", _map_affine(), [list(range(40))]),
        ("collatz_steps", _collatz_steps(), [[1, 9, 100, 3, 27, 0, 64, 7], [1], []]),
        ("filter_lt", _filter_lt(10), [[3, 15, 0, 10, 99, 7], [], [42]]),
        ("while_double", _while_double(), [1, 128]),
        ("first", lib.first(NAT), [[7, 8, 9]]),
        ("tail", lib.tail(NAT), [[7, 8, 9], [5]]),
        ("nth", lib.nth(NAT), [([5, 6, 7, 8], 2)]),
        ("pairwise", lib.pairwise(NAT), [[1, 2, 3, 4, 5], []]),
        ("reduce_add", lib.reduce_add(), [list(range(17)), [], [3]]),
        ("iota", lib.iota(), [13, 0, 1]),
        ("bm_route", lib.bm_route_nat(NAT), [(([0] * 6, [2, 0, 3, 1]), [10, 20, 30, 40])]),
        ("direct_merge", direct_merge_fn(), [([1, 4, 9], [2, 3, 5, 10]), ([], [1, 2])]),
        (
            "balanced_sum_t",
            translate(balanced_sum()),
            [list(range(12)), []],
        ),
        ("skewed_sum_t", translate(skewed_sum()), [list(range(9))]),
        ("halving_tail_t", translate(halving_tail()), [100]),
        ("countdown_t", translate(countdown()), [25]),
        ("two_or_three_t", translate(two_or_three_way_sum()), [list(range(9))]),
        (
            "quicksort_t",
            translate(quicksort_def()),
            [[5, 3, 8, 1, 9, 2, 7, 4, 6, 0], [2, 1], []],
        ),
        (
            "mergesort_t",
            translate(mergesort_def()),
            [[5, 3, 8, 1, 9, 2, 7, 4, 6, 0], [1]],
        ),
    ]


def run_suite(eps: float = 0.5, opt_level: int = 2) -> list[DiffRecord]:
    """Differential-run every suite program on every input at one ``eps``."""
    records = []
    for name, fn, args in suite():
        prog = compile_nsc(fn, eps=eps, opt_level=opt_level)
        for i, arg in enumerate(args):
            records.append(
                run_differential(f"{name}[{i}]", fn, arg, eps=eps, compiled=prog)
            )
    return records
