"""Batched serving: run B independent inputs as one flattened machine run.

The paper's flattening makes compiled code nesting-depth independent, so a
batch of B requests to the same program is *just one more segment level*:
compile the program with a width-B root context (``compile_nsc(...,
batch_axis=True)``), stack the B input encodings (one extra batch-segment
descriptor per sequence field, no per-request marshalling loop), execute the
single instruction stream once, and split the outputs back per request.  All
per-instruction interpreter overhead — the thing that dominates small
per-request inputs — is amortised over the whole batch.

Fallback loop
-------------

``run_batch`` degrades to a documented per-input loop (one fresh machine per
input, so a failure cannot corrupt sibling results) in exactly three cases:

* the batched twin cannot be compiled — the program has no ``source_fn``
  (hand-built :class:`~repro.compiler.CompiledProgram` objects) or the
  recompile raises :class:`~repro.compiler.CompileError`;
* the batched run raises :class:`~repro.bvram.machine.BVRAMError` — either
  because some input genuinely traps (Omega, division by zero, ``get`` of a
  non-singleton, ...), or because the *combined* batch overflows a machine
  limit no single input hits (the segmented scans compute one global cumsum
  across the batch, so B inputs each near ``2**63`` can overflow jointly);
* the caller passed ``return_exceptions=True`` and the batched run trapped,
  in which case per-input isolation is the requested semantics.

In the fallback, a trapping input raises :class:`BatchError` whose message
and ``.index`` name the failing batch position (first failing index in batch
order); with ``return_exceptions=True`` the error object is returned *in
place* and every sibling's result is exactly its independent ``run()``
value.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from ..backends.registry import ForkSafeLock
from ..bvram import BVRAM, BVRAMError
from ..nsc.values import Value, from_python
from ..obs.trace import span as _span
from .nsa import CompileError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from . import CompiledProgram


class BatchError(BVRAMError):
    """A batched run failed on one specific input; ``index`` names it.

    ``cause_text`` keeps the underlying machine error separately from the
    formatted message so the index can be *re-based*: a shard executor runs
    a sub-range of the batch, and an error at local index ``j`` of the shard
    starting at ``off`` must surface as global index ``off + j``
    (:meth:`rebased`).  The class also pickles exactly (``__reduce__``) —
    shard workers return these objects across process boundaries.
    """

    def __init__(
        self,
        message: str,
        index: Optional[int] = None,
        cause_text: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.index = index
        self.cause_text = cause_text if cause_text is not None else message

    @classmethod
    def at(cls, index: int, cause_text: str) -> "BatchError":
        """The canonical per-input error: names the failing batch position."""
        return cls(f"batch index {index}: {cause_text}", index=index, cause_text=cause_text)

    def rebased(self, offset: int) -> "BatchError":
        """This error re-addressed from shard-local to global batch indices."""
        if self.index is None or offset == 0:
            return self
        return BatchError.at(self.index + offset, self.cause_text)

    def __reduce__(self):
        # default exception pickling replays __init__ with self.args only,
        # which would drop the index a shard worker attributed
        return (BatchError, (self.args[0], self.index, self.cause_text))


_UNSET = object()

#: Guards the batched-twin cache: two threads batch-serving the same cold
#: program must not compile the twin twice (the compile is the expensive
#: part — milliseconds against the nanosecond cache hit).  A
#: :class:`~repro.backends.registry.ForkSafeLock` re-initialises itself in
#: forked children, so a fork taken mid-compile cannot leave the lock held.
_TWIN_LOCK = ForkSafeLock()


def batched_program(prog: "CompiledProgram") -> Optional["CompiledProgram"]:
    """The batch-axis twin of ``prog`` (compiled once, cached on ``prog``).

    Returns ``prog`` itself when it already carries the batch axis, and
    ``None`` when no twin can be built (no ``source_fn``, or the batched
    compile fails) — callers then use the fallback loop.  Thread-safe: the
    cache read is a single atomic attribute load, and the compile-and-store
    runs under ``_TWIN_LOCK`` with a re-check, so exactly one thread pays
    the compile.
    """
    if prog.batch_axis:
        return prog
    cached = getattr(prog, "_batched_twin", _UNSET)
    if cached is not _UNSET:
        return cached
    with _TWIN_LOCK:
        cached = getattr(prog, "_batched_twin", _UNSET)
        if cached is not _UNSET:
            return cached
        twin: Optional["CompiledProgram"] = None
        if prog.source_fn is not None:
            from . import compile_nsc

            try:
                # the twin inherits the backend pin, so a vector-pinned
                # program batch-serves on the vector engine too, and the
                # compile cache (when the program came through one; an
                # unpickled program fell back to the environment default),
                # so a warm server never recompiles twins either
                from . import _CACHE_DEFAULT

                twin = compile_nsc(
                    prog.source_fn,
                    eps=prog.eps,
                    opt_level=prog.opt_level,
                    batch_axis=True,
                    backend=prog.backend,
                    cache=getattr(prog, "_compile_cache", _CACHE_DEFAULT),
                )
            except CompileError:
                twin = None
        prog._batched_twin = twin
    return twin


def run_batch(
    prog: "CompiledProgram",
    values: Sequence[object],
    max_steps: int = 10_000_000,
    return_exceptions: bool = False,
    backend: Optional[str] = None,
) -> list[Value]:
    """Run ``prog`` on every input in ``values``; see the module docstring."""
    vals = [v if isinstance(v, Value) else from_python(v) for v in values]
    if not vals:
        return []
    twin = batched_program(prog)
    if twin is not None:
        machine = BVRAM(twin.n_registers)
        with _span("batch/encode", "serve", batch=len(vals)):
            inputs = twin.encode_batch_input(vals)
        try:
            with _span("batch/execute", "serve", batch=len(vals)) as sp:
                res = machine.run(
                    twin,
                    inputs,
                    max_steps=max_steps,
                    record_trace=False,
                    backend=backend,
                )
                sp.note(time=res.time, work=res.work)
        except BVRAMError as e:
            # Attribute the failure to an input index below.  The error is
            # kept on the program so a batched run that degrades for an
            # *infrastructure* reason (an ABI mismatch, a plan bug — not an
            # input trap) is observable instead of silently running B times
            # slower; the battery test asserts this stays None.
            prog._batch_fallback_error = e
        else:
            prog._batch_fallback_error = None
            with _span("batch/decode", "serve", batch=len(vals)):
                return twin.decode_batch_output(res.registers, len(vals))
    with _span("batch/fallback", "serve", batch=len(vals)):
        return _run_batch_fallback(prog, vals, max_steps, return_exceptions, backend)


def run_batch_fields(
    prog: "CompiledProgram",
    fields: Sequence[np.ndarray],
    count: int,
    max_steps: int = 10_000_000,
    backend: Optional[str] = None,
) -> tuple[str, list]:
    """Run a batch already in canonical **field encoding**; no re-encode.

    ``fields`` is the ``encode_batch(values, prog.dom)`` image of ``count``
    inputs — value fields only, the batch-template register is appended
    here.  This is the shard-worker entry point of the zero-copy transport:
    the fields may be read-only views into a shared-memory segment, and on
    the fast path **no S-object is ever materialised** — the return is
    ``("registers", regs)``, the batched twin's output registers still in
    flat encoding, for the caller to ship by reference and decode on the
    other side.

    When the twin cannot run (no ``source_fn``, compile failure, or the
    batched run trapped), the inputs are decoded from the fields and the
    documented per-input fallback loop takes over, returning
    ``("values", results)`` with in-slot :class:`BatchError` objects — the
    same isolation semantics as ``run_batch(return_exceptions=True)``.
    """
    if count == 0:
        return ("values", [])
    twin = batched_program(prog)
    if twin is not None:
        machine = BVRAM(twin.n_registers)
        inputs = list(fields)
        inputs.append(np.zeros(count, dtype=np.int64))
        try:
            with _span("batch/execute", "serve", batch=count) as sp:
                res = machine.run(
                    twin, inputs, max_steps=max_steps, record_trace=False, backend=backend
                )
                sp.note(time=res.time, work=res.work)
        except BVRAMError as e:
            prog._batch_fallback_error = e
        else:
            prog._batch_fallback_error = None
            return ("registers", [res.registers[i] for i in range(twin.n_outputs)])
    from .codegen import decode_batch

    vals = decode_batch(fields, prog.dom, count)
    with _span("batch/fallback", "serve", batch=count):
        return ("values", _run_batch_fallback(prog, vals, max_steps, True, backend))


def _run_batch_fallback(
    prog: "CompiledProgram",
    vals: Sequence[Value],
    max_steps: int,
    return_exceptions: bool,
    backend: Optional[str] = None,
) -> list[Value]:
    """Per-input loop: one fresh machine per input, failures isolated."""
    out: list[Value] = []
    for i, v in enumerate(vals):
        try:
            value, _ = prog.run(v, max_steps=max_steps, backend=backend)
        except BVRAMError as e:
            err = BatchError.at(i, str(e))
            if not return_exceptions:
                raise err from e
            out.append(err)
            continue
        out.append(value)
    return out


def split_shards(n: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous ``(offset, length)`` spans splitting ``n`` items ``shards`` ways.

    Same convention as ``np.array_split``: the first ``n % shards`` spans get
    one extra item, later spans may be empty when ``shards > n``.  Spans are
    in batch order, so concatenating per-shard results in span order is the
    order-preserving reassembly.
    """
    if shards <= 0:
        raise ValueError(f"shards must be positive, got {shards}")
    base, extra = divmod(n, shards)
    spans: list[tuple[int, int]] = []
    off = 0
    for i in range(shards):
        length = base + (1 if i < extra else 0)
        spans.append((off, length))
        off += length
    return spans
