"""Batched serving: run B independent inputs as one flattened machine run.

The paper's flattening makes compiled code nesting-depth independent, so a
batch of B requests to the same program is *just one more segment level*:
compile the program with a width-B root context (``compile_nsc(...,
batch_axis=True)``), stack the B input encodings (one extra batch-segment
descriptor per sequence field, no per-request marshalling loop), execute the
single instruction stream once, and split the outputs back per request.  All
per-instruction interpreter overhead — the thing that dominates small
per-request inputs — is amortised over the whole batch.

Fallback loop
-------------

``run_batch`` degrades to a documented per-input loop (one fresh machine per
input, so a failure cannot corrupt sibling results) in exactly three cases:

* the batched twin cannot be compiled — the program has no ``source_fn``
  (hand-built :class:`~repro.compiler.CompiledProgram` objects) or the
  recompile raises :class:`~repro.compiler.CompileError`;
* the batched run raises :class:`~repro.bvram.machine.BVRAMError` — either
  because some input genuinely traps (Omega, division by zero, ``get`` of a
  non-singleton, ...), or because the *combined* batch overflows a machine
  limit no single input hits (the segmented scans compute one global cumsum
  across the batch, so B inputs each near ``2**63`` can overflow jointly);
* the caller passed ``return_exceptions=True`` and the batched run trapped,
  in which case per-input isolation is the requested semantics.

In the fallback, a trapping input raises :class:`BatchError` whose message
and ``.index`` name the failing batch position (first failing index in batch
order); with ``return_exceptions=True`` the error object is returned *in
place* and every sibling's result is exactly its independent ``run()``
value.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from ..bvram import BVRAM, BVRAMError
from ..nsc.values import Value, from_python
from .nsa import CompileError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from . import CompiledProgram


class BatchError(BVRAMError):
    """A batched run failed on one specific input; ``index`` names it."""

    def __init__(self, message: str, index: Optional[int] = None) -> None:
        super().__init__(message)
        self.index = index


_UNSET = object()


def batched_program(prog: "CompiledProgram") -> Optional["CompiledProgram"]:
    """The batch-axis twin of ``prog`` (compiled once, cached on ``prog``).

    Returns ``prog`` itself when it already carries the batch axis, and
    ``None`` when no twin can be built (no ``source_fn``, or the batched
    compile fails) — callers then use the fallback loop.
    """
    if prog.batch_axis:
        return prog
    cached = getattr(prog, "_batched_twin", _UNSET)
    if cached is not _UNSET:
        return cached
    twin: Optional["CompiledProgram"] = None
    if prog.source_fn is not None:
        from . import compile_nsc

        try:
            twin = compile_nsc(
                prog.source_fn,
                eps=prog.eps,
                opt_level=prog.opt_level,
                batch_axis=True,
            )
        except CompileError:
            twin = None
    prog._batched_twin = twin
    return twin


def run_batch(
    prog: "CompiledProgram",
    values: Sequence[object],
    max_steps: int = 10_000_000,
    return_exceptions: bool = False,
) -> list[Value]:
    """Run ``prog`` on every input in ``values``; see the module docstring."""
    vals = [v if isinstance(v, Value) else from_python(v) for v in values]
    if not vals:
        return []
    twin = batched_program(prog)
    if twin is not None:
        machine = BVRAM(twin.n_registers)
        try:
            res = machine.run(
                twin,
                twin.encode_batch_input(vals),
                max_steps=max_steps,
                record_trace=False,
            )
        except BVRAMError as e:
            # Attribute the failure to an input index below.  The error is
            # kept on the program so a batched run that degrades for an
            # *infrastructure* reason (an ABI mismatch, a plan bug — not an
            # input trap) is observable instead of silently running B times
            # slower; the battery test asserts this stays None.
            prog._batch_fallback_error = e
        else:
            prog._batch_fallback_error = None
            return twin.decode_batch_output(res.registers, len(vals))
    return _run_batch_fallback(prog, vals, max_steps, return_exceptions)


def _run_batch_fallback(
    prog: "CompiledProgram",
    vals: Sequence[Value],
    max_steps: int,
    return_exceptions: bool,
) -> list[Value]:
    """Per-input loop: one fresh machine per input, failures isolated."""
    out: list[Value] = []
    for i, v in enumerate(vals):
        try:
            value, _ = prog.run(v, max_steps=max_steps)
        except BVRAMError as e:
            err = BatchError(f"batch index {i}: {e}", index=i)
            if not return_exceptions:
                raise err from e
            out.append(err)
            continue
        out.append(value)
    return out
