"""Pass 2 of the NSC->BVRAM compiler: flattening onto segmented vectors.

This pass implements Section 7.1's ``SEQ`` encoding and the constructions of
Theorem 7.1 / Lemma 7.2: every NSA value is represented by a fixed (per-type)
tuple of flat vector registers, and every NSA operation — including the
nested-parallel ``map``, data-dependent ``case`` and the hard
``map(while(p, g))`` — is lowered to straight-line segmented BVRAM code.

Representation (:class:`Rep`): under an evaluation *context* of width ``w``
(``w`` simultaneous element slots; the root program has ``w = 1``),

* ``N`` and the tag of a sum are length-``w`` vectors,
* products concatenate the fields of their components,
* a sum holds its 0/1 tag vector plus the left payload *packed over the
  tag-true slots* and the right payload packed over the tag-false slots,
* ``[t]`` holds a segment descriptor (length ``w``; entry ``i`` is the length
  of slot ``i``'s sequence) plus the element fields in a *child context*
  whose width is the total data length.

Entering ``map`` pushes a child context; because every BVRAM instruction is
already elementwise-vectorised, the body's code is *identical* at any
nesting depth — this is why flattening gives ``T' = O(T)``.

Control flow never permutes data: branches evaluate on order-preserving
*packed* sub-contexts (``select``) and results are recombined with the
order-preserving ``flag_merge`` route, so the machine needs no general
permutation instruction (Theorem 7.1).

The while case (Lemma 7.2) keeps the elements of a lifted
``while(p, g)`` in their original relative order in a *working set* and runs
``r = log2(1/eps)``-staged compaction: a stage ends when the live count drops
below ``m / n^eps`` of the stage's starting width ``m``; finished elements
ride along (never re-stepped, at most ``n^eps``-fold re-touched by the
packing) until the stage boundary flushes them into the final accumulator,
which is touched only ``O(1/eps)`` times.  This gives ``W' = O(n^eps * W)``
with a number of registers independent of ``eps`` — the paper's bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..nsc.types import NatType, ProdType, SeqType, SumType, Type, UnitType
from . import nsa
from .codegen import Emitter
from .nsa import Block, CompileError, NVar, block_free_vars


# ---------------------------------------------------------------------------
# Representations
# ---------------------------------------------------------------------------


class Rep:
    """Base class of flattened value representations."""

    __slots__ = ()


@dataclass(frozen=True)
class RUnit(Rep):
    pass


@dataclass(frozen=True)
class RScalar(Rep):
    reg: int


@dataclass(frozen=True)
class RPair(Rep):
    left: Rep
    right: Rep


@dataclass(frozen=True)
class RSum(Rep):
    tag: int
    left: Rep
    right: Rep


@dataclass(frozen=True)
class RSeq(Rep):
    seg: int
    elem: Rep


def rep_regs(rep: Rep) -> list[int]:
    """All registers of ``rep`` in the canonical field order."""
    if isinstance(rep, RUnit):
        return []
    if isinstance(rep, RScalar):
        return [rep.reg]
    if isinstance(rep, RPair):
        return rep_regs(rep.left) + rep_regs(rep.right)
    if isinstance(rep, RSum):
        return [rep.tag] + rep_regs(rep.left) + rep_regs(rep.right)
    if isinstance(rep, RSeq):
        return [rep.seg] + rep_regs(rep.elem)
    raise CompileError(f"unknown rep {rep!r}")


def rep_from_regs(t: Type, regs: Iterator[int]) -> Rep:
    """Build a rep of type ``t`` from a register stream in canonical order."""
    if isinstance(t, UnitType):
        return RUnit()
    if isinstance(t, NatType):
        return RScalar(next(regs))
    if isinstance(t, ProdType):
        left = rep_from_regs(t.left, regs)
        return RPair(left, rep_from_regs(t.right, regs))
    if isinstance(t, SumType):
        tag = next(regs)
        left = rep_from_regs(t.left, regs)
        return RSum(tag, left, rep_from_regs(t.right, regs))
    if isinstance(t, SeqType):
        seg = next(regs)
        return RSeq(seg, rep_from_regs(t.elem, regs))
    raise CompileError(f"unknown type {t!r}")


def first_reg(rep: Rep) -> Optional[int]:
    """A register whose length equals the rep's context width, if any."""
    if isinstance(rep, RScalar):
        return rep.reg
    if isinstance(rep, RSum):
        return rep.tag
    if isinstance(rep, RSeq):
        return rep.seg
    if isinstance(rep, RPair):
        r = first_reg(rep.left)
        return r if r is not None else first_reg(rep.right)
    return None


@dataclass(frozen=True)
class Ctx:
    """An evaluation context: ``template`` is any register of the context width."""

    template: int


# ---------------------------------------------------------------------------
# The flattener
# ---------------------------------------------------------------------------


class Flattener:
    """Lowers NSA blocks to segmented BVRAM code through an :class:`Emitter`."""

    def __init__(self, em: Emitter, eps: float = 0.5) -> None:
        if not 0 < eps <= 1:
            raise CompileError("eps must lie in (0, 1]")
        self.em = em
        self.eps = eps
        # n^eps is computed at run time by k-fold integer sqrt: eps ~ 2^-k.
        self._sqrt_steps = max(0, round(math.log2(1.0 / eps))) if eps < 1 else 0

    # -- small vector idioms -------------------------------------------------

    def ones_like(self, reg: int) -> int:
        return self.em.arith("eq", reg, reg)

    def zeros_like(self, reg: int) -> int:
        return self.em.arith("-", reg, reg)

    def not_mask(self, mask: int) -> int:
        return self.em.arith("-", self.ones_like(mask), mask)

    def broadcast_const(self, value: int, ctx: Ctx) -> int:
        """A length-``w`` vector of ``value`` under context ``ctx``."""
        em = self.em
        data = em.load_const(value)
        count = em.length(ctx.template)
        return em.bm_route(data=data, counts=count, bound=ctx.template)

    def trap_unless_empty(self, probe: int, message: str) -> None:
        """Raise ``BVRAMError(message)`` at run time iff ``probe`` is non-empty.

        The ``ok`` label's only predecessors are the fallthrough and the
        guard jump itself — both reach it with identical register state, and
        the trap path never returns — so the emitter's value-numbering table
        survives the label (checkpoint/restore instead of the usual clear).
        """
        snapshot = self.em.vn_checkpoint()
        ok = self.em.new_label("ok")
        self.em.goto_if_empty(ok, probe)
        self.em.trap(message)
        self.em.mark(ok)
        self.em.vn_restore(snapshot)

    def pack_field(self, data: int, mask: int, ones: Optional[int] = None) -> int:
        """Keep the entries of ``data`` at the non-zero (0/1) ``mask`` positions.

        Values are shifted by +1 before the mask multiplication so genuine
        zeros survive the non-zero ``select`` packing (the Section 2 idiom).
        """
        em = self.em
        if ones is None:
            ones = self.ones_like(mask)
        shifted = em.arith("+", data, ones)
        masked = em.arith("*", shifted, mask)
        packed = em.select(masked)
        ones_packed = em.select(mask)
        return em.arith("-", packed, ones_packed)

    # -- structural rep operations ------------------------------------------

    def empty_rep(self, t: Type) -> Rep:
        """The rep of a width-0 context (no element slots)."""
        em = self.em
        if isinstance(t, UnitType):
            return RUnit()
        if isinstance(t, NatType):
            return RScalar(em.load_empty())
        if isinstance(t, ProdType):
            return RPair(self.empty_rep(t.left), self.empty_rep(t.right))
        if isinstance(t, SumType):
            return RSum(em.load_empty(), self.empty_rep(t.left), self.empty_rep(t.right))
        if isinstance(t, SeqType):
            return RSeq(em.load_empty(), self.empty_rep(t.elem))
        raise CompileError(f"unknown type {t!r}")

    def zero_rep(self, t: Type, ctx: Ctx) -> Rep:
        """An arbitrary well-formed rep of type ``t`` (dead code after a trap)."""
        if isinstance(t, UnitType):
            return RUnit()
        if isinstance(t, NatType):
            return RScalar(self.zeros_like(ctx.template))
        if isinstance(t, ProdType):
            return RPair(self.zero_rep(t.left, ctx), self.zero_rep(t.right, ctx))
        if isinstance(t, SumType):
            # all-inr: the left payload lives over zero slots
            return RSum(
                self.zeros_like(ctx.template),
                self.empty_rep(t.left),
                self.zero_rep(t.right, ctx),
            )
        if isinstance(t, SeqType):
            return RSeq(self.zeros_like(ctx.template), self.empty_rep(t.elem))
        raise CompileError(f"unknown type {t!r}")

    def pack_rep(self, rep: Rep, mask: int) -> Rep:
        """Restrict ``rep`` to the mask-true element slots (order-preserving)."""
        em = self.em
        if isinstance(rep, RUnit):
            return rep
        if isinstance(rep, RScalar):
            return RScalar(self.pack_field(rep.reg, mask))
        if isinstance(rep, RPair):
            return RPair(self.pack_rep(rep.left, mask), self.pack_rep(rep.right, mask))
        if isinstance(rep, RSum):
            tag = self.pack_field(rep.tag, mask)
            lmask = self.pack_field(mask, rep.tag)
            rmask = self.pack_field(mask, self.not_mask(rep.tag))
            return RSum(tag, self.pack_rep(rep.left, lmask), self.pack_rep(rep.right, rmask))
        if isinstance(rep, RSeq):
            seg = self.pack_field(rep.seg, mask)
            ext = first_reg(rep.elem)
            if ext is None:
                return RSeq(seg, rep.elem)
            cmask = em.bm_route(data=mask, counts=rep.seg, bound=ext)
            return RSeq(seg, self.pack_rep(rep.elem, cmask))
        raise CompileError(f"unknown rep {rep!r}")

    def merge_rep(self, flags: int, a: Rep, b: Rep) -> Rep:
        """Order-preserving merge: slot ``i`` from ``a`` iff ``flags[i]``."""
        em = self.em
        if isinstance(a, RUnit):
            return a
        if isinstance(a, RScalar):
            assert isinstance(b, RScalar)
            return RScalar(em.flag_merge(flags, a.reg, b.reg))
        if isinstance(a, RPair):
            assert isinstance(b, RPair)
            return RPair(
                self.merge_rep(flags, a.left, b.left),
                self.merge_rep(flags, a.right, b.right),
            )
        if isinstance(a, RSum):
            assert isinstance(b, RSum)
            tag = em.flag_merge(flags, a.tag, b.tag)
            lflags = self.pack_field(flags, tag)
            rflags = self.pack_field(flags, self.not_mask(tag))
            return RSum(
                tag,
                self.merge_rep(lflags, a.left, b.left),
                self.merge_rep(rflags, a.right, b.right),
            )
        if isinstance(a, RSeq):
            assert isinstance(b, RSeq)
            seg = em.flag_merge(flags, a.seg, b.seg)
            ext_a, ext_b = first_reg(a.elem), first_reg(b.elem)
            if ext_a is None or ext_b is None:
                return RSeq(seg, a.elem)
            bound = em.append(ext_a, ext_b)
            cflags = em.bm_route(data=flags, counts=seg, bound=bound)
            return RSeq(seg, self.merge_rep(cflags, a.elem, b.elem))
        raise CompileError(f"unknown rep {a!r}")

    def distribute_rep(self, rep: Rep, counts: int, new_template: int) -> Rep:
        """Replicate slot ``i`` of ``rep`` ``counts[i]`` times (map closures).

        This is the per-element broadcast of a ``map``-ed function's closure —
        the cost the Definition 3.1 map rule charges (the paper's ``p2``).
        Scalar fields use ``bm_route``; sequence fields use the segmented
        ``sbm_route`` (whole sub-sequences replicated as blocks), recursing
        with per-slot block totals from ``seg_reduce`` at each deeper level —
        the machine's bound pair ``(new_template, counts)`` is the same nested
        sequence at every level, so one bound register serves the whole type.
        """
        return self._distribute_blocks(rep, counts, self.ones_like(counts), new_template)

    def _distribute_blocks(self, rep: Rep, counts: int, block_segs: int, bound: int) -> Rep:
        """Tile the ``block_segs``-grouped entries of ``rep`` per ``counts``."""
        em = self.em
        if isinstance(rep, RUnit):
            return rep
        if isinstance(rep, RScalar):
            return RScalar(
                em.sbm_route(bound=bound, counts=counts, data=rep.reg, segments=block_segs)
            )
        if isinstance(rep, RPair):
            return RPair(
                self._distribute_blocks(rep.left, counts, block_segs, bound),
                self._distribute_blocks(rep.right, counts, block_segs, bound),
            )
        if isinstance(rep, RSum):
            tag = em.sbm_route(bound=bound, counts=counts, data=rep.tag, segments=block_segs)
            left_blocks = em.seg_reduce("+", rep.tag, block_segs)
            right_blocks = em.seg_reduce("+", self.not_mask(rep.tag), block_segs)
            return RSum(
                tag,
                self._distribute_blocks(rep.left, counts, left_blocks, bound),
                self._distribute_blocks(rep.right, counts, right_blocks, bound),
            )
        if isinstance(rep, RSeq):
            seg = em.sbm_route(bound=bound, counts=counts, data=rep.seg, segments=block_segs)
            child_blocks = em.seg_reduce("+", rep.seg, block_segs)
            return RSeq(seg, self._distribute_blocks(rep.elem, counts, child_blocks, bound))
        raise CompileError(f"unknown rep {rep!r}")

    def phi_rep(self, rep: Rep) -> Rep:
        """Copy ``rep`` into fresh loop-carried (phi) registers."""
        em = self.em
        if isinstance(rep, RUnit):
            return rep
        if isinstance(rep, RScalar):
            return RScalar(em.move(rep.reg))
        if isinstance(rep, RPair):
            return RPair(self.phi_rep(rep.left), self.phi_rep(rep.right))
        if isinstance(rep, RSum):
            return RSum(em.move(rep.tag), self.phi_rep(rep.left), self.phi_rep(rep.right))
        if isinstance(rep, RSeq):
            return RSeq(em.move(rep.seg), self.phi_rep(rep.elem))
        raise CompileError(f"unknown rep {rep!r}")

    def assign_rep(self, phi: Rep, value: Rep) -> None:
        """Move ``value``'s registers into the phi registers (same shape)."""
        for dst, src in zip(rep_regs(phi), rep_regs(value), strict=True):
            if dst != src:
                self.em.move(src, dst=dst)

    # -- block compilation ---------------------------------------------------

    def compile_block(self, block: Block, ctx: Ctx, env: dict[NVar, Rep]) -> Rep:
        env = dict(env)
        for bind in block.binds:
            env[bind.dst] = self.compile_op(bind.op, bind.dst.type, ctx, env)
        if block.result not in env:
            raise CompileError(f"block result {block.result!r} is unbound")
        return env[block.result]

    def _sub_env(self, blocks: Sequence[Block], env: dict[NVar, Rep]) -> list[NVar]:
        fvs: dict[int, NVar] = {}
        for b in blocks:
            for v in block_free_vars(b):
                fvs.setdefault(v.id, v)
        return [fvs[i] for i in sorted(fvs)]

    def compile_op(self, op: nsa.NOp, out_t: Type, ctx: Ctx, env: dict[NVar, Rep]) -> Rep:
        em = self.em

        if isinstance(op, nsa.NConst):
            return RScalar(self.broadcast_const(op.value, ctx))

        if isinstance(op, nsa.NUnit):
            return RUnit()

        if isinstance(op, nsa.NError):
            self.trap_unless_empty(ctx.template, "evaluation of the error term Omega")
            return self.zero_rep(out_t, ctx)

        if isinstance(op, nsa.NBin):
            a, b = env[op.a], env[op.b]
            assert isinstance(a, RScalar) and isinstance(b, RScalar)
            return RScalar(em.arith(op.op, a.reg, b.reg))

        if isinstance(op, nsa.NUn):
            a = env[op.a]
            assert isinstance(a, RScalar)
            return RScalar(em.un_arith(op.op, a.reg))

        if isinstance(op, nsa.NEq):
            a, b = env[op.a], env[op.b]
            ra = a.reg if isinstance(a, RScalar) else a.tag  # N or B
            rb = b.reg if isinstance(b, RScalar) else b.tag
            return RSum(em.arith("eq", ra, rb), RUnit(), RUnit())

        if isinstance(op, nsa.NPair):
            return RPair(env[op.a], env[op.b])

        if isinstance(op, nsa.NProj):
            p = env[op.a]
            assert isinstance(p, RPair)
            return p.left if op.index == 1 else p.right

        if isinstance(op, nsa.NInl):
            assert isinstance(out_t, SumType)
            return RSum(self.ones_like(ctx.template), env[op.a], self.empty_rep(out_t.right))

        if isinstance(op, nsa.NInr):
            assert isinstance(out_t, SumType)
            return RSum(self.zeros_like(ctx.template), self.empty_rep(out_t.left), env[op.a])

        if isinstance(op, nsa.NCase):
            return self._compile_case(op, ctx, env)

        if isinstance(op, nsa.NMap):
            return self._compile_map(op, ctx, env)

        if isinstance(op, nsa.NWhile):
            return self._compile_while(op, ctx, env)

        if isinstance(op, nsa.NEmpty):
            assert isinstance(out_t, SeqType)
            return RSeq(self.zeros_like(ctx.template), self.empty_rep(out_t.elem))

        if isinstance(op, nsa.NSingle):
            # one element per slot: segment descriptor of ones; the child
            # context coincides with the current one, so the payload rep is
            # reused unchanged — a pure reinterpretation.
            return RSeq(self.ones_like(ctx.template), env[op.a])

        if isinstance(op, nsa.NAppend):
            return self._compile_append(op, ctx, env)

        if isinstance(op, nsa.NFlatten):
            s = env[op.a]
            assert isinstance(s, RSeq) and isinstance(s.elem, RSeq)
            seg = em.seg_reduce("+", s.elem.seg, s.seg)
            return RSeq(seg, s.elem.elem)

        if isinstance(op, nsa.NLength):
            s = env[op.a]
            assert isinstance(s, RSeq)
            return RScalar(s.seg)

        if isinstance(op, nsa.NGet):
            s = env[op.a]
            assert isinstance(s, RSeq)
            ones = self.ones_like(s.seg)
            bad = em.select(self.not_mask(em.arith("eq", s.seg, ones)))
            self.trap_unless_empty(bad, "get applied to a sequence of length != 1")
            return s.elem

        if isinstance(op, nsa.NZip):
            a, b = env[op.a], env[op.b]
            assert isinstance(a, RSeq) and isinstance(b, RSeq)
            bad = em.select(self.not_mask(em.arith("eq", a.seg, b.seg)))
            self.trap_unless_empty(bad, "zip of sequences with different lengths")
            return RSeq(a.seg, RPair(a.elem, b.elem))

        if isinstance(op, nsa.NEnumerate):
            s = env[op.a]
            assert isinstance(s, RSeq)
            ext = first_reg(s.elem)
            if ext is None:
                raise CompileError("enumerate over unit-only elements is outside the fragment")
            return RSeq(s.seg, RScalar(em.seg_scan("+", self.ones_like(ext), s.seg)))

        if isinstance(op, nsa.NSplit):
            d, c = env[op.data], env[op.counts]
            assert isinstance(d, RSeq) and isinstance(c, RSeq)
            assert isinstance(c.elem, RScalar)
            sums = em.seg_reduce("+", c.elem.reg, c.seg)
            bad = em.select(self.not_mask(em.arith("eq", sums, d.seg)))
            self.trap_unless_empty(bad, "split counts do not sum to the sequence length")
            return RSeq(c.seg, RSeq(c.elem.reg, d.elem))

        raise CompileError(f"unknown NSA op {type(op).__name__}")

    # -- case ---------------------------------------------------------------

    def _compile_case(self, op: nsa.NCase, ctx: Ctx, env: dict[NVar, Rep]) -> Rep:
        em = self.em
        scrut = env[op.scrut]
        assert isinstance(scrut, RSum)
        tag = scrut.tag
        ntag = self.not_mask(tag)

        lctx = Ctx(em.select(tag))
        lenv = {op.left.params[0]: scrut.left}
        for v in self._sub_env([op.left], env):
            lenv[v] = self.pack_rep(env[v], tag)
        lres = self.compile_block(op.left, lctx, lenv)

        rctx = Ctx(em.select(ntag))
        renv = {op.right.params[0]: scrut.right}
        for v in self._sub_env([op.right], env):
            renv[v] = self.pack_rep(env[v], ntag)
        rres = self.compile_block(op.right, rctx, renv)

        return self.merge_rep(tag, lres, rres)

    # -- map ----------------------------------------------------------------

    def _compile_map(self, op: nsa.NMap, ctx: Ctx, env: dict[NVar, Rep]) -> Rep:
        src = env[op.src]
        assert isinstance(src, RSeq)
        tpl = first_reg(src.elem)
        if tpl is None:
            raise CompileError("map over a sequence of unit-only elements is outside the fragment")
        child = Ctx(tpl)
        cenv = {op.body.params[0]: src.elem}
        for v in self._sub_env([op.body], env):
            cenv[v] = self.distribute_rep(env[v], src.seg, tpl)
        out = self.compile_block(op.body, child, cenv)
        return RSeq(src.seg, out)

    # -- append -------------------------------------------------------------

    def _compile_append(self, op: nsa.NAppend, ctx: Ctx, env: dict[NVar, Rep]) -> Rep:
        em = self.em
        a, b = env[op.a], env[op.b]
        assert isinstance(a, RSeq) and isinstance(b, RSeq)
        seg = em.arith("+", a.seg, b.seg)
        ext_a, ext_b = first_reg(a.elem), first_reg(b.elem)
        if ext_a is None or ext_b is None:
            return RSeq(seg, a.elem)
        # per-slot interleave: slot i contributes a.seg[i] elements of a then
        # b.seg[i] of b.  Build the 2w-long alternating (a-count, b-count)
        # vector, expand a 1/0 source flag over it and flag-merge the data.
        tpl2 = em.append(ctx.template, ctx.template)
        idx2 = em.enumerate_(tpl2)
        two = self.broadcast_const(2, Ctx(tpl2))
        par = em.arith("mod", idx2, two)
        is_a = em.arith("eq", par, self.zeros_like(par))  # 1 at even positions
        icounts = em.flag_merge(is_a, a.seg, b.seg)
        bound = em.append(ext_a, ext_b)
        cflags = em.bm_route(data=is_a, counts=icounts, bound=bound)
        return RSeq(seg, self.merge_rep(cflags, a.elem, b.elem))

    # -- while: Lemma 7.2 ----------------------------------------------------

    def _compile_while(self, op: nsa.NWhile, ctx: Ctx, env: dict[NVar, Rep]) -> Rep:
        em = self.em
        T = ctx.template
        state0 = env[op.init]
        fvs = self._sub_env([op.pred, op.body], env)
        parts0: list[Rep] = [state0] + [env[v] for v in fvs]

        ones_n = self.ones_like(T)
        n_count = em.length(T)
        # s ~ n^eps via eps = 2^-k repeated integer square roots (run time)
        s_reg = n_count
        for _ in range(self._sqrt_steps):
            s_reg = em.un_arith("sqrt", s_reg)

        # Loop-carried registers: the working set (state + closure parts, in
        # original element order), its live mask, the dense live mask over the
        # original n slots, the result accumulator and the stage width m.
        ws = [self.phi_rep(p) for p in parts0]
        live = em.move(ones_n)
        dense = em.move(ones_n)
        result = self.phi_rep(state0)
        m_reg = em.move(n_count)

        top = em.new_label("while_top")
        no_flush = em.new_label("while_go")
        exit_l = em.new_label("while_exit")

        em.mark(top)
        # stage check: flush when   #live * n^eps <= m   (stage shrank enough)
        c_reg = em.length(em.select(live))
        cmp = em.arith("le", em.arith("*", c_reg, s_reg), m_reg)
        em.goto_if_empty(no_flush, em.select(cmp))

        # ---- stage boundary: flush finished elements, compact the set ----
        not_live = self.not_mask(live)
        fin_state = self.pack_rep(ws[0], not_live)
        nd_sel = em.select(self.not_mask(dense))
        zeros_nd = em.arith("-", nd_sel, nd_sel)
        fin_dense = em.flag_merge(dense, not_live, zeros_nd)
        keep = self.pack_rep(result, self.not_mask(fin_dense))
        new_result = self.merge_rep(fin_dense, fin_state, keep)
        new_dense = em.flag_merge(dense, live, zeros_nd)
        new_ws = [self.pack_rep(r, live) for r in ws]
        new_live = em.select(live)
        for phi, val in zip(ws, new_ws):
            self.assign_rep(phi, val)
        self.assign_rep(result, new_result)
        em.move(new_live, dst=live)
        em.move(new_dense, dst=dense)
        em.move(c_reg, dst=m_reg)
        em.goto_if_empty(exit_l, em.select(m_reg))

        em.mark(no_flush)
        # ---- one parallel iteration over the live elements ----
        live_ones = em.select(live)
        packed = [self.pack_rep(r, live) for r in ws]
        penv = {op.pred.params[0]: packed[0]}
        for v, r in zip(fvs, packed[1:]):
            penv[v] = r
        pres = self.compile_block(op.pred, Ctx(live_ones), penv)
        assert isinstance(pres, RSum)
        pmask = pres.tag  # 1 = keep iterating, 0 = finished now
        go = [self.pack_rep(r, pmask) for r in packed]
        benv = {op.body.params[0]: go[0]}
        for v, r in zip(fvs, go[1:]):
            benv[v] = r
        stepped = self.compile_block(op.body, Ctx(em.select(pmask)), benv)
        # Only the state part changes inside an iteration: the closure parts
        # (ws[1:]) are loop-invariant between compactions, so recombining
        # them would be an identity round-trip of vector work.
        stay = self.pack_rep(packed[0], self.not_mask(pmask))
        merged_state = self.merge_rep(pmask, stepped, stay)
        not_live2 = self.not_mask(live)
        rest = self.pack_rep(ws[0], not_live2)
        new_state = self.merge_rep(live, merged_state, rest)
        nl_sel = em.select(not_live2)
        zeros_nl = em.arith("-", nl_sel, nl_sel)
        new_live2 = em.flag_merge(live, pmask, zeros_nl)
        self.assign_rep(ws[0], new_state)
        em.move(new_live2, dst=live)
        em.goto(top)

        em.mark(exit_l)
        return result
