"""The NSC -> BVRAM compiler: Section 7's compilation chain, end to end.

The paper's headline theorem (Theorem 7.1) states that every NSC program of
time complexity ``T`` and work complexity ``W`` can be executed on a Bounded
Vector RAM in time ``T' = O(T)`` and work ``W' = O(W^(1+eps))`` for any fixed
``eps > 0``.  This package implements that compilation as three passes, each
mapped to its place in Section 7:

Pass 1 — :mod:`repro.compiler.nsa` (*variable elimination*, Section 7 step 1)
    Lowers the NSC AST into **NSA**, a first-order administrative-normal-form
    IR: lambdas are beta-inlined, ``let`` becomes bindings, every value gets
    a unique typed name, and ``map`` / ``while`` / ``case`` carry their
    sub-programs as parameterised blocks with explicit free-variable lists
    (the closures whose size Definition 3.1 charges at application sites).

Pass 2 — :mod:`repro.compiler.flatten` (*flattening*, Section 7.1 + Lemma 7.2)
    Maps every nested-sequence value onto segment-descriptor vectors (the
    ``SEQ(t)`` encoding borrowed from [Ble90]) and lowers each NSA operation
    to segmented vector code.  ``map`` becomes a *context push* — the body's
    vector code is unchanged at any nesting depth, which is what makes
    ``T' = O(T)``.  Conditionals evaluate both branches on order-preserving
    packed sub-contexts and recombine with a flag-merge route, so no general
    permutation is ever needed (the point of Theorem 7.1).  The hard case,
    ``map(while(p, g))``, uses the **Lemma 7.2 staged scheme**: elements stay
    in relative order in a working set that is compacted only when the live
    count falls by the factor ``n^eps``, bounding the re-touching overhead by
    ``O(n^eps * W)`` with a register count independent of ``eps`` (the
    operational model of :mod:`repro.sa.flattening`, here as machine code).

Pass 3 — :mod:`repro.compiler.codegen` (*code generation*, Section 2 target)
    Emits :mod:`repro.bvram.isa` instructions — extended with the segmented
    ops (``flag_merge``, ``seg_scan``, ``seg_reduce``, ``un_arith``,
    ``trap``) that Proposition 2.1's butterfly argument also covers — and
    marshals S-objects to and from the canonical flat register layout.

Front door::

    from repro.compiler import compile_nsc
    prog = compile_nsc(fn, eps=0.5)       # fn : an NSC Function
    value, run = prog.run(from_python([3, 1, 2]))
    print(value, run.time, run.work)      # T' and W' per the Section 2 costs

    outs = prog.run_batch([x1, x2, x3])   # B requests, ONE machine run: the
                                          # batch is one more segment level
                                          # (see repro.compiler.batch)

``eps`` is realised at run time as ``n^eps`` via repeated integer square
roots, so it is quantised to ``2**-k`` (``1, 0.5, 0.25, ...``).  Programs
using named recursion must first pass through the Theorem 4.2 translation
(:func:`repro.maprec.translate.translate`) — together the two close the
paper's chain from recursive NSC all the way down to BVRAM instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..backends import get_backend
from ..bvram import BVRAM, RunResult
from ..bvram.isa import Program
from ..nsc import ast as A
from ..nsc.typecheck import infer_function
from ..nsc.types import Type
from ..nsc.values import Value, from_python
from ..obs.trace import span as _span
from .codegen import (
    Emitter,
    decode_batch,
    decode_values,
    encode_batch,
    encode_values,
    field_count,
    reuse_registers,
    split_batch,
)
from .flatten import Ctx, Flattener, rep_from_regs, rep_regs
from .nsa import CompileError, block_size, hoist_projections, lower_function
from .optimize import eliminate_dead_instructions, optimize_block

__all__ = [
    "BatchError",
    "CompileError",
    "CompiledProgram",
    "compile_nsc",
]


@dataclass
class CompiledProgram(Program):
    """A BVRAM :class:`~repro.bvram.isa.Program` plus its NSC calling convention.

    ``batch_axis=True`` marks a program compiled with the **batch-segment
    context**: the root context has width B (one slot per independent
    request) instead of 1, fed by one extra input register — the *batch
    template*, a length-B vector — after the ``field_count(dom)`` value
    registers.  Such a program executes B inputs in a single machine run;
    the flattened body code is exactly the one a width-1 compile produces,
    because flattening makes code width-independent (the paper's point).
    ``source_fn`` keeps the NSC function so :meth:`run_batch` can compile
    the batched twin of a width-1 program on first use.

    ``backend`` pins the untraced execution backend for this program
    (``"interp"`` / ``"fused"`` / ``"vector"`` / ...); ``None`` defers to
    the ``REPRO_BACKEND`` environment variable and the ``fused`` default.
    It is a plain string field, so — unlike the derived plans below — the
    choice *survives pickling*: a shard worker or serving lane receiving
    the program re-derives the plan of the selected backend.
    """

    dom: Optional[Type] = None
    cod: Optional[Type] = None
    eps: float = 0.5
    nsa_size: int = 0
    opt_level: int = 2
    batch_axis: bool = False
    source_fn: Optional[A.Function] = None
    backend: Optional[str] = None

    #: run-time caches attached to instances after compilation; they hold
    #: closures (execution plans) and diagnostics that must not — and the
    #: plans *cannot* — cross a pickle boundary.  A shard worker receiving
    #: the program re-derives them on first use, which is exactly the
    #: "compiled once per worker" discipline of repro.serving.shard.
    _CACHE_ATTRS = (
        "_fast_plan",
        "_fused_plan",
        "_vector_plan",
        "_vector_jit_plan",
        "_batched_twin",
        "_batch_fallback_error",
        "_profile_meta",
        "_compile_cache",
    )

    def __getstate__(self):
        state = dict(self.__dict__)
        for attr in self._CACHE_ATTRS:
            state.pop(attr, None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    def encode_input(self, value: object) -> list[np.ndarray]:
        """Marshal one S-object (or plain Python data) into the input registers."""
        return self.encode_batch_input([from_python(value)])

    def encode_batch_input(self, values: Sequence[Value]) -> list[np.ndarray]:
        """Marshal a batch of S-objects into the input-register image.

        For a ``batch_axis`` program the image is the width-B canonical
        encoding plus the batch template register; a width-1 program accepts
        only singleton batches.
        """
        assert self.dom is not None
        if not self.batch_axis and len(values) != 1:
            raise CompileError(
                f"program compiled without batch_axis takes 1 input, got {len(values)}"
            )
        fields = encode_batch(values, self.dom)
        if self.batch_axis:
            fields.append(np.zeros(len(values), dtype=np.int64))
        return fields

    def encode_batch_fields(self, values: Sequence[Value]) -> list[np.ndarray]:
        """The canonical field encoding of a batch — value fields only.

        Unlike :meth:`encode_batch_input` this never appends the batch
        template and works on width-1 programs too: it is the transport
        image a shard executor encodes **once** per batch and then splits
        into per-span views with :meth:`split_batch_fields`.
        """
        assert self.dom is not None
        return encode_batch(values, self.dom)

    def split_batch_fields(
        self, fields: Sequence[np.ndarray], spans: Sequence[tuple[int, int]]
    ) -> list[list[np.ndarray]]:
        """Slice one batch's field encoding into per-span field **views**.

        Each span's field list is exactly what :meth:`encode_batch_fields`
        would produce for that sub-batch, but as zero-copy views into
        ``fields`` — the entry point the shared-memory shard transport
        ships spans through (see :func:`repro.compiler.codegen.split_batch`).
        """
        assert self.dom is not None
        return split_batch(fields, self.dom, spans)

    def decode_batch_fields(self, fields: Sequence, count: int) -> list[Value]:
        """Rebuild ``count`` result S-objects from *output* field vectors.

        The inverse transport entry point: ``fields`` holds the codomain
        encoding — e.g. the output registers a shard worker shipped back by
        reference — rather than a full register file.
        """
        assert self.cod is not None
        return decode_batch(fields, self.cod, count)

    def decode_output(self, registers: Sequence) -> Value:
        """Rebuild the result S-object from the output registers."""
        return self.decode_batch_output(registers, 1)[0]

    def decode_batch_output(self, registers: Sequence, count: int) -> list[Value]:
        """Rebuild ``count`` result S-objects from the output registers."""
        assert self.cod is not None
        fields = [registers[i] for i in range(self.n_outputs)]
        return decode_batch(fields, self.cod, count)

    def run(
        self,
        value: object,
        max_steps: int = 10_000_000,
        trace: bool = False,
        backend: Optional[str] = None,
    ) -> tuple[Value, RunResult]:
        """Execute on a fresh machine; returns (result S-object, T/W RunResult).

        ``trace=False`` (the default) takes the machine's untraced fast
        path: ``T'``/``W'`` totals are bit-identical to a traced run, but no
        per-instruction :class:`~repro.bvram.machine.TraceEntry` list is
        built.  Pass ``trace=True`` when the result will be replayed on the
        butterfly network or Brent-scheduled (they need the trace).
        ``backend`` overrides the untraced engine for this call (the
        program's own ``backend`` field, then ``REPRO_BACKEND``, then
        ``fused`` apply otherwise); it is ignored in traced mode.
        """
        machine = BVRAM(self.n_registers)
        res = machine.run(
            self,
            self.encode_input(value),
            max_steps=max_steps,
            record_trace=trace,
            backend=backend,
        )
        return self.decode_output(res.registers), res

    def profile(self, value: object, max_steps: int = 10_000_000, backend: Optional[str] = None):
        """Profile one run: per-block hits, wall time and exact T'/W' attribution.

        Executes like an untraced ``run()`` (same backend selection, same
        cached plan) through the attributing dispatch loop of
        :mod:`repro.obs.profile` and returns a
        :class:`~repro.obs.profile.ProfileReport` — ``report.table()`` is
        the sorted hot-block table, each row's ``source_line`` indexes into
        ``report.listing`` (the instruction listing ``disassemble()``
        prints).  Per-entry ``time``/``work`` sums are bit-identical to the
        run's machine totals, on success and on every error path; a
        trapping input sets ``report.error`` instead of raising.  Opt-in
        per call: plain runs never pay for the instrumentation.
        """
        from ..obs.profile import profile_run

        report = profile_run(
            self, self.encode_input(value), max_steps=max_steps, backend=backend
        )
        if report.error is None:
            report.result = self.decode_output(report.registers)
        return report

    def disassemble(self, backend: Optional[str] = None) -> str:
        """The selected backend's plan listing / generated source for this program.

        ``interp`` and ``fused`` return an annotated instruction listing;
        ``vector`` returns the generated Python source of its mega-op block
        functions.  Defaults to the same backend a ``run()`` would select.
        """
        from ..backends import resolve_backend

        return resolve_backend(backend, program=self).disassemble(self)

    def run_batch(
        self,
        values: Sequence[object],
        max_steps: int = 10_000_000,
        return_exceptions: bool = False,
        executor: Optional[object] = None,
        shards: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> list[Value]:
        """Execute B independent inputs as **one** flattened machine run.

        The batched twin of this program (compiled once, cached) pushes a
        single extra batch-segment context over the root, so serving B
        requests costs one instruction stream — not B Python dispatch loops.
        Falls back to a per-input loop when the twin cannot be built or the
        batched run traps; see :mod:`repro.compiler.batch` for the exact
        semantics (a trapping input raises :class:`BatchError` naming its
        batch index, or is returned in place with
        ``return_exceptions=True``).

        ``executor`` (a :class:`repro.serving.ShardExecutor`) routes the
        batch to the multi-core shard path: the batch is split along the
        batch axis into ``shards`` contiguous spans (default: one per
        worker), each span runs its own batched machine in a persistent
        worker process, and the results are reassembled order-preserving
        with trap indices re-based to this batch's global positions.
        """
        if executor is not None:
            return executor.run_batch(
                self,
                values,
                shards=shards,
                max_steps=max_steps,
                return_exceptions=return_exceptions,
                backend=backend,
            )
        from .batch import run_batch

        return run_batch(
            self,
            values,
            max_steps=max_steps,
            return_exceptions=return_exceptions,
            backend=backend,
        )


#: default for ``compile_nsc(cache=...)``: resolve through ``REPRO_CACHE_DIR``
#: (see :func:`repro.cache.default_cache`); distinct from an explicit ``None``,
#: which disables caching for the call.
_CACHE_DEFAULT = object()


def compile_nsc(
    fn: A.Function,
    eps: float = 0.5,
    opt_level: int = 2,
    batch_axis: bool = False,
    backend: Optional[str] = None,
    cache: object = _CACHE_DEFAULT,
) -> CompiledProgram:
    """Compile a (typecheckable) NSC function to an executable BVRAM program.

    ``eps`` trades work for register pressure per Lemma 7.2 (``W' =
    O(W^(1+eps))``); it is quantised to ``2**-k``.  Raises
    :class:`~repro.nsc.typecheck.NSCTypeError` on ill-typed input and
    :class:`CompileError` on programs outside the supported fragment
    (named recursion, equality on non-scalar types, sequence-typed closures
    under ``map``).

    ``opt_level`` selects the optimizing pipeline (see
    :mod:`repro.compiler.optimize`); every level computes the same values,
    and a higher level can only shrink the measured ``T'``/``W'``:

    * ``0`` — naive PR 2 emission (the baseline);
    * ``1`` — NSA-level passes: constant folding, copy propagation, CSE,
      trap-preserving dead-code elimination;
    * ``2`` (default) — additionally value-numbers the emitted stream
      (segment-descriptor reuse), deletes dead instructions and reuses dead
      registers by linear scan.

    ``batch_axis=True`` compiles the **batched twin**: instead of the
    width-1 root context (one ``load_const`` template), the root context is
    a width-B batch of independent inputs whose template arrives as one
    extra input register after the ``field_count(dom)`` value fields.  The
    emitted body is the same depth-independent flattened code — batching is
    literally one more segment level.  ``CompiledProgram.run_batch`` builds
    and caches this twin on demand; it is also a public knob for callers
    that want to hold the batched program directly.

    ``backend`` pins the untraced execution backend on the program (see
    :mod:`repro.backends`); the choice rides the program through pickling
    to shard workers.  Unknown names are a :class:`CompileError` here, not
    a run-time surprise.

    ``cache`` selects the content-addressed compile cache (see
    :mod:`repro.cache`): by default the ``REPRO_CACHE_DIR`` environment
    variable decides (unset = no cache); pass a
    :class:`~repro.cache.CompileCache` to use one explicitly, or ``None`` /
    ``False`` to bypass caching for this call.  A hit skips every pass and
    returns the stored program — value- and ``T'``/``W'``-identical to a
    fresh compile, because the key covers the canonical AST, every knob
    above, and the ISA/codegen version salt.
    """
    if opt_level not in (0, 1, 2):
        raise CompileError(f"opt_level must be 0, 1 or 2, got {opt_level!r}")
    if backend is not None:
        try:
            get_backend(backend)
        except ValueError as e:
            raise CompileError(str(e)) from None

    # resolve the cache lazily: repro.cache hashes against this package's
    # codegen version, so importing it here (post-init) avoids a cycle
    if cache is _CACHE_DEFAULT:
        from ..cache.store import default_cache

        store = default_cache()
    elif not cache:
        store = None
    else:
        store = cache
    if store is not None:
        from ..cache.key import cache_key

        key = cache_key(
            fn, eps=eps, opt_level=opt_level, batch_axis=batch_axis, backend=backend
        )
        with _span("compile/cache", "compile") as sp:
            hit = store.get(key)
            sp.note(hit=int(hit is not None))
        if hit is not None:
            hit._compile_cache = store
            return hit

    with _span("compile/nsa", "compile") as sp:
        ft = infer_function(fn)
        block = hoist_projections(lower_function(fn, ft.dom))
        sp.note(nsa_size=block_size(block))
    if opt_level >= 1:
        with _span("compile/optimize", "compile") as sp:
            block = optimize_block(block)
            sp.note(nsa_size=block_size(block))

    with _span("compile/flatten", "compile") as sp:
        n_fields = field_count(ft.dom)
        n_in = n_fields + 1 if batch_axis else n_fields
        em = Emitter(reserved=n_in, value_number=opt_level >= 2)
        param = rep_from_regs(ft.dom, iter(range(n_fields)))
        if batch_axis:
            root_tpl = n_fields  # input register: the length-B batch template
        else:
            root_tpl = em.load_const(0)  # the root context has width 1
        fl = Flattener(em, eps)
        result = fl.compile_block(block, Ctx(root_tpl), {block.params[0]: param})

        out_regs = rep_regs(result)
        temps = [em.move(r) for r in out_regs]  # two-phase: outputs may overlap inputs
        for i, t in enumerate(temps):
            em.move(t, dst=i)
        em.halt()
        sp.note(instructions=len(em.instructions), registers=em.n_regs)

    with _span("compile/codegen", "compile") as sp:
        instructions, labels = em.instructions, em.labels
        n_registers = max(em.n_regs, 1)
        if opt_level >= 2:
            instructions, labels = eliminate_dead_instructions(
                instructions, labels, n_outputs=len(out_regs)
            )
            instructions, n_registers = reuse_registers(
                instructions, labels, n_inputs=n_in, n_outputs=len(out_regs)
            )
        sp.note(instructions=len(instructions), registers=n_registers)

    prog = CompiledProgram(
        instructions=instructions,
        labels=labels,
        n_registers=n_registers,
        n_inputs=n_in,
        n_outputs=len(out_regs),
        dom=ft.dom,
        cod=ft.cod,
        eps=eps,
        nsa_size=block_size(block),
        opt_level=opt_level,
        batch_axis=batch_axis,
        source_fn=fn,
        backend=backend,
    )
    prog.validate()
    if store is not None:
        store.put(key, prog)
        prog._compile_cache = store
    return prog


from .batch import BatchError  # noqa: E402  (needs CompiledProgram defined above)
