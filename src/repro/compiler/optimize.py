"""Optimizing passes over the NSA IR and over emitted BVRAM code.

The PR 2 compiler emits *naive* code: every intermediate value gets a fresh
binding, every constant is re-broadcast, and every segment descriptor is
re-derived at each use.  This module closes that gap with two groups of
passes, both of which are **refinements** in the cost model: an optimized
program computes the same S-object as the naive one while its measured
machine costs ``T'`` and ``W'`` can only shrink, never grow (checked by
``tests/test_optimize.py`` and the differential battery).

NSA-level passes (:func:`optimize_block`, run at ``opt_level >= 1``):

* **constant folding** — ``NBin``/``NUn`` over known constants evaluate at
  compile time, with exactly the machine's arithmetic (monus subtraction,
  floor division, the ``>> 63`` cutoff); a fold is skipped whenever it could
  hide a runtime trap (division by a zero constant, an int64 overflow);
* **copy propagation / algebraic simplification** — ``pi_i(pair(a, b))``,
  ``get([x])``, ``flatten([s])``, ``x + 0``, ``x * 1``, ``x >> 0`` and
  friends forward their operand instead of binding a new value;
* **common-subexpression elimination** — pure block-free operations are
  value-numbered (commutative operators canonicalised); the table is
  *inherited* into ``map``/``while``/``case`` sub-blocks, so an operation on
  loop-invariant values is aliased to the enclosing scope's binding — the
  flattener then captures one closure slot instead of re-running the
  operation per element per iteration;
* **dead-code elimination** — bindings whose value is never used are
  dropped, *unless* they are semantically partial: ``Omega``, ``get``,
  ``zip``, ``split``, division/modulo, and any ``while`` (non-termination)
  must keep their trap behaviour.  Overflow checks are resource faults of
  the finite-register machine, not of NSC semantics, so an optimization may
  remove one (never add one).

Emitted-code passes (run at ``opt_level >= 2``, together with the emitter's
value numbering in :mod:`repro.compiler.codegen`):

* **dead-register elimination** (:func:`eliminate_dead_instructions`) —
  instructions whose destination register is never read (and is not a
  program output) are deleted, to a fixpoint, with jump labels re-indexed.
"""

from __future__ import annotations

from dataclasses import replace

from .nsa import (
    BLOCK_FIELDS as _BLOCK_FIELDS,
    OPERAND_FIELDS as _OPERAND_FIELDS,
    Bind,
    Block,
    NBin,
    NConst,
    NEmpty,
    NEq,
    NError,
    NFlatten,
    NGet,
    NLength,
    NOp,
    NPair,
    NProj,
    NSingle,
    NSplit,
    NUn,
    NVar,
    NWhile,
    NZip,
    block_free_vars,
)

#: Largest value a BVRAM register can hold (int64 naturals).
_REG_LIMIT = 2**63

#: NBin operators whose operand order does not matter (for CSE keys).
_COMMUTATIVE = frozenset({"+", "*", "min", "max"})


# ---------------------------------------------------------------------------
# Constant folding (exactly the machine arithmetic of repro.bvram.machine)
# ---------------------------------------------------------------------------


def _fold_bin(op: str, a: int, b: int) -> int | None:
    """Fold ``a op b`` or return None when the fold is unsafe (trap/overflow)."""
    if op == "+":
        c = a + b
        return c if c < _REG_LIMIT else None
    if op == "-":
        return a - b if a >= b else 0
    if op == "*":
        c = a * b
        return c if c < _REG_LIMIT else None
    if op == "/":
        return a // b if b != 0 else None
    if op == "mod":
        return a % b if b != 0 else None
    if op == ">>":
        # the machine caps shifts: floor(a / 2**b) = 0 once b >= 63
        return 0 if b >= 63 else a >> b
    if op == "min":
        return min(a, b)
    if op == "max":
        return max(a, b)
    if op == "eq":
        return int(a == b)
    if op == "le":
        return int(a <= b)
    if op == "lt":
        return int(a < b)
    return None


def _fold_un(op: str, a: int) -> int | None:
    if op == "log2":
        return a.bit_length() - 1 if a > 0 else 0
    if op == "sqrt":
        import math

        return math.isqrt(a)
    return None


# ---------------------------------------------------------------------------
# Structural helpers (field tables live in nsa.py next to the op classes)
# ---------------------------------------------------------------------------


def _substitute(op: NOp, subst: dict[int, NVar]) -> NOp:
    fields = _OPERAND_FIELDS.get(type(op))
    if not fields:
        return op
    updates = {}
    for f in fields:
        v = getattr(op, f)
        w = subst.get(v.id)
        if w is not None and w.id != v.id:
            updates[f] = w
    return replace(op, **updates) if updates else op


def _rebuild_blocks(op: NOp, blocks: tuple[Block, ...]) -> NOp:
    fields = _BLOCK_FIELDS[type(op)]
    return replace(op, **dict(zip(fields, blocks)))


def _op_key(op: NOp, dst_type) -> tuple | None:
    """A value-numbering key for pure, block-free ops (None = not CSE-able).

    The destination *type* is part of every key: structurally equal ops can
    differ in result type (``NEmpty`` of ``[N]`` vs ``[[N]]``, ``NInl`` into
    different sums), and their flattened representations have different
    register shapes, so they must never merge.
    """
    cls = type(op)
    if cls in _BLOCK_FIELDS or isinstance(op, NError):
        return None
    t = str(dst_type)
    if isinstance(op, NConst):
        return ("NConst", op.value, t)
    if isinstance(op, NBin) and op.op in _COMMUTATIVE:
        return ("NBin", op.op, t) + tuple(sorted((op.a.id, op.b.id)))
    if isinstance(op, NEq):
        return ("NEq", t) + tuple(sorted((op.a.id, op.b.id)))
    key: list = [cls.__name__, t]
    for f in _OPERAND_FIELDS.get(cls, ()):
        key.append(getattr(op, f).id)
    for f in ("op", "index"):
        if hasattr(op, f):
            key.append(getattr(op, f))
    return tuple(key)


def _semantically_partial(op: NOp) -> bool:
    """True when removing the op (if dead) would change NSC semantics.

    ``while`` may diverge; ``Omega``, ``get``, ``zip``, ``split`` and
    division/modulo may raise in the *interpreter* too, so their traps are
    part of the program's meaning.  Pure overflow faults are not counted.
    """
    if isinstance(op, (NError, NGet, NZip, NSplit, NWhile)):
        return True
    if isinstance(op, NBin) and op.op in ("/", "mod"):
        return True
    for b in op.blocks():
        if _block_partial(b):
            return True
    return False


def _block_partial(block: Block) -> bool:
    return any(_semantically_partial(bind.op) for bind in block.binds)


# ---------------------------------------------------------------------------
# The forward rewrite pass: fold + copy-propagate + simplify + CSE
# ---------------------------------------------------------------------------


def _simplify(
    op: NOp, consts: dict[int, int], defs: dict[int, NOp]
) -> NOp | NVar:
    """One local rewrite step: returns a replacement op, or an NVar alias."""
    if isinstance(op, NBin):
        ca, cb = consts.get(op.a.id), consts.get(op.b.id)
        if ca is not None and cb is not None:
            folded = _fold_bin(op.op, ca, cb)
            if folded is not None and folded < _REG_LIMIT:
                return NConst(folded)
        # algebraic identities against a constant operand
        if op.op == "+":
            if cb == 0:
                return op.a
            if ca == 0:
                return op.b
        elif op.op == "-":
            if cb == 0:
                return op.a
            if ca == 0:
                return NConst(0)
        elif op.op == "*":
            if cb == 1:
                return op.a
            if ca == 1:
                return op.b
            if cb == 0 or ca == 0:
                return NConst(0)
        elif op.op == "/":
            if cb == 1:
                return op.a
        elif op.op == "mod":
            if cb == 1:
                return NConst(0)
        elif op.op == ">>":
            if cb == 0:
                return op.a
        elif op.op in ("min", "max"):
            if op.a.id == op.b.id:
                return op.a
        return op
    if isinstance(op, NUn):
        ca = consts.get(op.a.id)
        if ca is not None:
            folded = _fold_un(op.op, ca)
            if folded is not None and folded < _REG_LIMIT:
                return NConst(folded)
        return op
    if isinstance(op, NProj):
        d = defs.get(op.a.id)
        if isinstance(d, NPair):
            return d.a if op.index == 1 else d.b
        return op
    if isinstance(op, NGet):
        d = defs.get(op.a.id)
        if isinstance(d, NSingle):
            # get([x]) = x, provably total: the trap cannot fire
            return d.a
        return op
    if isinstance(op, NFlatten):
        d = defs.get(op.a.id)
        if isinstance(d, NSingle):
            # flatten([s]) = s for a sequence-typed s
            return d.a
        return op
    if isinstance(op, NLength):
        d = defs.get(op.a.id)
        if isinstance(d, NSingle):
            return NConst(1)
        if isinstance(d, NEmpty):
            return NConst(0)
        return op
    return op


def _rewrite_block(
    block: Block,
    subst: dict[int, NVar],
    consts: dict[int, int],
    defs: dict[int, NOp],
    vn: dict[tuple, NVar],
) -> Block:
    binds_out: list[Bind] = []
    for bind in block.binds:
        op = _substitute(bind.op, subst)
        subs = op.blocks()
        if subs:
            # Sub-blocks inherit the substitution (references to outer binds
            # dropped by CSE must still resolve) and the constant table
            # (folding an inner op to a local NConst removes a free
            # variable).  They do NOT inherit ``vn`` or ``defs``: aliasing
            # an inner op to an *outer* binding would add a free variable to
            # the block, and the flattener pays for every free variable per
            # element (``map`` broadcast) or per iteration (the Lemma 7.2
            # working set re-packs each closure part every step) — the
            # "optimization" could then grow T'/W' instead of shrinking it.
            rewritten = tuple(
                _rewrite_block(b, dict(subst), dict(consts), {}, {}) for b in subs
            )
            op = _rebuild_blocks(op, rewritten)
            defs[bind.dst.id] = op
            binds_out.append(Bind(bind.dst, op))
            continue
        result = _simplify(op, consts, defs)
        if isinstance(result, NVar):
            subst[bind.dst.id] = result
            continue
        op = result
        key = _op_key(op, bind.dst.type)
        if key is not None:
            hit = vn.get(key)
            if hit is not None:
                subst[bind.dst.id] = hit
                continue
            vn[key] = bind.dst
        if isinstance(op, NConst):
            consts[bind.dst.id] = op.value
        defs[bind.dst.id] = op
        binds_out.append(Bind(bind.dst, op))
    result_var = subst.get(block.result.id, block.result)
    return Block(block.params, tuple(binds_out), result_var)


# ---------------------------------------------------------------------------
# Dead-code elimination (trap-preserving)
# ---------------------------------------------------------------------------


def _dce_block(block: Block) -> Block:
    needed: set[int] = {block.result.id}
    kept: list[Bind] = []
    for bind in reversed(block.binds):
        op = bind.op
        subs = op.blocks()
        if subs:
            op = _rebuild_blocks(op, tuple(_dce_block(b) for b in subs))
        if bind.dst.id in needed or _semantically_partial(op):
            kept.append(Bind(bind.dst, op))
            for v in op.operands():
                needed.add(v.id)
            for b in op.blocks():
                for v in block_free_vars(b):
                    needed.add(v.id)
    return Block(block.params, tuple(reversed(kept)), block.result)


# ---------------------------------------------------------------------------
# Pass driver
# ---------------------------------------------------------------------------


def fold_and_cse(block: Block) -> Block:
    """One forward rewrite pass (folding, copy propagation, CSE)."""
    return _rewrite_block(block, {}, {}, {}, {})


def dead_code_elimination(block: Block) -> Block:
    """One backward DCE pass (keeps semantically partial bindings)."""
    return _dce_block(block)


def optimize_block(block: Block, max_rounds: int = 4) -> Block:
    """Run the NSA pass pipeline to a fixpoint (at most ``max_rounds``)."""
    for _ in range(max_rounds):
        new = dead_code_elimination(fold_and_cse(block))
        if new == block:
            break
        block = new
    return block


# ---------------------------------------------------------------------------
# IR pretty printer (golden-snapshot tests)
# ---------------------------------------------------------------------------


def format_block(block: Block) -> str:
    """Render a block with stable, order-of-appearance variable numbering."""
    names: dict[int, str] = {}

    def name(v: NVar) -> str:
        if v.id not in names:
            names[v.id] = f"%{len(names)}"
        return names[v.id]

    def fmt_op(op: NOp, indent: str) -> str:
        cls = type(op)
        parts = [cls.__name__[1:].lower()]
        for f in ("op", "index", "value"):
            if hasattr(op, f):
                parts.append(str(getattr(op, f)))
        for f in _OPERAND_FIELDS.get(cls, ()):
            parts.append(name(getattr(op, f)))
        line = " ".join(parts)
        for label, sub in zip(("{", "{", "{"), op.blocks()):
            line += " " + label + "\n" + fmt_block(sub, indent + "  ") + "\n" + indent + "}"
        return line

    def fmt_block(b: Block, indent: str) -> str:
        header = indent + "block(" + ", ".join(f"{name(p)}:{p.type}" for p in b.params) + "):"
        lines = [header]
        for bind in b.binds:
            lines.append(f"{indent}  {name(bind.dst)} = {fmt_op(bind.op, indent + '  ')}")
        lines.append(f"{indent}  -> {name(b.result)}")
        return "\n".join(lines)

    return fmt_block(block, "")


# ---------------------------------------------------------------------------
# Emitted-code dead-register elimination
# ---------------------------------------------------------------------------


def eliminate_dead_instructions(
    instructions: list,
    labels: dict[str, int],
    n_outputs: int,
) -> tuple[list, dict[str, int]]:
    """Drop instructions whose destination is never read, to a fixpoint.

    Output registers ``0 .. n_outputs-1`` are live at program end.  Only
    side-effect-free instructions are candidates; division/modulo keep their
    division-by-zero trap, and control flow (``goto``/``trap``/``halt``)
    writes no registers so it is never touched.  Jump labels are re-indexed
    to account for removed instructions.
    """
    from ..bvram import isa

    def removable(instr) -> bool:
        if not instr.registers_written():
            return False
        if isinstance(instr, isa.Arith) and instr.op in ("/", "mod"):
            return False  # semantic trap: division by zero
        return True

    while True:
        read: set[int] = set(range(n_outputs))
        for instr in instructions:
            read.update(instr.registers_read())
        dead = [
            i
            for i, instr in enumerate(instructions)
            if removable(instr) and not (set(instr.registers_written()) & read)
        ]
        if not dead:
            return instructions, labels
        dead_set = set(dead)
        # labels point at instruction indices: shift by the removals before them
        kept = [instr for i, instr in enumerate(instructions) if i not in dead_set]
        shift = [0] * (len(instructions) + 1)
        removed = 0
        for i in range(len(instructions) + 1):
            shift[i] = removed
            if i < len(instructions) and i in dead_set:
                removed += 1
        labels = {name: idx - shift[idx] for name, idx in labels.items()}
        instructions = kept
