"""Pass 3 of the NSC->BVRAM compiler: instruction emission and marshalling.

The :class:`Emitter` owns the three resources a BVRAM program is made of —
registers, labels and the instruction list — and exposes one tiny wrapper per
ISA instruction.  The flattening pass (:mod:`repro.compiler.flatten`) calls
these wrappers; everything it allocates is a *final* machine register (the
BVRAM allows any fixed register count per program, cf. Section 2's
``r``-register machines), so no separate register-allocation pass is needed
for correctness.

The module also implements the input/output marshalling that connects NSC
S-objects to the flat register encoding of Section 7.1: a value of type ``t``
occupies ``field_count(t)`` registers, laid out in the canonical pre-order

* ``N`` / ``B``-tag first,
* products left then right,
* sums: tag vector, then the left payloads (packed over the tag-true
  positions), then the right payloads,
* sequences: segment descriptor, then the element fields over the
  concatenated data space.

``encode_values`` / ``decode_values`` convert between a *batch* of S-objects
and that register image; width 1 gives the single-value convention used by
``CompiledProgram.run``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

import numpy as np

from ..bvram import isa
from ..nsc.values import (
    UNIT_VALUE,
    Value,
    VInl,
    VInr,
    VNat,
    VPair,
    VSeq,
    VUnit,
    nat_batch,
    nat_seq_value,
)
from ..nsc.types import NatType, ProdType, SeqType, SumType, Type, UnitType
from .nsa import CompileError

#: Version of the whole NSC->BVRAM code generator (all three passes plus the
#: optimizing pipeline).  Part of the compile-cache key salt
#: (:mod:`repro.cache.key`): bump it whenever a pass change can alter the
#: emitted instructions, the register layout or the marshalling convention,
#: so stale on-disk artifacts become misses instead of silently serving
#: old code.
CODEGEN_VERSION = 8


class Emitter:
    """Register allocator + label book-keeping + instruction stream.

    With ``value_number=True`` the emitter performs **local value numbering**
    on the emitted stream: a pure instruction whose exact (opcode, operands)
    was already emitted in the current straight-line region returns the
    existing destination register instead of emitting a duplicate.  This is
    the "segment-descriptor reuse" of the optimizing pipeline — the
    flattener re-derives the same ``ones_like``/``select``/``seg_reduce``
    vectors constantly, and each hit removes one instruction (and its work)
    from every execution of that region.

    Soundness: the table is cleared at every label (join points may be
    reached with different register states, e.g. loop back-edges), and any
    write to an *existing* register (``move`` with an explicit ``dst``)
    evicts the entries that mention it.  ``move`` itself is never cached —
    loop phi copies must stay distinct.  :meth:`vn_checkpoint` /
    :meth:`vn_restore` let the flattener carry the table across a
    trap-guard's label, whose only non-fallthrough predecessor raises.
    """

    def __init__(self, reserved: int = 0, value_number: bool = False) -> None:
        self.instructions: list[isa.Instruction] = []
        self.labels: dict[str, int] = {}
        self.n_regs = reserved
        self._label_counter = 0
        self._vn: Optional[dict[tuple, int]] = {} if value_number else None

    # -- registers / labels -------------------------------------------------

    def reg(self) -> int:
        r = self.n_regs
        self.n_regs += 1
        return r

    def new_label(self, stem: str) -> str:
        self._label_counter += 1
        return f"{stem}_{self._label_counter}"

    def mark(self, label: str) -> None:
        if label in self.labels:
            raise CompileError(f"duplicate label {label!r}")
        self.labels[label] = len(self.instructions)
        if self._vn is not None:
            self._vn.clear()

    def emit(self, instr: isa.Instruction) -> None:
        self.instructions.append(instr)

    # -- value numbering ----------------------------------------------------

    def vn_checkpoint(self) -> Optional[dict[tuple, int]]:
        """Snapshot the value-numbering table (before emitting a trap guard)."""
        return dict(self._vn) if self._vn is not None else None

    def vn_restore(self, snapshot: Optional[dict[tuple, int]]) -> None:
        """Restore a snapshot taken by :meth:`vn_checkpoint`."""
        if self._vn is not None and snapshot is not None:
            self._vn = snapshot

    def _invalidate(self, dst: int) -> None:
        """Evict value-numbering facts touching an overwritten register."""
        if self._vn:
            self._vn = {
                k: v for k, v in self._vn.items() if v != dst and dst not in k
            }

    def _cached(self, key: tuple, instr_factory) -> int:
        """Emit a pure instruction into a fresh register, or reuse a VN hit."""
        if self._vn is not None:
            hit = self._vn.get(key)
            if hit is not None:
                return hit
        dst = self.reg()
        self.emit(instr_factory(dst))
        if self._vn is not None:
            self._vn[key] = dst
        return dst

    # -- one wrapper per instruction (each returns its destination) ---------

    def move(self, src: int, dst: int | None = None) -> int:
        if dst is None:
            dst = self.reg()
        else:
            self._invalidate(dst)
        self.emit(isa.Move(dst=dst, src=src))
        return dst

    def arith(self, op: str, a: int, b: int) -> int:
        return self._cached(
            ("arith", op, a, b), lambda dst: isa.Arith(dst=dst, op=op, a=a, b=b)
        )

    def un_arith(self, op: str, src: int) -> int:
        return self._cached(
            ("un_arith", op, src), lambda dst: isa.UnArith(dst=dst, op=op, src=src)
        )

    def load_const(self, value: int) -> int:
        return self._cached(
            ("load_const", value), lambda dst: isa.LoadConst(dst=dst, value=value)
        )

    def load_empty(self) -> int:
        return self._cached(("load_empty",), lambda dst: isa.LoadEmpty(dst=dst))

    def append(self, a: int, b: int) -> int:
        return self._cached(
            ("append", a, b), lambda dst: isa.AppendI(dst=dst, a=a, b=b)
        )

    def length(self, src: int) -> int:
        return self._cached(("length", src), lambda dst: isa.LengthI(dst=dst, src=src))

    def enumerate_(self, src: int) -> int:
        return self._cached(
            ("enumerate", src), lambda dst: isa.EnumerateI(dst=dst, src=src)
        )

    def bm_route(self, data: int, counts: int, bound: int) -> int:
        return self._cached(
            ("bm_route", data, counts, bound),
            lambda dst: isa.BmRoute(dst=dst, data=data, counts=counts, bound=bound),
        )

    def sbm_route(self, bound: int, counts: int, data: int, segments: int) -> int:
        return self._cached(
            ("sbm_route", bound, counts, data, segments),
            lambda dst: isa.SbmRoute(
                dst=dst, bound=bound, counts=counts, data=data, segments=segments
            ),
        )

    def select(self, src: int) -> int:
        return self._cached(("select", src), lambda dst: isa.Select(dst=dst, src=src))

    def flag_merge(self, flags: int, a: int, b: int) -> int:
        return self._cached(
            ("flag_merge", flags, a, b),
            lambda dst: isa.FlagMerge(dst=dst, flags=flags, a=a, b=b),
        )

    def seg_scan(self, op: str, data: int, segments: int) -> int:
        return self._cached(
            ("seg_scan", op, data, segments),
            lambda dst: isa.SegScan(dst=dst, op=op, data=data, segments=segments),
        )

    def seg_reduce(self, op: str, data: int, segments: int) -> int:
        return self._cached(
            ("seg_reduce", op, data, segments),
            lambda dst: isa.SegReduce(dst=dst, op=op, data=data, segments=segments),
        )

    def goto(self, label: str) -> None:
        self.emit(isa.Goto(label=label))

    def goto_if_empty(self, label: str, src: int) -> None:
        self.emit(isa.GotoIfEmpty(label=label, src=src))

    def trap(self, message: str) -> None:
        self.emit(isa.Trap(message=message))

    def halt(self) -> None:
        self.emit(isa.Halt())


# ---------------------------------------------------------------------------
# Linear-scan register reuse
# ---------------------------------------------------------------------------


def _renumber(instr: isa.Instruction, mapping: dict[int, int]) -> isa.Instruction:
    fields = isa.REG_FIELDS.get(type(instr))
    if not fields:
        return instr
    return replace(instr, **{f: mapping[getattr(instr, f)] for f in fields})


def reuse_registers(
    instructions: list[isa.Instruction],
    labels: dict[str, int],
    n_inputs: int,
    n_outputs: int,
) -> tuple[list[isa.Instruction], int]:
    """Renumber registers by linear scan so dead ones are reused.

    The emitter allocates a fresh register per value (SSA-style), which is
    clean but means a quicksort program asks for thousands of registers.
    This pass computes a conservative live interval per register — first to
    last textual occurrence, extended to cover any loop region
    ``[label, backward-jump]`` the interval overlaps — and reassigns numbers
    with a free pool.  Inputs and outputs keep their ABI positions
    (registers ``0..max(n_inputs, n_outputs)-1`` are pinned) and an interval
    never shares a number with one ending at the same instruction, so an
    instruction's destination cannot alias its operands: every register of
    every executed instruction holds exactly the vector it held in the
    unoptimized program, which keeps the ``W'`` accounting bit-identical.
    """
    n = len(instructions)
    first: dict[int, int] = {}
    last: dict[int, int] = {}

    def touch(reg: int, pos: int) -> None:
        if reg not in first:
            first[reg] = pos
        first[reg] = min(first[reg], pos)
        last[reg] = max(last.get(reg, pos), pos)

    for i, instr in enumerate(instructions):
        for r in instr.registers_read():
            touch(r, i)
        for r in instr.registers_written():
            touch(r, i)

    pinned = max(n_inputs, n_outputs)
    for r in range(n_inputs):
        touch(r, -1)  # inputs are live from before the first instruction
    for r in range(n_outputs):
        touch(r, n)  # outputs are read after the last instruction

    # loop regions: [target, jump-position] for every backward jump
    regions = [
        (labels[instr.label], i)
        for i, instr in enumerate(instructions)
        if isinstance(instr, (isa.Goto, isa.GotoIfEmpty)) and labels[instr.label] <= i
    ]
    changed = True
    while changed:  # extending into one region may reach another
        changed = False
        for lo, hi in regions:
            for r in first:
                if first[r] <= hi and last[r] >= lo:  # interval overlaps region
                    if first[r] > lo or last[r] < hi:
                        first[r] = min(first[r], lo)
                        last[r] = max(last[r], hi)
                        changed = True

    mapping: dict[int, int] = {r: r for r in range(pinned)}
    free: list[int] = []
    next_reg = pinned
    active: list[tuple[int, int]] = []  # (end, new_reg), kept sorted
    for old in sorted((r for r in first if r not in mapping), key=lambda r: first[r]):
        start = first[old]
        while active and active[0][0] < start:  # strict: end == start conflicts
            free.append(active.pop(0)[1])
        if free:
            new = min(free)
            free.remove(new)
        else:
            new = next_reg
            next_reg += 1
        mapping[old] = new
        entry = (last[old], new)
        lo, hi = 0, len(active)
        while lo < hi:
            mid = (lo + hi) // 2
            if active[mid][0] < entry[0]:
                lo = mid + 1
            else:
                hi = mid
        active.insert(lo, entry)

    out = [_renumber(instr, mapping) for instr in instructions]
    n_registers = max(max(mapping.values(), default=0) + 1, pinned, 1)
    return out, n_registers


# ---------------------------------------------------------------------------
# Type -> register-field layout
# ---------------------------------------------------------------------------


def field_count(t: Type) -> int:
    """Number of flat vector registers a value of type ``t`` occupies."""
    if isinstance(t, UnitType):
        return 0
    if isinstance(t, NatType):
        return 1
    if isinstance(t, ProdType):
        return field_count(t.left) + field_count(t.right)
    if isinstance(t, SumType):
        return 1 + field_count(t.left) + field_count(t.right)
    if isinstance(t, SeqType):
        return 1 + field_count(t.elem)
    raise CompileError(f"unknown type {t!r}")


def encode_values(values: Sequence[Value], t: Type) -> list[list[int]]:
    """Encode a batch of same-typed S-objects into the canonical field vectors."""
    if isinstance(t, UnitType):
        for v in values:
            if not isinstance(v, VUnit):
                raise CompileError(f"expected (), got {v!r}")
        return []
    if isinstance(t, NatType):
        out = []
        for v in values:
            if not isinstance(v, VNat):
                raise CompileError(f"expected a natural, got {v!r}")
            out.append(v.value)
        return [out]
    if isinstance(t, ProdType):
        fsts, snds = [], []
        for v in values:
            if not isinstance(v, VPair):
                raise CompileError(f"expected a pair, got {v!r}")
            fsts.append(v.fst)
            snds.append(v.snd)
        return encode_values(fsts, t.left) + encode_values(snds, t.right)
    if isinstance(t, SumType):
        tags, lefts, rights = [], [], []
        for v in values:
            if isinstance(v, VInl):
                tags.append(1)
                lefts.append(v.value)
            elif isinstance(v, VInr):
                tags.append(0)
                rights.append(v.value)
            else:
                raise CompileError(f"expected an injection, got {v!r}")
        return [tags] + encode_values(lefts, t.left) + encode_values(rights, t.right)
    if isinstance(t, SeqType):
        segs, items = [], []
        for v in values:
            if not isinstance(v, VSeq):
                raise CompileError(f"expected a sequence, got {v!r}")
            segs.append(len(v))
            items.extend(v.items)
        return [segs] + encode_values(items, t.elem)
    raise CompileError(f"unknown type {t!r}")


def encode_batch(values: Sequence[Value], t: Type) -> list[np.ndarray]:
    """Encode a batch of same-typed S-objects straight into int64 vectors.

    Same canonical field layout as :func:`encode_values`, but the result is
    ready-to-load ``np.int64`` arrays and the hot leaves — naturals and flat
    ``[N]`` sequences, i.e. every field of the serving workloads — are built
    by a single ``np.fromiter`` pass over the whole batch instead of a
    Python ``append`` per element.  Stacking B segment descriptors is one
    such pass: batching B requests costs one extra descriptor level, not a
    per-request marshalling loop (the point of ``run_batch``).

    Type errors are detected on a slow re-scan so the fast path carries no
    per-element ``isinstance`` checks.
    """
    if isinstance(t, UnitType):
        for v in values:
            if not isinstance(v, VUnit):
                raise CompileError(f"expected (), got {v!r}")
        return []
    if isinstance(t, NatType):
        try:
            return [
                np.fromiter((v.value for v in values), dtype=np.int64, count=len(values))
            ]
        except (AttributeError, TypeError):
            bad = next(v for v in values if not isinstance(v, VNat))
            raise CompileError(f"expected a natural, got {bad!r}") from None
        except OverflowError:
            # np.fromiter raises a bare OverflowError for values >= 2**63;
            # classify it so batch/serving callers see a marshalling error,
            # not an anonymous crash from inside NumPy
            raise CompileError(
                "input natural exceeds the int64 register width"
            ) from None
    if isinstance(t, SeqType):
        try:
            segs = np.fromiter(
                (len(v.items) for v in values), dtype=np.int64, count=len(values)
            )
        except AttributeError:
            bad = next(v for v in values if not isinstance(v, VSeq))
            raise CompileError(f"expected a sequence, got {bad!r}") from None
        if isinstance(t.elem, NatType):
            try:
                data = np.fromiter(
                    (x.value for v in values for x in v.items),
                    dtype=np.int64,
                    count=int(segs.sum()),
                )
            except (AttributeError, TypeError):
                bad = next(
                    x for v in values for x in v.items if not isinstance(x, VNat)
                )
                raise CompileError(f"expected a natural, got {bad!r}") from None
            except OverflowError:
                raise CompileError(
                    "input natural exceeds the int64 register width"
                ) from None
            return [segs, data]
        items = [x for v in values for x in v.items]
        return [segs] + encode_batch(items, t.elem)
    # products and sums recurse on restructured batches; the per-element
    # work here is building the sub-batch lists, which the leaf cases above
    # then consume without further Python-level loops.
    if isinstance(t, ProdType):
        try:
            fsts = [v.fst for v in values]
            snds = [v.snd for v in values]
        except AttributeError:
            bad = next(v for v in values if not isinstance(v, VPair))
            raise CompileError(f"expected a pair, got {bad!r}") from None
        return encode_batch(fsts, t.left) + encode_batch(snds, t.right)
    if isinstance(t, SumType):
        lefts = [v.value for v in values if isinstance(v, VInl)]
        rights = [v.value for v in values if isinstance(v, VInr)]
        if len(lefts) + len(rights) != len(values):
            bad = next(v for v in values if not isinstance(v, (VInl, VInr)))
            raise CompileError(f"expected an injection, got {bad!r}")
        tags = np.fromiter(
            (1 if isinstance(v, VInl) else 0 for v in values),
            dtype=np.int64,
            count=len(values),
        )
        return [tags] + encode_batch(lefts, t.left) + encode_batch(rights, t.right)
    raise CompileError(f"unknown type {t!r}")


def split_batch(
    fields: Sequence[np.ndarray], t: Type, spans: Sequence[tuple[int, int]]
) -> list[list[np.ndarray]]:
    """Slice one canonical batch encoding into per-span field **views**.

    ``fields`` is the :func:`encode_batch` image of a batch of B values of
    type ``t``; ``spans`` is a list of ``(offset, length)`` ranges along the
    batch axis (``repro.compiler.batch.split_shards`` produces them).  The
    result holds, for every span, exactly the field vectors
    ``encode_batch(values[off:off+length], t)`` would produce — but as
    NumPy **views into the original arrays**, so splitting a batch B ways
    costs O(B) descriptor arithmetic, not a re-encode.  This is the
    span-view entry point the zero-copy shard transport is built on.

    Offsets into nested field groups are not uniform slices: a sequence
    field's data space is addressed through the segment descriptor (one
    exclusive prefix sum, computed once per descriptor and shared by every
    span) and a sum field's packed payloads through its tag prefix counts.
    The recursion mirrors :func:`encode_batch`'s field order exactly.
    """
    out: list[list[np.ndarray]] = [[] for _ in spans]
    consumed = _split_fields(list(fields), 0, t, list(spans), out)
    if consumed != len(fields):
        raise CompileError(
            f"{len(fields) - consumed} unconsumed fields while splitting {t}"
        )
    return out


def _exclusive_cumsum(arr: np.ndarray) -> np.ndarray:
    cum = np.zeros(len(arr) + 1, dtype=np.int64)
    np.cumsum(arr, out=cum[1:])
    return cum


def _split_fields(
    fields: list,
    idx: int,
    t: Type,
    spans: list[tuple[int, int]],
    out: list[list[np.ndarray]],
) -> int:
    """Append the ``t``-typed field views for every span; return the next
    field index.  ``spans`` addresses the *local* batch axis of this field
    group (each nesting level re-derives its own offsets)."""
    if isinstance(t, UnitType):
        return idx
    if isinstance(t, NatType):
        arr = fields[idx]
        for k, (off, length) in enumerate(spans):
            out[k].append(arr[off : off + length])
        return idx + 1
    if isinstance(t, ProdType):
        idx = _split_fields(fields, idx, t.left, spans, out)
        return _split_fields(fields, idx, t.right, spans, out)
    if isinstance(t, SumType):
        tags = fields[idx]
        cum = _exclusive_cumsum(tags)  # Inl counts before each position
        lspans, rspans = [], []
        for k, (off, length) in enumerate(spans):
            out[k].append(tags[off : off + length])
            n_left = int(cum[off + length] - cum[off])
            lspans.append((int(cum[off]), n_left))
            rspans.append((off - int(cum[off]), length - n_left))
        idx = _split_fields(fields, idx + 1, t.left, lspans, out)
        return _split_fields(fields, idx, t.right, rspans, out)
    if isinstance(t, SeqType):
        segs = fields[idx]
        cum = _exclusive_cumsum(segs)  # element offsets of each batch slot
        espans = []
        for k, (off, length) in enumerate(spans):
            out[k].append(segs[off : off + length])
            espans.append((int(cum[off]), int(cum[off + length] - cum[off])))
        return _split_fields(fields, idx + 1, t.elem, espans, out)
    raise CompileError(f"unknown type {t!r}")


def decode_batch(fields: Sequence[Sequence[int]], t: Type, count: int) -> list[Value]:
    """Decode ``count`` S-objects from the canonical batched field vectors.

    :func:`decode_values` is already batch-capable (machine registers pass
    through as ndarrays, flat ``[N]`` data decodes via ``.tolist()`` without
    a per-element round-trip); this name marks the batched calling
    convention used by ``CompiledProgram.run_batch``.
    """
    return decode_values(fields, t, count)


def decode_values(fields: Sequence[Sequence[int]], t: Type, count: int) -> list[Value]:
    """Inverse of :func:`encode_values` (``fields`` in canonical order).

    Accepts plain sequences or NumPy int64 vectors (machine registers are
    passed in directly, so 20k-element outputs decode without a Python-level
    per-element ``int(...)`` round-trip).
    """
    out, rest = _decode(list(fields), t, count)
    if rest:
        raise CompileError(f"{len(rest)} unconsumed output fields while decoding {t}")
    return out


def _as_ints(field: Sequence[int]) -> list[int]:
    return field.tolist() if isinstance(field, np.ndarray) else [int(x) for x in field]


def _decode(
    fields: list[Sequence[int]], t: Type, count: int
) -> tuple[list[Value], list[Sequence[int]]]:
    if isinstance(t, UnitType):
        return [UNIT_VALUE] * count, fields
    if isinstance(t, NatType):
        head, rest = fields[0], fields[1:]
        if len(head) != count:
            raise CompileError(f"decoding N: expected {count} entries, got {len(head)}")
        return nat_batch(_as_ints(head)), rest
    if isinstance(t, ProdType):
        lefts, rest = _decode(fields, t.left, count)
        rights, rest = _decode(rest, t.right, count)
        return [VPair(a, b) for a, b in zip(lefts, rights)], rest
    if isinstance(t, SumType):
        tags, rest = fields[0], fields[1:]
        if len(tags) != count:
            raise CompileError(f"decoding a sum: expected {count} tags, got {len(tags)}")
        if isinstance(tags, np.ndarray):
            tags = tags.tolist()
        n_left = sum(1 for x in tags if x)
        lefts, rest = _decode(rest, t.left, n_left)
        rights, rest = _decode(rest, t.right, count - n_left)
        li, ri = iter(lefts), iter(rights)
        return [VInl(next(li)) if x else VInr(next(ri)) for x in tags], rest
    if isinstance(t, SeqType):
        segs, rest = fields[0], fields[1:]
        if len(segs) != count:
            raise CompileError(f"decoding a sequence: expected {count} segments, got {len(segs)}")
        if isinstance(segs, np.ndarray):
            segs = segs.tolist()
        total = int(sum(segs))
        out: list[Value] = []
        pos = 0
        if isinstance(t.elem, NatType):
            # flat [N]: slice the data field directly into interned-nat seqs
            data, rest = rest[0], rest[1:]
            if len(data) != total:
                raise CompileError(f"decoding [N]: expected {total} entries, got {len(data)}")
            ints = _as_ints(data)
            for s in segs:
                s = int(s)
                out.append(nat_seq_value(ints[pos : pos + s]))
                pos += s
            return out, rest
        items, rest = _decode(rest, t.elem, total)
        for s in segs:
            s = int(s)
            out.append(VSeq(items[pos : pos + s]))
            pos += s
        return out, rest
    raise CompileError(f"unknown type {t!r}")
