"""Pass 3 of the NSC->BVRAM compiler: instruction emission and marshalling.

The :class:`Emitter` owns the three resources a BVRAM program is made of —
registers, labels and the instruction list — and exposes one tiny wrapper per
ISA instruction.  The flattening pass (:mod:`repro.compiler.flatten`) calls
these wrappers; everything it allocates is a *final* machine register (the
BVRAM allows any fixed register count per program, cf. Section 2's
``r``-register machines), so no separate register-allocation pass is needed
for correctness.

The module also implements the input/output marshalling that connects NSC
S-objects to the flat register encoding of Section 7.1: a value of type ``t``
occupies ``field_count(t)`` registers, laid out in the canonical pre-order

* ``N`` / ``B``-tag first,
* products left then right,
* sums: tag vector, then the left payloads (packed over the tag-true
  positions), then the right payloads,
* sequences: segment descriptor, then the element fields over the
  concatenated data space.

``encode_values`` / ``decode_values`` convert between a *batch* of S-objects
and that register image; width 1 gives the single-value convention used by
``CompiledProgram.run``.
"""

from __future__ import annotations

from typing import Sequence

from ..bvram import isa
from ..nsc.values import (
    UNIT_VALUE,
    Value,
    VInl,
    VInr,
    VNat,
    VPair,
    VSeq,
    VUnit,
)
from ..nsc.types import NatType, ProdType, SeqType, SumType, Type, UnitType
from .nsa import CompileError


class Emitter:
    """Register allocator + label book-keeping + instruction stream."""

    def __init__(self, reserved: int = 0) -> None:
        self.instructions: list[isa.Instruction] = []
        self.labels: dict[str, int] = {}
        self.n_regs = reserved
        self._label_counter = 0

    # -- registers / labels -------------------------------------------------

    def reg(self) -> int:
        r = self.n_regs
        self.n_regs += 1
        return r

    def new_label(self, stem: str) -> str:
        self._label_counter += 1
        return f"{stem}_{self._label_counter}"

    def mark(self, label: str) -> None:
        if label in self.labels:
            raise CompileError(f"duplicate label {label!r}")
        self.labels[label] = len(self.instructions)

    def emit(self, instr: isa.Instruction) -> None:
        self.instructions.append(instr)

    # -- one wrapper per instruction (each returns its destination) ---------

    def move(self, src: int, dst: int | None = None) -> int:
        dst = self.reg() if dst is None else dst
        self.emit(isa.Move(dst=dst, src=src))
        return dst

    def arith(self, op: str, a: int, b: int) -> int:
        dst = self.reg()
        self.emit(isa.Arith(dst=dst, op=op, a=a, b=b))
        return dst

    def un_arith(self, op: str, src: int) -> int:
        dst = self.reg()
        self.emit(isa.UnArith(dst=dst, op=op, src=src))
        return dst

    def load_const(self, value: int) -> int:
        dst = self.reg()
        self.emit(isa.LoadConst(dst=dst, value=value))
        return dst

    def load_empty(self) -> int:
        dst = self.reg()
        self.emit(isa.LoadEmpty(dst=dst))
        return dst

    def append(self, a: int, b: int) -> int:
        dst = self.reg()
        self.emit(isa.AppendI(dst=dst, a=a, b=b))
        return dst

    def length(self, src: int) -> int:
        dst = self.reg()
        self.emit(isa.LengthI(dst=dst, src=src))
        return dst

    def enumerate_(self, src: int) -> int:
        dst = self.reg()
        self.emit(isa.EnumerateI(dst=dst, src=src))
        return dst

    def bm_route(self, data: int, counts: int, bound: int) -> int:
        dst = self.reg()
        self.emit(isa.BmRoute(dst=dst, data=data, counts=counts, bound=bound))
        return dst

    def sbm_route(self, bound: int, counts: int, data: int, segments: int) -> int:
        dst = self.reg()
        self.emit(isa.SbmRoute(dst=dst, bound=bound, counts=counts, data=data, segments=segments))
        return dst

    def select(self, src: int) -> int:
        dst = self.reg()
        self.emit(isa.Select(dst=dst, src=src))
        return dst

    def flag_merge(self, flags: int, a: int, b: int) -> int:
        dst = self.reg()
        self.emit(isa.FlagMerge(dst=dst, flags=flags, a=a, b=b))
        return dst

    def seg_scan(self, op: str, data: int, segments: int) -> int:
        dst = self.reg()
        self.emit(isa.SegScan(dst=dst, op=op, data=data, segments=segments))
        return dst

    def seg_reduce(self, op: str, data: int, segments: int) -> int:
        dst = self.reg()
        self.emit(isa.SegReduce(dst=dst, op=op, data=data, segments=segments))
        return dst

    def goto(self, label: str) -> None:
        self.emit(isa.Goto(label=label))

    def goto_if_empty(self, label: str, src: int) -> None:
        self.emit(isa.GotoIfEmpty(label=label, src=src))

    def trap(self, message: str) -> None:
        self.emit(isa.Trap(message=message))

    def halt(self) -> None:
        self.emit(isa.Halt())


# ---------------------------------------------------------------------------
# Type -> register-field layout
# ---------------------------------------------------------------------------


def field_count(t: Type) -> int:
    """Number of flat vector registers a value of type ``t`` occupies."""
    if isinstance(t, UnitType):
        return 0
    if isinstance(t, NatType):
        return 1
    if isinstance(t, ProdType):
        return field_count(t.left) + field_count(t.right)
    if isinstance(t, SumType):
        return 1 + field_count(t.left) + field_count(t.right)
    if isinstance(t, SeqType):
        return 1 + field_count(t.elem)
    raise CompileError(f"unknown type {t!r}")


def encode_values(values: Sequence[Value], t: Type) -> list[list[int]]:
    """Encode a batch of same-typed S-objects into the canonical field vectors."""
    if isinstance(t, UnitType):
        for v in values:
            if not isinstance(v, VUnit):
                raise CompileError(f"expected (), got {v!r}")
        return []
    if isinstance(t, NatType):
        out = []
        for v in values:
            if not isinstance(v, VNat):
                raise CompileError(f"expected a natural, got {v!r}")
            out.append(v.value)
        return [out]
    if isinstance(t, ProdType):
        fsts, snds = [], []
        for v in values:
            if not isinstance(v, VPair):
                raise CompileError(f"expected a pair, got {v!r}")
            fsts.append(v.fst)
            snds.append(v.snd)
        return encode_values(fsts, t.left) + encode_values(snds, t.right)
    if isinstance(t, SumType):
        tags, lefts, rights = [], [], []
        for v in values:
            if isinstance(v, VInl):
                tags.append(1)
                lefts.append(v.value)
            elif isinstance(v, VInr):
                tags.append(0)
                rights.append(v.value)
            else:
                raise CompileError(f"expected an injection, got {v!r}")
        return [tags] + encode_values(lefts, t.left) + encode_values(rights, t.right)
    if isinstance(t, SeqType):
        segs, items = [], []
        for v in values:
            if not isinstance(v, VSeq):
                raise CompileError(f"expected a sequence, got {v!r}")
            segs.append(len(v))
            items.extend(v.items)
        return [segs] + encode_values(items, t.elem)
    raise CompileError(f"unknown type {t!r}")


def decode_values(fields: Sequence[Sequence[int]], t: Type, count: int) -> list[Value]:
    """Inverse of :func:`encode_values` (``fields`` in canonical order)."""
    out, rest = _decode(list(fields), t, count)
    if rest:
        raise CompileError(f"{len(rest)} unconsumed output fields while decoding {t}")
    return out


def _decode(
    fields: list[Sequence[int]], t: Type, count: int
) -> tuple[list[Value], list[Sequence[int]]]:
    if isinstance(t, UnitType):
        return [UNIT_VALUE] * count, fields
    if isinstance(t, NatType):
        head, rest = fields[0], fields[1:]
        if len(head) != count:
            raise CompileError(f"decoding N: expected {count} entries, got {len(head)}")
        return [VNat(int(x)) for x in head], rest
    if isinstance(t, ProdType):
        lefts, rest = _decode(fields, t.left, count)
        rights, rest = _decode(rest, t.right, count)
        return [VPair(a, b) for a, b in zip(lefts, rights)], rest
    if isinstance(t, SumType):
        tags, rest = fields[0], fields[1:]
        if len(tags) != count:
            raise CompileError(f"decoding a sum: expected {count} tags, got {len(tags)}")
        n_left = sum(1 for x in tags if x)
        lefts, rest = _decode(rest, t.left, n_left)
        rights, rest = _decode(rest, t.right, count - n_left)
        li, ri = iter(lefts), iter(rights)
        return [VInl(next(li)) if x else VInr(next(ri)) for x in tags], rest
    if isinstance(t, SeqType):
        segs, rest = fields[0], fields[1:]
        if len(segs) != count:
            raise CompileError(f"decoding a sequence: expected {count} segments, got {len(segs)}")
        total = int(sum(segs))
        items, rest = _decode(rest, t.elem, total)
        out: list[Value] = []
        pos = 0
        for s in segs:
            out.append(VSeq(items[pos : pos + int(s)]))
            pos += int(s)
        return out, rest
    raise CompileError(f"unknown type {t!r}")
