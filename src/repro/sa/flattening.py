"""The flat Sequence Algebra, operationally: segmented vectors and the Map Lemma.

Section 7 compiles NSC by (1) removing variables (NSA), (2) *flattening*
nested sequences into flat vectors carrying segment descriptors (SA, the
``SEQ(t)`` encoding) and (3) mapping the result onto the BVRAM.  This module
implements the operational core of step (2): the segmented-vector
representation and the constructions of the **Map Lemma** (Lemma 7.2), i.e.
how ``map(f)`` over a nested sequence is simulated by flat, register-level
operations with

* time ``O(T)``,
* work ``O(W^(1+eps))``, and
* a number of vector registers independent of ``eps``.

The easy cases of the lemma (``f`` a scalar map, a selection, a
``bm_route``, ...) become single segmented instructions; the hard case is
``f = while(p, g)``, where different elements need different numbers of
iterations.  Two implementations are provided:

``seq_while_unbounded``
    Remark 7.3's scheme: every element that finishes is parked in its own
    conceptual register, so nothing is ever re-touched — ``W' = O(W)`` but the
    number of registers grows with the input (this is what an unbounded VRAM
    would do, and why it needs a vector stack).

``seq_while_simple``
    A bounded 2-register scheme that appends finished elements to a single
    accumulator every iteration — re-touching it each time, for a worst-case
    ``O(t_max * W)`` overhead.  This is the naive baseline of experiment E6.

``seq_while_staged``
    The Lemma 7.2 construction: the iteration is divided into ``r = 1/eps``
    stages; finished elements collect in a stage accumulator ``V1`` that is
    touched at most ``n^eps`` times before being flushed into the final
    accumulator ``V2`` (touched only ``r`` times).  Work overhead
    ``O(n^eps * W)`` with **three** vector registers regardless of ``eps``.

Costs follow the BVRAM rule: each vector operation costs one time step and
work equal to the lengths of the registers it touches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np


@dataclass
class CostCounter:
    """Accumulates the BVRAM-style time/work of segmented-vector operations."""

    time: int = 0
    work: int = 0
    max_registers: int = 0

    def charge(self, *lengths: int, registers: int = 0) -> None:
        self.time += 1
        self.work += int(sum(lengths))
        if registers:
            self.max_registers = max(self.max_registers, registers)


@dataclass(frozen=True)
class SegmentedVector:
    """``SEQ([s])``: a nested sequence ``[[s]]`` as (segment descriptor, flat data).

    ``segments[i]`` is the length of the i-th inner sequence; ``data`` is the
    concatenation of all inner sequences.  This is the paper's segment
    descriptor encoding (Section 7.1), borrowed from [Ble90].
    """

    segments: np.ndarray
    data: np.ndarray

    @staticmethod
    def from_nested(nested: Sequence[Sequence[int]]) -> "SegmentedVector":
        segments = np.array([len(part) for part in nested], dtype=np.int64)
        data = (
            np.concatenate([np.asarray(part, dtype=np.int64) for part in nested])
            if nested and sum(len(p) for p in nested)
            else np.zeros(0, dtype=np.int64)
        )
        return SegmentedVector(segments, data)

    def to_nested(self) -> list[list[int]]:
        out = []
        pos = 0
        for length in self.segments.tolist():
            out.append([int(x) for x in self.data[pos : pos + length]])
            pos += length
        return out

    @property
    def total(self) -> int:
        return int(self.data.size)

    def __len__(self) -> int:
        return int(self.segments.size)


# ---------------------------------------------------------------------------
# The easy cases of the Map Lemma
# ---------------------------------------------------------------------------


def seq_map_scalar(
    sv: SegmentedVector, fn: Callable[[np.ndarray], np.ndarray], cost: CostCounter
) -> SegmentedVector:
    """``SEQ(map(phi))`` for a scalar function ``phi``: one flat elementwise pass."""
    out = fn(sv.data)
    cost.charge(sv.data.size, out.size, registers=2)
    return SegmentedVector(sv.segments, np.asarray(out, dtype=np.int64))


def seq_lengths(sv: SegmentedVector, cost: CostCounter) -> np.ndarray:
    """``SEQ(length)``: the per-segment lengths (already the descriptor)."""
    cost.charge(sv.segments.size, registers=1)
    return sv.segments.copy()


def seq_filter(
    sv: SegmentedVector, keep: Callable[[np.ndarray], np.ndarray], cost: CostCounter
) -> SegmentedVector:
    """``SEQ(filter(P))``: a mask, a segmented count (scan) and a pack (select)."""
    mask = keep(sv.data).astype(bool)
    cost.charge(sv.data.size, mask.size, registers=2)
    # per-segment surviving counts (the scan the paper allows on the PRAM side)
    ids = np.repeat(np.arange(sv.segments.size), sv.segments)
    new_segments = np.bincount(ids[mask], minlength=sv.segments.size).astype(np.int64)
    cost.charge(sv.data.size, sv.segments.size, registers=3)
    packed = sv.data[mask]
    cost.charge(sv.data.size, packed.size, registers=2)
    return SegmentedVector(new_segments, packed)


def seq_bm_route(
    sv: SegmentedVector, counts: np.ndarray, cost: CostCounter
) -> SegmentedVector:
    """``SEQ(bm_route)``: replicate segment ``i`` exactly ``counts[i]`` times.

    Exactly the BVRAM ``sbm_route`` instruction (the paper notes that the
    flattening of ``bm_route`` *is* ``sbm_route``).
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size != sv.segments.size:
        raise ValueError("counts must have one entry per segment")
    out_parts = []
    pos = 0
    new_segments = []
    for seg_len, count in zip(sv.segments.tolist(), counts.tolist()):
        seg = sv.data[pos : pos + seg_len]
        pos += seg_len
        for _ in range(count):
            out_parts.append(seg)
            new_segments.append(seg_len)
    data = np.concatenate(out_parts) if out_parts else np.zeros(0, dtype=np.int64)
    cost.charge(sv.data.size, counts.size, data.size, registers=3)
    return SegmentedVector(np.array(new_segments, dtype=np.int64), data)


# ---------------------------------------------------------------------------
# The hard case: SEQ(while(p, g))  (Lemma 7.2)
# ---------------------------------------------------------------------------

StepFn = Callable[[np.ndarray], np.ndarray]
PredFn = Callable[[np.ndarray], np.ndarray]


@dataclass
class WhileResult:
    """Result of a flattened parallel while: values, order restored, and costs."""

    values: np.ndarray
    cost: CostCounter
    iterations: int


def _run_parallel_while(
    values: np.ndarray,
    pred: PredFn,
    step: StepFn,
    finished_sink: Callable[[np.ndarray, np.ndarray, CostCounter], None],
    cost: CostCounter,
    registers: int,
    max_iter: int = 1_000_000,
) -> int:
    """Common driver: iterate ``step`` on the still-active elements.

    ``finished_sink(indices, values, cost)`` is called with the elements whose
    predicate became false this round; the different accumulation policies of
    the three schemes live there.  Returns the number of iterations.
    """
    active_vals = values.copy()
    active_idx = np.arange(values.size)
    iterations = 0
    # elements that are finished before the first step
    flags = np.asarray(pred(active_vals), dtype=bool)
    cost.charge(active_vals.size, registers=registers)
    done = ~flags
    if done.any():
        finished_sink(active_idx[done], active_vals[done], cost)
    active_vals, active_idx = active_vals[flags], active_idx[flags]
    while active_vals.size:
        iterations += 1
        if iterations > max_iter:
            raise RuntimeError("parallel while exceeded the iteration bound")
        active_vals = np.asarray(step(active_vals), dtype=np.int64)
        cost.charge(active_vals.size, active_vals.size, registers=registers)
        flags = np.asarray(pred(active_vals), dtype=bool)
        cost.charge(active_vals.size, registers=registers)
        done = ~flags
        if done.any():
            # packing the finished elements out of the active register
            cost.charge(active_vals.size, int(done.sum()), registers=registers)
            finished_sink(active_idx[done], active_vals[done], cost)
        active_vals, active_idx = active_vals[flags], active_idx[flags]
    return iterations


def _result_sizes(values: np.ndarray, result_sizes: Optional[Sequence[int]]) -> np.ndarray:
    """Per-element size of the value an element carries once it has finished.

    The interesting instances of the Map Lemma's while case are exactly the
    ones where finished elements carry data that then sits in the accumulator
    registers (e.g. the leaves of a divide phase); ``result_sizes`` lets the
    experiments model that weight.  Defaults to unit sizes.
    """
    if result_sizes is None:
        return np.ones(values.size, dtype=np.int64)
    sizes = np.asarray(result_sizes, dtype=np.int64)
    if sizes.size != values.size:
        raise ValueError("result_sizes must have one entry per element")
    return sizes


def seq_while_unbounded(
    values: Sequence[int],
    pred: PredFn,
    step: StepFn,
    result_sizes: Optional[Sequence[int]] = None,
) -> WhileResult:
    """Remark 7.3: unbounded registers — nothing is re-touched, W' = O(W).

    Each batch of finishers is parked in its own register; the register count
    grows with the number of distinct finishing times (this is the scheme that
    needs a VRAM-style unbounded register file / vector stack).
    """
    vals = np.asarray(values, dtype=np.int64)
    sizes = _result_sizes(vals, result_sizes)
    cost = CostCounter()
    out = np.zeros(vals.size, dtype=np.int64)
    parked_registers = [0]

    def sink(idx: np.ndarray, finished: np.ndarray, c: CostCounter) -> None:
        parked_registers[0] += 1
        c.charge(int(sizes[idx].sum()), registers=2 + parked_registers[0])
        out[idx] = finished

    iters = _run_parallel_while(vals, pred, step, sink, cost, registers=2)
    cost.max_registers = max(cost.max_registers, 2 + parked_registers[0])
    return WhileResult(out, cost, iters)


def seq_while_simple(
    values: Sequence[int],
    pred: PredFn,
    step: StepFn,
    result_sizes: Optional[Sequence[int]] = None,
) -> WhileResult:
    """Naive bounded scheme: one accumulator, re-touched on every append.

    Work overhead grows with the spread of finishing times (up to a factor of
    the number of iterations) — the baseline the Map Lemma improves on.
    """
    vals = np.asarray(values, dtype=np.int64)
    sizes = _result_sizes(vals, result_sizes)
    cost = CostCounter()
    out = np.zeros(vals.size, dtype=np.int64)
    accumulated = [0]

    def sink(idx: np.ndarray, finished: np.ndarray, c: CostCounter) -> None:
        # appending to the accumulator touches everything already in it
        batch = int(sizes[idx].sum())
        c.charge(accumulated[0], batch, registers=3)
        accumulated[0] += batch
        out[idx] = finished

    iters = _run_parallel_while(vals, pred, step, sink, cost, registers=3)
    return WhileResult(out, cost, iters)


def seq_while_staged(
    values: Sequence[int],
    pred: PredFn,
    step: StepFn,
    eps: float,
    result_sizes: Optional[Sequence[int]] = None,
) -> WhileResult:
    """Lemma 7.2's staged scheme: 3 registers, work overhead O(n^eps * W).

    The iteration space is cut into ``r = ceil(1/eps)`` stages.  During a
    stage, finishers are appended to the stage accumulator ``V1`` (touching
    only V1's current contents); at the end of each stage V1 is flushed into
    the final accumulator ``V2``, which is therefore touched only ``r`` times.
    A finisher is re-touched at most ``n^eps`` times in V1 (once per batch of
    its stage) and ``r`` times in V2, giving the claimed bound while using a
    number of registers that does not depend on ``eps``.
    """
    if not 0 < eps <= 1:
        raise ValueError("eps must lie in (0, 1]")
    vals = np.asarray(values, dtype=np.int64)
    sizes = _result_sizes(vals, result_sizes)
    n = max(1, vals.size)
    r = max(1, math.ceil(1.0 / eps))
    stage_batches = max(1, math.ceil(n**eps))
    cost = CostCounter()
    out = np.zeros(vals.size, dtype=np.int64)
    v1_size = [0]
    v2_size = [0]
    batches_in_stage = [0]

    def flush(c: CostCounter) -> None:
        if v1_size[0]:
            c.charge(v1_size[0], v2_size[0], registers=3)
            v2_size[0] += v1_size[0]
            v1_size[0] = 0
        batches_in_stage[0] = 0

    def sink(idx: np.ndarray, finished: np.ndarray, c: CostCounter) -> None:
        # append the batch to the stage accumulator V1
        batch = int(sizes[idx].sum())
        c.charge(v1_size[0], batch, registers=3)
        v1_size[0] += batch
        out[idx] = finished
        batches_in_stage[0] += 1
        if batches_in_stage[0] >= stage_batches:
            flush(c)

    iters = _run_parallel_while(vals, pred, step, sink, cost, registers=3)
    flush(cost)
    return WhileResult(out, cost, iters)


def python_while_reference(values: Sequence[int], pred, step) -> tuple[list[int], int]:
    """Scalar reference: run the while loop element by element (oracle).

    Returns the final values and the *intrinsic* work — the total number of
    element-steps, i.e. the work the unflattened ``map(while(p, g))`` performs.
    """
    out = []
    intrinsic = 0
    for v in values:
        x = int(v)
        intrinsic += 1
        while bool(pred(np.array([x]))[0]):
            x = int(step(np.array([x]))[0])
            intrinsic += 1
        out.append(x)
    return out, intrinsic
