"""The flat Sequence Algebra layer: segmented vectors and the Map Lemma (Section 7.1)."""

from .flattening import (
    CostCounter,
    SegmentedVector,
    WhileResult,
    python_while_reference,
    seq_bm_route,
    seq_filter,
    seq_lengths,
    seq_map_scalar,
    seq_while_simple,
    seq_while_staged,
    seq_while_unbounded,
)

__all__ = [
    "CostCounter",
    "SegmentedVector",
    "WhileResult",
    "python_while_reference",
    "seq_bm_route",
    "seq_filter",
    "seq_lengths",
    "seq_map_scalar",
    "seq_while_simple",
    "seq_while_staged",
    "seq_while_unbounded",
]
