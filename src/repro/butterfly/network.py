"""Butterfly-network implementation of BVRAM instructions (Proposition 2.1).

The paper's claim: *any BVRAM instruction of work complexity W can be
implemented in O(log n) steps on a butterfly network with n log n nodes,
n = O(W), using only oblivious routing algorithms.*

This module models an ``n``-input butterfly (``n`` a power of two) with
``log2(n) + 1`` ranks of ``n`` switches.  Packets enter at rank 0 and are
routed to their destination row with the greedy (bit-fixing) algorithm, one
dimension per step, highest dimension first — exactly the routing used in the
paper's proof sketch (cf. [Lei92] §3.4).  The simulator counts:

* ``steps`` — the number of network steps (ranks traversed, i.e. the latency
  of the slowest packet plus any queueing delay);
* ``max_congestion`` — the largest number of packets that wished to cross a
  single edge in one step (1 for the monotone routes used by the BVRAM, which
  is why greedy routing suffices).

For the communication-free instructions (element-wise arithmetic) the cost is
one step.  ``append`` and ``bm_route`` are monotone routes; ``sbm_route``
first spreads segments to power-of-two aligned start addresses (a monotone
route) and then replicates each segment dimension by dimension, as in the
proof of Proposition 2.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class RouteStats:
    """Result of routing one instruction on the butterfly."""

    n_rows: int
    steps: int
    max_congestion: int
    packets: int


def _next_pow2(n: int) -> int:
    return 1 if n <= 1 else 1 << (n - 1).bit_length()


class Butterfly:
    """An ``n``-row butterfly network (``n log n`` switching nodes).

    Only the routing behaviour needed for the BVRAM instructions is modelled:
    packets move from rank 0 to rank ``log n``, fixing one address bit per
    step (highest dimension first).  Congestion on each (rank, row, direction)
    edge is recorded; with the monotone/segment-aligned routes produced by the
    BVRAM instructions the congestion stays 1, so the step count equals the
    number of ranks — this is what experiment E1 measures.
    """

    def __init__(self, n_rows: int):
        if n_rows < 1:
            raise ValueError("butterfly needs at least one row")
        self.n_rows = _next_pow2(n_rows)
        self.dims = max(1, int(math.log2(self.n_rows))) if self.n_rows > 1 else 0

    # -- generic greedy routing --------------------------------------------
    def route(self, sources: Sequence[int], destinations: Sequence[int]) -> RouteStats:
        """Route packets ``sources[i] -> destinations[i]`` with bit-fixing.

        Returns the number of steps: one per dimension, plus any serial
        delays caused by edge congestion (packets crossing the same edge in
        the same step are serialised, as on a real network).
        """
        if len(sources) != len(destinations):
            raise ValueError("sources and destinations must have the same length")
        if not sources:
            return RouteStats(self.n_rows, 0, 0, 0)
        cur = np.asarray(sources, dtype=np.int64) % self.n_rows
        dst = np.asarray(destinations, dtype=np.int64) % self.n_rows
        steps = 0
        max_cong = 1
        # highest dimension first, as in the proof of Proposition 2.1
        for d in reversed(range(self.dims)):
            bit = 1 << d
            want = (dst & bit) != (cur & bit)
            # edge (row-with-bit-cleared, crossing?) identifies the switch edge used
            edge_ids = (cur & ~bit) * 2 + want.astype(np.int64)
            crossing = edge_ids[want]
            if crossing.size:
                _, counts = np.unique(crossing, return_counts=True)
                congestion = int(counts.max())
            else:
                congestion = 1
            max_cong = max(max_cong, congestion)
            # a step is taken by every packet per dimension; congested edges
            # serialise, so the dimension costs `congestion` steps.
            steps += congestion
            cur = np.where(want, cur ^ bit, cur)
        if not np.array_equal(cur, dst):  # pragma: no cover - sanity
            raise AssertionError("bit-fixing routing failed to deliver all packets")
        return RouteStats(self.n_rows, steps, max_cong, len(sources))


# ---------------------------------------------------------------------------
# Instruction-level implementations (Proposition 2.1)
# ---------------------------------------------------------------------------


def arithmetic_steps(length: int) -> RouteStats:
    """Element-wise arithmetic involves no communication: one step."""
    n = _next_pow2(max(1, length))
    return RouteStats(n, 1, 1, length)


def append_route(len_a: int, len_b: int) -> RouteStats:
    """``Vi <- Vj @ Vk``: monotone-route the second operand behind the first."""
    total = max(1, len_a + len_b)
    net = Butterfly(total)
    sources = list(range(len_b))
    destinations = [len_a + i for i in range(len_b)]
    stats = net.route(sources, destinations)
    return RouteStats(net.n_rows, max(1, stats.steps), stats.max_congestion, len_b)


def bm_route_route(counts: Sequence[int]) -> RouteStats:
    """``bm_route``: each source i is copied to a contiguous destination block.

    The greedy algorithm routes the *leading copy* of every block (a monotone
    partial permutation); the remaining copies are produced by the same
    broadcast-along-dimension trick as segment replication, which adds at most
    one pass over the dimensions.  Step count therefore stays O(log n).
    """
    total = int(sum(counts))
    net = Butterfly(max(1, total))
    sources, destinations = [], []
    offset = 0
    for i, c in enumerate(counts):
        if c > 0:
            sources.append(i)
            destinations.append(offset)
        offset += c
    stats = net.route(sources, destinations)
    # one extra pass over the dimensions to fan each value out over its block
    extra = net.dims if any(c > 1 for c in counts) else 0
    return RouteStats(net.n_rows, max(1, stats.steps + extra), stats.max_congestion, len(sources))


def sbm_route_route(segments: Sequence[int], counts: Sequence[int]) -> RouteStats:
    """``sbm_route``: spread segments to power-of-two aligned slots, then replicate.

    Follows the proof of Proposition 2.1: round every segment length up to a
    power of two, monotone-route each segment's head to its aligned start
    address, then perform all replications in parallel, one dimension per
    step (the packet at address ``0..0 u`` is copied to every ``v u``).
    """
    padded = [max(1, _next_pow2(s)) * max(1, c) for s, c in zip(segments, counts)]
    total = max(1, _next_pow2(sum(padded)))
    net = Butterfly(total)
    sources, destinations = [], []
    src_off = 0
    dst_off = 0
    for seg, cnt, pad in zip(segments, counts, padded):
        if seg > 0 and cnt > 0:
            sources.append(src_off)
            destinations.append(dst_off)
        src_off += seg
        dst_off += pad
    stats = net.route(sources, destinations)
    # replication: q stages where 2^q is the largest replication factor
    max_rep = max((c for c in counts), default=1)
    rep_stages = max(1, _next_pow2(max(1, max_rep))).bit_length() - 1
    return RouteStats(net.n_rows, max(1, stats.steps + rep_stages), stats.max_congestion, len(sources))


def select_route(mask: Sequence[int]) -> RouteStats:
    """``select`` (pack non-zeros): a monotone route of the survivors."""
    survivors = [i for i, v in enumerate(mask) if v != 0]
    net = Butterfly(max(1, len(mask)))
    stats = net.route(survivors, list(range(len(survivors))))
    return RouteStats(net.n_rows, max(1, stats.steps), stats.max_congestion, len(survivors))


def instruction_steps(opcode: str, work: int) -> RouteStats:
    """Steps for an instruction known only by opcode and work (trace replay).

    Used when replaying a :class:`repro.bvram.machine.TraceEntry` stream: the
    exact operand values are gone, so the worst-case shape for that opcode at
    that size is routed.  ``n = O(W)`` as in the proposition.
    """
    n = max(1, work)
    if opcode.startswith("arith") or opcode in {
        "move",
        "load_const",
        "load_empty",
        "length",
        "enumerate",
        "goto",
        "goto_if_empty",
        "halt",
    }:
        return arithmetic_steps(n)
    if opcode == "append":
        return append_route(n // 2, n - n // 2)
    if opcode == "bm_route":
        # a generic monotone route of n/2 sources into n slots
        k = max(1, n // 2)
        return bm_route_route([2] * k)
    if opcode == "sbm_route":
        k = max(1, int(math.isqrt(n)))
        return sbm_route_route([k] * k, [1] * k)
    if opcode == "select":
        return select_route([i % 2 for i in range(n)])
    raise ValueError(f"unknown opcode {opcode!r}")
