"""Butterfly-network implementation of the BVRAM instructions (Proposition 2.1)."""

from .network import (
    Butterfly,
    RouteStats,
    append_route,
    arithmetic_steps,
    bm_route_route,
    instruction_steps,
    sbm_route_route,
    select_route,
)

__all__ = [
    "Butterfly",
    "RouteStats",
    "append_route",
    "arithmetic_steps",
    "bm_route_route",
    "instruction_steps",
    "sbm_route_route",
    "select_route",
]
