"""Predicted-vs-measured cost attribution: does W' predict wall time?

The paper's cost model prices a run by ``(T', W')``; the Brent bound
(Proposition 3.2) predicts ``O(T' + W'/p)`` cycles.  Closing the loop
against wall-clock reality needs a *per-block* correlation, which the
profiler (:mod:`repro.obs.profile`) now measures: each plan entry has an
exact ``(T', W')`` attribution and a measured wall time.

This module fits the two-parameter linear kernel model

    ``wall ~ alpha * T' + beta * W'``

over the executed blocks (least squares via
:func:`repro.analysis.fit.linear_weights` — ``alpha`` prices per-instruction
dispatch, ``beta`` prices per-element vector work) and reports the
predicted-vs-measured table.  A high ``r2`` on vector-heavy programs is the
empirical footing for using ``W'`` as a wall-time proxy in the Brent
validation; low ``r2`` flags blocks whose constants the model misses
(e.g. guard-heavy kernels).

:func:`profile_section` packages one profiled run + fit as a JSON-able dict
for ``benchmarks/run_all.py`` bench records (the ``profile`` field).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..analysis.fit import format_table, linear_weights
from .profile import ProfileReport


@dataclass
class CostRow:
    """One executed plan entry: its attribution and the model's prediction."""

    entry: int
    kind: str
    first: int
    last: int
    hits: int
    time: int
    work: int
    wall_s: float
    predicted_s: float

    @property
    def ratio(self) -> float:
        """measured / predicted; 1.0 means the kernel model prices this block exactly."""
        return self.wall_s / self.predicted_s if self.predicted_s > 0 else float("inf")


@dataclass
class CostReport:
    """The fitted kernel weights plus the per-block predicted-vs-measured rows."""

    alpha_s: float  #: fitted seconds per T' unit (dispatch cost)
    beta_s: float  #: fitted seconds per W' unit (per-element vector cost)
    r2: float
    rows: list[CostRow]

    def table(self, limit: Optional[int] = None) -> str:
        """Predicted-vs-measured, hottest (by measured wall) first."""
        rows = sorted(self.rows, key=lambda r: r.wall_s, reverse=True)
        if limit is not None:
            rows = rows[:limit]
        body = [
            [
                r.entry,
                r.kind,
                f"{r.first}..{r.last}" if r.last != r.first else str(r.first),
                r.hits,
                r.time,
                r.work,
                f"{r.wall_s * 1e3:.3f}",
                f"{r.predicted_s * 1e3:.3f}",
                f"{r.ratio:.2f}",
            ]
            for r in rows
        ]
        header = (
            f"cost model: wall ~ {self.alpha_s:.3e}*T' + {self.beta_s:.3e}*W'"
            f"  (r2={self.r2:.3f})\n"
        )
        return header + format_table(
            ["entry", "kind", "instrs", "hits", "T'", "W'", "wall_ms", "pred_ms", "meas/pred"],
            body,
        )

    def as_dict(self) -> dict:
        return {
            "alpha_s_per_t": self.alpha_s,
            "beta_s_per_w": self.beta_s,
            "r2": round(self.r2, 4),
        }


def cost_check(reports: Union[ProfileReport, Sequence[ProfileReport]]) -> CostReport:
    """Fit the kernel model over one or more profiled runs of the same program.

    Several reports (e.g. different inputs) fit jointly — more (T', W')
    spread makes ``alpha``/``beta`` identifiable.  Only executed entries
    participate.  With fewer than two executed entries the fit degenerates
    to attributing everything to ``beta`` (or ``alpha`` when W' is zero).
    """
    if isinstance(reports, ProfileReport):
        reports = [reports]
    executed = [b for r in reports for b in r.blocks if b.hits]
    if not executed:
        return CostReport(0.0, 0.0, 1.0, [])
    features = [[float(b.time), float(b.work)] for b in executed]
    targets = [b.wall_s for b in executed]
    if len(executed) >= 2:
        (alpha, beta), r2 = linear_weights(features, targets)
    else:
        b = executed[0]
        total_wall = b.wall_s
        if b.work:
            alpha, beta, r2 = 0.0, total_wall / b.work, 1.0
        else:
            alpha, beta, r2 = (total_wall / b.time if b.time else 0.0), 0.0, 1.0
    # a least-squares fit on collinear blocks can price one axis negative;
    # clamp for prediction so a "cheaper than free" block cannot appear
    a, bta = max(alpha, 0.0), max(beta, 0.0)
    rows = [
        CostRow(
            entry=blk.entry,
            kind=blk.kind,
            first=blk.first,
            last=blk.last,
            hits=blk.hits,
            time=blk.time,
            work=blk.work,
            wall_s=blk.wall_s,
            predicted_s=a * blk.time + bta * blk.work,
        )
        for blk in executed
    ]
    return CostReport(alpha, beta, r2, rows)


def profile_section(
    prog,
    value,
    backend: Optional[str] = None,
    max_steps: int = 10_000_000,
    top: int = 5,
) -> dict:
    """One JSON-able ``profile`` section for a benchmark record.

    Profiles a single run, fits the cost model, and returns the totals, the
    exactness bit (per-block sums vs machine totals), the fitted weights and
    the ``top`` hottest blocks — small enough to ride every BENCH_*.json
    record, rich enough to diff across PRs.
    """
    report = prog.profile(value, max_steps=max_steps, backend=backend)
    fit = cost_check(report)
    return {
        "backend": report.backend,
        "time": report.time,
        "work": report.work,
        "wall_s": round(report.wall_s, 6),
        "attribution_exact": report.verify_totals(),
        "cost_model": fit.as_dict(),
        "hot_blocks": [
            {
                "entry": b.entry,
                "kind": b.kind,
                "first": b.first,
                "last": b.last,
                "hits": b.hits,
                "time": b.time,
                "work": b.work,
                "wall_s": round(b.wall_s, 6),
                "source_line": b.source_line,
            }
            for b in report.hot_blocks(top)
        ],
    }
