"""A lightweight span tracer with Chrome-trace-format export.

Pipeline tracing answers "*where does the time go*" across the system's
layers: the compile pipeline (``nsa`` -> ``flatten`` -> ``codegen`` ->
``optimize`` stage timings, IR sizes, register counts) and the serving path
(enqueue -> batch-form -> execute -> decode per request) both carry span
call sites; this module is the recorder behind them.

Design constraints, in order:

* **near-zero cost when disabled.**  Tracing is off unless a
  :class:`Trace` is *activated* (``with Trace() as tr: ...``).  Every call
  site goes through :func:`span` / :func:`instant`, whose disabled path is
  one ``contextvars.ContextVar.get`` plus an ``is None`` test, returning a
  shared no-op context manager — no allocation, no clock read.  The tier-1
  overhead gate (``tests/test_obs.py``) pins this.
* **contextvar scoping.**  The active trace propagates the way ``asyncio``
  tasks and threads inherit context: activating a trace around an event
  loop traces every request the loop serves, while an unrelated thread
  stays untraced.  Nesting activations is allowed; the innermost wins.
* **thread safety.**  The serving path records from the event-loop thread
  and from executor threads concurrently; event appends take the trace's
  lock (a handful of spans per *batch*, so the lock is cold).

Export is the Chrome trace-event JSON format::

    with Trace() as tr:
        prog = compile_nsc(fn)
        prog.run(value)
    tr.export_chrome("trace.json")

Load ``trace.json`` in ``chrome://tracing`` or https://ui.perfetto.dev to
see the stage waterfall.  Durations are "complete" (``ph: "X"``) events
with microsecond timestamps relative to the activation instant.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from typing import Optional

_ACTIVE: contextvars.ContextVar[Optional["Trace"]] = contextvars.ContextVar(
    "repro_active_trace", default=None
)


def current() -> Optional["Trace"]:
    """The trace activated in this context, or ``None`` (tracing disabled)."""
    return _ACTIVE.get()


class _NullSpan:
    """The shared disabled-path span: a no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def note(self, **args) -> None:
        """Accept (and drop) span arguments — same surface as :class:`_Span`."""


NULL_SPAN = _NullSpan()


class _Span:
    """One open span of an active trace; ``note()`` attaches args at any point."""

    __slots__ = ("_trace", "name", "cat", "args", "_t0")

    def __init__(self, trace: "Trace", name: str, cat: str, args: dict) -> None:
        self._trace = trace
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.args["error"] = repr(exc)
        self._trace.add_complete(
            self.name, self._t0, time.perf_counter() - self._t0, self.cat, self.args
        )

    def note(self, **args) -> None:
        """Attach result facts (IR sizes, batch sizes, ...) to the span."""
        self.args.update(args)


class Trace:
    """An in-memory trace: activation scope, span recording, Chrome export.

    Entering the trace activates it for the current context (and every task
    or thread that inherits the context afterwards); exiting restores the
    previous activation.  A :class:`Trace` may also be passed around and
    recorded into explicitly (the server accepts ``tracer=``) without being
    the ambient one.
    """

    def __init__(self) -> None:
        self._events: list[dict] = []
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()
        self._token: Optional[contextvars.Token] = None

    # -- activation ----------------------------------------------------------

    def __enter__(self) -> "Trace":
        self._t0 = time.perf_counter()
        self._token = _ACTIVE.set(self)
        return self

    def __exit__(self, *exc) -> None:
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None

    # -- recording -----------------------------------------------------------

    def span(self, name: str, cat: str = "repro", **args) -> _Span:
        """An open span; use as ``with tr.span("compile/flatten") as sp:``."""
        return _Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "repro", **args) -> None:
        """A zero-duration marker event (``ph: "i"``)."""
        ts = (time.perf_counter() - self._t0) * 1e6
        with self._lock:
            self._events.append(
                {
                    "name": name,
                    "cat": cat,
                    "ph": "i",
                    "ts": ts,
                    "s": "t",
                    "pid": os.getpid(),
                    "tid": threading.get_ident(),
                    "args": args,
                }
            )

    def add_complete(
        self, name: str, t_start: float, dur_s: float, cat: str = "repro", args: Optional[dict] = None
    ) -> None:
        """Record an externally-timed span (``t_start`` in ``perf_counter`` time).

        The serving path uses this for per-request events: the submit
        timestamp is captured when the request enqueues, the event is
        recorded once when its future resolves — no span object has to ride
        through the queue.
        """
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": (t_start - self._t0) * 1e6,
            "dur": dur_s * 1e6,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": args or {},
        }
        with self._lock:
            self._events.append(event)

    # -- export --------------------------------------------------------------

    def events(self) -> list[dict]:
        """A snapshot of the recorded events (Chrome trace-event dicts)."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def export_chrome(self, path: str) -> str:
        """Write the trace as Chrome trace-event JSON; returns ``path``.

        Open in ``chrome://tracing`` (or https://ui.perfetto.dev): each
        span is a bar on its thread's track, stage args show in the detail
        pane.
        """
        payload = {
            "traceEvents": self.events(),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs.trace"},
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        return path


class _Activation:
    """Ambient activation of an existing trace without rebasing its clock."""

    __slots__ = ("_tr", "_token")

    def __init__(self, tr: Optional[Trace]) -> None:
        self._tr = tr
        self._token = None

    def __enter__(self) -> Optional[Trace]:
        if self._tr is not None:
            self._token = _ACTIVE.set(self._tr)
        return self._tr

    def __exit__(self, *exc) -> None:
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None


def activate(tr: Optional[Trace]) -> _Activation:
    """Make ``tr`` the ambient trace for a scope (no-op when ``tr`` is None).

    Unlike entering the :class:`Trace` itself, this does not reset the
    trace's time origin — it only publishes an already-running trace to a
    context that didn't inherit it.  The server uses it to carry its
    ``tracer=`` into ``run_in_executor`` threads, which do not inherit the
    submitting task's contextvars.
    """
    return _Activation(tr)


def span(name: str, cat: str = "repro", **args):
    """A span on the ambient trace — the instrumentation call sites' entry.

    Disabled path: one contextvar read and an ``is None`` test, then the
    shared :data:`NULL_SPAN` (no allocation, no clock read).
    """
    tr = _ACTIVE.get()
    if tr is None:
        return NULL_SPAN
    return tr.span(name, cat, **args)


def instant(name: str, cat: str = "repro", **args) -> None:
    """An instant event on the ambient trace (no-op when tracing is off)."""
    tr = _ACTIVE.get()
    if tr is not None:
        tr.instant(name, cat, **args)
