"""Per-block execution profiling with exact ``T'``/``W'`` attribution.

The backends report only run *totals*; this module attributes them.  A
profiled run executes the program's **normal cached plan** (interp, fused
or vector — the very closures/generated blocks a plain run dispatches)
through a mirrored dispatch loop that additionally accumulates, per plan
entry: hit count, wall time, and the exact Definition 3.1 ``T'``/``W'``
charges.  Because the attribution accumulates *the same* per-block
``(t, w)`` values the backend loop folds into its totals — including the
``partial``-cell flush when a block raises mid-stream, the charged ``trap``,
and the per-instruction ``max_steps`` mid-block fallback — the per-entry
sums are bit-identical to the machine totals by construction, on every exit
path.  The differential battery pins this (``tests/test_obs.py``).

Profiling is opt-in per run: the plain ``run()`` path is untouched (its
dispatch loops carry no hooks), and the profiler's own derived state — the
block grouping and the ``disassemble()`` line map — is cached on the
program under ``_profile_meta`` exactly like the execution plans
(:class:`~repro.backends.registry.PlanCache`; listed in
``CompiledProgram._CACHE_ATTRS`` so it never crosses a pickle boundary).

Front door::

    report = prog.profile([5, 3, 8, 1])      # CompiledProgram.profile
    print(report.table())                    # sorted hot-block table
    report.blocks[0].source_line             # 1-based line in report.listing

``report.listing`` is the interp ``disassemble()`` text; each
:class:`BlockStat.source_line` is the 1-based line of the entry's first
instruction in it, so the hot-block table links straight back to the code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional

import numpy as np

from ..backends import kernels
from ..backends.base import (
    BLOCK,
    HALT,
    JUMP,
    STEP,
    format_listing,
    resolve_backend,
    step_budget_error,
)
from ..backends.fused import group_entries
from ..backends.interp import plan_for
from ..backends.registry import PlanCache
from ..backends.vector import VectorPlan
from ..bvram.errors import BVRAMError
from ..bvram.machine import BVRAM

_KIND_NAMES = {STEP: "step", JUMP: "jump", HALT: "halt", BLOCK: "block", 3: "trap"}


def listing_line_numbers(program) -> dict[int, int]:
    """Instruction index -> 1-based line in :func:`format_listing` output.

    Mirrors the listing layout exactly: label lines precede the instruction
    they mark, so an instruction's line shifts down by the labels above it.
    """
    label_count: dict[int, int] = {}
    for idx in program.labels.values():
        label_count[idx] = label_count.get(idx, 0) + 1
    line = 0
    line_of: dict[int, int] = {}
    for i in range(len(program.instructions)):
        line += label_count.get(i, 0) + 1
        line_of[i] = line
    return line_of


class ProfileMeta:
    """Cached profiling metadata: block grouping + listing line map."""

    __slots__ = ("groups", "line_of")

    def __init__(self, groups, line_of) -> None:
        self.groups = groups
        self.line_of = line_of


def _build_meta(program) -> ProfileMeta:
    groups, _ = group_entries(program, plan_for(program))
    return ProfileMeta(groups, listing_line_numbers(program))


_META_CACHE = PlanCache("_profile_meta", _build_meta)


def meta_for(program) -> ProfileMeta:
    """Build (or fetch the cached) profiling metadata for ``program``."""
    return _META_CACHE.lookup(program)


@dataclass
class BlockStat:
    """One plan entry's attribution: hits, wall time and exact T'/W'."""

    entry: int  #: plan-entry index (matches the fused/vector disassembly)
    kind: str  #: "block" / "jump" / "halt" / "trap" / "step"
    first: int  #: first covered instruction index
    last: int  #: last covered instruction index
    hits: int = 0
    time: int = 0  #: exact T' charged to this entry
    work: int = 0  #: exact W' charged to this entry
    wall_s: float = 0.0
    source_line: int = 0  #: 1-based line of ``first`` in the report's listing
    code: str = ""  #: repr of the first covered instruction (truncated)

    @property
    def n_instructions(self) -> int:
        return self.last - self.first + 1


@dataclass
class ProfileReport:
    """A profiled run: per-entry stats plus the totals they sum to.

    ``time``/``work`` are the machine's flushed totals; ``sum(b.time)`` and
    ``sum(b.work)`` over ``blocks`` equal them bit-identically (checked by
    :meth:`verify_totals`).  ``error`` carries the :class:`BVRAMError`
    message when the run trapped (the stats then cover the executed prefix,
    still summing exactly to the totals).
    """

    backend: str
    blocks: list[BlockStat]
    time: int
    work: int
    wall_s: float
    listing: str
    registers: list = field(default_factory=list)
    error: Optional[str] = None
    result: Optional[object] = None

    def verify_totals(self) -> bool:
        """True iff the per-entry sums reproduce the machine totals exactly."""
        return (
            sum(b.time for b in self.blocks) == self.time
            and sum(b.work for b in self.blocks) == self.work
        )

    def hot_blocks(self, limit: Optional[int] = None, key: str = "wall_s") -> list[BlockStat]:
        """Executed entries sorted hottest-first by ``key`` (wall_s/time/work/hits)."""
        rows = sorted(
            (b for b in self.blocks if b.hits),
            key=lambda b: getattr(b, key),
            reverse=True,
        )
        return rows if limit is None else rows[:limit]

    def table(self, limit: Optional[int] = 10, key: str = "wall_s") -> str:
        """The sorted hot-block table, one row per executed plan entry."""
        total_wall = sum(b.wall_s for b in self.blocks) or 1.0
        lines = [
            f"backend={self.backend}  T'={self.time}  W'={self.work}  "
            f"wall={self.wall_s * 1e3:.2f}ms"
            + (f"  ERROR: {self.error}" if self.error else ""),
            f"{'entry':>5} {'kind':<5} {'instrs':>9} {'hits':>7} {'T-prime':>9} "
            f"{'W-prime':>11} {'wall_ms':>9} {'wall%':>6} {'line':>5}  code",
        ]
        for b in self.hot_blocks(limit, key):
            span = f"{b.first}..{b.last}" if b.last != b.first else f"{b.first}"
            lines.append(
                f"{b.entry:>5} {b.kind:<5} {span:>9} {b.hits:>7} {b.time:>9} "
                f"{b.work:>11} {b.wall_s * 1e3:>9.3f} "
                f"{100 * b.wall_s / total_wall:>5.1f}% {b.source_line:>5}  {b.code}"
            )
        return "\n".join(lines)


def _code_snippet(instr, width: int = 48) -> str:
    text = repr(instr)
    return text if len(text) <= width else text[: width - 3] + "..."


def _run_grouped(machine, entries, max_steps, hits, tacc, wacc, wall, lo=None, hi=None):
    """The fused/vector dispatch loop with per-entry attribution.

    Mirrors ``FusedBackend.execute`` / ``VectorBackend.execute`` statement
    for statement — same charge order, same ``partial`` flush, same
    mid-block ``max_steps`` fallback — with every charge additionally
    folded into the entry's accumulator slot.  ``lo``/``hi`` non-None
    selects the vector block-call signature.
    """
    regs = machine.registers
    n = len(entries)
    pc = 0
    steps = 0
    time = 0
    work = 0
    partial = [0, 0]
    vec = lo is not None
    try:
        while pc < n:
            if steps >= max_steps:
                raise step_budget_error(max_steps)
            kind, payload, extra = entries[pc]
            ei = pc
            pc += 1
            if kind == BLOCK:
                if steps + extra > max_steps:
                    # budget expires mid-block: drive the interp closures so
                    # the run stops (and charges) at exactly the instruction
                    # the unfused loop stops at — attributed to this block
                    hits[ei] += 1
                    t0 = perf_counter()
                    try:
                        for fn, rw in payload.steps[: max_steps - steps]:
                            fn(regs)
                            time += 1
                            tacc[ei] += 1
                            for r in rw:
                                s = regs[r].size
                                work += s
                                wacc[ei] += s
                    finally:
                        wall[ei] += perf_counter() - t0
                    raise step_budget_error(max_steps)
                steps += extra
                hits[ei] += 1
                t0 = perf_counter()
                try:
                    if vec:
                        t, w = payload(regs, lo, hi, partial)
                    else:
                        t, w = payload(regs, partial)
                except BaseException:
                    wall[ei] += perf_counter() - t0
                    time += partial[0]
                    work += partial[1]
                    tacc[ei] += partial[0]
                    wacc[ei] += partial[1]
                    raise
                wall[ei] += perf_counter() - t0
                time += t
                work += w
                tacc[ei] += t
                wacc[ei] += w
            elif kind == JUMP:
                steps += 1
                hits[ei] += 1
                t0 = perf_counter()
                target = payload(regs)
                time += 1
                tacc[ei] += 1
                for r in extra:
                    s = regs[r].size
                    work += s
                    wacc[ei] += s
                wall[ei] += perf_counter() - t0
                if target >= 0:
                    pc = target
            elif kind == HALT:
                steps += 1
                hits[ei] += 1
                time += 1
                tacc[ei] += 1
                break
            else:  # TRAP: charged before raising, like every backend
                hits[ei] += 1
                time += 1
                tacc[ei] += 1
                raise BVRAMError(payload)
    finally:
        machine.time = time
        machine.work = work


def _run_flat(machine, plan, max_steps, hits, tacc, wacc, wall):
    """The interp dispatch loop with per-instruction attribution."""
    regs = machine.registers
    n = len(plan)
    pc = 0
    steps = 0
    time = 0
    work = 0
    try:
        while pc < n:
            if steps >= max_steps:
                raise step_budget_error(max_steps)
            steps += 1
            kind, payload, rw = plan[pc]
            ei = pc
            pc += 1
            if kind == STEP:
                hits[ei] += 1
                t0 = perf_counter()
                payload(regs)
                time += 1
                tacc[ei] += 1
                for r in rw:
                    s = regs[r].size
                    work += s
                    wacc[ei] += s
                wall[ei] += perf_counter() - t0
            elif kind == JUMP:
                hits[ei] += 1
                t0 = perf_counter()
                target = payload(regs)
                time += 1
                tacc[ei] += 1
                for r in rw:
                    s = regs[r].size
                    work += s
                    wacc[ei] += s
                wall[ei] += perf_counter() - t0
                if target >= 0:
                    pc = target
            elif kind == HALT:
                hits[ei] += 1
                time += 1
                tacc[ei] += 1
                break
            else:  # TRAP
                hits[ei] += 1
                time += 1
                tacc[ei] += 1
                raise BVRAMError(payload)
    finally:
        machine.time = time
        machine.work = work


def profile_run(program, inputs, max_steps: int = 10_000_000, backend=None) -> ProfileReport:
    """Profile one run of ``program`` on a pre-marshalled input-register image.

    Selects the backend like an untraced ``run()`` (explicit argument, then
    the program's pin, ``REPRO_BACKEND``, the ``fused`` default) and drives
    its normal cached plan through the attributing loop.  A trapping run
    returns a report with ``error`` set and exact prefix totals instead of
    raising; non-BVRAM exceptions propagate.
    """
    engine = resolve_backend(backend, program=program)
    program.validate()
    machine = BVRAM(program.n_registers)
    if len(inputs) != program.n_inputs:
        raise BVRAMError(
            f"program expects {program.n_inputs} inputs, got {len(inputs)}"
        )
    for i, values in enumerate(inputs):
        machine.load(i, values)

    plan = engine.plan(program)
    meta = meta_for(program)
    if isinstance(plan, VectorPlan):
        entries = plan.entries
        groups = meta.groups
        runner = "grouped-vec"
    elif engine.name == "fused":
        entries = plan
        groups = meta.groups
        runner = "grouped"
    elif engine.name == "interp":
        entries = plan
        groups = [(kind, [i]) for i, (kind, _, _) in enumerate(plan)]
        runner = "flat"
    else:
        raise ValueError(
            f"profiling is not supported for backend {engine.name!r} "
            "(supported: interp, fused, vector, vector-jit)"
        )

    n = len(entries)
    hits = [0] * n
    tacc = [0] * n
    wacc = [0] * n
    wall = [0.0] * n
    error: Optional[str] = None
    t_run = perf_counter()
    try:
        if runner == "grouped-vec":
            # seed interval bounds exactly like VectorBackend.execute
            regs = machine.registers
            lo = [0] * len(regs)
            hi = [kernels.INT64_LIMIT - 1] * len(regs)
            for i in plan.binit:
                r = regs[i]
                if r.size:
                    lo[i] = int(r.min())
                    hi[i] = int(r.max())
                else:
                    hi[i] = 0
            _run_grouped(machine, entries, max_steps, hits, tacc, wacc, wall, lo, hi)
        elif runner == "grouped":
            _run_grouped(machine, entries, max_steps, hits, tacc, wacc, wall)
        else:
            _run_flat(machine, entries, max_steps, hits, tacc, wacc, wall)
    except BVRAMError as e:
        error = str(e)
    wall_total = perf_counter() - t_run

    line_of = meta.line_of
    code = program.instructions
    blocks = [
        BlockStat(
            entry=ei,
            kind=_KIND_NAMES[kind],
            first=idxs[0],
            last=idxs[-1],
            hits=hits[ei],
            time=tacc[ei],
            work=wacc[ei],
            wall_s=wall[ei],
            source_line=line_of[idxs[0]],
            code=_code_snippet(code[idxs[0]]),
        )
        for ei, (kind, idxs) in enumerate(groups)
    ]
    return ProfileReport(
        backend=engine.name,
        blocks=blocks,
        time=machine.time,
        work=machine.work,
        wall_s=wall_total,
        listing=format_listing(program),
        registers=[np.asarray(r).copy() for r in machine.registers],
        error=error,
    )
