"""Observability: pipeline tracing, per-block profiling, metrics export.

The system's five layers (NSC eval -> compiler passes -> backends -> batched
serving -> shards) report only totals; this package attributes them:

* :mod:`repro.obs.trace` — contextvar-scoped span tracer over the compile
  pipeline and the serving path, Chrome-trace JSON export
  (``Trace.export_chrome``), near-zero cost when disabled;
* :mod:`repro.obs.profile` — per-block execution profiler with **exact**
  ``T'``/``W'`` attribution (per-entry sums bit-identical to the machine
  totals), surfaced as ``CompiledProgram.profile(value)``;
* :mod:`repro.obs.export` — Prometheus text exposition for server metrics
  and cross-worker aggregation for the shard executor;
* :mod:`repro.obs.costcheck` — fits ``wall ~ alpha*T' + beta*W'`` over the
  profiled blocks, the predicted-vs-measured table the Brent-validation
  roadmap item needs.
"""

from .costcheck import CostReport, cost_check, profile_section
from .export import (
    aggregate_worker_metrics,
    render_prometheus,
    render_shard_prometheus,
)
from .profile import BlockStat, ProfileReport, profile_run
from .trace import Trace, current, instant, span

__all__ = [
    "BlockStat",
    "CostReport",
    "ProfileReport",
    "Trace",
    "aggregate_worker_metrics",
    "cost_check",
    "current",
    "instant",
    "profile_run",
    "profile_section",
    "render_prometheus",
    "render_shard_prometheus",
    "span",
]
