"""Metrics exposition: Prometheus text format + cross-worker aggregation.

Two consumers share this module:

* :meth:`repro.serving.Server.metrics_endpoint` renders the server's
  :class:`~repro.serving.metrics.ServerMetrics` snapshot as JSON or as the
  Prometheus text exposition format (version 0.0.4 — ``# HELP`` / ``# TYPE``
  headers, ``_total``-suffixed counters, cumulative ``le`` histogram
  buckets, escaped label values);
* :meth:`repro.serving.ShardExecutor.metrics_snapshot` aggregates its
  per-worker parent-side stats through :func:`aggregate_worker_metrics`
  into the one-snapshot view the ROADMAP asked for ("ServerMetrics
  aggregated across workers").

Everything here operates on plain dicts — no serving imports — so the
renderer is usable on any snapshot-shaped data and stays cycle-free.
"""

from __future__ import annotations

from typing import Optional

#: ServerMetrics snapshot keys that are monotone counters (rendered with the
#: Prometheus ``_total`` suffix) and their HELP text
_COUNTERS = {
    "submitted": "Requests accepted into a queue",
    "completed": "Requests completed with a value",
    "failed": "Requests completed with an exception (their own trap)",
    "rejected": "Requests refused by backpressure (bounded queue full)",
    "batches": "Batches executed",
    "admission_rejected": "Requests refused by SLO admission control (predicted too expensive)",
    "admission_isolated": "Requests routed to an isolation lane by SLO admission control",
}

#: snapshot keys that are point-in-time gauges
_GAUGES = {
    "queue_depth": "Queued-but-not-yet-executing requests",
    "mean_batch_size": "Finished requests per executed batch",
    "p50_latency_s": "Median request latency over the sliding window (seconds)",
    "p99_latency_s": "99th-percentile request latency over the sliding window (seconds)",
    "requests_per_sec": "Finished requests per second over the recent rate window",
    "lifetime_requests_per_sec": "Finished requests per second of server lifetime",
}


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format (backslash, quote, LF)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _labels(labels: Optional[dict]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{escape_label_value(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def _num(value) -> str:
    # integers render without a trailing .0 so counter samples stay exact
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(
    snapshot: dict, prefix: str = "repro_server", labels: Optional[dict] = None
) -> str:
    """Render a :meth:`ServerMetrics.snapshot` dict as Prometheus text.

    Counters get the ``_total`` suffix, gauges render as-is, and the batch
    size histogram becomes a cumulative-``le`` Prometheus histogram
    (``_bucket``/``_sum``/``_count``).  ``None``-valued gauges (e.g. the
    percentiles before any completion) are omitted entirely.  Unknown
    snapshot keys are ignored, so snapshot growth never breaks scrapes.
    """
    lab = _labels(labels)
    lines: list[str] = []
    for key, help_text in _COUNTERS.items():
        if key not in snapshot:
            continue
        name = f"{prefix}_{key}_total"
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name}{lab} {_num(snapshot[key])}")
    for key, help_text in _GAUGES.items():
        if snapshot.get(key) is None:
            continue
        name = f"{prefix}_{key}"
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{lab} {_num(snapshot[key])}")
    hist = snapshot.get("batch_size_hist")
    if hist is not None:
        name = f"{prefix}_batch_size"
        lines.append(f"# HELP {name} Executed batch sizes")
        lines.append(f"# TYPE {name} histogram")
        total = 0
        weighted = 0
        for size in sorted(int(s) for s in hist):
            count = hist[size] if size in hist else hist[str(size)]
            total += count
            weighted += size * count
            bucket_labels = dict(labels or {})
            bucket_labels["le"] = size
            lines.append(f"{name}_bucket{_labels(bucket_labels)} {total}")
        inf_labels = dict(labels or {})
        inf_labels["le"] = "+Inf"
        lines.append(f"{name}_bucket{_labels(inf_labels)} {total}")
        lines.append(f"{name}_sum{lab} {weighted}")
        lines.append(f"{name}_count{lab} {total}")
    return "\n".join(lines) + "\n"


def aggregate_worker_metrics(workers: list[dict]) -> dict:
    """Fold per-worker stat dicts into one totals dict.

    Numeric fields sum; ``alive`` counts live workers; the ``worker`` index
    is dropped.  Works on any homogeneous list of flat stat dicts.
    """
    agg: dict = {"workers": len(workers), "alive": 0}
    for w in workers:
        if w.get("alive"):
            agg["alive"] += 1
        for key, value in w.items():
            if key in ("worker", "alive") or not isinstance(value, (int, float)):
                continue
            agg[key] = agg.get(key, 0) + value
    if "busy_s" in agg:
        agg["busy_s"] = round(agg["busy_s"], 6)
    return agg


def render_shard_prometheus(shard_snapshot: dict, prefix: str = "repro_shard") -> str:
    """Render a :meth:`ShardExecutor.metrics_snapshot` as Prometheus text.

    Per-worker counters carry a ``worker`` label; the aggregate liveness
    renders as two gauges.
    """
    agg = shard_snapshot.get("aggregate", {})
    lines = [
        f"# HELP {prefix}_workers Configured shard worker processes",
        f"# TYPE {prefix}_workers gauge",
        f"{prefix}_workers {_num(agg.get('workers', 0))}",
        f"# HELP {prefix}_workers_alive Shard worker processes currently alive",
        f"# TYPE {prefix}_workers_alive gauge",
        f"{prefix}_workers_alive {_num(agg.get('alive', 0))}",
    ]
    per_worker_counters = {
        "spans": "Shard spans completed by the worker",
        "items": "Batch items executed by the worker",
        "errors": "Worker-side infrastructure errors (span recomputed in-parent)",
        "need_prog": "Program re-ships after worker-side cache eviction",
        "cache_warm": "Cold dispatches the worker served from the compile cache",
        "warm_loads": "Programs pre-loaded into the worker by cache warm-up",
        "respawns": "Times the worker process was respawned after dying",
        "fallback_spans": "Spans recomputed in-parent after a worker death",
    }
    workers = shard_snapshot.get("workers", [])
    for key, help_text in per_worker_counters.items():
        name = f"{prefix}_{key}_total"
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} counter")
        for w in workers:
            lines.append(
                f"{name}{_labels({'worker': w.get('worker')})} {_num(w.get(key, 0))}"
            )
    name = f"{prefix}_busy_seconds_total"
    lines.append(f"# HELP {name} Wall seconds spent between span dispatch and collection")
    lines.append(f"# TYPE {name} counter")
    for w in workers:
        lines.append(
            f"{name}{_labels({'worker': w.get('worker')})} {_num(w.get('busy_s', 0.0))}"
        )
    return "\n".join(lines) + "\n"


def aggregate_server_snapshots(
    snapshots: list[dict], latencies: Optional[list] = None
) -> dict:
    """Fold per-plane :meth:`ServerMetrics.snapshot` dicts into one view.

    Counters, queue depth and rates sum across planes; the batch-size
    histogram merges.  Percentiles do **not** sum or average — when the
    caller supplies each plane's raw latency window (``latencies``, a list
    of sequences of seconds) the aggregate p50/p99 are nearest-rank over
    the *pooled* window, exactly what a single server over the combined
    traffic would report; without raw windows they fall back to the
    worst plane's value (a conservative upper bound, never an average of
    percentiles).
    """
    agg: dict = {"planes": len(snapshots)}
    for key in _COUNTERS:
        agg[key] = sum(int(s.get(key, 0)) for s in snapshots)
    agg["queue_depth"] = sum(int(s.get("queue_depth", 0)) for s in snapshots)
    for key in ("requests_per_sec", "lifetime_requests_per_sec"):
        agg[key] = round(sum(float(s.get(key, 0.0)) for s in snapshots), 1)
    hist: dict = {}
    for s in snapshots:
        for size, count in (s.get("batch_size_hist") or {}).items():
            hist[int(size)] = hist.get(int(size), 0) + count
    agg["batch_size_hist"] = dict(sorted(hist.items()))
    finished = agg.get("completed", 0) + agg.get("failed", 0)
    agg["mean_batch_size"] = round(
        finished / agg["batches"] if agg.get("batches") else 0.0, 2
    )
    if latencies is not None:
        pooled = sorted(x for window in latencies for x in window)
        for name, p in (("p50_latency_s", 50.0), ("p99_latency_s", 99.0)):
            if not pooled:
                agg[name] = None
                continue
            rank = max(0, min(len(pooled) - 1, round(p / 100.0 * (len(pooled) - 1))))
            agg[name] = pooled[rank]
    else:
        for name in ("p50_latency_s", "p99_latency_s"):
            values = [s[name] for s in snapshots if s.get(name) is not None]
            agg[name] = max(values) if values else None
    return agg


def render_router_prometheus(
    aggregate: dict,
    plane_snapshots: list[dict],
    shard_snapshots: Optional[list[dict]] = None,
    router: Optional[dict] = None,
) -> str:
    """Prometheus text for a router: aggregate + per-plane labelled series.

    The cross-plane aggregate renders under the ``repro_router`` prefix;
    each plane's server metrics render under ``repro_server`` with a
    ``plane`` label — HELP/TYPE emitted once per metric with one sample
    line per plane, which is what makes the exposition valid (repeating
    HELP per plane is not).  Shard-worker counters carry ``plane`` and
    ``worker`` labels.
    """
    lines: list[str] = [render_prometheus(aggregate, prefix="repro_router").rstrip("\n")]
    if router:
        for key, value in sorted(router.items()):
            if not isinstance(value, (int, float)):
                continue
            name = f"repro_router_{key}"
            lines.append(f"# HELP {name} Router {key.replace('_', ' ')}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_num(value)}")
    for key, help_text in _COUNTERS.items():
        samples = [
            ({"plane": i}, s[key])
            for i, s in enumerate(plane_snapshots)
            if key in s
        ]
        if not samples:
            continue
        name = f"repro_server_{key}_total"
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} counter")
        for labels, value in samples:
            lines.append(f"{name}{_labels(labels)} {_num(value)}")
    for key, help_text in _GAUGES.items():
        samples = [
            ({"plane": i}, s[key])
            for i, s in enumerate(plane_snapshots)
            if s.get(key) is not None
        ]
        if not samples:
            continue
        name = f"repro_server_{key}"
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} gauge")
        for labels, value in samples:
            lines.append(f"{name}{_labels(labels)} {_num(value)}")
    if shard_snapshots:
        per_worker_counters = {
            "spans": "Shard spans completed by the worker",
            "items": "Batch items executed by the worker",
            "errors": "Worker-side infrastructure errors (span recomputed in-parent)",
            "need_prog": "Program re-ships after worker-side cache eviction",
            "cache_warm": "Cold dispatches the worker served from the compile cache",
            "warm_loads": "Programs pre-loaded into the worker by cache warm-up",
            "respawns": "Times the worker process was respawned after dying",
            "fallback_spans": "Spans recomputed in-parent after a worker death",
        }
        for key, help_text in per_worker_counters.items():
            name = f"repro_shard_{key}_total"
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} counter")
            for i, snap in enumerate(shard_snapshots):
                for w in snap.get("workers", []):
                    labels = {"plane": i, "worker": w.get("worker")}
                    lines.append(f"{name}{_labels(labels)} {_num(w.get(key, 0))}")
    return "\n".join(lines) + "\n"


#: CompileCache snapshot keys that are monotone counters, with HELP text
_CACHE_COUNTERS = {
    "hits": "Compile-cache hits (memo + disk)",
    "memo_hits": "Compile-cache hits served by the in-process memo",
    "disk_hits": "Compile-cache hits served by the on-disk store",
    "misses": "Compile-cache misses (program was compiled)",
    "stores": "Artifacts written (or refreshed) in the compile cache",
    "evictions": "Artifacts evicted by the LRU size bound",
    "corrupt": "Artifacts quarantined after failing envelope validation",
}

#: CompileCache snapshot keys that are point-in-time gauges
_CACHE_GAUGES = {
    "memo_entries": "Programs held by the in-process memo",
    "disk_entries": "Artifacts currently in the on-disk store",
    "disk_bytes": "Bytes currently in the on-disk store",
    "max_bytes": "Configured LRU size bound of the on-disk store",
}


def render_cache_prometheus(
    cache_snapshot: dict, prefix: str = "repro_cache", labels: Optional[dict] = None
) -> str:
    """Render a :meth:`repro.cache.CompileCache.snapshot` as Prometheus text."""
    lab = _labels(labels)
    lines: list[str] = []
    for key, help_text in _CACHE_COUNTERS.items():
        if key not in cache_snapshot:
            continue
        name = f"{prefix}_{key}_total"
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name}{lab} {_num(cache_snapshot[key])}")
    for key, help_text in _CACHE_GAUGES.items():
        if cache_snapshot.get(key) is None:
            continue
        name = f"{prefix}_{key}"
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{lab} {_num(cache_snapshot[key])}")
    return "\n".join(lines) + "\n"
