"""Complexity-shape fitting and report formatting for the benchmark harness."""

from .fit import (
    Fit,
    format_table,
    is_bounded_ratio,
    linear_weights,
    log_slope,
    loglog_slope,
    ratio_trend,
)

__all__ = [
    "Fit",
    "format_table",
    "is_bounded_ratio",
    "linear_weights",
    "log_slope",
    "loglog_slope",
    "ratio_trend",
]
