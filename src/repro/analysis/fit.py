"""Complexity-shape fitting used by the benchmark harness.

The paper's claims are asymptotic (``T' = O(T)``, ``W' = O(W^(1+eps))``,
``O(log n)`` butterfly steps, ``O(T + W/p)`` PRAM cycles, ...).  We check the
*shape* of measured series, not absolute constants, with two tools:

* :func:`loglog_slope` — least-squares slope of ``log(y)`` against ``log(x)``,
  i.e. the empirical polynomial exponent;
* :func:`ratio_trend` — whether the ratio of two series stays bounded
  (a constant-factor relationship) or grows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Fit:
    """A power-law fit ``y ~ c * x^slope``."""

    slope: float
    intercept: float
    r2: float

    def predict(self, x: float) -> float:
        return math.exp(self.intercept) * x**self.slope


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> Fit:
    """Least-squares fit of log(y) = slope*log(x) + intercept."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two points")
    lx = np.log(np.asarray(xs, dtype=float))
    ly = np.log(np.asarray(ys, dtype=float))
    slope, intercept = np.polyfit(lx, ly, 1)
    pred = slope * lx + intercept
    ss_res = float(np.sum((ly - pred) ** 2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return Fit(float(slope), float(intercept), r2)


def ratio_trend(numerators: Sequence[float], denominators: Sequence[float]) -> tuple[float, float]:
    """(first ratio, last ratio) of two aligned series — a boundedness check."""
    ratios = [n / d for n, d in zip(numerators, denominators)]
    return ratios[0], ratios[-1]


def is_bounded_ratio(
    numerators: Sequence[float], denominators: Sequence[float], growth_tolerance: float = 2.0
) -> bool:
    """True when the ratio of the series grows by at most ``growth_tolerance``x."""
    first, last = ratio_trend(numerators, denominators)
    return last <= first * growth_tolerance + 1e-9


def linear_weights(
    features: Sequence[Sequence[float]], targets: Sequence[float]
) -> tuple[list[float], float]:
    """Least-squares weights ``w`` minimising ``||F w - y||``, plus the r2.

    No intercept — the cost-model use (``wall ~ alpha*T' + beta*W'``,
    :mod:`repro.obs.costcheck`) prices zero work at zero seconds.  Weights
    are unconstrained: a negative weight signals collinear features rather
    than a negative cost, and the caller decides how to treat it.
    """
    F = np.asarray(features, dtype=float)
    y = np.asarray(targets, dtype=float)
    if F.ndim != 2 or F.shape[0] != y.shape[0] or F.shape[0] < 1:
        raise ValueError("need one feature row per target")
    w, *_ = np.linalg.lstsq(F, y, rcond=None)
    pred = F @ w
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return [float(v) for v in w], r2


def log_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of y against log2(x) — for O(log n) claims."""
    lx = np.log2(np.asarray(xs, dtype=float))
    ly = np.asarray(ys, dtype=float)
    slope, _ = np.polyfit(lx, ly, 1)
    return float(slope)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table used by the benchmark harness and EXPERIMENTS.md."""
    cols = [[str(h)] + [str(r[i]) for r in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in col) for col in cols]
    def fmt_row(cells: Sequence[object]) -> str:
        return " | ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    sep = "-+-".join("-" * w for w in widths)
    lines = [fmt_row(headers), sep]
    lines.extend(fmt_row(r) for r in rows)
    return "\n".join(lines)
