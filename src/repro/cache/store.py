"""The on-disk, content-addressed compile cache.

Layout under the cache directory::

    objects/<k0k1>/<key>.rpc    the artifacts (k0k1 = first two hex chars)
    tmp/                        in-flight writes (same filesystem -> atomic rename)
    quarantine/                 artifacts that failed validation, kept for triage

Every artifact is a **versioned binary envelope**::

    magic "RPC1" | format u16 | reserved u16 | payload len u64 | sha256(payload) | payload

with the payload being the pickled :class:`~repro.compiler.CompiledProgram`
(whose ``__getstate__`` already drops run-time plan caches).  A reader
validates magic, format version, length and checksum before unpickling; any
failure **quarantines** the file (moved aside, never deleted in place, never
re-read) and counts as a miss — a corrupt or truncated artifact can slow a
cold start down, never crash it or serve wrong code.

Writes are atomic: the envelope is written to ``tmp/`` and ``os.replace``d
into place, so concurrent writers of the same key race safely (last rename
wins, both envelopes are valid, readers see one or the other, never a torn
file) and a crash mid-write leaves only tmp litter.

The store is **LRU size-bounded** (``max_bytes``, default 512 MiB or
``REPRO_CACHE_MAX_MB``): a hit bumps the artifact's mtime, and after each
write the oldest artifacts are evicted until the total size fits.  An
in-process **memo layer** (bounded, fork-inherited read-only) makes repeat
compiles of a hot program one dict lookup — no disk, no unpickle.

Counters (``hits``/``misses``/``stores``/``evictions``/``corrupt`` plus the
memo/disk hit split) are exported through
:func:`repro.obs.export.render_cache_prometheus`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile
from collections import OrderedDict
from typing import Callable, Optional

from ..backends.registry import ForkSafeLock

_MAGIC = b"RPC1"
_FORMAT_VERSION = 1
_HEADER = struct.Struct(">4sHHQ32s")  # magic, format, reserved, payload len, sha256

#: default size bound (bytes) when neither the constructor nor
#: ``REPRO_CACHE_MAX_MB`` says otherwise
_DEFAULT_MAX_BYTES = 512 * 1024 * 1024

#: in-process memo bound (programs, not bytes — plans dominate a hot
#: program's footprint anyway and live on the instances themselves)
_MEMO_SIZE = 256

#: sentinel for "use the environment-configured default cache" — the default
#: of every ``cache=`` parameter, distinct from an explicit ``None`` (off)
ENV_DEFAULT = object()


class CacheError(RuntimeError):
    """The cache directory could not be used (permissions, not a dir, ...)."""


def _encode(payload: bytes) -> bytes:
    return (
        _HEADER.pack(
            _MAGIC, _FORMAT_VERSION, 0, len(payload), hashlib.sha256(payload).digest()
        )
        + payload
    )


def _decode(blob: bytes) -> bytes:
    """The validated payload of one envelope; raises ``ValueError`` otherwise."""
    if len(blob) < _HEADER.size:
        raise ValueError("envelope shorter than its header")
    magic, version, _, length, digest = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        raise ValueError(f"bad magic {magic!r}")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported envelope format {version}")
    payload = blob[_HEADER.size :]
    if len(payload) != length:
        raise ValueError(f"payload length {len(payload)} != header {length}")
    if hashlib.sha256(payload).digest() != digest:
        raise ValueError("payload checksum mismatch")
    return payload


class CompileCache:
    """One cache directory: disk store + in-process memo + counters.

    Instances are cheap; several instances (even across processes) may share
    a directory — the disk format carries all coordination (atomic renames,
    self-validating envelopes).  Counters are per-instance.  Thread-safe;
    the lock is fork-safe (:class:`~repro.backends.registry.ForkSafeLock`),
    and a forked child inherits the memo read-only-usefully (shard workers
    start warm twice over).
    """

    def __init__(
        self,
        path: str,
        max_bytes: Optional[int] = None,
        memo_size: int = _MEMO_SIZE,
    ) -> None:
        self.path = os.path.abspath(path)
        if max_bytes is None:
            mb = os.environ.get("REPRO_CACHE_MAX_MB")
            max_bytes = int(float(mb) * 1024 * 1024) if mb else _DEFAULT_MAX_BYTES
        if max_bytes <= 0:
            raise CacheError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self.memo_size = memo_size
        self._memo: OrderedDict[str, object] = OrderedDict()
        self._lock = ForkSafeLock()
        self.counters = {
            "hits": 0,
            "memo_hits": 0,
            "disk_hits": 0,
            "misses": 0,
            "stores": 0,
            "evictions": 0,
            "corrupt": 0,
        }
        for sub in ("objects", "tmp", "quarantine"):
            os.makedirs(os.path.join(self.path, sub), exist_ok=True)
        if not os.path.isdir(os.path.join(self.path, "objects")):  # pragma: no cover
            raise CacheError(f"cannot create cache directory under {self.path!r}")

    # -- paths ---------------------------------------------------------------

    def _object_path(self, key: str) -> str:
        return os.path.join(self.path, "objects", key[:2], f"{key}.rpc")

    def _quarantine(self, path: str, reason: str) -> None:
        """Move a failed artifact aside (never delete, never re-read)."""
        dst = os.path.join(
            self.path, "quarantine", f"{os.path.basename(path)}.{os.getpid()}"
        )
        try:
            os.replace(path, dst)
            with open(dst + ".reason", "w", encoding="utf-8") as fh:
                fh.write(reason + "\n")
        except OSError:  # a racing process may have moved it first
            pass

    # -- core API ------------------------------------------------------------

    def get(self, key: str):
        """The cached program for ``key``, or ``None`` (a miss).

        Memo first, then disk (validated envelope -> unpickle -> memoised).
        A disk hit refreshes the artifact's mtime — the LRU clock.
        """
        with self._lock:
            prog = self._memo.get(key)
            if prog is not None:
                self._memo.move_to_end(key)
                self.counters["hits"] += 1
                self.counters["memo_hits"] += 1
                return prog
        path = self._object_path(key)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            with self._lock:
                self.counters["misses"] += 1
            return None
        try:
            prog = pickle.loads(_decode(blob))
        except Exception as e:  # noqa: BLE001 - any validation failure quarantines
            self._quarantine(path, f"{type(e).__name__}: {e}")
            with self._lock:
                self.counters["corrupt"] += 1
                self.counters["misses"] += 1
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        with self._lock:
            self.counters["hits"] += 1
            self.counters["disk_hits"] += 1
            self._memoize(key, prog)
        return prog

    def put(self, key: str, prog, payload: Optional[bytes] = None) -> None:
        """Store ``prog`` under ``key`` (atomic write + LRU eviction).

        ``payload`` short-circuits the pickling when the caller already
        serialised the program (the shard executor ships the same bytes).
        An existing valid-looking artifact is only touched (mtime), not
        rewritten — concurrent writers converge instead of churning.
        """
        with self._lock:
            self._memoize(key, prog)
            self.counters["stores"] += 1
        path = self._object_path(key)
        if os.path.exists(path):
            try:
                os.utime(path)
                return
            except OSError:
                pass
        if payload is None:
            payload = pickle.dumps(prog, protocol=pickle.HIGHEST_PROTOCOL)
        blob = _encode(payload)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.join(self.path, "tmp"), suffix=".rpc")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._evict()

    def get_or_build(self, key: str, build: Callable[[], object]):
        """``get(key)`` or ``build()``-then-``put`` — the compile front door."""
        prog = self.get(key)
        if prog is not None:
            return prog
        prog = build()
        self.put(key, prog)
        return prog

    def _memoize(self, key: str, prog) -> None:
        self._memo[key] = prog
        self._memo.move_to_end(key)
        while len(self._memo) > self.memo_size:
            self._memo.popitem(last=False)

    def clear_memo(self) -> None:
        """Drop the in-process memo (tests: simulate a fresh process)."""
        with self._lock:
            self._memo.clear()

    # -- eviction ------------------------------------------------------------

    def _artifacts(self) -> list[tuple[float, int, str]]:
        """(mtime, size, path) for every artifact under objects/."""
        out = []
        objects = os.path.join(self.path, "objects")
        for root, _, files in os.walk(objects):
            for name in files:
                p = os.path.join(root, name)
                try:
                    st = os.stat(p)
                except OSError:
                    continue
                out.append((st.st_mtime, st.st_size, p))
        return out

    def _evict(self) -> None:
        """Remove oldest artifacts until the store fits ``max_bytes``."""
        arts = self._artifacts()
        total = sum(size for _, size, _ in arts)
        if total <= self.max_bytes:
            return
        evicted = 0
        for _, size, p in sorted(arts):
            if total <= self.max_bytes:
                break
            try:
                os.unlink(p)
            except OSError:
                continue
            total -= size
            evicted += 1
        if evicted:
            with self._lock:
                self.counters["evictions"] += evicted

    # -- observability -------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able counters + store shape (the metrics-endpoint section)."""
        arts = self._artifacts()
        with self._lock:
            snap = dict(self.counters)
            snap["memo_entries"] = len(self._memo)
        snap["disk_entries"] = len(arts)
        snap["disk_bytes"] = sum(size for _, size, _ in arts)
        snap["max_bytes"] = self.max_bytes
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompileCache({self.path!r}, {self.counters})"


# -- the environment-configured default --------------------------------------

_DEFAULT_LOCK = ForkSafeLock()
_DEFAULT_INSTANCES: dict[str, CompileCache] = {}


def default_cache() -> Optional[CompileCache]:
    """The process-wide cache configured by ``REPRO_CACHE_DIR`` (or ``None``).

    One shared instance per directory, so counters accumulate across every
    ``compile_nsc`` in the process; re-reading the environment on each call
    keeps tests (and long-lived servers reconfigured via env) honest.
    """
    path = os.environ.get("REPRO_CACHE_DIR")
    if not path:
        return None
    path = os.path.abspath(path)
    with _DEFAULT_LOCK:
        inst = _DEFAULT_INSTANCES.get(path)
        if inst is None:
            inst = CompileCache(path)
            _DEFAULT_INSTANCES[path] = inst
        return inst


def resolve_cache(cache) -> Optional[CompileCache]:
    """Normalise a ``cache=`` argument: sentinel -> env default, falsy -> off."""
    if cache is ENV_DEFAULT:
        return default_cache()
    if not cache:
        return None
    return cache
