"""Content-addressed compile cache for NSC -> BVRAM artifacts.

:mod:`repro.cache.key` computes the content address (alpha-invariant AST
hash + compile knobs + ISA/codegen version salt); :mod:`repro.cache.store`
holds the artifacts (atomic writes, checksummed envelopes, LRU eviction,
corruption quarantine, in-process memo).  ``python -m repro.cache.warmup``
pre-populates a cache with the differential battery — the CI cold/warm leg.

The cache is wired into :func:`repro.compiler.compile_nsc` via its ``cache=``
parameter; by default it is off unless ``REPRO_CACHE_DIR`` is set.
"""

from .key import KEY_VERSION, cache_key, fingerprint
from .store import ENV_DEFAULT, CacheError, CompileCache, default_cache, resolve_cache

__all__ = [
    "KEY_VERSION",
    "cache_key",
    "fingerprint",
    "CompileCache",
    "CacheError",
    "ENV_DEFAULT",
    "default_cache",
    "resolve_cache",
]
