"""Content-addressed cache keys for compiled NSC programs.

A compiled artifact is a pure function of

* the **canonical NSC AST** — structure plus scalar payloads, with bound
  names replaced by structural binder indices so alpha-equivalent programs
  (e.g. two ``gensym``-built copies of the same combinator) share one
  artifact;
* the compile knobs ``eps`` / ``opt_level`` / ``batch_axis`` / ``backend``
  (the backend pin does not change the emitted instructions, but it rides
  the pickled program, so two pins are two artifacts — conservative and
  cheap);
* the **version salt**: the cache envelope format, the ISA version
  (:data:`repro.bvram.isa.ISA_VERSION`) and the code-generator version
  (:data:`repro.compiler.codegen.CODEGEN_VERSION`).  Bumping any of them
  turns every existing artifact into a miss — a recompile, never a stale
  execution.

:func:`fingerprint` hashes the AST; :func:`cache_key` mixes in knobs and
salt.  Both are deterministic across processes and machines (SHA-256 over an
unambiguous token stream, no ``id()``/``hash()``/dict-order dependence), and
the traversal is iterative, so arbitrarily deep programs — a first-class
citizen of this code base — cannot overflow the recursion limit.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from ..bvram.isa import ISA_VERSION
from ..compiler.codegen import CODEGEN_VERSION
from ..nsc import ast as A

#: version of the key scheme itself (token grammar + envelope layout)
KEY_VERSION = 1


def _salt() -> str:
    # read the module globals at call time so tests can monkeypatch a
    # version bump and assert the mismatch-is-a-miss behaviour
    return f"repro-cache;key{KEY_VERSION};isa{ISA_VERSION};cg{CODEGEN_VERSION}"


class _Env:
    """Immutable chain of name -> binder-index entries (O(depth) lookup).

    A persistent linked list instead of per-binder dict copies: a depth-d
    ``let`` chain costs O(d) total to build, not O(d^2), and deep programs
    hash in linear time.
    """

    __slots__ = ("name", "index", "parent")

    def __init__(self, name: str, index: int, parent: Optional["_Env"]) -> None:
        self.name = name
        self.index = index
        self.parent = parent


def _lookup(env: Optional[_Env], name: str) -> Optional[int]:
    while env is not None:
        if env.name == name:
            return env.index
        env = env.parent
    return None


def _feed_ast(hasher, expr: A.Expr) -> None:
    """Feed the canonical token stream of ``expr`` into ``hasher``.

    Pre-order traversal with an explicit stack.  Each node contributes its
    class name plus its non-expression dataclass fields (types rendered via
    their unambiguous ``str`` grammar, everything else via ``repr``); every
    variable occurrence contributes the structural index of its binder —
    assigned in traversal order, so it depends only on program shape — or
    the escaped name when free.  Term variables and recursive-function
    names live in separate environments, mirroring the evaluator's
    namespaces.
    """
    counter = 0
    # stack entries: (node, term-env, recfun-env)
    stack: list[tuple[A.Expr, Optional[_Env], Optional[_Env]]] = [(expr, None, None)]
    while stack:
        node, venv, fenv = stack.pop()
        cls = type(node)
        hasher.update(cls.__name__.encode())
        hasher.update(b"(")
        if cls is A.Var:
            idx = _lookup(venv, node.name)
            token = f"b{idx}" if idx is not None else f"f{node.name!r}"
            hasher.update(token.encode())
            hasher.update(b")")
            continue
        if cls is A.RecCall:
            idx = _lookup(fenv, node.name)
            token = f"b{idx}" if idx is not None else f"f{node.name!r}"
            hasher.update(token.encode())
            hasher.update(b";")
            stack.append((node.arg, venv, fenv))
            continue
        # scalar (non-expression, non-binder-name) payloads, in a fixed
        # per-class order
        if cls is A.Const:
            hasher.update(repr(node.value).encode())
        elif cls in (A.BinOp, A.UnOp):
            hasher.update(node.op.encode())
        elif cls is A.Proj:
            hasher.update(str(node.index).encode())
        elif cls is A.ErrorTerm:
            hasher.update(str(node.type).encode())
        elif cls is A.EmptySeq:
            hasher.update(str(node.elem).encode())
        elif cls is A.Inl:
            hasher.update(str(node.right).encode())
        elif cls is A.Inr:
            hasher.update(str(node.left).encode())
        elif cls is A.Lambda:
            hasher.update(str(node.var_type).encode())
        elif cls is A.Let:
            hasher.update(str(node.var_type).encode())
        elif cls is A.RecFun:
            hasher.update(f"{node.var_type};{node.cod}".encode())
        hasher.update(b";")
        # children, pushed in reverse so they pop in canonical order, each
        # under the environment its binders dictate
        if cls is A.Lambda:
            counter += 1
            stack.append((node.body, _Env(node.var, counter, venv), fenv))
        elif cls is A.Let:
            counter += 1
            stack.append((node.body, _Env(node.var, counter, venv), fenv))
            stack.append((node.bound, venv, fenv))
        elif cls is A.Case:
            counter += 2
            stack.append((node.right_body, _Env(node.right_var, counter, venv), fenv))
            stack.append((node.left_body, _Env(node.left_var, counter - 1, venv), fenv))
            stack.append((node.scrutinee, venv, fenv))
        elif cls is A.RecFun:
            counter += 2
            stack.append(
                (
                    node.body,
                    _Env(node.var, counter, venv),
                    _Env(node.name, counter - 1, fenv),
                )
            )
        else:
            children = list(node.children())
            for child in reversed(children):
                stack.append((child, venv, fenv))


def fingerprint(fn: A.Expr) -> str:
    """SHA-256 hex digest of the canonical (alpha-invariant) AST encoding."""
    hasher = hashlib.sha256()
    _feed_ast(hasher, fn)
    return hasher.hexdigest()


def cache_key(
    fn: A.Expr,
    *,
    eps: float = 0.5,
    opt_level: int = 2,
    batch_axis: bool = False,
    backend: Optional[str] = None,
) -> str:
    """The content address of one compiled artifact (SHA-256 hex digest).

    Everything :func:`repro.compiler.compile_nsc` consumes is in the hash;
    nothing else is.  Two calls agree on the key iff they would produce the
    same artifact under the current compiler/ISA versions.
    """
    hasher = hashlib.sha256()
    hasher.update(_salt().encode())
    hasher.update(
        f";eps={eps!r};opt={opt_level};batch={int(bool(batch_axis))}"
        f";backend={backend or ''};ast=".encode()
    )
    _feed_ast(hasher, fn)
    return hasher.hexdigest()
