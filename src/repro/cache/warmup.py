"""Populate / verify a compile cache with the differential battery.

The CI cold/warm leg drives this module twice against one directory::

    python -m repro.cache.warmup --dir .repro-cache --manifest cold.json
    python -m repro.cache.warmup --dir .repro-cache --manifest warm.json --expect-warm

Each invocation compiles the full :func:`repro.compiler.difftest.suite`
battery (every program at opt levels 0 and 2) **through the cache** and runs
every suite input, writing a JSON manifest of ``{run: {value, time, work}}``.
Because the manifest is keyed and sorted deterministically, ``diff cold.json
warm.json`` (ignoring the timing header) proves the warm pass — which served
every program from disk, in a *new process* — is bit-identical in results
and ``T'``/``W'`` to the cold compile.  ``--expect-warm`` additionally exits
non-zero unless the pass saw zero compile-cache misses, which is how CI
asserts the ``actions/cache`` restore actually worked.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..compiler import compile_nsc
from ..compiler.difftest import suite
from .store import CompileCache

#: opt levels each battery program is compiled at (the cold/warm identity is
#: asserted across this axis in CI and in tests/test_cache.py)
OPT_LEVELS = (0, 2)


def run_battery(store: CompileCache, backend: str | None = None) -> dict:
    """Compile + run the battery through ``store``; deterministic manifest."""
    runs: dict[str, dict] = {}
    for name, fn, inputs in suite():
        for opt in OPT_LEVELS:
            prog = compile_nsc(fn, opt_level=opt, backend=backend, cache=store)
            for i, value in enumerate(inputs):
                out, res = prog.run(value)
                runs[f"{name}/opt{opt}/in{i}"] = {
                    "value": str(out),
                    "time": res.time,
                    "work": res.work,
                }
    return dict(sorted(runs.items()))


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--dir", required=True, help="cache directory (REPRO_CACHE_DIR)")
    ap.add_argument("--manifest", help="write the run manifest (JSON) here")
    ap.add_argument("--backend", default=None, help="pin an execution backend")
    ap.add_argument(
        "--expect-warm",
        action="store_true",
        help="fail unless every compile was a cache hit (CI warm phase)",
    )
    args = ap.parse_args(argv)

    store = CompileCache(args.dir)
    t0 = time.perf_counter()
    runs = run_battery(store, backend=args.backend)
    elapsed = time.perf_counter() - t0
    snap = store.snapshot()

    print(
        f"battery: {len(runs)} runs in {elapsed:.2f}s | "
        f"cache hits={snap['hits']} misses={snap['misses']} "
        f"stores={snap['stores']} corrupt={snap['corrupt']} "
        f"disk_entries={snap['disk_entries']} disk_bytes={snap['disk_bytes']}"
    )
    if args.manifest:
        with open(args.manifest, "w", encoding="utf-8") as fh:
            json.dump(runs, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.expect_warm and (snap["misses"] or not snap["hits"]):
        print(
            f"FAIL: expected a warm cache, saw {snap['misses']} misses "
            f"/ {snap['hits']} hits",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
