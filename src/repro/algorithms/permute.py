"""Permutation routines in NSC (Section 3's discussion of permutation cost).

The BVRAM deliberately has no general permutation instruction, and the paper
points out that the cost of permuting is therefore *visible in the high-level
language*: one can permute

* in O(1) parallel time with O(n^2) work, by a ``map`` that searches for each
  target position;
* in O(log n log log n) time with O(n log n)-ish work, by sorting key/value
  pairs with the Section 5 mergesort.

Experiment E7 regenerates this trade-off.  Both functions use *scatter*
semantics: given values ``x`` and targets ``p`` (a permutation of
``0..n-1``), the output ``y`` satisfies ``y[p[i]] = x[i]``.
"""

from __future__ import annotations

from ..nsc import ast as A
from ..nsc import builder as B
from ..nsc import lib
from ..nsc.types import NAT, prod, seq
from .mergesort import mergesort_recfun

NSEQ = seq(NAT)

#: values must be smaller than this bound for the sort-based permutation's
#: key/value packing (documented limitation; the paper's version would carry
#: pairs through a polymorphic sort instead)
VALUE_BOUND = 1 << 20


def permute_map_fn() -> A.Lambda:
    """Scatter permutation via ``map``: O(1) time, O(n^2) work.

    For every output position ``i`` the whole zipped sequence is scanned for
    the element whose target equals ``i``.
    """
    a = B.gensym("a")
    xvar, pvar = B.gensym("x"), B.gensym("p")
    i = B.gensym("i")
    q = B.gensym("q")
    find_i = B.get_(
        B.flatten_(
            B.app(
                B.map_(
                    B.lam(
                        q,
                        prod(NAT, NAT),
                        B.if_(
                            B.eq(B.snd(B.v(q)), B.v(i)),
                            B.single(B.fst(B.v(q))),
                            B.empty(NAT),
                        ),
                    )
                ),
                B.zip_(B.v(xvar), B.v(pvar)),
            )
        )
    )
    body = B.lets(
        [
            (xvar, B.fst(B.v(a))),
            (pvar, B.snd(B.v(a))),
        ],
        B.app(B.map_(B.lam(i, NAT, find_i)), B.enumerate_(B.v(xvar))),
    )
    return B.lam(a, prod(NSEQ, NSEQ), body)


def permute_sort_fn() -> A.Lambda:
    """Scatter permutation via sorting: O(log n log log n) time.

    Each element is encoded as ``target * VALUE_BOUND + value``, the encoded
    sequence is sorted with Valiant's mergesort (Figure 1) and the values are
    recovered with ``mod``.  Sorting by target position realises the scatter.
    """
    a = B.gensym("a")
    xvar, pvar = B.gensym("x"), B.gensym("p")
    q = B.gensym("q")
    e = B.gensym("e")
    encoded = B.app(
        B.map_(
            B.lam(
                q,
                prod(NAT, NAT),
                B.add(B.mul(B.snd(B.v(q)), B.c(VALUE_BOUND)), B.fst(B.v(q))),
            )
        ),
        B.zip_(B.v(xvar), B.v(pvar)),
    )
    body = B.lets(
        [
            (xvar, B.fst(B.v(a))),
            (pvar, B.snd(B.v(a))),
        ],
        B.app(
            B.map_(B.lam(e, NAT, B.mod(B.v(e), B.c(VALUE_BOUND)))),
            B.app(mergesort_recfun(), encoded),
        ),
    )
    return B.lam(a, prod(NSEQ, NSEQ), body)


def run_permute_map(values: list[int], targets: list[int]):
    from ..nsc import apply_function, from_python

    return apply_function(permute_map_fn(), from_python((list(values), list(targets))))


def run_permute_sort(values: list[int], targets: list[int]):
    from ..nsc import apply_function, from_python

    return apply_function(permute_sort_fn(), from_python((list(values), list(targets))))


def oracle_scatter(values: list[int], targets: list[int]) -> list[int]:
    """Reference scatter permutation."""
    out = [0] * len(values)
    for v, t in zip(values, targets):
        out[t] = v
    return out
