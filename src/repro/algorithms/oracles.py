"""Plain-Python reference implementations (oracles).

Used by the tests and benchmarks to check that the NSC / NSA / SA / BVRAM
programs compute the right answers; none of these carry cost models.
"""

from __future__ import annotations

from typing import Sequence


def merge(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Stable two-way merge with the paper's tie convention (B-ties first)."""
    out: list[int] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if b[j] <= a[i]:
            out.append(b[j])
            j += 1
        else:
            out.append(a[i])
            i += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return out


def mergesort(values: Sequence[int]) -> list[int]:
    """Reference sort."""
    return sorted(values)


def rank_one(a: int, bs: Sequence[int]) -> int:
    """Number of elements of ``bs`` that are <= ``a``."""
    return sum(1 for b in bs if b <= a)


def direct_rank(a: Sequence[int], b: Sequence[int]) -> list[int]:
    return [rank_one(x, b) for x in a]


def index(c: Sequence[int], positions: Sequence[int]) -> list[int]:
    """``[c[i] for i in positions]`` (positions sorted, may repeat)."""
    return [c[i] for i in positions]


def indexsplit(c: Sequence, positions: Sequence[int]) -> list[list]:
    """Split ``c`` at the sorted positions, yielding ``len(positions)+1`` groups."""
    out = []
    prev = 0
    for p in positions:
        out.append(list(c[prev:p]))
        prev = p
    out.append(list(c[prev:]))
    return out


def apply_permutation_gather(values: Sequence[int], perm: Sequence[int]) -> list[int]:
    """``out[i] = values[perm[i]]`` — the gather-style permutation of E7."""
    return [values[p] for p in perm]


def bm_route(data: Sequence, counts: Sequence[int]) -> list:
    """Replicate ``data[i]`` exactly ``counts[i]`` times (bounded monotone routing)."""
    out = []
    for value, count in zip(data, counts):
        out.extend([value] * count)
    return out


def sbm_route(data: Sequence, data_segments: Sequence[int], counts: Sequence[int]) -> list:
    """Segmented bounded monotone routing (Section 2).

    ``data`` is a flat sequence whose consecutive segments have lengths
    ``data_segments``; segment ``i`` is replicated ``counts[i]`` times.
    """
    if len(data_segments) != len(counts):
        raise ValueError("segment descriptor and counts must have the same length")
    out = []
    pos = 0
    for seg_len, count in zip(data_segments, counts):
        segment = list(data[pos : pos + seg_len])
        pos += seg_len
        for _ in range(count):
            out.extend(segment)
    return out


def pack_nonzero(values: Sequence[int]) -> list[int]:
    """The BVRAM selection instruction: keep the non-zero values, packed."""
    return [v for v in values if v != 0]
