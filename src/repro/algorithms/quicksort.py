"""Quicksort as a map-recursive definition (the paper's example for the ``g`` schema).

Section 4: "For g, we construct a list of length 2, and recursively map g on
it (Quicksort has this form)."  The divide step partitions the tail of the
sequence around the first element (the pivot); the combine step re-assembles
``smaller @ [pivot] @ larger``.

On random inputs the divide-and-conquer tree is balanced in expectation, so
the Theorem 4.2 translation preserves the work; on already-sorted inputs the
tree degenerates (``v = n``), making quicksort the natural workload for the
balanced-vs-unbalanced comparison of experiment E3.

The iterative evaluation engine (:mod:`repro.nsc.eval`) keeps its frames on
the heap, so the degenerate depth-``n`` tree is no longer capped by the
Python C stack: :func:`run_quicksort_sorted` exercises it directly.
"""

from __future__ import annotations

from ..maprec.schema import MapRecursiveDef
from ..nsc import ast as A
from ..nsc import builder as B
from ..nsc import lib
from ..nsc.types import NAT, prod, seq

NSEQ = seq(NAT)
NSEQ2 = seq(NSEQ)


def quicksort_def() -> MapRecursiveDef:
    """Quicksort packaged as a :class:`~repro.maprec.schema.MapRecursiveDef`."""
    # pred: |x| <= 1
    px = B.gensym("x")
    pred = B.lam(px, NSEQ, B.le(B.length_(B.v(px)), 1))

    # base: identity
    bx = B.gensym("x")
    base = B.lam(bx, NSEQ, B.v(bx))

    # divide: [elements of tail < pivot, elements of tail >= pivot]
    dx = B.gensym("x")
    piv = B.gensym("piv")
    rest = B.gensym("rest")
    z1 = B.gensym("z")
    z2 = B.gensym("z")
    less = B.app(lib.filter_fn(B.lam(z1, NAT, B.lt(B.v(z1), B.v(piv))), NAT), B.v(rest))
    geq = B.app(lib.filter_fn(B.lam(z2, NAT, B.ge(B.v(z2), B.v(piv))), NAT), B.v(rest))
    divide = B.lam(
        dx,
        NSEQ,
        B.lets(
            [
                (piv, B.app(lib.first(NAT), B.v(dx))),
                (rest, B.app(lib.tail(NAT), B.v(dx))),
            ],
            B.append(B.single(less), B.single(geq)),
        ),
    )

    # combine: smaller @ [pivot] @ larger
    cp = B.gensym("p")
    combine = B.lam(
        cp,
        prod(NSEQ, NSEQ2),
        B.concat(
            B.app(lib.first(NSEQ), B.snd(B.v(cp))),
            B.single(B.app(lib.first(NAT), B.fst(B.v(cp)))),
            B.app(lib.last(NSEQ), B.snd(B.v(cp))),
        ),
    )

    return MapRecursiveDef(
        name="quicksort", dom=NSEQ, cod=NSEQ, pred=pred, base=base, divide=divide, combine=combine
    )


def run_quicksort(values: list[int]):
    """Evaluate the recursive quicksort on Python data; returns the Outcome."""
    from ..nsc import apply_function, from_python

    return apply_function(quicksort_def().to_recfun(), from_python(list(values)))


def run_quicksort_translated(values: list[int]):
    """Evaluate the Theorem 4.2 translation of quicksort; returns the Outcome."""
    from ..maprec.translate import translate
    from ..nsc import apply_function, from_python

    return apply_function(translate(quicksort_def()), from_python(list(values)))


def run_quicksort_sorted(n: int):
    """Evaluate recursive quicksort on the adversarial sorted input ``[0..n-1]``.

    The recursion tree is a path of depth ``n`` — the unbalanced extreme of
    experiment E3, runnable at depths the recursive evaluator could not reach.
    """
    return run_quicksort(list(range(n)))
