"""Concrete instances of the Section 4 recursion schemata.

The paper motivates map-recursion with three schemata::

    fun g(x) = if p(x) then s(x) else c(g(d1(x)), g(d2(x)))
    fun h(x) = if p(x) then s(x) else c(h(d(x)))
    fun k(x) = if p(x) then s(x) else
               if p'(x) then c (k(d1(x)), k(d2(x)))
               else          c'(k(d1'(x)), k(d2'(x)), k(d3'(x)))

``g`` is binary divide and conquer, ``h`` is tail recursion, and ``k``
divides into *either two or three* sub-problems — the paper's example of a
program that is **not contained** in Blelloch's sense yet is map-recursive.

Each schema instance below is packaged as a
:class:`repro.maprec.schema.MapRecursiveDef`, so it can be (a) run directly as
a recursive definition, (b) checked by the syntactic Definition 4.1 test and
(c) translated to pure NSC by Theorem 4.2 (experiment E3).
"""

from __future__ import annotations

from ..maprec.schema import MapRecursiveDef
from ..nsc import ast as A
from ..nsc import builder as B
from ..nsc import lib
from ..nsc.types import NAT, SeqType, prod, seq

NSEQ = seq(NAT)


def _length_at_most(k: int) -> A.Lambda:
    x = B.gensym("x")
    return B.lam(x, NSEQ, B.le(B.length_(B.v(x)), k))


def _identity_seq() -> A.Lambda:
    x = B.gensym("x")
    return B.lam(x, NSEQ, B.v(x))


def _sum_base() -> A.Lambda:
    """``[N] -> N``: 0 for the empty sequence, the single element otherwise."""
    x = B.gensym("x")
    return B.lam(
        x, NSEQ, B.if_(B.eq(B.length_(B.v(x)), 0), B.c(0), B.get_(B.v(x)))
    )


def _halves_divide() -> A.Lambda:
    """``[N] -> [[N]]``: split into two halves (balanced ``g`` schema)."""
    x = B.gensym("x")
    n = B.gensym("n")
    return B.lam(
        x,
        NSEQ,
        B.let(
            n,
            B.length_(B.v(x)),
            B.split_(
                B.v(x),
                B.append(
                    B.single(B.sub(B.v(n), B.div(B.v(n), 2))),
                    B.single(B.div(B.v(n), 2)),
                ),
            ),
        ),
    )


def _head_rest_divide() -> A.Lambda:
    """``[N] -> [[N]]``: peel one element — a maximally unbalanced tree."""
    x = B.gensym("x")
    return B.lam(
        x,
        NSEQ,
        B.append(
            B.single(B.single(B.app(lib.first(NAT), B.v(x)))),
            B.single(B.app(lib.tail(NAT), B.v(x))),
        ),
    )


def _sum_combine() -> A.Lambda:
    """``[N] x [N] -> N``: add up the child results (any number of them)."""
    p = B.gensym("p")
    return B.lam(p, prod(NSEQ, NSEQ), B.app(lib.reduce_add(), B.snd(B.v(p))))


def _sum_combine_simple() -> A.Lambda:
    """``[N] -> N``: the input-free combine (the paper's pure ``c(r1, r2)`` form)."""
    return lib.reduce_add()


def balanced_sum() -> MapRecursiveDef:
    """``g`` schema, balanced: sum a sequence by recursive halving.

    Divide-and-conquer tree is perfectly balanced, so Theorem 4.2 predicts
    ``W' = O(W)`` for the translation.
    """
    return MapRecursiveDef(
        name="balanced_sum",
        dom=NSEQ,
        cod=NAT,
        pred=_length_at_most(1),
        base=_sum_base(),
        divide=_halves_divide(),
        combine=_sum_combine(),
        combine_simple=_sum_combine_simple(),
    )


def skewed_sum() -> MapRecursiveDef:
    """``g`` schema, adversarially unbalanced: peel one element per level.

    ``v`` (levels containing leaves) equals the input length, so the naive
    translation pays the full ``O(v * W)`` overhead — the case the staged
    buffers of Theorem 4.2 are designed for.
    """
    return MapRecursiveDef(
        name="skewed_sum",
        dom=NSEQ,
        cod=NAT,
        pred=_length_at_most(1),
        base=_sum_base(),
        divide=_head_rest_divide(),
        combine=_sum_combine(),
        combine_simple=_sum_combine_simple(),
    )


def halving_tail() -> MapRecursiveDef:
    """``h`` schema (tail recursion): repeatedly halve a number down to 1.

    ``f(n) = if n <= 1 then n else f(n / 2)`` — the sub-problem list has
    length one, which is exactly how the paper converts tail recursion.
    """
    n = B.gensym("n")
    pred = B.lam(n, NAT, B.le(B.v(n), 1))
    bn = B.gensym("n")
    base = B.lam(bn, NAT, B.v(bn))
    dn = B.gensym("n")
    divide = B.lam(dn, NAT, B.single(B.div(B.v(dn), 2)))
    cp = B.gensym("p")
    combine = B.lam(cp, prod(NAT, seq(NAT)), B.get_(B.snd(B.v(cp))))
    cg = B.gensym("rs")
    combine_simple = B.lam(cg, seq(NAT), B.get_(B.v(cg)))
    return MapRecursiveDef(
        name="halving_tail",
        dom=NAT,
        cod=NAT,
        pred=pred,
        base=base,
        divide=divide,
        combine=combine,
        combine_simple=combine_simple,
    )


def countdown() -> MapRecursiveDef:
    """``h`` schema at full depth: ``f(n) = if n = 0 then n else f(n - 1)``.

    The recursion tree is a path of length ``n`` — the canonical deep
    workload.  On the seed's recursive evaluator this crashed for ``n`` in the
    low hundreds (AST depth times recursion depth exhausted the C stack); the
    iterative engine runs it at ``n = 10^5`` under the default recursion
    limit (benchmark E8).
    """
    n = B.gensym("n")
    pred = B.lam(n, NAT, B.eq(B.v(n), 0))
    bn = B.gensym("n")
    base = B.lam(bn, NAT, B.v(bn))
    dn = B.gensym("n")
    divide = B.lam(dn, NAT, B.single(B.sub(B.v(dn), 1)))
    cp = B.gensym("p")
    combine = B.lam(cp, prod(NAT, seq(NAT)), B.get_(B.snd(B.v(cp))))
    cg = B.gensym("rs")
    combine_simple = B.lam(cg, seq(NAT), B.get_(B.v(cg)))
    return MapRecursiveDef(
        name="countdown",
        dom=NAT,
        cod=NAT,
        pred=pred,
        base=base,
        divide=divide,
        combine=combine,
        combine_simple=combine_simple,
    )


def two_or_three_way_sum() -> MapRecursiveDef:
    """``k`` schema: sum a sequence splitting into 3 parts when the length is
    divisible by 3, and into 2 parts otherwise.

    The number of sub-problems depends on the *data*, so the definition is not
    contained in the sense of [Ble90]; it is nevertheless map-recursive and
    translates by Theorem 4.2.
    """
    x = B.gensym("x")
    n = B.gensym("n")
    third = B.gensym("t")
    three_way = B.let(
        third,
        B.div(B.v(n), 3),
        B.split_(
            B.v(x),
            B.append(
                B.append(B.single(B.v(third)), B.single(B.v(third))),
                B.single(B.sub(B.v(n), B.mul(B.v(third), 2))),
            ),
        ),
    )
    two_way = B.split_(
        B.v(x),
        B.append(
            B.single(B.sub(B.v(n), B.div(B.v(n), 2))),
            B.single(B.div(B.v(n), 2)),
        ),
    )
    divide = B.lam(
        x,
        NSEQ,
        B.let(
            n,
            B.length_(B.v(x)),
            B.if_(B.and_(B.eq(B.mod(B.v(n), 3), 0), B.ge(B.v(n), 3)), three_way, two_way),
        ),
    )
    return MapRecursiveDef(
        name="two_or_three_way_sum",
        dom=NSEQ,
        cod=NAT,
        pred=_length_at_most(1),
        base=_sum_base(),
        divide=divide,
        combine=_sum_combine(),
        combine_simple=_sum_combine_simple(),
    )


ALL_SCHEMATA = {
    "balanced_sum": balanced_sum,
    "skewed_sum": skewed_sum,
    "halving_tail": halving_tail,
    "countdown": countdown,
    "two_or_three_way_sum": two_or_three_way_sum,
}
