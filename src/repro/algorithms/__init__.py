"""NSC algorithm programs from the paper plus Python oracles.

* :mod:`repro.algorithms.mergesort` — Valiant's sort (Section 5, Figures 1-3);
* :mod:`repro.algorithms.quicksort` — the divide-and-conquer ``g`` schema example;
* :mod:`repro.algorithms.schemata` — the ``g``/``h``/``k`` recursion schemata of Section 4;
* :mod:`repro.algorithms.permute` — permutation routines of varying T/W trade-offs (Section 3);
* :mod:`repro.algorithms.oracles` — plain-Python reference implementations.
"""
