"""Valiant's O(log n log log n) mergesort in NSC (Section 5, Figures 1-3).

This module reproduces, as NSC programs, every function of the paper's
Figures 1-3:

* Figure 3: ``index`` and ``indexsplit`` (constant time, O(n + k) work);
* Figure 2: ``rank_one``, ``direct_rank``, ``sqrt_positions``, ``sqrt_split``
  and ``direct_merge``;
* Figure 1: the doubly recursive ``merge`` (O(log log m) time) and
  ``mergesort`` (O(log n log log n) time).

``merge`` and ``mergesort`` are written in *map-recursive* form
(Definition 4.1): every recursive call occurs under a ``map``, so the
Definition 3.1 cost model charges the parallel branches with ``max`` rather
than ``sum`` and the claimed parallel running times are visible directly.
The :mod:`repro.maprec` package translates these recursive definitions into
pure (while-based) NSC per Theorem 4.2.

Two small deviations from the paper's sketch are documented inline:

* ``sqrt_positions`` samples positions ``0, s, 2s, ...`` with
  ``s = floor(sqrt(n))`` (the paper writes an exact ``sqrt(n)``); as a
  consequence ``sqrt_split`` produces a leading *empty* block, which is what
  makes ``zip(AA, BB)`` in ``merge`` line up — the empty A-block absorbs the
  B-elements smaller than ``A[0]``.
* ranks are "number of elements <= a" throughout (the paper leaves the tie
  convention implicit); ties therefore land immediately before the equal
  A-element, which preserves sortedness.
"""

from __future__ import annotations

from ..nsc import ast as A
from ..nsc import builder as B
from ..nsc import lib
from ..nsc.types import NAT, ProdType, SeqType, Type, prod, seq

#: type abbreviations used throughout
NSEQ = seq(NAT)  # [N]
NSEQ2 = seq(NSEQ)  # [[N]]


def _monus_pairs() -> A.Function:
    """``map(-)`` over a sequence of pairs: [N x N] -> [N], elementwise monus."""
    p = B.gensym("p")
    return B.map_(B.lam(p, prod(NAT, NAT), B.sub(B.fst(B.v(p)), B.snd(B.v(p)))))


# ---------------------------------------------------------------------------
# Figure 3: index and indexsplit
# ---------------------------------------------------------------------------


def index_fn(t: Type = NAT) -> A.Lambda:
    """``index : [t] x [N] -> [t]`` (Figure 3).

    ``index(C, I)`` expects a sorted sequence of positions ``I = [i0,...,ik-1]``
    and returns ``[C[i0], ..., C[ik-1]]`` in constant parallel time and
    O(n + k) work.  Follows the paper's two ``bm_route`` construction:
    first route a running block counter over all of ``C``'s positions, then
    difference it to obtain per-position multiplicities and route ``C``.
    """
    a = B.gensym("a")
    cvar, ivar = B.gensym("C"), B.gensym("I")
    n = B.gensym("n")
    k = B.gensym("k")
    zero_to_k = B.gensym("ztk")
    delta_i = B.gensym("dI")
    pvar = B.gensym("P")
    delta_p = B.gensym("dP")

    body = B.lets(
        [
            (cvar, B.fst(B.v(a))),
            (ivar, B.snd(B.v(a))),
            (n, B.length_(B.v(cvar))),
            (k, B.length_(B.v(ivar))),
            # zero_to_k = enumerate(I) @ [k]  = [0, 1, ..., k]
            (zero_to_k, B.append(B.enumerate_(B.v(ivar)), B.single(B.v(k)))),
            # delta_I = map(-)(zip(I @ [n], [0] @ I))
            (
                delta_i,
                B.app(
                    _monus_pairs(),
                    B.zip_(
                        B.append(B.v(ivar), B.single(B.v(n))),
                        B.append(B.single(B.c(0)), B.v(ivar)),
                    ),
                ),
            ),
            # P = bm_route((C, delta_I), zero_to_k); P[m] = #{j : i_j <= m}
            (
                pvar,
                B.app(
                    lib.bm_route(t, NAT),
                    B.pair(B.pair(B.v(cvar), B.v(delta_i)), B.v(zero_to_k)),
                ),
            ),
            # delta_P = map(-)(zip(P, remove_last([0] @ P))); = multiplicity of m in I
            (
                delta_p,
                B.app(
                    _monus_pairs(),
                    B.zip_(
                        B.v(pvar),
                        B.app(lib.remove_last(NAT), B.append(B.single(B.c(0)), B.v(pvar))),
                    ),
                ),
            ),
        ],
        # bm_route((I, delta_P), C)
        B.app(
            lib.bm_route(NAT, t),
            B.pair(B.pair(B.v(ivar), B.v(delta_p)), B.v(cvar)),
        ),
    )
    return B.lam(a, prod(seq(t), NSEQ), body)


def indexsplit_fn(t: Type = NAT) -> A.Lambda:
    """``indexsplit : [t] x [N] -> [[t]]`` (Figure 3).

    Splits ``C`` at the sorted positions ``I``, producing ``len(I) + 1``
    consecutive groups ``[C[0:i0], C[i0:i1], ..., C[ik-1:n]]``.
    """
    a = B.gensym("a")
    cvar, ivar = B.gensym("C"), B.gensym("I")
    n = B.gensym("n")
    body = B.lets(
        [
            (cvar, B.fst(B.v(a))),
            (ivar, B.snd(B.v(a))),
            (n, B.length_(B.v(cvar))),
        ],
        B.split_(
            B.v(cvar),
            B.app(
                _monus_pairs(),
                B.zip_(
                    B.append(B.v(ivar), B.single(B.v(n))),
                    B.append(B.single(B.c(0)), B.v(ivar)),
                ),
            ),
        ),
    )
    return B.lam(a, prod(seq(t), NSEQ), body)


# ---------------------------------------------------------------------------
# Figure 2: ranking and square-root splitting
# ---------------------------------------------------------------------------


def rank_one_fn() -> A.Lambda:
    """``rank_one : N x [N] -> N`` = number of elements of B that are <= a (Figure 2).

    The pivot ``a`` is let-bound before the filter so that the filter
    predicate's closure (charged once per element of B by the cost model)
    contains only the single number ``a`` and not the whole pair.
    """
    p = B.gensym("p")
    b = B.gensym("b")
    avar = B.gensym("a")
    pred = B.lam(b, NAT, B.le(B.v(b), B.v(avar)))
    body = B.let(
        avar,
        B.fst(B.v(p)),
        B.length_(B.app(lib.filter_fn(pred, NAT), B.snd(B.v(p)))),
    )
    return B.lam(p, prod(NAT, NSEQ), body)


def direct_rank_fn() -> A.Lambda:
    """``direct_rank : [N] x [N] -> [N]`` = map(\\a. rank_one(a, B))(A) (Figure 2)."""
    p = B.gensym("p")
    a = B.gensym("a")
    avar = B.fst(B.v(p))
    bvar = B.snd(B.v(p))
    body = B.app(
        B.map_(B.lam(a, NAT, B.app(rank_one_fn(), B.pair(B.v(a), bvar)))),
        avar,
    )
    return B.lam(p, prod(NSEQ, NSEQ), body)


def sqrt_positions_fn(t: Type = NAT) -> A.Lambda:
    """``sqrt_positions : [t] -> [t]`` (Figure 2).

    Returns the elements at positions ``0, s, 2s, ...`` where
    ``s = floor(sqrt(length(C)))``; these are the first elements of the
    square-root blocks.
    """
    cvar = B.gensym("C")
    i = B.gensym("i")
    n = B.gensym("n")
    s = B.gensym("s")
    ivar = B.gensym("I")
    pred = B.lam(i, NAT, B.eq(B.mod(B.v(i), B.v(s)), 0))
    body = B.lets(
        [
            (n, B.length_(B.v(cvar))),
            (s, B.nat_max(1, B.isqrt(B.v(n)))),
            (ivar, B.app(lib.filter_fn(pred, NAT), B.enumerate_(B.v(cvar)))),
        ],
        B.app(index_fn(t), B.pair(B.v(cvar), B.v(ivar))),
    )
    return B.lam(cvar, seq(t), body)


def sqrt_split_fn(t: Type = NAT) -> A.Lambda:
    """``sqrt_split : [t] -> [[t]]`` (Figure 2).

    Splits ``C`` into blocks of size ``floor(sqrt(n))``.  Because the sampled
    positions include 0, the result carries a leading empty block; ``merge``
    relies on this (the empty A-block pairs with the B-elements that precede
    ``A[0]``).
    """
    cvar = B.gensym("C")
    body = B.app(
        indexsplit_fn(t),
        B.pair(
            B.v(cvar),
            B.app(sqrt_positions_fn(NAT), B.enumerate_(B.v(cvar))),
        ),
    )
    return B.lam(cvar, seq(t), body)


def direct_merge_fn() -> A.Lambda:
    """``direct_merge : [N] x [N] -> [N]`` (Figure 2) — merge when ``|A| <= 2``.

    ``first(BB) @ flatten(map(\\(a, B'). [a] @ B')(zip(A, tail(BB))))`` where
    ``BB = indexsplit(B, direct_rank(A, B))``.
    """
    p = B.gensym("p")
    avar, bvar = B.gensym("A"), B.gensym("B")
    rvar, bbvar = B.gensym("R"), B.gensym("BB")
    q = B.gensym("q")
    body = B.lets(
        [
            (avar, B.fst(B.v(p))),
            (bvar, B.snd(B.v(p))),
            (rvar, B.app(direct_rank_fn(), B.pair(B.v(avar), B.v(bvar)))),
            (bbvar, B.app(indexsplit_fn(NAT), B.pair(B.v(bvar), B.v(rvar)))),
        ],
        B.append(
            B.app(lib.first(NSEQ), B.v(bbvar)),
            B.flatten_(
                B.app(
                    B.map_(
                        B.lam(
                            q,
                            prod(NAT, NSEQ),
                            B.append(B.single(B.fst(B.v(q))), B.snd(B.v(q))),
                        )
                    ),
                    B.zip_(B.v(avar), B.app(lib.tail(NSEQ), B.v(bbvar))),
                )
            ),
        ),
    )
    return B.lam(p, prod(NSEQ, NSEQ), body)


# ---------------------------------------------------------------------------
# Figure 1: merge and mergesort
# ---------------------------------------------------------------------------


def merge_recfun() -> A.RecFun:
    """Valiant's fast merge, ``merge : [N] x [N] -> [N]`` (Figure 1).

    The recursive call appears only under a ``map`` (map-recursive form), so
    the parallel time is O(log log m) for ``|A| = m``: each level reduces the
    A-blocks to size ``sqrt(m)``.
    """
    p = B.gensym("p")
    avar, bvar = B.gensym("A"), B.gensym("B")
    m, n, s = B.gensym("m"), B.gensym("n"), B.gensym("s")
    a1, b1 = B.gensym("Ap"), B.gensym("Bp")  # A', B' — the sampled elements
    r1 = B.gensym("Rp")  # R' — ranks of A' among B'
    bb1 = B.gensym("BBp")  # BB' — the sqrt blocks of B
    a_b = B.gensym("aB")  # zip(A', blocks of B selected by R')
    rr1 = B.gensym("RRp")  # ranks of each a' within its block
    rvar = B.gensym("R")  # exact ranks of A' in B
    aavar, bbvar = B.gensym("AA"), B.gensym("BB")
    q = B.gensym("q")
    xy = B.gensym("xy")

    recursive_case = B.lets(
        [
            (m, B.length_(B.v(avar))),
            (n, B.length_(B.v(bvar))),
            # the block width used by sqrt_split(B); needed to reassemble ranks
            (s, B.nat_max(1, B.isqrt(B.v(n)))),
            (a1, B.app(sqrt_positions_fn(NAT), B.v(avar))),
            (b1, B.app(sqrt_positions_fn(NAT), B.v(bvar))),
            # R' = direct_rank(A', B'): which sqrt-block of B each sample of A falls in
            (r1, B.app(direct_rank_fn(), B.pair(B.v(a1), B.v(b1)))),
            # BB' = sqrt_split(B)  (leading empty block, then blocks of width s)
            (bb1, B.app(sqrt_split_fn(NAT), B.v(bvar))),
            # a_B = zip(A', index(BB', R')): group each sample with its block
            (
                a_b,
                B.zip_(B.v(a1), B.app(index_fn(NSEQ), B.pair(B.v(bb1), B.v(r1)))),
            ),
            # RR' = map(rank_one)(a_B): rank of each sample within its block
            (rr1, B.app(B.map_(rank_one_fn()), B.v(a_b))),
            # R = map(\ (x, y). (x -. 1) * s + y)(zip(R', RR'))
            (
                rvar,
                B.app(
                    B.map_(
                        B.lam(
                            xy,
                            prod(NAT, NAT),
                            B.add(
                                B.mul(B.sub(B.fst(B.v(xy)), 1), B.v(s)),
                                B.snd(B.v(xy)),
                            ),
                        )
                    ),
                    B.zip_(B.v(r1), B.v(rr1)),
                ),
            ),
            (aavar, B.app(sqrt_split_fn(NAT), B.v(avar))),
            (bbvar, B.app(indexsplit_fn(NAT), B.pair(B.v(bvar), B.v(rvar)))),
        ],
        # flatten(map(merge)(zip(AA, BB)))  — the parallel recursive calls
        B.flatten_(
            B.app(
                B.map_(B.lam(q, prod(NSEQ, NSEQ), B.reccall("merge", B.v(q)))),
                B.zip_(B.v(aavar), B.v(bbvar)),
            )
        ),
    )

    body = B.lets(
        [
            (avar, B.fst(B.v(p))),
            (bvar, B.snd(B.v(p))),
        ],
        B.if_(
            B.le(B.length_(B.v(avar)), 2),
            B.app(direct_merge_fn(), B.pair(B.v(avar), B.v(bvar))),
            recursive_case,
        ),
    )
    return B.recfun("merge", p, prod(NSEQ, NSEQ), body, NSEQ)


def mergesort_recfun() -> A.RecFun:
    """``mergesort : [N] -> [N]`` (Figure 1), in map-recursive form.

    The two half-sized recursive calls are mapped over the 2-element split of
    the input, which is exactly how the paper converts the ``g`` schema of
    Section 4 into map-recursive form; parallel time O(log n log log n).
    """
    avar = B.gensym("A")
    n = B.gensym("n")
    aavar = B.gensym("AA")
    sorted_halves = B.gensym("S")
    y = B.gensym("y")
    merge = merge_recfun()

    recursive_case = B.lets(
        [
            (n, B.length_(B.v(avar))),
            # AA = split(A, [n - n/2, n/2])
            (
                aavar,
                B.split_(
                    B.v(avar),
                    B.append(
                        B.single(B.sub(B.v(n), B.div(B.v(n), 2))),
                        B.single(B.div(B.v(n), 2)),
                    ),
                ),
            ),
            # S = map(mergesort)(AA)  — the two recursive calls, in parallel
            (
                sorted_halves,
                B.app(B.map_(B.lam(y, NSEQ, B.reccall("mergesort", B.v(y)))), B.v(aavar)),
            ),
        ],
        B.app(
            merge,
            B.pair(
                B.app(lib.first(NSEQ), B.v(sorted_halves)),
                B.app(lib.last(NSEQ), B.v(sorted_halves)),
            ),
        ),
    )

    body = B.if_(B.le(B.length_(B.v(avar)), 1), B.v(avar), recursive_case)
    return B.recfun("mergesort", avar, NSEQ, body, NSEQ)


# ---------------------------------------------------------------------------
# The g-schema mergesort (Section 4's divide-and-conquer normal form)
# ---------------------------------------------------------------------------


def mergesort_def() -> "MapRecursiveDef":
    """Textbook mergesort as a :class:`~repro.maprec.schema.MapRecursiveDef`.

    Section 4's ``g`` schema with ``d(x) = [first half, second half]`` and
    ``c(r1, r2) = direct_merge(r1, r2)`` (the Figure 2 merge, which is
    correct for blocks of any size; Valiant's doubly recursive ``merge`` of
    Figure 1 only makes it *faster*).  Unlike :func:`mergesort_recfun` this
    form contains a single recursion, so the Theorem 4.2 translation — and
    from there the Section 7 compiler (:mod:`repro.compiler`) — applies to
    it directly: it is the mergesort leg of the end-to-end compilation chain.
    """
    from ..maprec.schema import MapRecursiveDef

    px = B.gensym("x")
    pred = B.lam(px, NSEQ, B.le(B.length_(B.v(px)), 1))
    bx = B.gensym("x")
    base = B.lam(bx, NSEQ, B.v(bx))

    dx, n = B.gensym("x"), B.gensym("n")
    divide = B.lam(
        dx,
        NSEQ,
        B.let(
            n,
            B.length_(B.v(dx)),
            B.split_(
                B.v(dx),
                B.append(
                    B.single(B.sub(B.v(n), B.div(B.v(n), 2))),
                    B.single(B.div(B.v(n), 2)),
                ),
            ),
        ),
    )

    cp = B.gensym("p")
    combine = B.lam(
        cp,
        prod(NSEQ, NSEQ2),
        B.app(
            direct_merge_fn(),
            B.pair(
                B.app(lib.first(NSEQ), B.snd(B.v(cp))),
                B.app(lib.last(NSEQ), B.snd(B.v(cp))),
            ),
        ),
    )
    cg = B.gensym("rs")
    combine_simple = B.lam(
        cg,
        NSEQ2,
        B.app(
            direct_merge_fn(),
            B.pair(B.app(lib.first(NSEQ), B.v(cg)), B.app(lib.last(NSEQ), B.v(cg))),
        ),
    )

    return MapRecursiveDef(
        name="mergesort_g",
        dom=NSEQ,
        cod=NSEQ,
        pred=pred,
        base=base,
        divide=divide,
        combine=combine,
        combine_simple=combine_simple,
    )


# ---------------------------------------------------------------------------
# Convenience runners (used by tests, examples and benchmarks)
#
# Evaluation depth is bounded only by memory (the engine is an explicit-stack
# machine), so these accept inputs whose recursion trees are far deeper than
# the Python recursion limit.
# ---------------------------------------------------------------------------


def run_index(values: list[int], positions: list[int]) -> list[int]:
    """Evaluate the NSC ``index`` program on Python data."""
    from ..nsc import apply_function, from_python, to_python

    out = apply_function(index_fn(NAT), from_python((list(values), list(positions))))
    return to_python(out.value)  # type: ignore[return-value]


def run_merge(a: list[int], b: list[int]):
    """Evaluate the NSC ``merge`` program; returns the evaluation Outcome."""
    from ..nsc import apply_function, from_python

    return apply_function(merge_recfun(), from_python((list(a), list(b))))


def run_mergesort(values: list[int]):
    """Evaluate the NSC ``mergesort`` program; returns the evaluation Outcome."""
    from ..nsc import apply_function, from_python

    return apply_function(mergesort_recfun(), from_python(list(values)))
