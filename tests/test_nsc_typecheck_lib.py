"""Tests for the NSC type checker (Appendix A) and the derived library (Section 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nsc import apply_function, evaluate, from_python, to_python
from repro.nsc import builder as B
from repro.nsc import lib
from repro.nsc.ast import desugar, free_vars, uses_let
from repro.nsc.pretty import pretty
from repro.nsc.typecheck import NSCTypeError, annotate_lets, infer_function, infer_term
from repro.nsc.types import BOOL, NAT, FunType, prod, seq
from repro.nsc.values import VInl, VInr, VNat, VSeq


# ---------------------------------------------------------------------------
# Type checker
# ---------------------------------------------------------------------------


def test_infer_basic_terms():
    assert infer_term(B.c(3)) == NAT
    assert infer_term(B.unit()) == infer_term(B.unit())
    assert infer_term(B.eq(1, 2)) == BOOL
    assert infer_term(B.pair(1, B.true())) == prod(NAT, BOOL)
    assert infer_term(B.nat_seq([1, 2])) == seq(NAT)
    assert infer_term(B.zip_(B.nat_seq([1]), B.nat_seq([2]))) == seq(prod(NAT, NAT))
    assert infer_term(B.split_(B.nat_seq([1]), B.nat_seq([1]))) == seq(seq(NAT))


def test_infer_functions():
    f = B.lam("x", NAT, B.add(B.v("x"), 1))
    assert infer_function(f) == FunType(NAT, NAT)
    assert infer_function(B.map_(f)) == FunType(seq(NAT), seq(NAT))
    w = B.while_(B.lam("x", NAT, B.lt(B.v("x"), 5)), f)
    assert infer_function(w) == FunType(NAT, NAT)


def test_ill_typed_programs_rejected():
    with pytest.raises(NSCTypeError):
        infer_term(B.add(B.true(), 1))
    with pytest.raises(NSCTypeError):
        infer_term(B.v("free"))
    with pytest.raises(NSCTypeError):
        infer_term(B.eq(1, B.true()))
    with pytest.raises(NSCTypeError):
        infer_term(B.fst(B.c(1)))
    with pytest.raises(NSCTypeError):
        infer_term(B.flatten_(B.nat_seq([1, 2])))
    with pytest.raises(NSCTypeError):
        infer_term(B.app(B.lam("x", NAT, B.v("x")), B.true()))
    with pytest.raises(NSCTypeError):
        # while predicate must return B
        infer_function(B.while_(B.lam("x", NAT, B.v("x")), B.lam("x", NAT, B.v("x"))))
    with pytest.raises(NSCTypeError):
        # case branches must agree
        infer_term(B.case_(B.true(), "u", B.c(1), "v", B.true()))


def test_first_order_restriction_holds_structurally():
    """Function classifications never nest inside object types."""
    f = lib.bm_route(NAT, NAT)
    ft = infer_function(f)
    # the domain/codomain are plain Types (no FunType leaks inside)
    assert not isinstance(ft.dom, FunType)
    assert not isinstance(ft.cod, FunType)


def test_annotate_and_desugar_lets():
    prog = B.let("x", B.nat_seq([1, 2, 3]), B.length_(B.v("x")))
    assert uses_let(prog)
    annotated = annotate_lets(prog)
    core = desugar(annotated)
    assert not uses_let(core)
    assert to_python(evaluate(core).value) == 3
    assert infer_term(core) == NAT


def test_free_vars():
    t = B.add(B.v("a"), B.app(B.lam("b", NAT, B.add(B.v("b"), B.v("c"))), 1))
    assert free_vars(t) == {"a", "c"}


def test_pretty_printer_mentions_constructs():
    f = lib.filter_fn(B.lam("z", NAT, B.le(B.v("z"), 3)), NAT)
    s = pretty(f)
    assert "flatten" in s and "map" in s and "case" in s


# ---------------------------------------------------------------------------
# Derived library functions (Section 3)
# ---------------------------------------------------------------------------


def test_p2_broadcast():
    f = lib.p2(NAT, NAT)
    out = apply_function(f, from_python((7, [1, 2, 3])))
    assert to_python(out.value) == [(7, 1), (7, 2), (7, 3)]
    assert infer_function(f) == FunType(prod(NAT, seq(NAT)), seq(prod(NAT, NAT)))


def test_bm_route_matches_paper_example():
    # bm_route(([u0,u1,u2,u3,u4], [3,0,2]), [a,b,c]) = [a,a,a,c,c]
    f = lib.bm_route(NAT, NAT)
    out = apply_function(f, from_python((([0, 0, 0, 0, 0], [3, 0, 2]), [10, 20, 30])))
    assert to_python(out.value) == [10, 10, 10, 30, 30]


def test_bm_route_bound_mismatch_is_error():
    from repro.nsc import NSCEvalError

    f = lib.bm_route(NAT, NAT)
    with pytest.raises(NSCEvalError):
        apply_function(f, from_python((([0, 0], [3, 0, 2]), [10, 20, 30])))


def test_selections_sigma():
    x = VSeq([VInl(VNat(1)), VInr(VNat(2)), VInr(VNat(3)), VInl(VNat(4))])
    assert to_python(apply_function(lib.sigma1(NAT, NAT), x).value) == [1, 4]
    assert to_python(apply_function(lib.sigma2(NAT, NAT), x).value) == [2, 3]


def test_filter_constant_time():
    pred = B.lam("z", NAT, B.le(B.v("z"), 5))
    f = lib.filter_fn(pred, NAT)
    small = apply_function(f, from_python([1, 9, 3]))
    big = apply_function(f, from_python(list(range(100))))
    assert to_python(small.value) == [1, 3]
    assert to_python(big.value) == list(range(6))
    assert big.time == small.time  # constant parallel time
    assert big.work > small.work


def test_positional_access():
    xs = [9, 8, 7, 6]
    assert to_python(apply_function(lib.first(NAT), from_python(xs)).value) == 9
    assert to_python(apply_function(lib.last(NAT), from_python(xs)).value) == 6
    assert to_python(apply_function(lib.tail(NAT), from_python(xs)).value) == [8, 7, 6]
    assert to_python(apply_function(lib.remove_last(NAT), from_python(xs)).value) == [9, 8, 7]
    assert to_python(apply_function(lib.nth(NAT), from_python((xs, 2))).value) == 7


def test_positional_access_constant_time():
    t_small = apply_function(lib.first(NAT), from_python([1, 2])).time
    t_large = apply_function(lib.first(NAT), from_python(list(range(200)))).time
    assert t_small == t_large


def test_first_of_empty_is_error():
    from repro.nsc import NSCEvalError

    with pytest.raises(NSCEvalError):
        apply_function(lib.first(NAT), from_python([]))


def test_reduce_add_and_iota():
    assert to_python(apply_function(lib.reduce_add(), from_python([])).value) == 0
    assert to_python(apply_function(lib.reduce_add(), from_python([5])).value) == 5
    assert to_python(apply_function(lib.reduce_add(), from_python(list(range(20)))).value) == sum(
        range(20)
    )
    assert to_python(apply_function(lib.iota(), from_python(0)).value) == []
    assert to_python(apply_function(lib.iota(), from_python(9)).value) == list(range(9))


def test_reduce_add_logarithmic_time():
    t8 = apply_function(lib.reduce_add(), from_python(list(range(8)))).time
    t64 = apply_function(lib.reduce_add(), from_python(list(range(64)))).time
    # 3 doubling levels vs 6: time should grow roughly 2x, not 8x
    assert t64 <= 3 * t8


def test_m_route():
    out = apply_function(lib.m_route(NAT), from_python(([2, 0, 3], [7, 8, 9])))
    assert to_python(out.value) == [7, 7, 9, 9, 9]


def test_is_empty_and_pairwise():
    assert to_python(apply_function(lib.is_empty(NAT), from_python([])).value) is True
    assert to_python(apply_function(lib.is_empty(NAT), from_python([1])).value) is False
    assert to_python(apply_function(lib.pairwise(NAT), from_python([1, 2, 3, 4, 5])).value) == [
        [1, 2],
        [3, 4],
        [5],
    ]


def test_proj_map():
    f = lib.proj_map(1, NAT, NAT)
    out = apply_function(f, from_python([(1, 10), (2, 20)]))
    assert to_python(out.value) == [1, 2]


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------


@given(
    st.lists(st.integers(min_value=0, max_value=30), max_size=8),
    st.lists(st.integers(min_value=0, max_value=3), max_size=8),
)
@settings(max_examples=30, deadline=None)
def test_bm_route_property(data, counts):
    counts = counts[: len(data)] + [0] * max(0, len(data) - len(counts))
    bound = [0] * sum(counts)
    expected = [d for d, c in zip(data, counts) for _ in range(c)]
    f = lib.bm_route(NAT, NAT)
    out = apply_function(f, from_python(((bound, counts), data)))
    assert to_python(out.value) == expected


@given(st.lists(st.integers(min_value=0, max_value=100), max_size=20))
@settings(max_examples=30, deadline=None)
def test_reduce_add_property(xs):
    assert to_python(apply_function(lib.reduce_add(), from_python(list(xs))).value) == sum(xs)


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=20))
@settings(max_examples=30, deadline=None)
def test_first_last_tail_consistency(xs):
    first = to_python(apply_function(lib.first(NAT), from_python(list(xs))).value)
    last = to_python(apply_function(lib.last(NAT), from_python(list(xs))).value)
    tail = to_python(apply_function(lib.tail(NAT), from_python(list(xs))).value)
    assert first == xs[0] and last == xs[-1] and tail == list(xs[1:])
    assert [first] + tail == list(xs)
