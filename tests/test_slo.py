"""SLO scheduling: AIMD convergence, cost-model admission control, isolation."""

from __future__ import annotations

import asyncio

import pytest

from repro.nsc import builder as B
from repro.nsc.lib import reduce_add
from repro.nsc.types import NAT
from repro.nsc.values import from_python
from repro.serving import AdmissionRejected, LaneController, Server, SLOConfig
from repro.serving.slo import request_size


def _affine_fn():
    x = B.gensym("x")
    return B.map_(B.lam(x, NAT, B.mod(B.add(B.mul(B.v(x), 7), 3), 101)))


# ---------------------------------------------------------------------------
# config + sizing


def test_config_validation():
    with pytest.raises(ValueError):
        SLOConfig(target_p99_ms=0)
    with pytest.raises(ValueError):
        SLOConfig(target_p99_ms=10, mode="drop")
    with pytest.raises(ValueError):
        SLOConfig(target_p99_ms=10, admit_factor=0.5)
    with pytest.raises(ValueError):
        SLOConfig(target_p99_ms=10, grow_headroom=0.0)


def test_request_size_matches_value_size():
    payload = [[1, 2], [3], []]
    assert request_size(from_python(payload)) == float(from_python(payload).size)
    assert request_size(7) == 1.0
    assert request_size([1, 2, 3]) == 4.0  # the node + three scalars


def test_request_size_deep_no_recursion_error():
    deep: list = [1]
    for _ in range(5000):
        deep = [deep]
    assert request_size(deep) == 5002.0


# ---------------------------------------------------------------------------
# the AIMD controller, in isolation


def test_controller_tightens_multiplicatively():
    cfg = SLOConfig(target_p99_ms=10.0, adjust_every=1, window=32)
    ctrl = LaneController(cfg, hard_max_batch=64, hard_max_delay_s=0.1)
    for _ in range(8):
        ctrl.observe(0.05, ok=True)  # 50ms >> 10ms target
    ctrl.note_batch(8)
    assert ctrl.maybe_adjust()
    assert ctrl.max_batch == 32
    assert ctrl.max_delay_s == pytest.approx(0.05)
    assert ctrl.tightenings == 1
    # the window was cleared: no verdict until fresh samples arrive
    ctrl.note_batch(1)
    assert not ctrl.maybe_adjust()


def test_controller_grows_additively_under_headroom():
    cfg = SLOConfig(target_p99_ms=10.0, adjust_every=1, window=32)
    ctrl = LaneController(cfg, hard_max_batch=64, hard_max_delay_s=0.1)
    ctrl.max_batch, ctrl.max_delay_s = 8, 0.01
    for _ in range(8):
        ctrl.observe(0.001, ok=True)  # 1ms << 5ms headroom
    ctrl.note_batch(8)
    assert ctrl.maybe_adjust()
    assert ctrl.max_batch == 9  # +1, not doubled
    assert ctrl.max_delay_s == pytest.approx(0.01 + 0.1 / 8.0)
    assert ctrl.growths == 1


def test_controller_holds_in_the_deadband():
    cfg = SLOConfig(target_p99_ms=10.0, adjust_every=1, grow_headroom=0.5)
    ctrl = LaneController(cfg, hard_max_batch=64, hard_max_delay_s=0.1)
    for _ in range(8):
        ctrl.observe(0.007, ok=True)  # between 5ms headroom and 10ms target
    ctrl.note_batch(8)
    assert not ctrl.maybe_adjust()
    assert ctrl.max_batch == 64 and ctrl.tightenings == ctrl.growths == 0


def test_controller_respects_floors_and_caps():
    cfg = SLOConfig(
        target_p99_ms=10.0, adjust_every=1, min_batch=4, min_delay_ms=1.0, window=8
    )
    ctrl = LaneController(cfg, hard_max_batch=8, hard_max_delay_s=0.002)
    for _ in range(10):
        ctrl.observe(0.05, ok=True)
        ctrl.note_batch(1)
        ctrl.maybe_adjust()
    assert ctrl.max_batch == 4
    assert ctrl.max_delay_s == pytest.approx(0.001)
    # and growth never exceeds the hard caps
    for _ in range(50):
        ctrl.observe(0.0001, ok=True)
        ctrl.note_batch(1)
        ctrl.maybe_adjust()
    assert ctrl.max_batch == 8
    assert ctrl.max_delay_s == pytest.approx(0.002)


def test_controller_adjusts_only_every_n_batches():
    cfg = SLOConfig(target_p99_ms=10.0, adjust_every=3)
    ctrl = LaneController(cfg, hard_max_batch=64, hard_max_delay_s=0.1)
    for _ in range(4):
        ctrl.observe(0.05, ok=True)
    ctrl.note_batch(4)
    assert not ctrl.maybe_adjust()
    ctrl.note_batch(1)
    assert not ctrl.maybe_adjust()
    ctrl.note_batch(1)
    assert ctrl.maybe_adjust()


def test_prediction_batch_is_t_max_w_sum():
    """Batched cost: T' contributes once (max), W' sums over the batch."""
    ctrl = LaneController(SLOConfig(target_p99_ms=10.0), 64, 0.002)
    ctrl.calibrated = True
    ctrl.alpha_s, ctrl.beta_s = 1e-6, 1e-8
    ctrl.t_cal, ctrl.w_cal, ctrl.size_cal = 1000, 10_000, 10.0
    value = [0] * 9  # request_size == 10 == size_cal
    single = ctrl.predict_request_s(value)
    t_part = ctrl.alpha_s * ctrl.t_cal
    batch4 = ctrl.predict_batch_s([value] * 4)
    assert batch4 == pytest.approx(t_part + 4 * (single - t_part))
    assert batch4 < 4 * single  # batching genuinely predicted cheaper


def test_uncalibrated_controller_admits_everything():
    ctrl = LaneController(SLOConfig(target_p99_ms=10.0), 64, 0.002)
    assert ctrl.predict_request_s([1, 2, 3]) is None
    assert ctrl.classify(list(range(10_000))) is None


# ---------------------------------------------------------------------------
# integration: convergence under open-loop load


def test_slo_convergence_under_open_loop_load():
    """The controller tightens until the lane's windowed p99 meets the target.

    Open-loop: requests arrive on their own clock (~2ms apart), regardless
    of completions.  The server starts with a deliberately awful
    ``max_delay_ms=100`` against a 60ms target, so the first verdicts see
    p99 ~ 100ms and must tighten; steady state under the tightened knobs
    sits far below the target.
    """
    fn = _affine_fn()
    n_requests = 220

    async def main():
        slo = SLOConfig(target_p99_ms=60.0, adjust_every=2, window=64)
        async with Server(
            max_batch=64, max_delay_ms=100.0, slo=slo, cache=None
        ) as srv:
            async def paced(i):
                await asyncio.sleep(0.002 * i)
                return await srv.submit(fn, [i, i + 1, i + 2])
            results = await asyncio.gather(*(paced(i) for i in range(n_requests)))
            lane = next(
                lane for lane in srv._lanes.values() if lane.ctrl is not None
            )
            return srv, lane.ctrl, results

    srv, ctrl, results = asyncio.run(main())
    prog_expected = [
        str((v * 7 + 3) % 101) for v in range(3)
    ]  # sanity for request 0
    assert str(results[0]).strip("[]").split(", ") == prog_expected
    # every request exact (spot-check shape: 220 values, no exceptions)
    assert len(results) == n_requests
    assert srv.metrics.completed == n_requests and srv.metrics.failed == 0
    # the controller actually tightened away from the awful initial knobs
    assert ctrl.tightenings >= 1
    assert ctrl.max_delay_s < 0.1
    # and the lane's final windowed p99 meets the SLO
    final_p99 = ctrl.metrics.p99_latency_s
    assert final_p99 is not None and final_p99 <= 0.06, final_p99


# ---------------------------------------------------------------------------
# integration: admission control


def test_admission_rejects_predicted_expensive_outlier():
    fn = reduce_add()

    async def main():
        slo = SLOConfig(target_p99_ms=50.0, admit_factor=8.0)
        async with Server(
            max_batch=32, max_delay_ms=5.0, slo=slo, cache=None
        ) as srv:
            small = [list(range(8)) for _ in range(16)]
            outs = await asyncio.gather(*(srv.submit(fn, v) for v in small))
            assert all(str(o) == "28" for o in outs)
            with pytest.raises(AdmissionRejected):
                await srv.submit(fn, list(range(500_000)))
            # siblings keep flowing, exactly
            outs = await asyncio.gather(*(srv.submit(fn, v) for v in small[:4]))
            assert all(str(o) == "28" for o in outs)
            _, body = await srv.metrics_endpoint("prometheus")
            return srv, body

    srv, body = asyncio.run(main())
    assert srv.metrics.admission_rejected == 1
    assert srv.metrics.admission_isolated == 0
    assert "repro_server_admission_rejected_total 1" in body


def test_admission_isolates_instead_when_configured():
    fn = reduce_add()
    big = list(range(50_000))

    async def main():
        slo = SLOConfig(target_p99_ms=50.0, admit_factor=8.0, mode="isolate")
        async with Server(
            max_batch=32, max_delay_ms=5.0, slo=slo, cache=None
        ) as srv:
            small = [list(range(8)) for _ in range(16)]
            outs = await asyncio.gather(*(srv.submit(fn, v) for v in small))
            assert all(str(o) == "28" for o in outs)
            out_big, *out_small = await asyncio.gather(
                srv.submit(fn, big), *(srv.submit(fn, v) for v in small[:4])
            )
            # the outlier still ran (exactly), in its own lane
            assert str(out_big) == str(sum(big))
            assert all(str(o) == "28" for o in out_small)
            iso_lanes = [k for k in srv._lanes if isinstance(k, tuple)]
            assert len(iso_lanes) == 1
            # isolation lanes never steer the siblings' controller
            assert srv._lanes[iso_lanes[0]].ctrl is None
            _, body = await srv.metrics_endpoint("json")
            return srv, body

    srv, body = asyncio.run(main())
    assert srv.metrics.admission_isolated == 1
    assert srv.metrics.admission_rejected == 0
    assert '"admission_isolated": 1' in body and '"slo_lanes"' in body


def test_slo_off_keeps_classic_scheduler():
    fn = _affine_fn()

    async def main():
        async with Server(max_batch=8, max_delay_ms=2.0, cache=None) as srv:
            outs = await asyncio.gather(
                *(srv.submit(fn, [i]) for i in range(20))
            )
            lane = next(iter(srv._lanes.values()))
            assert lane.ctrl is None
            _, body = await srv.metrics_endpoint("json")
            assert "slo_lanes" not in body
            return outs

    outs = asyncio.run(main())
    assert [str(o) for o in outs] == [f"[{(i * 7 + 3) % 101}]" for i in range(20)]


def test_calibrate_degenerate_fit_falls_back_to_work_pricing(monkeypatch):
    # a least-squares fit over collinear/noisy blocks can price W' at <= 0;
    # calibration must not accept it as-is (beta 0 means predictions never
    # scale with size — admission silently off).  The fallback prices the
    # whole measured wall on W', which is conservative for big requests.
    from repro.compiler import compile_nsc
    from repro.obs import costcheck

    monkeypatch.setattr(
        costcheck,
        "cost_check",
        lambda report: costcheck.CostReport(5.0, -1.0, 0.0, []),
    )
    cfg = SLOConfig(target_p99_ms=50.0, admit_factor=8.0)
    ctrl = LaneController(cfg, hard_max_batch=64, hard_max_delay_s=0.1)
    ctrl.calibrate(compile_nsc(_affine_fn()), [1, 2, 3, 4])
    assert ctrl.calibrated
    assert ctrl.alpha_s == 0.0 and ctrl.beta_s > 0.0
    small = ctrl.predict_request_s([1, 2, 3, 4])
    big = ctrl.predict_request_s(list(range(1000)))
    assert big > 8.0 * small  # predictions scale with request size again
    assert ctrl.classify(list(range(1000))) == "reject"
    assert ctrl.classify([1, 2, 3, 4]) is None
