"""Shard executor semantics: order, trap attribution, shard boundaries.

The contract under test: splitting a batch across worker processes changes
*nothing* observable — results come back in batch order, a trapping input is
named by its **global** batch index whatever shard it landed in, and
``return_exceptions=True`` places each error in exactly its own slot.  The
boundary cases the ISSUE calls out are covered explicitly: first/last index
of an interior shard, shards of size 1, and the empty remainder shard that
appears when ``shards`` exceeds the batch size.
"""

from __future__ import annotations

import time

import pytest

from repro.cache.store import CompileCache
from repro.compiler import BatchError, compile_nsc
from repro.compiler.batch import split_shards
from repro.nsc import builder as B
from repro.nsc.types import NAT, SeqType
from repro.serving import ShardExecutor, ShardExecutorClosed
from repro.serving import transport as _tp


def _get_fn():
    """``get(xs)``: traps unless the input is a singleton sequence."""
    x = B.gensym("x")
    return B.lam(x, SeqType(NAT), B.get_(B.v(x)))


def _affine_fn():
    x = B.gensym("x")
    return B.map_(B.lam(x, NAT, B.mod(B.add(B.mul(B.v(x), 7), 3), 101)))


@pytest.fixture(scope="module")
def executor():
    ex = ShardExecutor(n_workers=2)
    yield ex
    ex.close()


@pytest.fixture(scope="module")
def get_prog():
    return compile_nsc(_get_fn())


def test_split_shards_spans():
    assert split_shards(8, 4) == [(0, 2), (2, 2), (4, 2), (6, 2)]
    assert split_shards(10, 4) == [(0, 3), (3, 3), (6, 2), (8, 2)]
    assert split_shards(3, 4) == [(0, 1), (1, 1), (2, 1), (3, 0)]
    assert split_shards(1, 1) == [(0, 1)]
    with pytest.raises(ValueError):
        split_shards(4, 0)


def test_sharded_matches_unsharded_order(executor):
    prog = compile_nsc(_affine_fn())
    batch = [[i, (i * 7) % 23, i + 1] for i in range(37)]  # uneven spans
    expected = prog.run_batch(batch)
    for shards in (1, 2, 3, 5):
        assert executor.run_batch(prog, batch, shards=shards) == expected
    # and through the CompiledProgram front door
    assert prog.run_batch(batch, executor=executor, shards=2) == expected


# batch 8 over 4 shards -> spans (0,2)(2,2)(4,2)(6,2): 0/7 are the global
# edges, 2/3 an interior shard's first/last, 4/5 another interior pair
@pytest.mark.parametrize("bad_index", [0, 2, 3, 4, 5, 7])
def test_trap_at_shard_boundary_is_global(executor, get_prog, bad_index):
    batch = [[i] for i in range(8)]
    batch[bad_index] = []  # get([]) traps
    with pytest.raises(BatchError) as ei:
        executor.run_batch(get_prog, batch, shards=4)
    assert ei.value.index == bad_index
    assert f"batch index {bad_index}" in str(ei.value)

    results = executor.run_batch(get_prog, batch, shards=4, return_exceptions=True)
    assert len(results) == 8
    for i, res in enumerate(results):
        if i == bad_index:
            assert isinstance(res, BatchError) and res.index == bad_index
        else:
            assert res == get_prog.run(batch[i])[0]


@pytest.mark.parametrize("bad_index", [0, 1, 3])
def test_trap_in_size_one_shard(executor, get_prog, bad_index):
    batch = [[i] for i in range(4)]  # 4 over 4 shards: every shard size 1
    batch[bad_index] = [1, 2]
    with pytest.raises(BatchError) as ei:
        executor.run_batch(get_prog, batch, shards=4)
    assert ei.value.index == bad_index


def test_trap_with_empty_remainder_shard(executor, get_prog):
    batch = [[0], [1], [4, 5]]  # 3 over 4 shards: last span is empty
    results = executor.run_batch(get_prog, batch, shards=4, return_exceptions=True)
    assert len(results) == 3
    assert results[0] == get_prog.run([0])[0]
    assert results[1] == get_prog.run([1])[0]
    assert isinstance(results[2], BatchError) and results[2].index == 2


def test_two_traps_raise_smallest_global_index(executor, get_prog):
    batch = [[i] for i in range(8)]
    batch[6] = []  # second shard pair
    batch[1] = []  # first shard: must win
    with pytest.raises(BatchError) as ei:
        executor.run_batch(get_prog, batch, shards=4)
    assert ei.value.index == 1


def test_batch_error_pickles_exactly():
    import pickle

    err = BatchError.at(17, "division by zero")
    back = pickle.loads(pickle.dumps(err))
    assert isinstance(back, BatchError)
    assert back.index == 17
    assert back.cause_text == "division by zero"
    assert str(back) == str(err)
    rebased = back.rebased(100)
    assert rebased.index == 117
    assert "batch index 117" in str(rebased)


def test_executor_serves_multiple_programs(executor):
    affine = compile_nsc(_affine_fn())
    getter = compile_nsc(_get_fn())
    for _ in range(3):  # alternate so the per-worker caches both hit
        batch_a = [[1, 2, 3], [4, 5, 6]]
        assert executor.run_batch(affine, batch_a, shards=2) == affine.run_batch(batch_a)
        batch_g = [[7], [8]]
        assert executor.run_batch(getter, batch_g, shards=2) == getter.run_batch(batch_g)


def test_empty_batch(executor, get_prog):
    assert executor.run_batch(get_prog, [], shards=4) == []


def test_closed_executor_rejects():
    ex = ShardExecutor(n_workers=1)
    ex.close()
    ex.close()  # idempotent
    with pytest.raises(ShardExecutorClosed):
        ex.run_batch(compile_nsc(_get_fn()), [[1]])


def test_dead_worker_with_multiple_pending_spans(get_prog):
    # regression: with more shards than workers, a dead worker owns several
    # spans of one task; ALL of them must be reclaimed before the respawn
    # (reclaiming only the first used to leave the rest pending forever,
    # because the respawned process passes the is_alive() check)
    ex = ShardExecutor(n_workers=1)
    try:
        batch = [[i] for i in range(4)]
        expected = get_prog.run_batch(batch)
        ex._workers[0].process.terminate()
        ex._workers[0].process.join(timeout=5)
        assert ex.run_batch(get_prog, batch, shards=2) == expected
        assert ex.run_batch(get_prog, batch, shards=2) == expected  # respawned
    finally:
        ex.close()


def test_survives_worker_death(executor, get_prog):
    # kill one worker outright: the executor must detect the dead process,
    # recompute its spans in-process, and respawn for the next batch
    victim = executor._workers[0]
    victim.process.terminate()
    victim.process.join(timeout=5)
    batch = [[i] for i in range(6)]
    expected = get_prog.run_batch(batch)
    assert executor.run_batch(get_prog, batch, shards=2) == expected
    assert all(w.process.is_alive() for w in executor._workers)
    # and the respawned worker serves the following batch normally
    assert executor.run_batch(get_prog, batch, shards=2) == expected


# -- zero-copy transports -----------------------------------------------------


@pytest.mark.parametrize("transport", ["shm", "oob", "pickle"])
def test_transports_agree_including_traps(transport, get_prog):
    ex = ShardExecutor(n_workers=2, transport=transport)
    try:
        batch = [[i] for i in range(8)]
        batch[3] = []  # traps in an interior shard
        results = ex.run_batch(get_prog, batch, shards=4, return_exceptions=True)
        for i, res in enumerate(results):
            if i == 3:
                assert isinstance(res, BatchError) and res.index == 3
            else:
                assert res == get_prog.run(batch[i])[0]
        with pytest.raises(BatchError) as ei:
            ex.run_batch(get_prog, batch, shards=4)
        assert ei.value.index == 3
        assert ex._ledger.live() == []  # no batch leaves a live segment
    finally:
        ex.close()
    assert ex.leaked_segments == []


@pytest.mark.skipif(not _tp.shm_available(), reason="no shared memory here")
def test_shm_segments_released_on_close(get_prog):
    # the leak check the ISSUE demands: after any mix of clean batches,
    # traps and a worker death, close() finds nothing still referenced
    ex = ShardExecutor(n_workers=2, transport="shm")
    batch = [[i] for i in range(12)]
    ex.run_batch(get_prog, batch, shards=3)
    batch[5] = []
    ex.run_batch(get_prog, batch, shards=3, return_exceptions=True)
    ex._workers[0].process.terminate()
    ex._workers[0].process.join(timeout=5)
    ex.run_batch(get_prog, batch, shards=3, return_exceptions=True)
    assert ex._ledger.live() == []
    ex.close()
    assert ex.leaked_segments == []


def test_kill_during_result_put_does_not_wedge():
    # regression: workers used to share ONE result queue, so a worker killed
    # while its feeder thread was mid-put left a partial frame every later
    # read would block on.  Per-worker queues mean a dead worker's queue is
    # simply never read.  Provoke the old failure: park an oversized result
    # (far beyond the 64KB pipe buffer) in a worker's feeder, kill it
    # mid-write, then prove the executor still serves.
    from repro.serving.shard import _KIND_SPAN

    ex = ShardExecutor(n_workers=2, transport="pickle")
    try:
        prog = compile_nsc(_affine_fn())
        key, blob, _digest = ex._blob_for(prog)
        victim = ex._workers[0]
        big = [list(range(60_000))]  # result pickle ~ several hundred KB
        victim.in_q.put(
            (_KIND_SPAN, 10**9, 0, key, blob, None, ("pickle", big), 1,
             10_000_000, None)
        )
        time.sleep(1.0)  # let the worker compute and block writing the result
        victim.process.kill()
        victim.process.join(timeout=5)
        batch = [[i, i + 1] for i in range(8)]
        expected = prog.run_batch(batch)
        assert ex.run_batch(prog, batch, shards=2) == expected
        assert all(w.process.is_alive() for w in ex._workers)
        assert ex.run_batch(prog, batch, shards=2) == expected
    finally:
        ex.close()


# -- compile-cache cold sends -------------------------------------------------


def test_artifact_evicted_between_send_and_read(tmp_path):
    # regression: the optimistic digest-only send assumes the worker can read
    # the artifact the parent just wrote.  Evict it in between: every span's
    # need_prog must resolve (blob resent), the re-ship is counted ONCE per
    # worker (not once per span), and none of it counts as a cache warm.
    cache = CompileCache(str(tmp_path))
    ex = ShardExecutor(n_workers=1, cache=cache)
    try:
        prog = compile_nsc(_affine_fn(), cache=None)
        batch = [[1, 2, 3], [4, 5], [6], [7, 8, 9]]
        expected = prog.run_batch(batch)
        ex._blob_for(prog)  # writes the artifact and memoizes the digest
        for p in tmp_path.rglob("*"):
            if p.is_file():
                p.unlink()  # the "LRU eviction" between send and read
        assert ex.run_batch(prog, batch, shards=4) == expected
        stats = ex._workers[0].stats
        assert stats["need_prog"] == 1, "program re-ship double-counted"
        assert stats["cache_warm"] == 0, "a cold resend is not a cache warm"
        # the blob landed: later batches need no further round-trips
        assert ex.run_batch(prog, batch, shards=4) == expected
        assert ex._workers[0].stats["need_prog"] == 1
    finally:
        ex.close()


def test_warm_preloads_worker_caches(tmp_path):
    cache = CompileCache(str(tmp_path))
    ex = ShardExecutor(n_workers=2, cache=cache)
    try:
        prog = compile_nsc(_affine_fn(), cache=None)
        assert ex.warm([prog]) == 2  # one artifact load per worker
        batch = [[1, 2], [3, 4], [5, 6], [7, 8]]
        assert ex.run_batch(prog, batch, shards=2) == prog.run_batch(batch)
        assert sum(w.stats["need_prog"] for w in ex._workers) == 0
        assert sum(w.stats["warm_loads"] for w in ex._workers) == 2
        # the digest-only cold sends were served entirely from the warmed store
        assert sum(w.stats["cache_warm"] for w in ex._workers) == 2
    finally:
        ex.close()
