"""Deep-program regression suite for the iterative evaluation engine.

Every program here crashes (RecursionError) or corrupts interpreter state on
the seed's recursive tree-walking evaluator, whose call depth was
``AST depth x loop/recursion depth`` and which papered over that with an
import-time ``sys.setrecursionlimit(100_000)``.  The iterative engine keeps
its frames on the heap, so all of these run with the *default* Python
recursion limit (1000) in force — pinned by the fixture below.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.nsc import apply_function, evaluate, from_python, to_python
from repro.nsc import builder as B
from repro.nsc.types import NAT, seq

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture()
def default_recursion_limit():
    """Force the stock CPython limit so the engine cannot lean on a raised one."""
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(1000)
    try:
        yield
    finally:
        sys.setrecursionlimit(old)


def test_import_does_not_touch_recursion_limit():
    """Importing the evaluator must not mutate global interpreter state.

    Runs in a subprocess because this test process has long imported the
    module; the seed's import-time ``sys.setrecursionlimit(100_000)`` is gone.
    """
    code = (
        "import sys; base = sys.getrecursionlimit(); "
        "import repro.nsc.eval; "
        "assert sys.getrecursionlimit() == base, sys.getrecursionlimit()"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env={"PYTHONPATH": SRC_DIR, "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr


def test_while_loop_50k_iterations(default_recursion_limit):
    pred = B.lam("x", NAT, B.gt(B.v("x"), 0))
    body = B.lam("x", NAT, B.sub(B.v("x"), 1))
    out = apply_function(B.while_(pred, body), from_python(50_000))
    assert to_python(out.value) == 0
    # one iteration = 1 step + pred + body; T grows linearly in the count
    assert out.time > 50_000


def test_nested_let_chain_depth_5000(default_recursion_limit):
    depth = 5_000
    bindings = [("x0", B.c(1))]
    for i in range(1, depth):
        bindings.append((f"x{i}", B.add(B.v(f"x{i-1}"), 1)))
    prog = B.lets(bindings, B.v(f"x{depth-1}"))
    out = evaluate(prog)
    assert to_python(out.value) == depth
    assert out.time >= depth


def test_unbalanced_maprec_tree_depth_2000(default_recursion_limit):
    # f(n) = if n <= 1 then n else first(r) + last(r)
    #        where r = map(f)([1, n - 1])
    # — an unbalanced tree: one leaf child and one deep child per level.
    from repro.nsc import lib

    r = B.gensym("r")
    f = B.recfun(
        "f",
        "n",
        NAT,
        B.if_(
            B.le(B.v("n"), 1),
            B.v("n"),
            B.let(
                r,
                B.app(
                    B.map_(B.lam("m", NAT, B.reccall("f", B.v("m")))),
                    B.append(B.single(B.c(1)), B.single(B.sub(B.v("n"), 1))),
                ),
                B.add(B.app(lib.first(NAT), B.v(r)), B.app(lib.last(NAT), B.v(r))),
            ),
        ),
        NAT,
    )
    out = apply_function(f, from_python(2_000))
    # every level contributes the leaf 1; the base case contributes 1
    assert to_python(out.value) == 2_000
    # the two children run in parallel: T is linear in depth, not in 2^depth
    assert out.time < 200_000


def test_quicksort_on_sorted_input_deep_tree(default_recursion_limit):
    """Sorted input degenerates quicksort's tree to depth n (the E3 worst case)."""
    from repro.algorithms.quicksort import run_quicksort_sorted

    out = run_quicksort_sorted(150)
    assert to_python(out.value) == list(range(150))


def test_deep_while_matches_shallow_cost_shape(default_recursion_limit):
    """T/W of a counting loop stay exactly linear: no hidden re-charging at depth."""
    pred = B.lam("x", NAT, B.gt(B.v("x"), 0))
    body = B.lam("x", NAT, B.sub(B.v("x"), 1))
    w = B.while_(pred, body)
    small = apply_function(w, from_python(100))
    big = apply_function(w, from_python(10_000))
    per_iter_t = (big.time - small.time) / (10_000 - 100)
    per_iter_w = (big.work - small.work) / (10_000 - 100)
    # 13 T-units and 26 W-units per iteration for this loop shape
    assert per_iter_t == pytest.approx(13.0)
    assert per_iter_w == pytest.approx(26.0)
