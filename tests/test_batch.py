"""Tests for the batched serving engine and the block-fused executor.

Four layers:

* **batch differential battery** — for every program in the 38-run
  ``compiler/difftest.py`` battery, ``run_batch([x1..xk])`` returns exactly
  the values of k independent ``run(xi)`` calls (heterogeneous input sizes
  included — each suite entry batches all its inputs together);
* **fusion parity** — the block-fused untraced plan produces T/W totals and
  final registers bit-identical to the per-instruction plan and the traced
  interpreter, at opt levels 0 and 2, including mid-block error paths;
* **edge cases** — empty batch, singleton batch, unit-typed domain (the
  dedicated batch-template register carries the width when the input has no
  value fields), heterogeneous sizes;
* **trap semantics** — a trapping input makes ``run_batch`` raise
  :class:`BatchError` naming the failing batch index; with
  ``return_exceptions=True`` the error is returned in place and sibling
  results are exactly the independent per-input values (the fallback loop
  runs each input on a fresh machine).
"""

import numpy as np
import pytest

from repro.bvram import BVRAM, BVRAMError
from repro.bvram.fuse import build_fused_plan
from repro.bvram.machine import _BLOCK
from repro.bvram import isa
from repro.compiler import BatchError, CompileError, compile_nsc
from repro.compiler.batch import batched_program
from repro.compiler.codegen import decode_batch, encode_batch, field_count
from repro.compiler.difftest import suite
from repro.nsc import builder as B, from_python
from repro.nsc.types import NAT, UNIT, prod, seq
from repro.nsc.values import nat_seq_value


# ---------------------------------------------------------------------------
# Batch differential battery
# ---------------------------------------------------------------------------


def test_run_batch_matches_independent_runs_across_battery():
    for name, fn, args in suite():
        prog = compile_nsc(fn)
        expected = [prog.run(a)[0] for a in args]
        got = prog.run_batch(args)
        assert got == expected, name
        # the batched path actually ran: the twin compiled (not the fallback
        # loop) and the batched execution did not degrade to it either
        twin = batched_program(prog)
        assert twin is not None and twin.batch_axis, name
        assert batched_program(prog) is twin  # compiled once, cached
        assert getattr(prog, "_batch_fallback_error", None) is None, name


def test_run_batch_on_batch_axis_program_runs_in_place():
    fn = B.map_(B.lam("x", NAT, B.mul(B.v("x"), B.v("x"))))
    twin = compile_nsc(fn, batch_axis=True)
    assert batched_program(twin) is twin
    assert twin.run_batch([[1, 2], [3]]) == [from_python([1, 4]), from_python([9])]
    # a batch_axis program still runs single inputs (batch of one)
    value, _ = twin.run([2, 3])
    assert value == from_python([4, 9])


def test_batch_axis_program_matches_width1_on_battery_subset():
    for name, fn, args in suite()[:8]:
        p1 = compile_nsc(fn)
        pb = compile_nsc(fn, batch_axis=True)
        for arg in args:
            assert p1.run(arg)[0] == pb.run(arg)[0], name


# ---------------------------------------------------------------------------
# Fusion parity: fused == unfused == traced, bit for bit
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("opt_level", [0, 2])
def test_fused_totals_equal_unfused_across_battery(opt_level):
    for name, fn, args in suite():
        prog = compile_nsc(fn, eps=0.5, opt_level=opt_level)
        for arg in args:
            inputs = prog.encode_input(arg)
            runs = []
            for fuse in (True, False):
                m = BVRAM(prog.n_registers)
                runs.append(m.run(prog, inputs, record_trace=False, fuse=fuse))
            fused, unfused = runs
            assert (fused.time, fused.work) == (unfused.time, unfused.work), name
            assert all(
                (a == b).all() for a, b in zip(fused.registers, unfused.registers)
            ), name


def test_fused_totals_equal_traced_on_mid_block_error():
    # straight-line program whose 4th instruction overflows: the fused block
    # must flush the totals of the 3 completed instructions, exactly like
    # the traced loop (the raising instruction is not charged)
    prog = isa.Program(
        instructions=[
            isa.LoadConst(dst=1, value=2**62),
            isa.LoadConst(dst=2, value=2**62),
            isa.Arith(dst=3, op="+", a=1, b=2),  # 2**63 overflows int64 naturals
            isa.Halt(),
        ],
        n_registers=4,
        n_inputs=1,
        n_outputs=1,
    )
    machines = []
    for record_trace, fuse in ((True, False), (False, True), (False, False)):
        m = BVRAM(4)
        with pytest.raises(BVRAMError, match="overflow"):
            m.run(prog, [[0]], record_trace=record_trace, fuse=fuse)
        machines.append(m)
    traced, fused, unfused = machines
    assert traced.time == 2  # the two load_consts
    assert (traced.time, traced.work) == (fused.time, fused.work)
    assert (traced.time, traced.work) == (unfused.time, unfused.work)


def test_fused_plan_blocks_break_at_jump_targets():
    fn = B.lam(
        "x", NAT, B.app(B.while_(B.lam("p", NAT, B.lt(B.v("p"), 10)),
                                 B.lam("q", NAT, B.add(B.v("q"), 1))), B.v("x"))
    )
    prog = compile_nsc(fn)
    plan = build_fused_plan(prog)
    # fusion actually happened: fewer entries than instructions, and at
    # least one multi-instruction block
    assert len(plan) < len(prog.instructions)
    assert any(kind == _BLOCK and extra > 1 for kind, _, extra in plan)
    # every instruction is covered exactly once
    assert sum(extra if kind == _BLOCK else 1 for kind, _, extra in plan) == len(
        prog.instructions
    )


def test_fused_respects_max_steps():
    x, y = B.gensym("x"), B.gensym("y")
    diverge = B.while_(B.lam(x, NAT, B.true()), B.lam(y, NAT, B.v(y)))
    prog = compile_nsc(B.lam("z", NAT, B.app(diverge, B.v("z"))))
    m = BVRAM(prog.n_registers)
    with pytest.raises(BVRAMError, match="exceeded"):
        m.run(prog, prog.encode_input(1), max_steps=500, record_trace=False, fuse=True)


@pytest.mark.parametrize("max_steps", [1, 3, 5, 7])
def test_fused_max_steps_parity_mid_block(max_steps):
    # straight-line program longer than the budget: every mode must stop at
    # (and charge) exactly the same instruction, even when the budget
    # expires in the middle of a fused block
    instrs = [isa.LoadConst(dst=1, value=i) for i in range(6)] + [isa.Halt()]
    prog = isa.Program(instructions=instrs, n_registers=2, n_inputs=1, n_outputs=1)
    machines = []
    for record_trace, fuse in ((True, False), (False, True), (False, False)):
        m = BVRAM(2)
        try:
            m.run(prog, [[0]], max_steps=max_steps, record_trace=record_trace, fuse=fuse)
            outcome = "done"
        except BVRAMError:
            outcome = "exceeded"
        machines.append((m, outcome))
    (traced, o_t), (fused, o_f), (unfused, o_u) = machines
    assert o_t == o_f == o_u
    assert (traced.time, traced.work) == (fused.time, fused.work)
    assert (traced.time, traced.work) == (unfused.time, unfused.work)
    assert all(
        (a == b).all() for a, b in zip(traced.registers, fused.registers)
    )


# ---------------------------------------------------------------------------
# Edge cases
# ---------------------------------------------------------------------------


def _square_map():
    return B.map_(B.lam("x", NAT, B.mul(B.v("x"), B.v("x"))))


def test_empty_batch():
    prog = compile_nsc(_square_map())
    assert prog.run_batch([]) == []


def test_singleton_batch():
    prog = compile_nsc(_square_map())
    assert prog.run_batch([[3, 4]]) == [from_python([9, 16])]


def test_heterogeneous_input_sizes():
    prog = compile_nsc(_square_map())
    batch = [[], [5], list(range(100)), [7, 7, 7]]
    assert prog.run_batch(batch) == [prog.run(a)[0] for a in batch]


def test_unit_domain_batch_uses_template_register():
    prog = compile_nsc(B.lam("u", UNIT, B.c(7)))
    assert field_count(prog.dom) == 0  # no value fields: width rides the template
    assert prog.run_batch([None, None, None]) == [from_python(7)] * 3


def test_pair_and_seq_domain_batch():
    x = B.gensym("x")
    fn = B.lam(
        x,
        prod(NAT, seq(NAT)),
        B.app(B.map_(B.lam("y", NAT, B.add(B.v("y"), B.fst(B.v(x))))), B.snd(B.v(x))),
    )
    prog = compile_nsc(fn)
    batch = [(10, [1, 2, 3]), (0, []), (5, [9])]
    assert prog.run_batch(batch) == [prog.run(a)[0] for a in batch]


def test_fallback_loop_when_no_source_fn():
    prog = compile_nsc(_square_map())
    prog.source_fn = None  # e.g. a program deserialized without its NSC source
    assert batched_program(prog) is None
    batch = [[2], [3, 4]]
    assert prog.run_batch(batch) == [prog.run(a)[0] for a in batch]


# ---------------------------------------------------------------------------
# Trap semantics
# ---------------------------------------------------------------------------


def _div_by_input():
    return B.lam("x", NAT, B.div(100, B.v("x")))


def test_trap_names_failing_batch_index():
    prog = compile_nsc(_div_by_input())
    with pytest.raises(BatchError, match="batch index 2") as exc_info:
        prog.run_batch([5, 10, 0, 4])
    assert exc_info.value.index == 2
    assert isinstance(exc_info.value, BVRAMError)


def test_omega_trap_names_failing_batch_index():
    x = B.gensym("x")
    fn = B.lam(x, NAT, B.if_(B.gt(B.v(x), 0), B.v(x), B.error(NAT)))
    prog = compile_nsc(fn)
    with pytest.raises(BatchError, match="batch index 1"):
        prog.run_batch([3, 0, 7])


def test_trap_does_not_corrupt_sibling_results():
    prog = compile_nsc(_div_by_input())
    out = prog.run_batch([5, 0, 4], return_exceptions=True)
    assert out[0] == from_python(20)
    assert out[2] == from_python(25)
    assert isinstance(out[1], BatchError) and out[1].index == 1
    # and the trap did not poison later batches on the same program
    assert prog.run_batch([10, 20]) == [from_python(10), from_python(5)]


# ---------------------------------------------------------------------------
# Marshalling: encode_batch / decode_batch round trips
# ---------------------------------------------------------------------------


def test_encode_batch_matches_encode_values_layout():
    from repro.compiler.codegen import encode_values

    t = seq(NAT)
    vals = [from_python(x) for x in ([1, 2, 3], [], [9])]
    arrays = encode_batch(vals, t)
    lists = encode_values(vals, t)
    assert len(arrays) == len(lists)
    for a, l in zip(arrays, lists):
        assert isinstance(a, np.ndarray) and a.dtype == np.int64
        assert a.tolist() == l


def test_encode_batch_round_trip_nested():
    t = seq(seq(NAT))
    vals = [from_python(x) for x in ([[1], [2, 3]], [], [[], [4, 5, 6]])]
    fields = encode_batch(vals, t)
    assert decode_batch(fields, t, len(vals)) == vals


def test_encode_batch_type_errors():
    with pytest.raises(CompileError, match="expected a natural"):
        encode_batch([from_python([1, 2])], NAT)
    with pytest.raises(CompileError, match="expected a sequence"):
        encode_batch([from_python(3)], seq(NAT))
    with pytest.raises(CompileError, match="expected a natural"):
        encode_batch([nat_seq_value([1]), from_python([(1, 2)])], seq(NAT))


# ---------------------------------------------------------------------------
# Machine accessor satellites
# ---------------------------------------------------------------------------


def test_register_and_output_accessors():
    m = BVRAM(2)
    m.load(0, [3, 1, 2])
    assert m.register(0) == [3, 1, 2]
    assert all(isinstance(x, int) for x in m.register(0))
    arr = m.register_array(0)
    assert isinstance(arr, np.ndarray) and arr is m.registers[0]
    prog = compile_nsc(_square_map())
    _, run = prog.run([2, 3])
    assert run.output(1) == run.registers[1].tolist()
    assert isinstance(run.output_array(0), np.ndarray)
