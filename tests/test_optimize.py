"""Tests for the optimizing pipeline (repro.compiler.optimize + fast path).

Four layers of guarantees:

* **golden IR snapshots** — each NSA pass does exactly what its name says on
  small programs (pinned as pretty-printed before/after text);
* **refinement** — a hypothesis property over randomly built NSC programs:
  ``opt_level 0`` and ``opt_level 2`` compute identical values, and the
  optimized program's measured ``T'``/``W'`` never exceed the naive ones;
* **mode equivalence** — the untraced fast path produces bit-identical
  ``T``/``W`` totals and final registers to the traced mode;
* **trap preservation** — semantic partiality (division by zero, ``get``,
  ``zip``, Omega) survives every pass, including when the trapping binding
  is dead.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvram import BVRAM, BVRAMError
from repro.compiler import CompileError, compile_nsc
from repro.compiler.difftest import run_differential, suite
from repro.compiler.nsa import hoist_projections, lower_function
from repro.compiler.optimize import (
    dead_code_elimination,
    fold_and_cse,
    format_block,
    optimize_block,
)
from repro.nsc import apply_function, builder as B, from_python
from repro.nsc.eval import NSCEvalError
from repro.nsc.types import NAT, seq


# ---------------------------------------------------------------------------
# Golden IR snapshots: one per pass
# ---------------------------------------------------------------------------


def test_golden_constant_folding():
    fn = B.lam("x", NAT, B.mul(B.add(2, 3), B.v("x")))
    block = lower_function(fn)
    assert format_block(block) == (
        "block(%0:N):\n"
        "  %1 = const 2\n"
        "  %2 = const 3\n"
        "  %3 = bin + %1 %2\n"
        "  %4 = bin * %3 %0\n"
        "  -> %4"
    )
    assert format_block(fold_and_cse(block)) == (
        "block(%0:N):\n"
        "  %1 = const 2\n"
        "  %2 = const 3\n"
        "  %3 = const 5\n"
        "  %4 = bin * %3 %0\n"
        "  -> %4"
    )


def test_golden_copy_propagation_through_pairs():
    fn = B.lam(
        "x",
        NAT,
        B.let(
            "p",
            B.pair(B.v("x"), B.add(B.v("x"), 1)),
            B.add(B.fst(B.v("p")), B.snd(B.v("p"))),
        ),
    )
    block = lower_function(fn)
    assert format_block(fold_and_cse(block)) == (
        "block(%0:N):\n"
        "  %1 = const 1\n"
        "  %2 = bin + %0 %1\n"
        "  %3 = pair %0 %2\n"
        "  %4 = bin + %0 %2\n"
        "  -> %4"
    )


def test_golden_cse():
    fn = B.lam("x", NAT, B.add(B.mul(B.v("x"), B.v("x")), B.mul(B.v("x"), B.v("x"))))
    block = lower_function(fn)
    assert format_block(fold_and_cse(block)) == (
        "block(%0:N):\n"
        "  %1 = bin * %0 %0\n"
        "  %2 = bin + %1 %1\n"
        "  -> %2"
    )


def test_golden_dce_keeps_semantic_traps():
    # the dead `x + 1` is dropped; the dead `1 / x` (division by zero when
    # x = 0) must survive — its trap is part of the program's meaning
    fn = B.lam(
        "x",
        NAT,
        B.let("dead", B.add(B.v("x"), 1), B.let("trap", B.div(1, B.v("x")), B.v("x"))),
    )
    block = lower_function(fn)
    assert format_block(dead_code_elimination(block)) == (
        "block(%0:N):\n"
        "  %1 = const 1\n"
        "  %2 = bin / %1 %0\n"
        "  -> %0"
    )


def test_golden_full_pipeline_in_map_body():
    fn = B.map_(B.lam("y", NAT, B.add(B.mul(B.v("y"), 1), B.sub(B.v("y"), 0))))
    block = hoist_projections(lower_function(fn))
    assert format_block(optimize_block(block)) == (
        "block(%0:[N]):\n"
        "  %1 = map %0 {\n"
        "    block(%2:N):\n"
        "      %3 = bin + %2 %2\n"
        "      -> %3\n"
        "  }\n"
        "  -> %1"
    )


# ---------------------------------------------------------------------------
# Hypothesis: opt_level 2 refines opt_level 0 on random programs
# ---------------------------------------------------------------------------


def _nat_exprs():
    """Strategy for NAT-typed expression trees over the variable ``x``.

    Division/modulo use a non-zero constant divisor so generated programs
    are total — the refinement property then demands *exact* agreement.
    """
    leaf = st.one_of(st.integers(0, 9).map(B.c), st.just(B.v("x")))

    def extend(children):
        binop = st.builds(
            lambda f, a, b: f(a, b),
            st.sampled_from([B.add, B.sub, B.mul, B.nat_min, B.nat_max]),
            children,
            children,
        )
        divmod_ = st.builds(
            lambda f, a, d: f(a, B.c(d)),
            st.sampled_from([B.div, B.mod]),
            children,
            st.integers(1, 7),
        )
        cond = st.builds(
            lambda c, k, a, b: B.if_(B.lt(c, B.c(k)), a, b),
            children,
            st.integers(0, 20),
            children,
            children,
        )
        return st.one_of(binop, divmod_, cond)

    return st.recursive(leaf, extend, max_leaves=8)


@settings(max_examples=40, deadline=None)
@given(
    expr=_nat_exprs(),
    xs=st.lists(st.integers(0, 50), min_size=0, max_size=12),
    eps=st.sampled_from([1.0, 0.5]),
)
def test_opt2_refines_opt0_on_random_map_programs(expr, xs, eps):
    fn = B.map_(B.lam("x", NAT, expr))
    p0 = compile_nsc(fn, eps=eps, opt_level=0)
    p2 = compile_nsc(fn, eps=eps, opt_level=2)

    def outcome(prog):
        try:
            return prog.run(xs)
        except BVRAMError as e:
            return e

    r0, r2 = outcome(p0), outcome(p2)
    if isinstance(r2, BVRAMError):
        # the optimizer may remove resource faults, never introduce one
        assert isinstance(r0, BVRAMError), f"opt2 trapped but opt0 succeeded: {r2}"
        return
    assert not isinstance(r0, BVRAMError), "opt0 trapped but opt2 succeeded on a total op"
    v0, run0 = r0
    v2, run2 = r2
    assert v0 == v2
    assert run2.time <= run0.time, "optimization grew T'"
    assert run2.work <= run0.work, "optimization grew W'"
    # and both agree with the interpreter
    assert v0 == apply_function(fn, from_python(xs)).value


@settings(max_examples=25, deadline=None)
@given(
    expr=_nat_exprs(),
    x=st.integers(0, 100),
)
def test_opt2_refines_opt0_on_random_scalar_programs(expr, x):
    fn = B.lam("x", NAT, expr)
    p0 = compile_nsc(fn, eps=0.5, opt_level=0)
    p2 = compile_nsc(fn, eps=0.5, opt_level=2)
    v0, run0 = p0.run(x)
    v2, run2 = p2.run(x)
    assert v0 == v2 == apply_function(fn, from_python(x)).value
    assert run2.time <= run0.time
    assert run2.work <= run0.work


# ---------------------------------------------------------------------------
# Mode equivalence: untraced fast path == traced mode, bit for bit
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("opt_level", [0, 2])
@pytest.mark.parametrize("fuse", [True, False])
def test_untraced_totals_match_traced(opt_level, fuse):
    from repro.algorithms.quicksort import quicksort_def
    from repro.maprec.translate import translate

    cases = [
        (B.map_(B.lam("x", NAT, B.mul(B.v("x"), B.v("x")))), [3, 1, 4, 1, 5]),
        (translate(quicksort_def()), [5, 3, 8, 1, 9, 2, 7, 4, 6, 0]),
    ]
    for fn, arg in cases:
        prog = compile_nsc(fn, eps=0.5, opt_level=opt_level)
        v_t, r_t = prog.run(arg, trace=True)
        m = BVRAM(prog.n_registers)
        r_u = m.run(prog, prog.encode_input(arg), record_trace=False, fuse=fuse)
        v_u = prog.decode_output(r_u.registers)
        assert v_t == v_u
        assert (r_t.time, r_t.work) == (r_u.time, r_u.work)
        assert all((a == b).all() for a, b in zip(r_t.registers, r_u.registers))
        assert len(r_t.trace) == r_t.time and r_u.trace == []


@pytest.mark.parametrize("fuse", [True, False])
def test_untraced_totals_match_traced_on_error_paths(fuse):
    x = B.gensym("x")
    fn = B.lam(x, seq(NAT), B.get_(B.v(x)))  # get of a non-singleton traps
    prog = compile_nsc(fn)
    machines = []
    for record_trace in (True, False):
        m = BVRAM(prog.n_registers)
        with pytest.raises(BVRAMError, match="length != 1"):
            m.run(
                prog, prog.encode_input([1, 2, 3]), record_trace=record_trace, fuse=fuse
            )
        machines.append(m)
    traced, untraced = machines
    assert (traced.time, traced.work) == (untraced.time, untraced.work)


def test_untraced_respects_max_steps():
    x, y = B.gensym("x"), B.gensym("y")
    diverge = B.while_(B.lam(x, NAT, B.true()), B.lam(y, NAT, B.v(y)))
    prog = compile_nsc(B.lam("z", NAT, B.app(diverge, B.v("z"))))
    with pytest.raises(BVRAMError, match="exceeded"):
        prog.run(1, max_steps=500)


# ---------------------------------------------------------------------------
# Trap parity across opt levels
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("opt_level", [0, 1, 2])
def test_semantic_traps_survive_optimization(opt_level):
    x = B.gensym("x")
    cases = [
        (B.lam(x, NAT, B.let("dead", B.div(1, B.v(x)), B.v(x))), 0),  # dead div
        (B.lam(x, seq(NAT), B.get_(B.v(x))), [1, 2]),
        (B.lam(x, NAT, B.error(NAT)), 3),
    ]
    for fn, arg in cases:
        with pytest.raises(NSCEvalError):
            apply_function(fn, from_python(arg))
        prog = compile_nsc(fn, opt_level=opt_level)
        with pytest.raises(BVRAMError):
            prog.run(arg)


@pytest.mark.parametrize("opt_level", [0, 1, 2])
def test_untaken_branch_still_does_not_trap(opt_level):
    x = B.gensym("x")
    fn = B.lam(x, NAT, B.if_(B.gt(B.v(x), 0), B.v(x), B.div(B.v(x), 0)))
    value, _ = compile_nsc(fn, opt_level=opt_level).run(5)
    assert value == from_python(5)


# ---------------------------------------------------------------------------
# Differential battery across opt levels + emitted-code passes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("opt_level", [0, 1])
def test_differential_subset_at_lower_opt_levels(opt_level):
    # the full battery runs at the default level in test_compiler.py; here a
    # representative slice re-runs at the other levels
    for name, fn, args in suite()[:6]:
        for arg in args[:1]:
            rec = run_differential(name, fn, arg, eps=0.5, opt_level=opt_level)
            assert rec.ok, f"{name} at opt_level {opt_level}: {rec}"
            assert rec.opt_level == opt_level


def test_opt2_shrinks_t_w_and_registers_on_the_whole_suite():
    for name, fn, args in suite():
        p0 = compile_nsc(fn, eps=0.5, opt_level=0)
        p2 = compile_nsc(fn, eps=0.5, opt_level=2)
        assert len(p2) <= len(p0), name
        assert p2.n_registers <= p0.n_registers, name
        for arg in args:
            try:
                _, r0 = p0.run(arg)
            except BVRAMError:
                continue
            _, r2 = p2.run(arg)
            assert r2.time <= r0.time, name
            assert r2.work <= r0.work, name


def test_register_reuse_emits_valid_programs():
    from repro.algorithms.mergesort import mergesort_def
    from repro.maprec.translate import translate

    prog = compile_nsc(translate(mergesort_def()), eps=0.5, opt_level=2)
    prog.validate()
    naive = compile_nsc(translate(mergesort_def()), eps=0.5, opt_level=0)
    # the linear scan must reclaim a substantial share of the SSA registers
    assert prog.n_registers < naive.n_registers // 2


def test_opt_level_is_validated():
    fn = B.lam("x", NAT, B.v("x"))
    with pytest.raises(CompileError, match="opt_level"):
        compile_nsc(fn, opt_level=3)
