"""The async front door: batching behaviour, backpressure, isolation, metrics."""

from __future__ import annotations

import asyncio

import pytest

from repro.compiler import BatchError, compile_nsc
from repro.nsc import builder as B
from repro.nsc.types import NAT, SeqType
from repro.serving import Server, ServerClosed, ServerOverloaded


@pytest.fixture(autouse=True)
def _queue_depth_gauge_drains():
    """Every server a test closes must leave the queue_depth gauge at zero.

    The gauge is refreshed on submit, dispatch, rejection and close-drain;
    any path that forgets one of those shows up here as drift — the regression
    this fixture pins is close()/try_submit leaving stale depth behind.
    """
    created: list[Server] = []
    orig_init = Server.__init__

    def tracking_init(self, *args, **kwargs):
        orig_init(self, *args, **kwargs)
        created.append(self)

    Server.__init__ = tracking_init
    try:
        yield
    finally:
        Server.__init__ = orig_init
    for srv in created:
        if srv._closed:
            assert srv.metrics.queue_depth == 0, "queue_depth gauge drifted"


def _affine_fn():
    x = B.gensym("x")
    return B.map_(B.lam(x, NAT, B.mod(B.add(B.mul(B.v(x), 7), 3), 101)))


def _get_fn():
    """``get(xs)``: traps unless the input is a singleton sequence."""
    x = B.gensym("x")
    return B.lam(x, SeqType(NAT), B.get_(B.v(x)))


@pytest.fixture(scope="module")
def affine_prog():
    return compile_nsc(_affine_fn())


def test_submit_batches_and_matches_run(affine_prog):
    requests = [[i, i + 1, (i * 13) % 97] for i in range(100)]
    expected = [affine_prog.run(v)[0] for v in requests]

    async def main():
        async with Server(max_batch=16, max_delay_ms=5.0) as srv:
            results = await asyncio.gather(
                *(srv.submit(affine_prog, v) for v in requests)
            )
            return srv, results

    srv, results = asyncio.run(main())
    assert results == expected
    m = srv.metrics
    assert m.submitted == m.completed == 100
    assert m.failed == 0 and m.rejected == 0
    # micro-batching actually engaged: far fewer batches than requests,
    # and no batch above the knob
    assert m.batches < 100
    assert max(m.batch_sizes) <= 16
    assert sum(size * n for size, n in m.batch_sizes.items()) == 100
    assert m.queue_depth == 0


def test_single_request_dispatches_at_deadline(affine_prog):
    async def main():
        async with Server(max_batch=64, max_delay_ms=5.0) as srv:
            result = await asyncio.wait_for(srv.submit(affine_prog, [1, 2, 3]), 5.0)
            return srv, result

    srv, result = asyncio.run(main())
    assert result == affine_prog.run([1, 2, 3])[0]
    # nothing co-batched, so the deadline—not max_batch—must have fired
    assert dict(srv.metrics.batch_sizes) == {1: 1}


def test_trap_isolation_per_request():
    prog = compile_nsc(_get_fn())
    requests = [[i] for i in range(12)]
    requests[5] = [1, 2, 3]  # traps: get of a length-3 sequence

    async def main():
        async with Server(max_batch=32, max_delay_ms=5.0) as srv:
            results = await asyncio.gather(
                *(srv.submit(prog, v) for v in requests), return_exceptions=True
            )
            return srv, results

    srv, results = asyncio.run(main())
    for i, res in enumerate(results):
        if i == 5:
            assert isinstance(res, BatchError)
        else:
            assert res == prog.run(requests[i])[0]
    assert srv.metrics.completed == 11
    assert srv.metrics.failed == 1


def test_try_submit_backpressure(affine_prog):
    async def main():
        srv = Server(max_batch=4, max_delay_ms=0.0, max_queue=4)
        futs = []
        # no await between try_submit calls, so the drainer never runs and
        # the bounded queue must overflow deterministically at request 5
        with pytest.raises(ServerOverloaded):
            for _ in range(10):
                futs.append(srv.try_submit(affine_prog, [1, 2]))
        assert len(futs) == 4
        results = await asyncio.gather(*futs)
        assert srv.metrics.rejected == 1
        await srv.close()
        return results

    results = asyncio.run(main())
    expected = affine_prog.run([1, 2])[0]
    assert results == [expected] * 4


def test_submit_blocks_instead_of_rejecting(affine_prog):
    requests = [[i] for i in range(30)]
    expected = [affine_prog.run(v)[0] for v in requests]

    async def main():
        # queue bound far below the request count: submit() must wait for
        # slots (backpressure), never raise
        async with Server(max_batch=4, max_delay_ms=0.5, max_queue=2) as srv:
            results = await asyncio.gather(
                *(srv.submit(affine_prog, v) for v in requests)
            )
            assert srv.metrics.rejected == 0
            return results

    assert asyncio.run(main()) == expected


def test_submit_after_close_raises(affine_prog):
    async def main():
        srv = Server()
        await srv.submit(affine_prog, [1])
        await srv.close()
        with pytest.raises(ServerClosed):
            await srv.submit(affine_prog, [2])

    asyncio.run(main())


def test_close_fails_queued_requests(affine_prog):
    async def main():
        srv = Server(max_batch=64, max_delay_ms=10_000.0)
        # the drainer holds the batch open for the (huge) deadline; closing
        # must fail the waiting request rather than hang it
        fut = srv.try_submit(affine_prog, [1, 2])
        await asyncio.sleep(0.05)  # let the drainer pop it into the batch
        await srv.close()
        with pytest.raises(ServerClosed):
            await asyncio.wait_for(fut, 1.0)

    asyncio.run(main())


def test_close_waits_for_in_flight_batch():
    # a batch already on the executor thread must deliver its results even
    # if close() lands mid-execution
    x = B.gensym("x")
    pred = B.lam(x, NAT, B.gt(B.v(x), 1))
    y = B.gensym("y")
    step = B.lam(
        y, NAT,
        B.if_(B.eq(B.mod(B.v(y), 2), 0), B.div(B.v(y), 2), B.add(B.mul(B.v(y), 3), 1)),
    )
    slow_prog = compile_nsc(B.map_(B.while_(pred, step)))
    request = [(i * 7919) % 99_000 + 2 for i in range(256)]  # ~tens of ms
    expected = slow_prog.run(request)[0]

    async def main():
        srv = Server(max_batch=1, max_delay_ms=0.0)
        task = asyncio.create_task(srv.submit(slow_prog, request))
        lane = None
        for _ in range(2000):  # wait until the batch is actually executing
            await asyncio.sleep(0.001)
            if srv._lanes:
                lane = next(iter(srv._lanes.values()))
                if lane.exec_lock.locked():
                    break
        assert lane is not None and lane.exec_lock.locked(), "batch never started"
        await srv.close()
        return await task

    assert asyncio.run(main()) == expected


def test_shard_threshold_above_max_batch_rejected():
    class _FakeExecutor:  # close enough: only identity is checked at init
        pass

    with pytest.raises(ValueError):
        Server(max_batch=64, shard_threshold=256, executor=_FakeExecutor())


def test_accepts_uncompiled_function():
    fn = _affine_fn()
    reference = compile_nsc(fn)

    async def main():
        async with Server(max_batch=8, max_delay_ms=2.0) as srv:
            return await asyncio.gather(
                *(srv.submit(fn, [i, i + 2]) for i in range(10))
            )

    results = asyncio.run(main())
    assert results == [reference.run([i, i + 2])[0] for i in range(10)]


def test_idle_lanes_evicted_at_max_programs():
    progs = [compile_nsc(_affine_fn()) for _ in range(4)]
    expected = [p.run([3, 1])[0] for p in progs]

    async def main():
        async with Server(max_batch=4, max_delay_ms=0.0, max_programs=2) as srv:
            for rounds in range(2):  # revisit evicted programs: still correct
                for p, exp in zip(progs, expected):
                    assert await srv.submit(p, [3, 1]) == exp
                    await asyncio.sleep(0.005)  # let the drainer go idle
            assert len(srv._lanes) <= 2
            assert srv.metrics.completed == 8

    asyncio.run(main())


def test_metrics_snapshot_shape(affine_prog):
    async def main():
        async with Server(max_batch=8, max_delay_ms=1.0) as srv:
            await asyncio.gather(*(srv.submit(affine_prog, [i]) for i in range(20)))
            return srv.metrics

    metrics = asyncio.run(main())
    snap = metrics.snapshot()
    assert snap["submitted"] == snap["completed"] == 20
    assert snap["p50_latency_s"] is not None
    assert snap["p99_latency_s"] >= snap["p50_latency_s"]
    assert snap["requests_per_sec"] > 0
    assert snap["queue_depth"] == 0
    assert sum(snap["batch_size_hist"].values()) == snap["batches"]
    assert metrics.latency_percentile(0.0) <= metrics.latency_percentile(100.0)
    with pytest.raises(ValueError):
        metrics.latency_percentile(101.0)


def test_requests_per_sec_not_inflated_by_startup(monkeypatch):
    # regression: right after startup the rate divided one completion by a
    # microsecond-scale server age -- 50us after boot, one finished request
    # reported as ~20,000 req/s.  A fake clock pins the exact arithmetic.
    from repro.serving.metrics import ServerMetrics

    now = [1000.0]
    m = ServerMetrics(clock=lambda: now[0])
    assert m.requests_per_sec() == 0.0  # no completions, no rate

    now[0] += 50e-6  # one request, 50 microseconds in
    m.observe_request(40e-6, ok=True)
    assert m.requests_per_sec() == pytest.approx(1.0)  # not 20,000

    # a lone completion never reports more than n/1s, however young the server
    now[0] += 0.5
    assert m.requests_per_sec() == pytest.approx(1.0)

    # with age past the guard the honest windowed rate comes through
    for _ in range(9):
        m.observe_request(1e-3, ok=True)
    now[0] += 4.5  # server age now ~5.0s, 10 completions in the window
    assert m.requests_per_sec() == pytest.approx(10 / 5.0, rel=1e-3)
