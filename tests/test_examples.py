"""Regression tests for the example scripts (determinism, importability)."""

import io
import pathlib
import sys
from contextlib import redirect_stdout

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _import_valiant_sort():
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        import valiant_sort
    finally:
        sys.path.pop(0)
    return valiant_sort


def _capture(fn, *args, **kwargs) -> str:
    buf = io.StringIO()
    with redirect_stdout(buf):
        fn(*args, **kwargs)
    return buf.getvalue()


def test_valiant_sort_output_is_stable():
    """The example seeds its RNG, so the printed table is identical run to run."""
    mod = _import_valiant_sort()
    sizes = (8, 16)  # small sizes keep the test fast; determinism is size-independent
    first = _capture(mod.main, sizes=sizes)
    second = _capture(mod.main, sizes=sizes)
    assert first == second
    assert "mergesort (Figure 1)" in first
    assert "index (Figure 3): [10, 30, 60]" in first


def test_valiant_sort_seed_controls_output():
    """Different seeds give different inputs — i.e. the seed is actually used."""
    mod = _import_valiant_sort()
    a = _capture(mod.main, sizes=(8,), seed=7)
    b = _capture(mod.main, sizes=(8,), seed=8)
    assert a != b


def test_compile_nsc_sorts_example_runs_and_sorts():
    """The compiler demo runs end to end and its internal assertions hold."""
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        import compile_nsc_sorts
    finally:
        sys.path.pop(0)
    out = _capture(compile_nsc_sorts.main, n=10, eps_values=(1.0, 0.5))
    assert "quicksort" in out and "mergesort" in out
    assert "W'/W" in out


def test_compile_to_bvram_example_runs():
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        import compile_to_bvram
    finally:
        sys.path.pop(0)
    out = _capture(compile_to_bvram.main)
    # hand-written kernel and compiled program agree on the same input
    assert out.count("[3, 0, 10, 7]") == 2
