"""The pluggable-backend contract: selection, bit-identity, fork/pickle safety.

Four groups of pins:

* **selection** — the ``resolve_backend`` precedence order (explicit arg >
  program field > ``REPRO_BACKEND`` > ``fused`` default, with ``fuse=False``
  keeping its historical per-instruction meaning) and the compile-time
  validation of ``compile_nsc(..., backend=...)``;
* **bit-identity** — the generated-code ``vector`` / ``vector-jit`` backends
  agree with the traced interpreter and the fused executor on values,
  ``T'``/``W'`` *and every error path* (trap depth, partial-block
  accounting, ``max_steps`` mid-block stops) across the differential
  battery and a set of adversarial hand programs aimed at the interval
  bounds (overflow edges, empty registers, destination aliasing);
* **process boundaries** — every registered plan-cache lock resets in a
  forked child, and a program's ``backend`` pin survives pickling into
  shard workers (proved by precedence: the workers run under a *bogus*
  ``REPRO_BACKEND``, so only the pickled field can make them succeed);
* **disassembly** — each backend renders its plan; the vector backend's
  generated source for a fixed program is snapshot under
  ``tests/golden/vector_source.py.txt``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle

import numpy as np
import pytest

from repro.backends import (
    FUSED,
    HAVE_NUMBA,
    INTERP,
    VECTOR,
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.backends import fused as fused_mod
from repro.backends import interp as interp_mod
from repro.backends import jit as jit_mod
from repro.backends import kernels
from repro.backends import vector as vector_mod
from repro.bvram import BVRAM, BVRAMError
from repro.bvram.isa import (
    AppendI,
    Arith,
    BmRoute,
    EnumerateI,
    FlagMerge,
    Goto,
    GotoIfEmpty,
    Halt,
    LengthI,
    LoadConst,
    LoadEmpty,
    Move,
    Program,
    SbmRoute,
    SegReduce,
    SegScan,
    Select,
    Trap,
    UnArith,
)
from repro.compiler import CompileError, compile_nsc
from repro.compiler import batch as batch_mod
from repro.compiler.difftest import suite
from repro.nsc import builder as B
from repro.nsc.types import NAT
from repro.serving import ShardExecutor

ALL_BACKENDS = ("interp", "fused", "vector", "vector-jit")


# ---------------------------------------------------------------------------
# selection
# ---------------------------------------------------------------------------


class _Pinned:
    backend = "interp"


def test_registry_lists_all_backends():
    assert set(ALL_BACKENDS) <= set(available_backends())
    for name in ALL_BACKENDS:
        assert get_backend(name).name == name
    with pytest.raises(ValueError, match="unknown backend"):
        get_backend("no-such-backend")


def test_resolve_backend_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert resolve_backend(None) is FUSED  # the default
    assert resolve_backend(None, program=_Pinned()) is INTERP  # program field
    assert resolve_backend("vector", program=_Pinned()) is VECTOR  # explicit wins
    assert resolve_backend(VECTOR) is VECTOR  # instance passthrough
    assert resolve_backend(None, fuse=False) is INTERP  # historical fuse=False
    assert resolve_backend("vector", fuse=False) is VECTOR  # explicit beats fuse

    monkeypatch.setenv("REPRO_BACKEND", "vector")
    assert resolve_backend(None) is VECTOR  # env beats the default
    assert resolve_backend(None, program=_Pinned()) is INTERP  # field beats env
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("nope")


def test_compile_nsc_validates_backend_name():
    with pytest.raises(CompileError, match="unknown backend"):
        compile_nsc(_affine_fn(), backend="no-such-backend")
    prog = compile_nsc(_affine_fn(), backend="vector")
    assert prog.backend == "vector"


# ---------------------------------------------------------------------------
# bit-identity: the differential battery
# ---------------------------------------------------------------------------


def _machine_outcome(prog, value, backend):
    """(tag, registers, T, W) — error paths keep message and partial totals."""
    machine = BVRAM(prog.n_registers)
    try:
        if backend == "traced":
            res = machine.run(prog, prog.encode_input(value))
        else:
            res = machine.run(
                prog, prog.encode_input(value), record_trace=False, backend=backend
            )
    except BVRAMError as e:
        return (
            "err",
            str(e),
            [r.tolist() for r in machine.registers],
            machine.time,
            machine.work,
        )
    return ("ok", [r.tolist() for r in res.registers], res.time, res.work)


@pytest.mark.parametrize("opt_level", [0, 2])
@pytest.mark.parametrize("eps", [1.0, 0.5, 0.25])
def test_vector_battery_bit_identical(eps, opt_level):
    """values, T' and W' agree with fused on every battery program/input."""
    for name, fn, inputs in suite():
        prog = compile_nsc(fn, eps=eps, opt_level=opt_level)
        for v in inputs:
            ref = _machine_outcome(prog, v, "fused")
            for be in ("vector", "vector-jit"):
                got = _machine_outcome(prog, v, be)
                assert got == ref, (name, eps, opt_level, be, v)


# ---------------------------------------------------------------------------
# bit-identity: adversarial hand programs against the interval bounds
# ---------------------------------------------------------------------------


def _raw_outcome(prog, inputs, backend, max_steps=10_000_000):
    machine = BVRAM(prog.n_registers)
    try:
        if backend == "traced":
            machine.run(prog, inputs, max_steps=max_steps)
        else:
            machine.run(
                prog, inputs, max_steps=max_steps, record_trace=False, backend=backend
            )
    except BVRAMError as e:
        return (
            "err",
            str(e),
            machine.time,
            machine.work,
            [r.tolist() for r in machine.registers],
        )
    return (
        "ok",
        machine.time,
        machine.work,
        [r.tolist() for r in machine.registers],
    )


def _assert_all_backends_agree(prog, inputs, max_steps=10_000_000):
    ref = _raw_outcome(prog, inputs, "traced", max_steps)
    for be in ALL_BACKENDS:
        got = _raw_outcome(prog, inputs, be, max_steps)
        assert got == ref, (be, inputs, got, ref)
    return ref


BIG = 2**62
TOP = 2**63 - 1


def test_vector_overflow_edges_match_traced():
    p = Program(
        instructions=[
            Arith(2, "+", 0, 1),
            Arith(3, "*", 2, 2),
            Arith(4, "/", 3, 1),
            Arith(5, "mod", 4, 2),
            AppendI(6, 5, 5),
            Halt(),
        ],
        labels={},
        n_registers=7,
        n_inputs=2,
        n_outputs=1,
    )
    for inputs in (
        [[3], [4]],  # clean, all fast paths
        [[BIG], [BIG]],  # + overflows at instruction 0 (T=W=0)
        [[2**61], [2**61]],  # * overflows at instruction 1
        [[1], [0]],  # division by zero at instruction 2
        [[3, 4], [5]],  # shape mismatch message and lengths
        [[], []],  # empty operands: vacuous bounds must not misfire
    ):
        _assert_all_backends_agree(p, inputs)


def test_vector_shift_and_monus_edges():
    p = Program(
        instructions=[
            Arith(2, ">>", 0, 1),
            Arith(3, "-", 0, 2),
            Arith(4, "max", 3, 2),
            Arith(5, "le", 4, 0),
            Halt(),
        ],
        labels={},
        n_registers=6,
        n_inputs=2,
        n_outputs=1,
    )
    for shifts in ([0, 1, 62, 63, 64, 1000], [63, 63, 63, 63, 63, 63]):
        _assert_all_backends_agree(p, [[TOP, BIG, 5, 1, 0, TOP], shifts])


def test_vector_dst_aliasing_in_one_block():
    # repeated writes to the same register inside one block: the generated
    # bounds temporaries must not read a half-updated l/h pair
    p = Program(
        instructions=[
            Move(2, 0),
            Arith(2, "+", 2, 2),
            Arith(2, "*", 2, 2),
            Arith(2, "-", 2, 1),
            Arith(2, "mod", 2, 1),
            Halt(),
        ],
        labels={},
        n_registers=3,
        n_inputs=2,
        n_outputs=1,
    )
    _assert_all_backends_agree(p, [[3, 7], [5, 2]])
    _assert_all_backends_agree(p, [[2**31], [1]])  # * overflows mid-chain
    _assert_all_backends_agree(p, [[3, 7], [0, 0]])  # mod-by-zero trap


def test_vector_segmented_overflow_boundary():
    p = Program(
        instructions=[
            SegReduce(3, "+", 0, 1),
            SegScan(4, "+", 0, 1),
            SegReduce(5, "max", 0, 1),
            SegScan(6, "max", 0, 1),
            Halt(),
        ],
        labels={},
        n_registers=7,
        n_inputs=3,
        n_outputs=1,
    )
    for data, segs in (
        ([1, 2, 3, 4], [2, 2]),
        ([BIG - 1, BIG], [2]),  # sum = 2**63 - 1: largest representable
        ([BIG, BIG], [2]),  # sum = 2**63: traps in every backend
        ([], [0, 0]),
        ([5], [1, 0]),
    ):
        _assert_all_backends_agree(p, [data, segs, []])


def test_vector_max_steps_stops_mid_block():
    p = Program(
        instructions=[
            Arith(2, "+", 0, 1),
            Arith(3, "+", 2, 1),
            Arith(4, "+", 3, 1),
            Goto("top"),
            Halt(),
        ],
        labels={"top": 0},
        n_registers=5,
        n_inputs=2,
        n_outputs=1,
    )
    for ms in range(1, 10):
        _assert_all_backends_agree(p, [[1], [2]], max_steps=ms)


def test_vector_machine_reuse_reinitialises_bounds():
    # the second run on the SAME machine must rebuild bounds from the
    # leftover register contents, not trust stale ones
    p = Program(
        instructions=[Arith(2, "+", 0, 1), Arith(3, "max", 2, 2), Halt()],
        labels={},
        n_registers=4,
        n_inputs=2,
        n_outputs=1,
    )
    m = BVRAM(4)
    m.run(p, [[1], [2]], record_trace=False, backend="vector")
    assert m.register(3) == [3]
    m.run(p, [[BIG], [BIG - 1]], record_trace=False, backend="vector")
    assert m.register(2) == [TOP]
    with pytest.raises(BVRAMError, match="overflow"):
        m.run(p, [[BIG], [BIG]], record_trace=False, backend="vector")


# ---------------------------------------------------------------------------
# process boundaries: fork-safe locks, pickled backend pins
# ---------------------------------------------------------------------------


def _affine_fn():
    x = B.gensym("x")
    return B.map_(B.lam(x, NAT, B.add(B.mul(B.v(x), 3), 1)))


@pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(), reason="fork start method unavailable"
)
def test_fork_resets_every_registered_cache_lock():
    locks = [
        interp_mod._CACHE._lock,
        fused_mod._CACHE._lock,
        vector_mod.VECTOR._cache._lock,
        vector_mod.VECTOR_JIT._cache._lock,
        batch_mod._TWIN_LOCK,
    ]
    for lock in locks:
        assert lock.acquire(timeout=5)
    try:
        ctx = mp.get_context("fork")
        q = ctx.Queue()

        def child(q):
            # the parent holds every lock across the fork; only the at-fork
            # reset registry can make these acquisitions succeed
            q.put(all(lock.acquire(timeout=5) for lock in locks))

        proc = ctx.Process(target=child, args=(q,))
        proc.start()
        assert q.get(timeout=30) is True
        proc.join(timeout=30)
        assert proc.exitcode == 0
    finally:
        for lock in locks:
            lock.release()


def test_backend_pin_survives_pickling_to_shard_workers(monkeypatch):
    values = [[1, 2, 3], [4, 5], [6], [7, 8]]
    pinned = compile_nsc(_affine_fn(), backend="vector")
    unpinned = compile_nsc(_affine_fn())
    expected = pinned.run_batch(values)

    clone = pickle.loads(pickle.dumps(pinned))
    assert clone.backend == "vector"
    for attr in clone._CACHE_ATTRS:
        assert not hasattr(clone, attr)

    # workers inherit a BOGUS env default, so resolution inside a worker can
    # only succeed through an explicit per-call backend or the program's own
    # pickled field — success below proves the pin crossed the boundary
    monkeypatch.setenv("REPRO_BACKEND", "no-such-backend")
    with ShardExecutor(n_workers=2) as ex:
        assert ex.run_batch(pinned, values, shards=2) == expected
        assert ex.run_batch(unpinned, values, shards=2, backend="vector") == expected
        with pytest.raises(ValueError, match="unknown backend"):
            ex.run_batch(unpinned, values, shards=2)


# ---------------------------------------------------------------------------
# numba tier
# ---------------------------------------------------------------------------


def test_jit_kernels_probe_is_consistent():
    ks = jit_mod.jit_kernels()
    if HAVE_NUMBA:
        assert set(ks) == {"_k_seg_scan", "_k_sbm_route"}
    else:
        assert ks == {}


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
def test_jit_kernels_match_reference():
    rng = np.random.default_rng(7)
    for _ in range(25):
        n_segs = int(rng.integers(0, 6))
        segs = rng.integers(0, 5, size=n_segs).astype(np.int64)
        data = rng.integers(0, 100, size=int(segs.sum())).astype(np.int64)
        counts = rng.integers(0, 4, size=n_segs).astype(np.int64)
        bound = np.zeros(int(counts.sum()), dtype=np.int64)
        got = jit_mod.seg_scan_vec("max", data, segs)
        ref = kernels.seg_scan_vec("max", data, segs)
        assert got.tolist() == ref.tolist()
        got = jit_mod.sbm_route_vec(bound, counts, data, segs)
        ref = kernels.sbm_route_vec(bound, counts, data, segs)
        assert got.tolist() == ref.tolist()
    # error messages must stay byte-identical too
    with pytest.raises(BVRAMError) as e_jit:
        jit_mod.sbm_route_vec(
            np.zeros(3, dtype=np.int64),
            np.array([1], dtype=np.int64),
            np.array([5], dtype=np.int64),
            np.array([1], dtype=np.int64),
        )
    with pytest.raises(BVRAMError) as e_ref:
        kernels.sbm_route_vec(
            np.zeros(3, dtype=np.int64),
            np.array([1], dtype=np.int64),
            np.array([5], dtype=np.int64),
            np.array([1], dtype=np.int64),
        )
    assert str(e_jit.value) == str(e_ref.value)


# ---------------------------------------------------------------------------
# disassembly
# ---------------------------------------------------------------------------

#: one instruction per vector-codegen template, plus control entries; the
#: operand shapes are chosen so the 3-element input below runs every
#: instruction without trapping (see test_golden_program_executes_identically)
_GOLDEN = Program(
    instructions=[
        Arith(2, "+", 0, 1),
        Arith(3, "*", 2, 2),
        Arith(4, "-", 3, 0),
        Arith(5, "/", 4, 2),
        Arith(6, "mod", 5, 2),
        Arith(7, ">>", 6, 2),
        Arith(8, "min", 7, 6),
        Arith(9, "max", 8, 7),
        Arith(10, "eq", 9, 8),
        Arith(11, "le", 10, 9),
        Arith(12, "lt", 11, 10),
        Move(13, 12),
        Select(14, 13),
        GotoIfEmpty("tail", 14),
        LengthI(15, 14),
        EnumerateI(16, 14),
        LoadEmpty(17),
        LoadConst(18, 42),
        UnArith(19, "log2", 18),
        UnArith(20, "sqrt", 18),
        FlagMerge(21, 11, 17, 14),
        SegScan(22, "+", 14, 15),
        SegScan(23, "max", 16, 15),
        SegReduce(24, "+", 14, 15),
        SegReduce(25, "max", 16, 15),
        BmRoute(26, 14, 21, 16),
        AppendI(27, 14, 14),
        AppendI(28, 27, 14),
        SbmRoute(29, 28, 24, 14, 15),
        Goto("end"),
        Trap("unreachable"),
        Halt(),
    ],
    labels={"tail": 30, "end": 31},
    n_registers=30,
    n_inputs=2,
    n_outputs=1,
)

_GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "vector_source.py.txt")


def test_disassemble_smoke(monkeypatch):
    prog = compile_nsc(_affine_fn())
    for be in ALL_BACKENDS:
        text = prog.disassemble(backend=be)
        assert isinstance(text, str) and text
    assert "def _blk" in prog.disassemble(backend="vector")
    assert "# entry" in prog.disassemble(backend="fused")
    # the default disassembly follows the same resolution as run()
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert prog.disassemble() == prog.disassemble(backend="fused")


def test_vector_generated_source_matches_golden():
    source = get_backend("vector").disassemble(_GOLDEN)
    with open(_GOLDEN_PATH, encoding="utf-8") as fh:
        golden = fh.read()
    assert source == golden, (
        "generated vector source drifted from tests/golden/vector_source.py.txt; "
        "if the change is intentional, regenerate the snapshot with:\n"
        "  PYTHONPATH=src:tests python -c \"import test_backends as t; "
        "open(t._GOLDEN_PATH, 'w').write("
        "t.get_backend('vector').disassemble(t._GOLDEN))\""
    )


def test_golden_program_executes_identically():
    # the golden program is not just a pretty listing — it runs (data register
    # shapes chosen so every descriptor check passes until the goto)
    _assert_all_backends_agree(_GOLDEN, [[9, 0, 4], [3, 1, 2]])
    _assert_all_backends_agree(_GOLDEN, [[], []])
