"""Tests for the NSC big-step evaluator and the Definition 3.1 cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nsc import NSCEvalError, apply_function, evaluate, from_python, to_python
from repro.nsc import builder as B
from repro.nsc import lib
from repro.nsc.types import BOOL, NAT, prod, seq
from repro.nsc.typecheck import NSCTypeError, infer_function, infer_term


# ---------------------------------------------------------------------------
# Primitive semantics
# ---------------------------------------------------------------------------


def test_arithmetic_and_monus():
    assert to_python(evaluate(B.add(2, 3)).value) == 5
    assert to_python(evaluate(B.sub(2, 5)).value) == 0  # monus
    assert to_python(evaluate(B.sub(5, 2)).value) == 3
    assert to_python(evaluate(B.mul(4, 6)).value) == 24
    assert to_python(evaluate(B.div(7, 2)).value) == 3
    assert to_python(evaluate(B.mod(7, 3)).value) == 1
    assert to_python(evaluate(B.rshift(8, 2)).value) == 2
    assert to_python(evaluate(B.log2(32)).value) == 5
    assert to_python(evaluate(B.isqrt(17)).value) == 4


def test_division_by_zero_is_undefined():
    with pytest.raises(NSCEvalError):
        evaluate(B.div(1, 0))


def test_error_term_raises():
    with pytest.raises(NSCEvalError):
        evaluate(B.error(NAT))


def test_booleans_and_comparisons():
    assert to_python(evaluate(B.eq(3, 3)).value) is True
    assert to_python(evaluate(B.eq(3, 4)).value) is False
    assert to_python(evaluate(B.le(2, 3)).value) is True
    assert to_python(evaluate(B.lt(3, 3)).value) is False
    assert to_python(evaluate(B.ge(3, 3)).value) is True
    assert to_python(evaluate(B.gt(4, 3)).value) is True
    assert to_python(evaluate(B.and_(B.true(), B.false())).value) is False
    assert to_python(evaluate(B.or_(B.false(), B.true())).value) is True
    assert to_python(evaluate(B.not_(B.true())).value) is False


def test_pairs_projections_case():
    t = B.pair(1, B.pair(2, 3))
    assert to_python(evaluate(B.fst(t)).value) == 1
    assert to_python(evaluate(B.snd(B.snd(t))).value) == 3
    c = B.case_(B.inl(5, NAT), "x", B.add(B.v("x"), 1), "y", 0)
    assert to_python(evaluate(c).value) == 6
    c2 = B.case_(B.inr(5, NAT), "x", 0, "y", B.mul(B.v("y"), 2))
    assert to_python(evaluate(c2).value) == 10


def test_sequence_primitives():
    xs = B.nat_seq([1, 2, 3])
    assert to_python(evaluate(B.length_(xs)).value) == 3
    assert to_python(evaluate(B.append(B.nat_seq([1]), B.nat_seq([2, 3]))).value) == [1, 2, 3]
    assert to_python(evaluate(B.enumerate_(xs)).value) == [0, 1, 2]
    assert to_python(evaluate(B.get_(B.single(9))).value) == 9
    assert to_python(evaluate(B.zip_(B.nat_seq([1, 2]), B.nat_seq([3, 4]))).value) == [
        (1, 3),
        (2, 4),
    ]
    nested = B.split_(B.nat_seq([1, 2, 3, 4, 5, 6]), B.nat_seq([3, 0, 1, 0, 2]))
    assert to_python(evaluate(nested).value) == [[1, 2, 3], [], [4], [], [5, 6]]
    assert to_python(evaluate(B.flatten_(nested)).value) == [1, 2, 3, 4, 5, 6]


def test_get_on_non_singleton_is_error():
    with pytest.raises(NSCEvalError):
        evaluate(B.get_(B.nat_seq([1, 2])))
    with pytest.raises(NSCEvalError):
        evaluate(B.get_(B.empty(NAT)))


def test_zip_length_mismatch_and_split_mismatch_are_errors():
    with pytest.raises(NSCEvalError):
        evaluate(B.zip_(B.nat_seq([1]), B.nat_seq([1, 2])))
    with pytest.raises(NSCEvalError):
        evaluate(B.split_(B.nat_seq([1, 2, 3]), B.nat_seq([1, 1])))


def test_let_and_lambda_application():
    prog = B.let("x", B.add(1, 2), B.mul(B.v("x"), B.v("x")))
    assert to_python(evaluate(prog).value) == 9
    f = B.lam("x", NAT, B.add(B.v("x"), 10))
    assert to_python(apply_function(f, from_python(5)).value) == 15


def test_unbound_variable_is_error():
    with pytest.raises(NSCEvalError):
        evaluate(B.v("nope"))


# ---------------------------------------------------------------------------
# map and while semantics + cost model
# ---------------------------------------------------------------------------


def test_map_applies_elementwise():
    f = B.map_(B.lam("x", NAT, B.mul(B.v("x"), B.v("x"))))
    out = apply_function(f, from_python([1, 2, 3, 4]))
    assert to_python(out.value) == [1, 4, 9, 16]


def test_map_time_is_max_not_sum():
    """Definition 3.1: the map rule charges 1 + max of the branch times."""
    body = B.lam("x", NAT, B.add(B.v("x"), 1))
    f = B.map_(body)
    small = apply_function(f, from_python([1, 2]))
    large = apply_function(f, from_python(list(range(64))))
    # parallel time does not grow with the sequence length ...
    assert large.time == small.time
    # ... but the work does
    assert large.work > small.work


def test_map_work_scales_linearly():
    f = B.map_(B.lam("x", NAT, B.add(B.v("x"), 1)))
    w16 = apply_function(f, from_python(list(range(16)))).work
    w64 = apply_function(f, from_python(list(range(64)))).work
    assert 3.0 <= w64 / w16 <= 5.0  # ~4x


def test_while_counts_iterations_in_time():
    # state: N; loop until the value exceeds 100 by doubling
    pred = B.lam("x", NAT, B.lt(B.v("x"), 100))
    body = B.lam("x", NAT, B.mul(B.v("x"), 2))
    w = B.while_(pred, body)
    out = apply_function(w, from_python(1))
    assert to_python(out.value) == 128
    out2 = apply_function(w, from_python(200))
    assert to_python(out2.value) == 200
    assert out.time > out2.time


def test_while_output_not_recounted():
    """The while rule does not charge the final result once per iteration."""
    # State (counter, payload): the loop decrements the counter and never
    # touches the large payload.
    state_t = prod(NAT, seq(NAT))
    pred = B.lam("s", state_t, B.gt(B.fst(B.v("s")), 0))
    body = B.lam("s", state_t, B.pair(B.sub(B.fst(B.v("s")), 1), B.snd(B.v("s"))))
    w = B.while_(pred, body)
    payload = list(range(200))
    iters = 10
    out = apply_function(w, from_python((iters, payload)))
    assert to_python(out.value) == (0, payload)
    # The payload is carried (size * iterations, times a constant for the
    # variable references inside P and F), but not multiplied by the size of
    # the final output again: W stays linear in iters * |payload|.
    assert out.work < 20 * iters * (len(payload) + 5)


def test_closure_broadcast_cost():
    """Applying a map whose body captures a big free variable charges the closure."""
    big = from_python(list(range(256)))
    small = from_python(list(range(4)))
    body = B.lam("y", NAT, B.length_(B.v("xs")))
    f = B.map_(body)
    w_big = apply_function(f, from_python([1, 2, 3, 4]), {"xs": big}).work
    w_small = apply_function(f, from_python([1, 2, 3, 4]), {"xs": small}).work
    assert w_big > w_small + 4 * 200  # roughly 4 elements x 250 extra closure size


def test_outcome_fields_are_positive():
    o = evaluate(B.add(1, 1))
    assert o.time >= 1 and o.work >= 1


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=50), max_size=12))
@settings(max_examples=40, deadline=None)
def test_map_matches_python(xs):
    f = B.map_(B.lam("x", NAT, B.add(B.mul(B.v("x"), B.v("x")), 1)))
    out = apply_function(f, from_python(list(xs)))
    assert to_python(out.value) == [x * x + 1 for x in xs]


@given(
    st.lists(st.integers(min_value=0, max_value=50), max_size=10),
    st.lists(st.integers(min_value=0, max_value=50), max_size=10),
)
@settings(max_examples=40, deadline=None)
def test_append_flatten_agree_with_python(xs, ys):
    out = evaluate(B.append(B.nat_seq(xs), B.nat_seq(ys)))
    assert to_python(out.value) == list(xs) + list(ys)


@given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=8))
@settings(max_examples=40, deadline=None)
def test_work_monotone_in_input_size(xs):
    """Evaluating the same map on a longer input never costs less work."""
    f = B.map_(B.lam("x", NAT, B.add(B.v("x"), 1)))
    w_full = apply_function(f, from_python(list(xs))).work
    w_prefix = apply_function(f, from_python(list(xs[:-1]))).work
    assert w_full >= w_prefix


@given(st.integers(min_value=1, max_value=200))
@settings(max_examples=30, deadline=None)
def test_while_halving_time_logarithmic(n):
    pred = B.lam("x", NAT, B.gt(B.v("x"), 1))
    body = B.lam("x", NAT, B.div(B.v("x"), 2))
    out = apply_function(B.while_(pred, body), from_python(n))
    assert to_python(out.value) == 1 if n > 1 else n
    assert out.time <= 20 * (n.bit_length() + 2)
