"""Tests for the BVRAM ISA and machine (Section 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import oracles as O
from repro.bvram import BVRAM, BVRAMError, run_program
from repro.bvram import isa
from repro.bvram.machine import bm_route_vec, sbm_route_vec
from repro.bvram.programs import (
    broadcast_program,
    cartesian_product_program,
    filter_leq_program,
    pairwise_sum_program,
    saxpy_program,
)


# ---------------------------------------------------------------------------
# Instruction semantics
# ---------------------------------------------------------------------------


def _single_instr_run(instr, inputs, n_registers=8):
    p = isa.Program(n_registers=n_registers, n_inputs=len(inputs), n_outputs=1)
    p.emit(instr)
    p.emit(isa.Halt())
    return run_program(p, inputs)


def test_move_and_arith():
    r = _single_instr_run(isa.Move(dst=2, src=0), [[1, 2, 3]])
    assert r.registers[2].tolist() == [1, 2, 3]
    r = _single_instr_run(isa.Arith(dst=2, op="+", a=0, b=1), [[1, 2], [10, 20]])
    assert r.registers[2].tolist() == [11, 22]
    r = _single_instr_run(isa.Arith(dst=2, op="-", a=0, b=1), [[5, 1], [2, 9]])
    assert r.registers[2].tolist() == [3, 0]  # monus


def test_arith_length_mismatch_is_error():
    with pytest.raises(BVRAMError):
        _single_instr_run(isa.Arith(dst=2, op="+", a=0, b=1), [[1, 2], [1]])


def test_arith_division_by_zero_is_error():
    with pytest.raises(BVRAMError, match="division by zero"):
        _single_instr_run(isa.Arith(dst=2, op="/", a=0, b=1), [[1, 2], [1, 0]])
    with pytest.raises(BVRAMError, match="modulo by zero"):
        _single_instr_run(isa.Arith(dst=2, op="mod", a=0, b=1), [[1, 2], [1, 0]])


def test_arith_add_overflow_is_error():
    """The paper treats out-of-range results as undefined: int64 wrap must raise."""
    big = 2**62
    with pytest.raises(BVRAMError, match="overflow"):
        _single_instr_run(isa.Arith(dst=2, op="+", a=0, b=1), [[big, 1], [big, 1]])
    # the same magnitudes are fine when they do not wrap
    r = _single_instr_run(isa.Arith(dst=2, op="+", a=0, b=1), [[big, 1], [0, 1]])
    assert r.registers[2].tolist() == [big, 2]


def test_arith_mul_overflow_is_error():
    big = 2**32
    with pytest.raises(BVRAMError, match="overflow"):
        _single_instr_run(isa.Arith(dst=2, op="*", a=0, b=1), [[big, 2], [big, 3]])
    # a wrap that lands positive again must still be caught (not only sign flips)
    with pytest.raises(BVRAMError, match="overflow"):
        _single_instr_run(isa.Arith(dst=2, op="*", a=0, b=1), [[2**62], [4]])
    r = _single_instr_run(isa.Arith(dst=2, op="*", a=0, b=1), [[2**31, 2], [2**31, 3]])
    assert r.registers[2].tolist() == [2**62, 6]


def test_arith_mul_by_zero_never_overflows():
    r = _single_instr_run(isa.Arith(dst=2, op="*", a=0, b=1), [[0, 0], [2**62, 1]])
    assert r.registers[2].tolist() == [0, 0]


def test_sequence_instructions():
    r = _single_instr_run(isa.AppendI(dst=2, a=0, b=1), [[1, 2], [3]])
    assert r.registers[2].tolist() == [1, 2, 3]
    r = _single_instr_run(isa.LengthI(dst=2, src=0), [[7, 8, 9]])
    assert r.registers[2].tolist() == [3]
    r = _single_instr_run(isa.EnumerateI(dst=2, src=0), [[7, 8, 9]])
    assert r.registers[2].tolist() == [0, 1, 2]
    r = _single_instr_run(isa.Select(dst=2, src=0), [[3, 0, 1, 0, 0, 4]])
    assert r.registers[2].tolist() == [3, 1, 4]  # the paper's example
    r = _single_instr_run(isa.LoadConst(dst=2, value=9), [[1]])
    assert r.registers[2].tolist() == [9]
    r = _single_instr_run(isa.LoadEmpty(dst=2), [[1]])
    assert r.registers[2].tolist() == []


def test_bm_route_instruction_matches_paper_example():
    # data [a,b,c] with counts [2,0,3] and bound of length 5 -> [a,a,c,c,c]
    assert bm_route_vec(
        np.array([10, 20, 30]), np.array([2, 0, 3]), np.zeros(5, dtype=np.int64)
    ).tolist() == [10, 10, 30, 30, 30]


def test_sbm_route_instruction_matches_paper_example():
    # segments of [a0,a1,b0,b1,b2,c0,c1,c2] with descriptor [2,3,3], counts [2,0,3]
    data = np.array([1, 2, 11, 12, 13, 21, 22, 23])
    out = sbm_route_vec(
        bound=np.zeros(5, dtype=np.int64),
        counts=np.array([2, 0, 3]),
        data=data,
        segments=np.array([2, 3, 3]),
    )
    assert out.tolist() == [1, 2, 1, 2, 21, 22, 23, 21, 22, 23, 21, 22, 23]


def test_bm_route_bad_bound_is_error():
    with pytest.raises(BVRAMError):
        bm_route_vec(np.array([1, 2]), np.array([1, 1]), np.zeros(5, dtype=np.int64))


def test_registers_hold_naturals_only():
    m = BVRAM(2)
    with pytest.raises(BVRAMError):
        m.load(0, [-1, 2])


def test_program_validation():
    p = isa.Program(n_registers=2, n_inputs=1, n_outputs=1)
    p.emit(isa.Move(dst=5, src=0))
    p.emit(isa.Halt())
    with pytest.raises(ValueError):
        p.validate()
    p2 = isa.Program(n_registers=2, n_inputs=1, n_outputs=1)
    p2.emit(isa.Goto(label="nowhere"))
    with pytest.raises(ValueError):
        p2.validate()


def test_duplicate_label_rejected():
    p = isa.Program()
    p.label("x")
    with pytest.raises(ValueError):
        p.label("x")


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------


def test_time_counts_instructions_and_work_counts_lengths():
    r = run_program(saxpy_program(), [[1, 2, 3], [4, 5, 6], [7, 8, 9]])
    assert r.time == 3  # two ariths + halt
    # work: mul reads 3+3 writes 3, add reads 3+3 writes 3, halt 0
    assert r.work == 18
    assert [e.opcode for e in r.trace] == ["arith:*", "arith:+", "halt"]


def test_work_scales_with_vector_length():
    small = run_program(saxpy_program(), [[1] * 4, [1] * 4, [1] * 4])
    large = run_program(saxpy_program(), [[1] * 64, [1] * 64, [1] * 64])
    assert large.time == small.time
    assert large.work == small.work * 16


# ---------------------------------------------------------------------------
# Whole programs
# ---------------------------------------------------------------------------


def test_broadcast_program():
    r = run_program(broadcast_program(), [[0] * 7, [13]])
    assert r.output(0) == [13] * 7


def test_filter_program_matches_oracle():
    xs = [3, 15, 0, 10, 99, 7, 10]
    r = run_program(filter_leq_program(10), [xs])
    assert r.output(0) == [x for x in xs if x <= 10]


def test_pairwise_sum_program():
    for xs in ([], [5], [1, 2, 3], list(range(30))):
        r = run_program(pairwise_sum_program(), [xs])
        assert r.output(0) == [sum(xs)]


def test_pairwise_sum_logarithmic_time():
    t_small = run_program(pairwise_sum_program(), [list(range(8))]).time
    t_large = run_program(pairwise_sum_program(), [list(range(128))]).time
    # 3 doublings vs 7: time grows ~2.3x, far from the 16x data growth
    assert t_large <= 3 * t_small


def test_cartesian_product_program():
    r = run_program(cartesian_product_program(), [[1, 2, 3], [7, 8]])
    pairs = list(zip(r.output(1), r.output(0)))
    assert sorted(pairs) == sorted((a, b) for a in [1, 2, 3] for b in [7, 8])


def test_nonterminating_program_hits_step_bound():
    p = isa.Program(n_registers=1, n_inputs=1, n_outputs=1)
    p.label("loop")
    p.emit(isa.Goto(label="loop"))
    machine = BVRAM(1)
    with pytest.raises(BVRAMError):
        machine.run(p, [[1]], max_steps=100)


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------


@given(
    st.lists(st.integers(min_value=0, max_value=100), max_size=20),
    st.lists(st.integers(min_value=0, max_value=3), max_size=20),
)
@settings(max_examples=40, deadline=None)
def test_bm_route_vec_matches_oracle(data, counts):
    n = min(len(data), len(counts))
    data, counts = data[:n], counts[:n]
    expected = O.bm_route(data, counts)
    out = bm_route_vec(
        np.asarray(data, dtype=np.int64),
        np.asarray(counts, dtype=np.int64),
        np.zeros(sum(counts), dtype=np.int64),
    )
    assert out.tolist() == expected


@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=40))
@settings(max_examples=30, deadline=None)
def test_select_matches_oracle(xs):
    r = _single_instr_run(isa.Select(dst=1, src=0), [xs], n_registers=2)
    assert r.registers[1].tolist() == O.pack_nonzero(xs)


@given(st.lists(st.integers(min_value=0, max_value=50), max_size=40))
@settings(max_examples=30, deadline=None)
def test_pairwise_sum_property(xs):
    r = run_program(pairwise_sum_program(), [xs])
    assert r.output(0) == [sum(xs)]


# ---------------------------------------------------------------------------
# Compiler-era ISA extensions: semantics and BVRAMError paths
#
# The NSC->BVRAM compiler leans on these instructions; every malformed-length
# path must raise BVRAMError (never a bare assert or IndexError), because the
# differential harness distinguishes "undefined program" from "machine bug"
# by exception type.
# ---------------------------------------------------------------------------


def test_un_arith_semantics():
    r = _single_instr_run(isa.UnArith(dst=1, op="log2", src=0), [[0, 1, 2, 3, 1024]])
    assert r.registers[1].tolist() == [0, 0, 1, 1, 10]
    r = _single_instr_run(isa.UnArith(dst=1, op="sqrt", src=0), [[0, 1, 3, 4, 10**18]])
    assert r.registers[1].tolist() == [0, 1, 1, 2, 10**9]


def test_un_arith_rejects_unknown_op():
    with pytest.raises(ValueError):
        isa.UnArith(dst=1, op="exp", src=0)


def test_flag_merge_semantics():
    r = _single_instr_run(
        isa.FlagMerge(dst=3, flags=0, a=1, b=2), [[1, 0, 0, 1, 0], [10, 20], [5, 6, 7]]
    )
    assert r.registers[3].tolist() == [10, 5, 6, 20, 7]


def test_flag_merge_length_mismatches_raise():
    with pytest.raises(BVRAMError, match="flag_merge"):
        _single_instr_run(isa.FlagMerge(dst=3, flags=0, a=1, b=2), [[1, 0], [10, 20], []])
    with pytest.raises(BVRAMError, match="flag_merge"):
        _single_instr_run(isa.FlagMerge(dst=3, flags=0, a=1, b=2), [[1, 0], [10], [5, 6]])


def test_seg_scan_semantics():
    r = _single_instr_run(
        isa.SegScan(dst=2, op="+", data=0, segments=1), [[1, 1, 1, 5, 5], [3, 0, 2]]
    )
    assert r.registers[2].tolist() == [0, 1, 2, 0, 5]
    r = _single_instr_run(
        isa.SegScan(dst=2, op="max", data=0, segments=1), [[3, 1, 4, 1, 5], [5]]
    )
    assert r.registers[2].tolist() == [0, 3, 3, 4, 4]


def test_seg_reduce_semantics():
    r = _single_instr_run(
        isa.SegReduce(dst=2, op="+", data=0, segments=1), [[1, 2, 3, 4], [2, 0, 2]]
    )
    assert r.registers[2].tolist() == [3, 0, 7]
    r = _single_instr_run(
        isa.SegReduce(dst=2, op="max", data=0, segments=1), [[1, 7, 3, 4], [2, 0, 2]]
    )
    assert r.registers[2].tolist() == [7, 0, 4]


def test_segmented_descriptor_mismatch_raises():
    for instr in (
        isa.SegScan(dst=2, op="+", data=0, segments=1),
        isa.SegReduce(dst=2, op="+", data=0, segments=1),
    ):
        with pytest.raises(BVRAMError, match="segment descriptor"):
            _single_instr_run(instr, [[1, 2, 3], [2, 2]])


def test_trap_raises_its_message():
    p = isa.Program(n_registers=1, n_inputs=0, n_outputs=0)
    p.emit(isa.Trap(message="undefined: zip of unequal lengths"))
    with pytest.raises(BVRAMError, match="zip of unequal"):
        run_program(p, [])


def test_load_const_rejects_negative():
    p = isa.Program(n_registers=1, n_inputs=0, n_outputs=0)
    p.emit(isa.LoadConst(dst=0, value=-3))
    p.emit(isa.Halt())
    with pytest.raises(BVRAMError, match="natural"):
        run_program(p, [])


def test_right_shift_by_64_or_more_is_zero():
    """numpy's >> is undefined at >= 64 bits; the machine must define it as 0."""
    r = _single_instr_run(
        isa.Arith(dst=2, op=">>", a=0, b=1), [[1, 2**62, 5], [64, 100, 1]]
    )
    assert r.registers[2].tolist() == [0, 0, 2]


def test_bm_route_length_mismatches_raise():
    with pytest.raises(BVRAMError, match="bm_route"):
        _single_instr_run(isa.BmRoute(dst=3, data=0, counts=1, bound=2), [[1, 2], [1], [1]])
    with pytest.raises(BVRAMError, match="bm_route"):
        _single_instr_run(
            isa.BmRoute(dst=3, data=0, counts=1, bound=2), [[1, 2], [1, 2], [1, 1]]
        )


def test_sbm_route_length_mismatches_raise():
    with pytest.raises(BVRAMError, match="sbm_route"):
        _single_instr_run(
            isa.SbmRoute(dst=4, bound=0, counts=1, data=2, segments=3),
            [[0], [1, 1], [5, 6], [2]],
        )
    with pytest.raises(BVRAMError, match="sbm_route"):
        _single_instr_run(
            isa.SbmRoute(dst=4, bound=0, counts=1, data=2, segments=3),
            [[0], [1], [5, 6], [1]],
        )


def test_seg_reduce_sum_is_exact_and_traps_on_overflow():
    """Per-segment sums must be exact int64 (no float weights) and must trap
    on overflow exactly like arith '+', not wrap silently."""
    r = _single_instr_run(
        isa.SegReduce(dst=2, op="+", data=0, segments=1), [[2**53 + 1, 1], [2]]
    )
    assert r.registers[2].tolist() == [2**53 + 2]
    with pytest.raises(BVRAMError, match="overflow"):
        _single_instr_run(
            isa.SegReduce(dst=2, op="+", data=0, segments=1), [[2**62] * 3, [3]]
        )


def test_seg_scan_sum_traps_on_overflow():
    with pytest.raises(BVRAMError, match="overflow"):
        _single_instr_run(
            isa.SegScan(dst=2, op="+", data=0, segments=1), [[2**62] * 3, [3]]
        )


def test_log2_near_register_width_is_exact():
    """float64 rounds log2(2^63 - 1) up to 63.0; the machine must fix it."""
    r = _single_instr_run(
        isa.UnArith(dst=1, op="log2", src=0), [[2**63 - 1, 2**62, 2**62 - 1]]
    )
    assert r.registers[1].tolist() == [62, 62, 61]
