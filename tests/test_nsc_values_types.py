"""Unit and property tests for NSC types and S-objects (Section 3)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nsc import types as T
from repro.nsc import values as V


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


def test_scalar_and_flat_classification():
    assert T.NAT.is_scalar() and T.NAT.is_flat()
    assert T.UNIT.is_scalar()
    assert T.BOOL.is_scalar()
    assert not T.seq(T.NAT).is_scalar()
    assert T.seq(T.NAT).is_flat()
    assert not T.seq(T.seq(T.NAT)).is_flat()
    assert T.prod(T.seq(T.NAT), T.seq(T.BOOL)).is_flat()
    assert not T.prod(T.seq(T.seq(T.NAT)), T.NAT).is_flat()


def test_type_depth():
    assert T.type_depth(T.NAT) == 0
    assert T.type_depth(T.seq(T.NAT)) == 1
    assert T.type_depth(T.seq(T.seq(T.prod(T.NAT, T.NAT)))) == 2
    assert T.type_depth(T.prod(T.seq(T.NAT), T.seq(T.seq(T.NAT)))) == 2


def test_type_equality_and_str():
    assert T.seq(T.NAT) == T.seq(T.NAT)
    assert T.seq(T.NAT) != T.seq(T.BOOL)
    assert str(T.prod(T.NAT, T.seq(T.UNIT))) == "(N x [unit])"
    assert str(T.fun(T.NAT, T.BOOL)) == "N -> (unit + unit)"


def test_bool_is_unit_plus_unit():
    assert T.BOOL == T.sum_t(T.UNIT, T.UNIT)


# ---------------------------------------------------------------------------
# Values and sizes (the unit-cost size measure)
# ---------------------------------------------------------------------------


def test_value_sizes_match_definition():
    assert V.UNIT_VALUE.size == 1
    assert V.nat(42).size == 1
    assert V.pair(V.nat(1), V.nat(2)).size == 3
    assert V.VInl(V.nat(5)).size == 2
    assert V.VInr(V.UNIT_VALUE).size == 2
    assert V.vseq([]).size == 1
    assert V.vseq([V.nat(1), V.nat(2), V.nat(3)]).size == 4
    nested = V.vseq([V.vseq([V.nat(1)]), V.vseq([])])
    assert nested.size == 1 + 2 + 1


def test_true_false_encoding():
    assert V.TRUE == V.VInl(V.UNIT_VALUE)
    assert V.FALSE == V.VInr(V.UNIT_VALUE)
    assert V.truth(V.TRUE) is True
    assert V.truth(V.FALSE) is False


def test_from_to_python_roundtrip_simple():
    data = [1, 2, 3]
    assert V.to_python(V.from_python(data)) == data
    assert V.to_python(V.from_python((4, [1, 2]))) == (4, [1, 2])
    assert V.to_python(V.from_python(None)) is None
    assert V.to_python(V.from_python(True)) is True


def test_values_are_immutable_and_hashable():
    a = V.pair(V.nat(1), V.vseq([V.nat(2)]))
    b = V.pair(V.nat(1), V.vseq([V.nat(2)]))
    assert a == b
    assert hash(a) == hash(b)
    try:
        a.fst = V.nat(9)  # type: ignore[misc]
        raised = False
    except AttributeError:
        raised = True
    assert raised


def test_check_value_type():
    assert V.check_value_type(V.nat(3), T.NAT)
    assert not V.check_value_type(V.nat(3), T.UNIT)
    assert V.check_value_type(V.vseq([V.nat(1)]), T.seq(T.NAT))
    assert not V.check_value_type(V.vseq([V.UNIT_VALUE]), T.seq(T.NAT))
    assert V.check_value_type(V.TRUE, T.BOOL)
    assert V.check_value_type(
        V.pair(V.nat(1), V.vseq([])), T.prod(T.NAT, T.seq(T.NAT))
    )


def test_nat_list_and_back():
    xs = [5, 0, 7]
    assert V.seq_of_nats_to_list(V.nat_list(xs)) == xs


def test_vnat_rejects_negative():
    import pytest

    with pytest.raises(ValueError):
        V.VNat(-1)


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

nested_data = st.recursive(
    st.integers(min_value=0, max_value=1000),
    lambda children: st.lists(children, max_size=5),
    max_leaves=20,
)


@given(nested_data)
@settings(max_examples=60, deadline=None)
def test_from_python_roundtrip_property(data):
    assert V.to_python(V.from_python(data)) == data


@given(nested_data)
@settings(max_examples=60, deadline=None)
def test_size_is_positive_and_additive(data):
    v = V.from_python(data)
    assert v.size >= 1
    if isinstance(v, V.VSeq):
        assert v.size == 1 + sum(item.size for item in v.items)


@given(st.lists(st.integers(min_value=0, max_value=100), max_size=10))
@settings(max_examples=50, deadline=None)
def test_seq_equality_is_structural(xs):
    assert V.nat_list(xs) == V.nat_list(list(xs))
    assert V.nat_list(xs).size == len(xs) + 1
