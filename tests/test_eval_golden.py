"""Golden regression test for the Definition 3.1 cost model.

The (value, T, W) triples below were recorded from the original recursive
evaluator (with its free-variable memo recomputed per node — the id()-keyed
cache of the seed could serve a *stale* free-variable set after a dead AST
node's id was recycled, silently undercharging closures; the iterative engine
fixes that).  Definition 3.1 is deterministic, so any divergence here is an
engine bug, not measurement noise.
"""

import pytest

from golden_eval_programs import PROGRAMS
from repro.nsc import to_python

GOLDEN = {
    "while_double": (128, 100, 200),
    "map_square": ([1, 4, 9, 16, 25, 36, 49], 5, 65),
    "map_closure": ([32, 32, 32], 4, 314),
    "case_let": (9, 10, 19),
    "seq_ops": (([5, 1, 4, 2, 3, 9], [(1, 0), (2, 1)]), 51, 265),
    "reduce_add": (136, 584, 9291),
    "iota": ([0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12], 239, 3280),
    "m_route": ([10, 10, 30, 30, 30], 473, 3790),
    "quicksort_rec": ([0, 1, 2, 3, 4, 5, 6, 7, 8, 9], 723, 12955),
    "quicksort_translated": ([1, 1, 2, 3, 4, 5, 6, 9], 2178, 44897),
    "mergesort": ([1, 2, 3, 4, 5, 7, 8, 9], 2021, 30940),
    "merge": ([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 14, 16], 1357, 28608),
    "balanced_sum_rec": (66, 693, 9769),
    "balanced_sum_translated": (66, 1534, 29114),
    "skewed_sum_rec": (36, 1773, 14692),
    "skewed_sum_translated": (36, 3678, 53227),
    "halving_tail_translated": (1, 1260, 14273),
    "two_or_three_way": (36, 617, 6872),
}


@pytest.mark.parametrize("name,thunk", PROGRAMS, ids=[n for n, _ in PROGRAMS])
def test_golden_value_time_work(name, thunk):
    want_value, want_t, want_w = GOLDEN[name]
    out = thunk()
    assert to_python(out.value) == want_value
    assert (out.time, out.work) == (want_t, want_w)
