"""A battery of NSC programs exercised by the golden cost-model regression test.

Each entry is ``(name, thunk)`` where ``thunk()`` returns the evaluation
:class:`~repro.nsc.eval.Outcome`.  The golden (value, T, W) triples in
``tests/test_eval_golden.py`` were recorded from the original recursive
evaluator; the iterative engine must reproduce them exactly (Definition 3.1
is deterministic, so any divergence is a bug in the engine, not noise).
"""

from repro.algorithms.mergesort import merge_recfun, mergesort_recfun
from repro.algorithms.quicksort import quicksort_def
from repro.algorithms.schemata import balanced_sum, halving_tail, skewed_sum, two_or_three_way_sum
from repro.maprec.translate import translate
from repro.nsc import apply_function, evaluate, from_python
from repro.nsc import builder as B
from repro.nsc import lib
from repro.nsc.types import NAT, prod, seq


def _while_double():
    pred = B.lam("x", NAT, B.lt(B.v("x"), 100))
    body = B.lam("x", NAT, B.mul(B.v("x"), 2))
    return apply_function(B.while_(pred, body), from_python(1))


def _map_square():
    f = B.map_(B.lam("x", NAT, B.mul(B.v("x"), B.v("x"))))
    return apply_function(f, from_python([1, 2, 3, 4, 5, 6, 7]))


def _map_closure():
    body = B.lam("y", NAT, B.length_(B.v("xs")))
    return apply_function(B.map_(body), from_python([1, 2, 3]), {"xs": from_python(list(range(32)))})


def _case_let():
    prog = B.let(
        "x",
        B.add(1, 2),
        B.case_(B.inl(B.v("x"), NAT), "l", B.mul(B.v("l"), B.v("l")), "r", B.c(0)),
    )
    return evaluate(prog)


def _seq_ops():
    xs = B.nat_seq([5, 1, 4, 2, 3, 9])
    prog = B.pair(
        B.flatten_(B.split_(xs, B.nat_seq([2, 0, 3, 1]))),
        B.zip_(B.nat_seq([1, 2]), B.enumerate_(B.nat_seq([7, 8]))),
    )
    return evaluate(prog)


def _reduce_add():
    return apply_function(lib.reduce_add(), from_python(list(range(17))))


def _iota():
    return apply_function(lib.iota(), from_python(13))


def _m_route():
    return apply_function(
        lib.m_route(NAT), from_python(([2, 0, 3], [10, 20, 30]))
    )


def _quicksort_rec():
    from repro.algorithms.quicksort import run_quicksort

    return run_quicksort([5, 3, 8, 1, 9, 2, 7, 4, 6, 0])


def _quicksort_translated():
    from repro.algorithms.quicksort import run_quicksort_translated

    return run_quicksort_translated([3, 1, 4, 1, 5, 9, 2, 6])


def _mergesort():
    from repro.algorithms.mergesort import run_mergesort

    return run_mergesort([5, 3, 8, 1, 9, 2, 7, 4])


def _merge():
    from repro.algorithms.mergesort import run_merge

    return run_merge([1, 3, 5, 7, 9, 11], [2, 4, 6, 8, 10, 12, 14, 16])


def _balanced_sum_rec():
    return apply_function(balanced_sum().to_recfun(), from_python(list(range(12))))


def _balanced_sum_translated():
    return apply_function(translate(balanced_sum()), from_python(list(range(12))))


def _skewed_sum_rec():
    return apply_function(skewed_sum().to_recfun(), from_python(list(range(9))))


def _skewed_sum_translated():
    return apply_function(translate(skewed_sum()), from_python(list(range(9))))


def _halving_tail_translated():
    return apply_function(translate(halving_tail()), from_python(100))


def _two_or_three_way():
    return apply_function(two_or_three_way_sum().to_recfun(), from_python(list(range(9))))


PROGRAMS = [
    ("while_double", _while_double),
    ("map_square", _map_square),
    ("map_closure", _map_closure),
    ("case_let", _case_let),
    ("seq_ops", _seq_ops),
    ("reduce_add", _reduce_add),
    ("iota", _iota),
    ("m_route", _m_route),
    ("quicksort_rec", _quicksort_rec),
    ("quicksort_translated", _quicksort_translated),
    ("mergesort", _mergesort),
    ("merge", _merge),
    ("balanced_sum_rec", _balanced_sum_rec),
    ("balanced_sum_translated", _balanced_sum_translated),
    ("skewed_sum_rec", _skewed_sum_rec),
    ("skewed_sum_translated", _skewed_sum_translated),
    ("halving_tail_translated", _halving_tail_translated),
    ("two_or_three_way", _two_or_three_way),
]
