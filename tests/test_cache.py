"""Compile-cache coverage: correctness, key discipline, and adversarial inputs.

The cache may only ever change *when* a program is compiled, never *what*
runs: every test here is ultimately about that invariant.  The adversarial
half (truncated/bit-flipped artifacts, version-salt bumps, concurrent
writers, the size bound) pins the failure modes a shared on-disk store
meets in CI.
"""

from __future__ import annotations

import os
import pickle
import threading

import pytest

from repro.cache import CompileCache, cache_key, default_cache, fingerprint
from repro.cache import key as cache_key_mod
from repro.cache import store as cache_store_mod
from repro.compiler import compile_nsc
from repro.nsc import ast as A
from repro.nsc.lib import reduce_add
from repro.nsc.types import NAT, seq


def affine(var: str = "x") -> A.Lambda:
    return A.Lambda(
        var, NAT, A.BinOp("+", A.BinOp("*", A.Var(var), A.Const(3)), A.Const(1))
    )


def map_square() -> A.Lambda:
    return A.Lambda(
        "xs",
        seq(NAT),
        A.Apply(A.MapF(A.Lambda("x", NAT, A.BinOp("*", A.Var("x"), A.Var("x")))), A.Var("xs")),
    )


# ---------------------------------------------------------------------------
# keys


def test_fingerprint_alpha_invariant():
    assert fingerprint(affine("x")) == fingerprint(affine("renamed_binder"))


def test_fingerprint_distinguishes_structure_and_constants():
    base = fingerprint(affine())
    other = A.Lambda(
        "x", NAT, A.BinOp("+", A.BinOp("*", A.Var("x"), A.Const(4)), A.Const(1))
    )
    assert fingerprint(other) != base
    assert fingerprint(map_square()) != base


def test_cache_key_covers_every_knob():
    base = cache_key(affine(), eps=0.5, opt_level=2, batch_axis=False, backend=None)
    assert cache_key(affine("y"), eps=0.5, opt_level=2, batch_axis=False, backend=None) == base
    variants = [
        dict(eps=0.25, opt_level=2, batch_axis=False, backend=None),
        dict(eps=0.5, opt_level=0, batch_axis=False, backend=None),
        dict(eps=0.5, opt_level=2, batch_axis=True, backend=None),
        dict(eps=0.5, opt_level=2, batch_axis=False, backend="vector"),
    ]
    keys = {cache_key(affine(), **kw) for kw in variants}
    assert base not in keys and len(keys) == len(variants)


def test_cache_key_deep_program_no_recursion_error():
    body: A.Term = A.Var("x0")
    for i in range(5000):
        body = A.Let(f"x{i + 1}", A.BinOp("+", body, A.Const(1)), A.Var(f"x{i + 1}"))
    deep = A.Lambda("x0", NAT, body)
    assert len(fingerprint(deep)) == 64


# ---------------------------------------------------------------------------
# roundtrip + identity


def test_roundtrip_memo_and_disk(tmp_path):
    store = CompileCache(str(tmp_path))
    p1 = compile_nsc(affine(), cache=store)
    assert store.counters["misses"] == 1 and store.counters["stores"] == 1

    # same program (alpha-renamed): in-process memo hit, same object
    p2 = compile_nsc(affine("other"), cache=store)
    assert p2 is p1
    assert store.counters["memo_hits"] == 1

    # a fresh instance over the same directory = a new process: disk hit
    fresh = CompileCache(str(tmp_path))
    p3 = compile_nsc(affine(), cache=fresh)
    assert p3 is not p1
    assert fresh.counters["disk_hits"] == 1 and fresh.counters["misses"] == 0


@pytest.mark.parametrize("opt_level", [0, 2])
@pytest.mark.parametrize("backend", ["fused", "vector"])
def test_cached_runs_identical_to_fresh(tmp_path, opt_level, backend):
    """Cached programs are value- and T'/W'-identical across opt x backend."""
    fn = reduce_add()
    inputs = [list(range(13)), [], [5]]
    fresh_prog = compile_nsc(fn, opt_level=opt_level, backend=backend, cache=None)

    store = CompileCache(str(tmp_path))
    compile_nsc(fn, opt_level=opt_level, backend=backend, cache=store)
    store2 = CompileCache(str(tmp_path))  # simulate a new process: disk path
    cached_prog = compile_nsc(fn, opt_level=opt_level, backend=backend, cache=store2)
    assert store2.counters["disk_hits"] == 1

    for value in inputs:
        v_fresh, r_fresh = fresh_prog.run(value)
        v_cached, r_cached = cached_prog.run(value)
        assert str(v_cached) == str(v_fresh)
        assert (r_cached.time, r_cached.work) == (r_fresh.time, r_fresh.work)


def test_batched_twin_compiles_through_the_cache(tmp_path):
    store = CompileCache(str(tmp_path))
    prog = compile_nsc(affine(), cache=store)
    outs = prog.run_batch([1, 2, 3])
    assert [str(o) for o in outs] == ["4", "7", "10"]
    # width-1 program + its batch-axis twin are two artifacts
    assert store.snapshot()["disk_entries"] == 2

    # a warm restart serves BOTH from disk: zero compiles
    fresh = CompileCache(str(tmp_path))
    prog2 = compile_nsc(affine(), cache=fresh)
    outs2 = prog2.run_batch([1, 2, 3])
    assert [str(o) for o in outs2] == ["4", "7", "10"]
    assert fresh.counters["disk_hits"] == 2 and fresh.counters["misses"] == 0


def test_default_cache_env(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert default_cache() is None
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    store = default_cache()
    assert store is not None and store.path == str(tmp_path)
    assert default_cache() is store  # one shared instance per directory
    prog = compile_nsc(affine())  # the default plumbing: env decides
    assert getattr(prog, "_compile_cache") is store
    assert store.counters["stores"] == 1


def test_explicit_none_disables(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    prog = compile_nsc(affine(), cache=None)
    assert not hasattr(prog, "_compile_cache")
    store = default_cache()
    assert store.counters["stores"] == 0 and store.snapshot()["disk_entries"] == 0


def test_pickle_drops_the_store_handle(tmp_path):
    store = CompileCache(str(tmp_path))
    prog = compile_nsc(affine(), cache=store)
    clone = pickle.loads(pickle.dumps(prog))
    assert not hasattr(clone, "_compile_cache")
    v, _ = clone.run(7)
    assert str(v) == "22"


# ---------------------------------------------------------------------------
# adversarial: corruption


def _artifact_paths(store: CompileCache) -> list[str]:
    return sorted(p for _, _, p in store._artifacts())


def test_truncated_artifact_quarantined_not_crashed(tmp_path):
    store = CompileCache(str(tmp_path))
    compile_nsc(affine(), cache=store)
    (path,) = _artifact_paths(store)
    blob = open(path, "rb").read()
    with open(path, "wb") as fh:
        fh.write(blob[: len(blob) // 2])

    fresh = CompileCache(str(tmp_path))
    prog = compile_nsc(affine(), cache=fresh)  # miss -> recompile, no crash
    assert str(prog.run(7)[0]) == "22"
    assert fresh.counters["corrupt"] == 1 and fresh.counters["misses"] == 1
    # the corrupt envelope was moved aside for triage (the recompile then
    # re-stored a valid artifact at the original path)
    qdir = os.path.join(str(tmp_path), "quarantine")
    assert any(name.endswith(".reason") for name in os.listdir(qdir))
    # the recompile re-stored a valid artifact: next process hits clean
    again = CompileCache(str(tmp_path))
    compile_nsc(affine(), cache=again)
    assert again.counters["disk_hits"] == 1 and again.counters["corrupt"] == 0


def test_bitflipped_payload_quarantined(tmp_path):
    store = CompileCache(str(tmp_path))
    compile_nsc(affine(), cache=store)
    (path,) = _artifact_paths(store)
    blob = bytearray(open(path, "rb").read())
    blob[-1] ^= 0xFF  # flip one payload bit: checksum must catch it
    with open(path, "wb") as fh:
        fh.write(bytes(blob))

    fresh = CompileCache(str(tmp_path))
    prog = compile_nsc(affine(), cache=fresh)
    assert str(prog.run(7)[0]) == "22"
    assert fresh.counters["corrupt"] == 1


def test_garbage_magic_quarantined(tmp_path):
    store = CompileCache(str(tmp_path))
    compile_nsc(affine(), cache=store)
    (path,) = _artifact_paths(store)
    with open(path, "wb") as fh:
        fh.write(b"not an envelope at all")
    fresh = CompileCache(str(tmp_path))
    compile_nsc(affine(), cache=fresh)
    assert fresh.counters["corrupt"] == 1


# ---------------------------------------------------------------------------
# adversarial: version salt


def test_codegen_version_bump_is_a_miss(tmp_path, monkeypatch):
    store = CompileCache(str(tmp_path))
    compile_nsc(affine(), cache=store)
    monkeypatch.setattr(cache_key_mod, "CODEGEN_VERSION", 10_000)
    fresh = CompileCache(str(tmp_path))
    compile_nsc(affine(), cache=fresh)
    # the old artifact was never even read — different content address
    assert fresh.counters["misses"] == 1 and fresh.counters["disk_hits"] == 0
    assert fresh.snapshot()["disk_entries"] == 2  # old + new coexist


def test_isa_version_bump_is_a_miss(tmp_path, monkeypatch):
    store = CompileCache(str(tmp_path))
    compile_nsc(affine(), cache=store)
    monkeypatch.setattr(cache_key_mod, "ISA_VERSION", 10_000)
    fresh = CompileCache(str(tmp_path))
    compile_nsc(affine(), cache=fresh)
    assert fresh.counters["misses"] == 1 and fresh.counters["disk_hits"] == 0


# ---------------------------------------------------------------------------
# adversarial: races + eviction


def test_concurrent_writers_race_safely(tmp_path):
    """N threads over two instances of one directory: no torn artifacts."""
    stores = [CompileCache(str(tmp_path)) for _ in range(2)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(8)

    def writer(i: int) -> None:
        try:
            barrier.wait()
            for _ in range(5):
                prog = compile_nsc(affine(), cache=stores[i % 2])
                assert str(prog.run(7)[0]) == "22"
        except BaseException as e:  # noqa: BLE001 - collected for the assert
            errors.append(e)

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # whoever won the rename, the surviving artifact is valid
    fresh = CompileCache(str(tmp_path))
    prog = compile_nsc(affine(), cache=fresh)
    assert fresh.counters["disk_hits"] == 1 and fresh.counters["corrupt"] == 0
    assert str(prog.run(7)[0]) == "22"
    assert os.listdir(os.path.join(str(tmp_path), "tmp")) == []  # no litter


def test_eviction_respects_size_bound(tmp_path):
    programs = [affine(), map_square(), reduce_add()]
    probe = CompileCache(str(tmp_path / "probe"))
    for fn in programs:
        compile_nsc(fn, cache=probe)
    sizes = sorted(size for _, size, _ in probe._artifacts())
    # bound admits the two smallest artifacts but not all three
    max_bytes = sizes[0] + sizes[1] + sizes[2] - 1

    store = CompileCache(str(tmp_path / "real"), max_bytes=max_bytes)
    for i, fn in enumerate(programs):
        compile_nsc(fn, cache=store)
        # deterministic LRU order: artifact i is strictly newest so far
        for mtime, _, path in store._artifacts():
            os.utime(path, (mtime, 1_000_000 + i))
    snap = store.snapshot()
    assert snap["evictions"] >= 1
    assert snap["disk_bytes"] <= max_bytes
    # the newest artifact (reduce_add, touched last) survived
    store.clear_memo()
    fresh = CompileCache(str(tmp_path / "real"), max_bytes=max_bytes)
    compile_nsc(reduce_add(), cache=fresh)
    assert fresh.counters["disk_hits"] == 1


def test_hit_refreshes_lru_position(tmp_path):
    store = CompileCache(str(tmp_path))
    compile_nsc(affine(), cache=store)
    (path,) = _artifact_paths(store)
    os.utime(path, (1, 1))  # pretend it is ancient
    fresh = CompileCache(str(tmp_path))
    compile_nsc(affine(), cache=fresh)  # disk hit bumps the mtime
    assert os.stat(path).st_mtime > 1


def test_rejects_nonpositive_bound(tmp_path):
    with pytest.raises(cache_store_mod.CacheError):
        CompileCache(str(tmp_path), max_bytes=0)
