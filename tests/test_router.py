"""The multi-process router: digest routing, failover, warm-up, drain-restart.

The router's contract: routing is a *pure function* of the program digest
and the set of healthy planes (same program, same plane, every time — the
property that makes per-plane caches worth warming); an unhealthy plane's
digests fail over deterministically to ring neighbours and come back after
the restart; warm-up reaches every plane and survives a drain-restart; and
the aggregated metrics pool raw latency windows rather than averaging
per-plane percentiles.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.compiler import BatchError, compile_nsc
from repro.nsc import builder as B
from repro.nsc.types import NAT, SeqType
from repro.obs.export import aggregate_server_snapshots
from repro.serving import Router, RouterClosed
from repro.serving.metrics import ServerMetrics


def _affine_fn(mul=7, add=3):
    x = B.gensym("x")
    return B.map_(B.lam(x, NAT, B.mod(B.add(B.mul(B.v(x), mul), add), 101)))


def _get_fn():
    x = B.gensym("x")
    return B.lam(x, SeqType(NAT), B.get_(B.v(x)))


@pytest.fixture(scope="module")
def router():
    r = Router(planes=2, workers_per_plane=1)
    yield r
    asyncio.run(r.close())
    assert r.leaked_segments == []


def test_routing_is_deterministic(router):
    prog = compile_nsc(_affine_fn())
    digest = router.digest(prog)
    assert router.digest(prog) == digest  # memoized and stable
    plane = router.plane_for(digest)
    assert all(router.plane_for(digest) is plane for _ in range(10))


def test_distinct_programs_spread_over_planes(router):
    # 16 distinct programs through a 2-plane/96-vnode ring: both planes
    # must receive some share (a fully lopsided split means the hash or the
    # ring walk is broken)
    progs = [compile_nsc(_affine_fn(mul=3 + i, add=i)) for i in range(16)]
    homes = {router.plane_for(router.digest(p)).index for p in progs}
    assert homes == {0, 1}


def test_run_batch_routes_and_rebases_traps(router):
    get_prog = compile_nsc(_get_fn())
    batch = [[i] for i in range(8)]
    batch[5] = []  # traps
    results = router.run_batch(get_prog, batch, shards=2, return_exceptions=True)
    for i, res in enumerate(results):
        if i == 5:
            assert isinstance(res, BatchError) and res.index == 5
        else:
            assert res == get_prog.run(batch[i])[0]
    with pytest.raises(BatchError) as ei:
        router.run_batch(get_prog, batch, shards=2)
    assert ei.value.index == 5


def test_failover_and_recovery(router):
    prog = compile_nsc(_affine_fn(mul=11, add=5))
    digest = router.digest(prog)
    home = router.plane_for(digest)
    other = router._planes[1 - home.index]
    before = router.failovers
    home.healthy = False
    try:
        failed_over = router.plane_for(digest)
        assert failed_over is other
        assert router.failovers == before + 1
        # the routed request actually lands and computes on the neighbour
        batch = [[1, 2, 3]]
        assert router.run_batch(prog, batch) == prog.run_batch(batch)
    finally:
        home.healthy = True
    assert router.plane_for(digest) is home  # recovery restores the home plane


def test_submit_through_scheduler(router):
    prog = compile_nsc(_affine_fn())

    async def main():
        results = await asyncio.gather(
            *(router.submit(prog, [i, i + 1]) for i in range(12))
        )
        return results

    results = asyncio.run(main())
    for i, res in enumerate(results):
        assert res == prog.run([i, i + 1])[0]


def test_warm_and_drain_restart(tmp_path):
    async def main():
        r = Router(planes=2, workers_per_plane=1, cache=str(tmp_path))
        try:
            fn = _affine_fn()
            loaded = r.warm([fn])
            assert loaded == 2  # every plane's single worker loaded it
            batch = [[1, 2], [3, 4]]
            expected = r.run_batch(fn, batch)

            leaked = await r.restart_plane(0)
            assert leaked == []
            assert r._planes[0].restarts == 1 and r._planes[0].healthy
            # the rebuilt plane was re-warmed from the remembered set
            assert r.warm_loads >= 3
            assert r.run_batch(fn, batch) == expected

            report = r.health_check()
            assert report[0]["healthy"] and report[1]["healthy"]
            assert all(v["workers_alive"] == 1 for v in report.values())
        finally:
            await r.close()
        assert r.leaked_segments == []

    asyncio.run(main())


def test_health_check_respawns_dead_workers(router):
    victim = router._planes[0].executor._workers[0]
    victim.process.terminate()
    victim.process.join(timeout=5)
    report = router.health_check()
    assert report[0]["respawned"] == 1
    assert all(v["workers_alive"] == 1 for v in report.values())


def test_metrics_endpoint_aggregates(router):
    prog = compile_nsc(_affine_fn())

    async def main():
        await asyncio.gather(*(router.submit(prog, [i]) for i in range(8)))
        ct_json, body = await router.metrics_endpoint("json")
        ct_prom, prom = await router.metrics_endpoint("prometheus")
        return ct_json, body, ct_prom, prom

    ct_json, body, ct_prom, prom = asyncio.run(main())
    import json

    assert ct_json == "application/json"
    doc = json.loads(body)
    assert doc["aggregate"]["completed"] == sum(
        p["server"]["completed"] for p in doc["planes"]
    )
    assert doc["router"]["planes"] == 2
    assert doc["router"]["routed"] > 0
    assert len(doc["planes"]) == 2

    assert ct_prom.startswith("text/plain")
    assert "repro_router_completed" in prom
    assert 'plane="0"' in prom and 'plane="1"' in prom
    with pytest.raises(ValueError):
        asyncio.run(router.metrics_endpoint("xml"))


def test_aggregate_pools_raw_latencies():
    # two planes with very different tails: the pooled p99 must come from
    # the union of the windows, not an average of per-plane percentiles
    fast, slow = ServerMetrics(), ServerMetrics()
    for _ in range(99):
        fast.observe_request(0.001, ok=True)
    for _ in range(10):
        slow.observe_request(0.001, ok=True)
    slow.observe_request(1.0, ok=True)  # the lightly-loaded plane's p99
    snaps = [fast.snapshot(), slow.snapshot()]
    agg = aggregate_server_snapshots(
        snaps, latencies=[list(fast._latencies), list(slow._latencies)]
    )
    assert agg["completed"] == 110
    # pooled: the outlier is the top 1% of 110 samples -> p99 stays 1ms
    assert agg["p99_latency_s"] == pytest.approx(0.001)
    # but it dominates the max-of-planes fallback (no raw windows provided)
    fallback = aggregate_server_snapshots(snaps)
    assert fallback["p99_latency_s"] == pytest.approx(1.0)


def test_closed_router_rejects():
    async def main():
        r = Router(planes=1, workers_per_plane=1)
        await r.close()
        await r.close()  # idempotent
        prog = compile_nsc(_affine_fn())
        with pytest.raises(RouterClosed):
            r.run_batch(prog, [[1]])
        with pytest.raises(RouterClosed):
            await r.submit(prog, [1])
        with pytest.raises(RouterClosed):
            r.warm([prog])

    asyncio.run(main())


def test_router_rejects_bad_config():
    with pytest.raises(ValueError):
        Router(planes=0)
    with pytest.raises(ValueError):
        Router(planes=1, virtual_nodes=0)
