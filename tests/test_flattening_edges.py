"""Edge cases of the Map Lemma module (:mod:`repro.sa.flattening`, Lemma 7.2).

Targets the corners the main E6 experiment never visits: empty inputs,
single-element segments, extreme ``eps`` values and elements that finish in
zero iterations — all three ``seq_while_*`` schemes must agree with the
scalar oracle on every one of them.
"""

import numpy as np
import pytest

from repro.sa.flattening import (
    CostCounter,
    SegmentedVector,
    python_while_reference,
    seq_bm_route,
    seq_filter,
    seq_lengths,
    seq_map_scalar,
    seq_while_simple,
    seq_while_staged,
    seq_while_unbounded,
)


# ---------------------------------------------------------------------------
# SegmentedVector structure
# ---------------------------------------------------------------------------


def test_segmented_vector_empty_roundtrip():
    sv = SegmentedVector.from_nested([])
    assert len(sv) == 0 and sv.total == 0
    assert sv.to_nested() == []


def test_segmented_vector_with_empty_segments():
    nested = [[], [1], [], [2, 3], []]
    sv = SegmentedVector.from_nested(nested)
    assert sv.segments.tolist() == [0, 1, 0, 2, 0]
    assert sv.to_nested() == nested


def test_seq_map_scalar_over_all_empty_segments():
    sv = SegmentedVector.from_nested([[], [], []])
    cost = CostCounter()
    out = seq_map_scalar(sv, lambda d: d + 1, cost)
    assert out.to_nested() == [[], [], []]
    assert cost.time == 1 and cost.work == 0


def test_seq_lengths_and_filter_on_singletons():
    sv = SegmentedVector.from_nested([[4], [0], [9]])
    cost = CostCounter()
    assert seq_lengths(sv, cost).tolist() == [1, 1, 1]
    out = seq_filter(sv, lambda d: d > 0, cost)
    assert out.to_nested() == [[4], [], [9]]


def test_seq_bm_route_zero_counts_drop_segments():
    sv = SegmentedVector.from_nested([[1, 2], [3], [4, 5, 6]])
    cost = CostCounter()
    out = seq_bm_route(sv, np.array([0, 2, 0]), cost)
    assert out.to_nested() == [[3], [3]]
    with pytest.raises(ValueError):
        seq_bm_route(sv, np.array([1, 1]), cost)


# ---------------------------------------------------------------------------
# The while schemes at the edges
# ---------------------------------------------------------------------------

_PRED = lambda v: v > 1  # noqa: E731
_STEP = lambda v: v >> 1  # noqa: E731


def _all_schemes(values, eps):
    return {
        "unbounded": seq_while_unbounded(values, _PRED, _STEP),
        "simple": seq_while_simple(values, _PRED, _STEP),
        "staged": seq_while_staged(values, _PRED, _STEP, eps),
    }


@pytest.mark.parametrize("eps", [1.0, 0.5, 0.05])
def test_while_schemes_agree_on_empty_input(eps):
    oracle, _ = python_while_reference([], _PRED, _STEP)
    for name, res in _all_schemes([], eps).items():
        assert res.values.tolist() == oracle, name
        assert res.iterations == 0


@pytest.mark.parametrize("eps", [1.0, 0.5, 0.05])
def test_while_schemes_agree_on_zero_iteration_elements(eps):
    # 0 and 1 fail the predicate before the first step; mixtures exercise the
    # initial-finishers sink path of every scheme
    values = [0, 1, 0, 1, 1]
    oracle, _ = python_while_reference(values, _PRED, _STEP)
    for name, res in _all_schemes(values, eps).items():
        assert res.values.tolist() == oracle, name
        assert res.iterations == 0


@pytest.mark.parametrize("eps", [1.0, 0.5, 0.25, 0.05])
def test_while_schemes_agree_on_mixed_input(eps):
    values = [0, 1, 7, 1024, 2, 1, 65536, 3]
    oracle, _ = python_while_reference(values, _PRED, _STEP)
    for name, res in _all_schemes(values, eps).items():
        assert res.values.tolist() == oracle, name


def test_staged_eps_one_is_single_stage():
    """eps = 1 means r = 1 stage: the final accumulator is touched once."""
    values = list(range(1, 65))
    res = seq_while_staged(values, _PRED, _STEP, 1.0)
    oracle, _ = python_while_reference(values, _PRED, _STEP)
    assert res.values.tolist() == oracle
    assert res.cost.max_registers == 3  # bounded registers regardless of eps


def test_staged_tiny_eps_flushes_every_batch():
    """eps -> 0 makes every batch its own stage; values still agree and the
    register bound stays 3 (the point of Lemma 7.2)."""
    values = list(range(1, 65))
    res = seq_while_staged(values, _PRED, _STEP, 0.01)
    oracle, _ = python_while_reference(values, _PRED, _STEP)
    assert res.values.tolist() == oracle
    assert res.cost.max_registers == 3


def test_staged_eps_out_of_range_raises():
    with pytest.raises(ValueError):
        seq_while_staged([1, 2], _PRED, _STEP, 0.0)
    with pytest.raises(ValueError):
        seq_while_staged([1, 2], _PRED, _STEP, 1.5)


def test_staged_work_between_unbounded_and_simple_on_skewed_profile():
    """On a maximally skewed finishing profile (countdown: every element has a
    distinct finishing time, so there are ~n batches) the staged scheme must
    beat the naive accumulator while paying more than the unbounded ideal."""
    pred = lambda v: v > 0  # noqa: E731
    step = lambda v: v - 1  # noqa: E731
    values = list(range(1, 129))
    sizes = np.full(len(values), 16)
    base = seq_while_unbounded(values, pred, step, sizes).cost.work
    naive = seq_while_simple(values, pred, step, sizes).cost.work
    staged = seq_while_staged(values, pred, step, 0.5, sizes).cost.work
    assert base <= staged <= naive
    # and the Lemma 7.2 margin is substantive, not a tie
    assert staged < 0.5 * naive


def test_result_sizes_validation():
    with pytest.raises(ValueError):
        seq_while_staged([1, 2, 3], _PRED, _STEP, 0.5, result_sizes=[1, 2])
