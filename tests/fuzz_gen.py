"""Seeded random generator of well-typed NSC programs (the fuzz corpus).

Every program the generator emits is

* **well-typed by construction** — generation is type-directed, so
  ``infer_function``/``compile_nsc`` must accept it (a ``CompileError`` in
  the battery is itself a bug: either the generator left the supported
  fragment or the fragment shrank);
* **terminating** — ``while`` loops come only from templates with a
  monotone progress argument (strictly decreasing state with a ``> t``
  predicate, strictly increasing state with a ``< bound`` predicate, or
  Collatz from inputs small enough to be tabulated);
* **int64-safe on the success path** — the interpreter computes with
  unbounded naturals while the machine traps on int64 overflow, so a value
  divergence there would be a *model* difference, not a bug.  Every ``*``
  is therefore emitted modulo a small constant and all other growth is
  bounded (inputs < 1000, constants <= 20, additive chains of bounded
  depth), keeping every intermediate far below ``2**63``.

Traps, on the other hand, are deliberately generated: division/modulo by a
possibly-zero term, ``get`` of a possibly-non-singleton, ``zip`` of
possibly-different lengths and ``split`` with a possibly-mismatched count
vector each appear with small probability.  The battery asserts **trap
equality** (every engine traps on exactly the same inputs), which is how the
compiler's trap-guard emission stays honest under random programs.

The per-case ``random.Random(seed)`` stream is the only source of
randomness, so a failing case is reproduced by its seed alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import random

from repro.nsc import ast as A
from repro.nsc import builder as B
from repro.nsc import lib
from repro.nsc.types import BOOL, NAT, ProdType, SeqType, Type

NSEQ = SeqType(NAT)
NPAIR = ProdType(NAT, NAT)

#: moduli used to clamp every generated multiplication
_MUL_MODS = (97, 251, 1009, 65537, (1 << 20) + 7)

#: input domains the generator draws from
DOMAINS = (NAT, NSEQ, NPAIR, ProdType(NSEQ, NAT))

#: result types the generator targets
CODOMAINS = (NAT, NSEQ, BOOL, NPAIR)


@dataclass(frozen=True)
class FuzzCase:
    """One generated program plus a small input set (plain Python data)."""

    seed: int
    fn: A.Function
    dom: Type
    inputs: tuple[object, ...]


class _Gen:
    """Type-directed term generator over one seeded rng."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    # -- helpers -------------------------------------------------------------

    def _maybe(self, p: float) -> bool:
        return self.rng.random() < p

    def _vars(self, scope: list[tuple[A.Term, Type]], t: Type) -> list[A.Term]:
        return [term for term, vt in scope if vt == t]

    # -- N -------------------------------------------------------------------

    def gen_nat(self, depth: int, scope: list) -> A.Term:
        rng = self.rng
        nat_vars = self._vars(scope, NAT)
        if depth <= 0:
            if nat_vars and self._maybe(0.6):
                return rng.choice(nat_vars)
            return B.c(rng.randint(0, 20))
        pick = rng.random()
        if pick < 0.14 and nat_vars:
            return rng.choice(nat_vars)
        if pick < 0.24:
            return B.c(rng.randint(0, 20))
        if pick < 0.52:
            op = rng.choice(["+", "-", "min", "max", "*", "/", "mod", ">>"])
            a = self.gen_nat(depth - 1, scope)
            b = self.gen_nat(depth - 1, scope)
            if op == "*":
                # clamp: the interpreter has bignums, the machine has int64
                return B.mod(B.mul(a, b), B.c(rng.choice(_MUL_MODS)))
            if op in ("/", "mod") and not self._maybe(0.25):
                # usually guard the divisor away from zero; sometimes leave
                # the trap in on purpose (trap-equality coverage)
                b = B.add(b, B.c(1))
            return A.BinOp(op, a, b)
        if pick < 0.62:
            return B.if_(
                self.gen_bool(depth - 1, scope),
                self.gen_nat(depth - 1, scope),
                self.gen_nat(depth - 1, scope),
            )
        if pick < 0.72:
            return B.length_(self.gen_seq(depth - 1, scope))
        if pick < 0.80:
            return B.app(lib.reduce_add(), self.gen_seq(depth - 1, scope))
        if pick < 0.88:
            # while over a N state, from a terminating template.  The init is
            # clamped below 1000 so even the subtract-by-k template iterates
            # a bounded number of times (an unclamped init can reach ~2**24
            # through mod-wrapped products, and millions of iterations would
            # blow the machine's max_steps while the interpreter grinds on —
            # a false divergence between the cost models, not a bug).
            init = B.mod(self.gen_nat(depth - 1, scope), B.c(1000))
            return B.app(self.gen_while_nat(depth - 1, scope), init)
        if pick < 0.93:
            if self._maybe(0.3):
                # risky get: traps unless the sequence is a singleton
                return B.get_(self.gen_seq(depth - 1, scope))
            return B.get_(B.single(self.gen_nat(depth - 1, scope)))
        name = B.gensym("n")
        bound = self.gen_nat(depth - 1, scope)
        body = self.gen_nat(depth - 1, scope + [(B.v(name), NAT)])
        return B.let(name, bound, body)

    # -- B -------------------------------------------------------------------

    def gen_bool(self, depth: int, scope: list) -> A.Term:
        rng = self.rng
        if depth <= 0:
            return B.true() if self._maybe(0.5) else B.false()
        pick = rng.random()
        if pick < 0.55:
            cmp = rng.choice([B.eq, B.le, B.lt, B.ge, B.gt])
            return cmp(self.gen_nat(depth - 1, scope), self.gen_nat(depth - 1, scope))
        if pick < 0.70:
            comb = rng.choice([B.and_, B.or_])
            return comb(self.gen_bool(depth - 1, scope), self.gen_bool(depth - 1, scope))
        if pick < 0.80:
            return B.not_(self.gen_bool(depth - 1, scope))
        if pick < 0.90:
            return B.eq(self.gen_bool(depth - 1, scope), self.gen_bool(depth - 1, scope))
        return B.is_zero(self.gen_nat(depth - 1, scope))

    # -- (N, N) --------------------------------------------------------------

    def gen_pair(self, depth: int, scope: list) -> A.Term:
        pair_vars = self._vars(scope, NPAIR)
        if pair_vars and self._maybe(0.25):
            return self.rng.choice(pair_vars)
        return B.pair(self.gen_nat(depth - 1, scope), self.gen_nat(depth - 1, scope))

    # -- [N] -----------------------------------------------------------------

    def gen_seq(self, depth: int, scope: list) -> A.Term:
        rng = self.rng
        seq_vars = self._vars(scope, NSEQ)
        if depth <= 0:
            if seq_vars and self._maybe(0.6):
                return rng.choice(seq_vars)
            return B.nat_seq([rng.randint(0, 20) for _ in range(rng.randint(0, 4))])
        pick = rng.random()
        if pick < 0.14 and seq_vars:
            return rng.choice(seq_vars)
        if pick < 0.22:
            return B.nat_seq([rng.randint(0, 20) for _ in range(rng.randint(0, 5))])
        if pick < 0.27:
            return B.single(self.gen_nat(depth - 1, scope))
        if pick < 0.34:
            return B.append(self.gen_seq(depth - 1, scope), self.gen_seq(depth - 1, scope))
        if pick < 0.41:
            return B.enumerate_(self.gen_seq(depth - 1, scope))
        if pick < 0.58:
            return self.gen_map(depth, scope)
        if pick < 0.68:
            # filter: case under map, the packed sub-context path
            z = B.gensym("z")
            pred = B.lam(z, NAT, self.gen_bool(depth - 1, self._map_scope(scope) + [(B.v(z), NAT)]))
            return B.app(lib.filter_fn(pred, NAT), self.gen_seq(depth - 1, scope))
        if pick < 0.78:
            return self.gen_zip_add(depth, scope)
        if pick < 0.88:
            return self.gen_split_flatten(depth, scope)
        # while whose state is the whole sequence: drop elements until short
        s = B.gensym("s")
        k = rng.randint(1, 3)
        pred = B.lam(s, NSEQ, B.gt(B.length_(B.v(s)), B.c(k)))
        body = B.lam(s, NSEQ, B.app(lib.tail(NAT), B.v(s)))
        return B.app(B.while_(pred, body), self.gen_seq(depth - 1, scope))

    def _map_scope(self, scope: list) -> list:
        """The closure a generated map body may capture.

        Scalar (N) bindings only: nesting-polymorphic closures over
        *sequences* are the flattener's replication path, which the curated
        difftest suite covers; keeping random map bodies scalar-closed keeps
        every generated program inside the fragment by construction.
        """
        return [(term, t) for term, t in scope if t == NAT]

    def gen_map(self, depth: int, scope: list) -> A.Term:
        x = B.gensym("x")
        if self._maybe(0.3):
            # map(while(...)): the Lemma 7.2 staged path.  Same iteration
            # bound as the root-level while: clamp every element below 1000
            # before it becomes a loop state.
            m = B.gensym("m")
            clamp = B.map_(B.lam(m, NAT, B.mod(B.v(m), B.c(1000))))
            fn: A.Function = B.map_(self.gen_while_nat(depth - 1, scope))
            return B.app(fn, B.app(clamp, self.gen_seq(depth - 1, scope)))
        body = self.gen_nat(depth - 1, self._map_scope(scope) + [(B.v(x), NAT)])
        fn = B.map_(B.lam(x, NAT, body))
        return B.app(fn, self.gen_seq(depth - 1, scope))

    def gen_zip_add(self, depth: int, scope: list) -> A.Term:
        p = B.gensym("p")
        combine = B.map_(B.lam(p, NPAIR, B.add(B.fst(B.v(p)), B.snd(B.v(p)))))
        if self._maybe(0.25):
            # risky: independent sequences, traps when lengths differ
            left = self.gen_seq(depth - 1, scope)
            right = self.gen_seq(depth - 1, scope)
            return B.app(combine, B.zip_(left, right))
        # safe: zip a let-bound sequence with itself
        s = B.gensym("zs")
        bound = self.gen_seq(depth - 1, scope)
        return B.let(s, bound, B.app(combine, B.zip_(B.v(s), B.v(s))))

    def gen_split_flatten(self, depth: int, scope: list) -> A.Term:
        data = self.gen_seq(depth - 1, scope)
        if self._maybe(0.25):
            # risky: literal counts, traps unless they happen to sum right
            counts = B.nat_seq(
                [self.rng.randint(0, 3) for _ in range(self.rng.randint(0, 3))]
            )
            return B.flatten_(B.split_(data, counts))
        # safe: one segment holding the whole sequence
        s = B.gensym("ds")
        return B.let(
            s, data, B.flatten_(B.split_(B.v(s), B.single(B.length_(B.v(s)))))
        )

    # -- while templates -----------------------------------------------------

    def gen_while_nat(self, depth: int, scope: list) -> A.WhileF:
        """A ``while`` over a N state with a termination argument built in."""
        rng = self.rng
        x = B.gensym("w")
        kind = rng.randrange(3)
        if kind == 0:  # strictly decreasing
            t = rng.randint(0, 3)
            pred = B.lam(x, NAT, B.gt(B.v(x), B.c(t)))
            step = rng.choice(
                [
                    lambda v: B.div(v, B.c(2)),
                    lambda v: B.rshift(v, B.c(1)),
                    lambda v: B.sub(v, B.c(rng.randint(1, 3))),
                ]
            )
            body = B.lam(x, NAT, step(B.v(x)))
        elif kind == 1:  # strictly increasing toward a bound
            bound = rng.randint(10, 300)
            pred = B.lam(x, NAT, B.lt(B.v(x), B.c(bound)))
            if self._maybe(0.5):
                body = B.lam(x, NAT, B.add(B.v(x), B.c(rng.randint(1, 7))))
            else:
                body = B.lam(x, NAT, B.add(B.mul(B.v(x), B.c(2)), B.c(1)))
        else:  # Collatz (inputs are < 1000, trajectories are bounded)
            pred = B.lam(x, NAT, B.gt(B.v(x), B.c(1)))
            body = B.lam(
                x,
                NAT,
                B.if_(
                    B.eq(B.mod(B.v(x), B.c(2)), B.c(0)),
                    B.div(B.v(x), B.c(2)),
                    B.add(B.mul(B.v(x), B.c(3)), B.c(1)),
                ),
            )
        return B.while_(pred, body)

    # -- dispatch ------------------------------------------------------------

    def gen_term(self, t: Type, depth: int, scope: list) -> A.Term:
        if t == NAT:
            return self.gen_nat(depth, scope)
        if t == NSEQ:
            return self.gen_seq(depth, scope)
        if t == BOOL:
            return self.gen_bool(depth, scope)
        if t == NPAIR:
            return self.gen_pair(depth, scope)
        raise AssertionError(f"no generator for type {t}")


def _scope_for(param: str, dom: Type) -> list[tuple[A.Term, Type]]:
    """The bindings visible in a generated body: the parameter, destructured."""
    x = B.v(param)
    if dom == NAT or dom == NSEQ:
        return [(x, dom)]
    if isinstance(dom, ProdType):
        return [
            (x, dom),
            (B.fst(x), dom.left),
            (B.snd(x), dom.right),
        ]
    raise AssertionError(f"no scope rule for domain {dom}")


def _gen_input(rng: random.Random, t: Type, edge: bool) -> object:
    """One plain-Python input of type ``t`` (< 1000 everywhere, see module doc)."""
    if t == NAT:
        return rng.choice([0, 1]) if edge else rng.randint(0, 999)
    if t == NSEQ:
        n = rng.choice([0, 1]) if edge else rng.randint(2, 8)
        return [rng.randint(0, 999) for _ in range(n)]
    if isinstance(t, ProdType):
        return (_gen_input(rng, t.left, edge), _gen_input(rng, t.right, edge))
    raise AssertionError(f"no input generator for type {t}")


def gen_case(seed: int) -> FuzzCase:
    """The deterministic fuzz case for ``seed``."""
    rng = random.Random(seed)
    g = _Gen(rng)
    dom = rng.choice(DOMAINS)
    cod = rng.choice(CODOMAINS)
    depth = rng.randint(2, 4)
    param = B.gensym("arg")
    body = g.gen_term(cod, depth, _scope_for(param, dom))
    fn = B.lam(param, dom, body)
    inputs = tuple(
        _gen_input(rng, dom, edge=(i == 0)) for i in range(3)
    )
    return FuzzCase(seed=seed, fn=fn, dom=dom, inputs=inputs)


def gen_cases(base_seed: int, count: int) -> list[FuzzCase]:
    """``count`` independent cases; case ``i`` is fully determined by
    ``base_seed + i`` (reproduce one failure without replaying the corpus)."""
    return [gen_case(base_seed + i) for i in range(count)]
