"""Concurrency and process-boundary safety of one shared CompiledProgram.

The mutable state under test is the trio of lazily-built caches —
``_fast_plan`` / ``_fused_plan`` (per-instruction and fused execution plans,
``repro.bvram``) and ``_batched_twin`` (the batch-axis recompile,
``repro.compiler.batch``) — which PR 5 guards with locks.  The hammer starts
8 threads against a *cold* program so the first builds race, and checks
every result stays exactly equal to the single-threaded reference.  The
pickling tests pin the other half of the contract: a program crosses a
process boundary **without** its caches (they hold closures), and a forked
child re-derives them and computes identical values.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.compiler import compile_nsc
from repro.compiler.batch import batched_program
from repro.nsc import builder as B
from repro.nsc.types import NAT


def _collatz_fn():
    x = B.gensym("x")
    pred = B.lam(x, NAT, B.gt(B.v(x), 1))
    y = B.gensym("y")
    step = B.lam(
        y,
        NAT,
        B.if_(
            B.eq(B.mod(B.v(y), 2), 0),
            B.div(B.v(y), 2),
            B.add(B.mul(B.v(y), 3), 1),
        ),
    )
    return B.map_(B.while_(pred, step))


INPUTS = [[27, 9, 100], [1], [97, 3, 64, 7, 31]]
BATCH = [[i % 50 + 1, (i * 7) % 90 + 1] for i in range(16)]


def test_eight_threads_hammer_one_program():
    fn = _collatz_fn()
    reference = compile_nsc(fn)  # separate instance: keeps `prog` cold
    expected_runs = [reference.run(v)[0] for v in INPUTS]
    expected_batch = reference.run_batch(BATCH)

    for _ in range(3):  # fresh program each round: the cache builds race
        prog = compile_nsc(fn)
        errors = []

        def hammer(tid: int) -> None:
            try:
                for i in range(8):
                    v = INPUTS[(tid + i) % len(INPUTS)]
                    got, _ = prog.run(v)
                    assert got == expected_runs[(tid + i) % len(INPUTS)]
                    assert prog.run_batch(BATCH) == expected_batch
            except BaseException as e:  # surface failures from worker threads
                errors.append(f"thread {tid}: {type(e).__name__}: {e}")

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(hammer, range(8)))
        assert not errors, errors
        # exactly one twin was built and everyone shares it
        assert batched_program(prog) is prog._batched_twin


def test_pickle_drops_runtime_caches():
    prog = compile_nsc(_collatz_fn())
    expected = prog.run(INPUTS[0])[0]
    # warm each backend's plan explicitly (the env default must not decide
    # which caches exist — this test runs under every REPRO_BACKEND CI leg)
    prog.run(INPUTS[0], backend="fused")
    prog.run(INPUTS[0], backend="vector")
    prog.run_batch(BATCH)  # warms the batched twin
    assert getattr(prog, "_fused_plan", None) is not None
    assert getattr(prog, "_vector_plan", None) is not None
    assert getattr(prog, "_batched_twin", None) is not None

    state = prog.__getstate__()
    for attr in prog._CACHE_ATTRS:
        assert attr not in state

    clone = pickle.loads(pickle.dumps(prog))
    for attr in prog._CACHE_ATTRS:
        assert not hasattr(clone, attr)
    assert clone.run(INPUTS[0])[0] == expected
    assert clone.run_batch(BATCH) == prog.run_batch(BATCH)


@pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(), reason="fork start method unavailable"
)
def test_forked_child_reuses_warm_program():
    prog = compile_nsc(_collatz_fn())
    expected = prog.run_batch(BATCH)
    prog.run(INPUTS[0])  # warm the plans in the parent before forking

    ctx = mp.get_context("fork")
    q = ctx.Queue()

    def child(q):
        # inherited locks were re-initialised by the at-fork handlers; the
        # inherited plans/twin are plain closures and must still be exact
        q.put(prog.run_batch(BATCH))

    p = ctx.Process(target=child, args=(q,))
    p.start()
    got = q.get(timeout=30)
    p.join(timeout=30)
    assert p.exitcode == 0
    assert got == expected
