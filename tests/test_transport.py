"""The zero-copy span transport: codecs, segment lifecycle, leak checks.

Three layers under test, bottom up:

* ``split_batch`` (:mod:`repro.compiler.codegen`) — the type-directed span
  slicer.  The pinned property: for every span, the slice *views* equal the
  fresh encoding of exactly those values (``encode_batch(vals[off:off+ln])``)
  while sharing memory with the parent encoding — no copy, no re-encode.
* the shm codec (:mod:`repro.serving.transport`) — fields packed into one
  segment round-trip through ``span_descriptor``/``attach_span`` unchanged,
  worker views are read-only, result registers adopt back losslessly.
* :class:`SegmentLedger` — refcounted unlink-at-zero, and ``close()`` as a
  leak *detector*: anything still referenced is force-released and named.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.compiler.codegen import encode_batch, decode_batch, split_batch
from repro.nsc.types import NAT, ProdType, SeqType, SumType
from repro.nsc.values import VInl, VInr, VSeq, from_python, to_python
from repro.serving import transport as tp


def _lift(v):
    """``from_python`` plus ``("inl"/"inr", x)`` tuples for sum values."""
    if isinstance(v, tuple) and len(v) == 2 and v[0] in ("inl", "inr"):
        return (VInl if v[0] == "inl" else VInr)(_lift(v[1]))
    if isinstance(v, list):
        return VSeq(tuple(_lift(x) for x in v))
    return from_python(v)


def _encode(pyvals, t):
    return [
        np.asarray(f, dtype=np.int64)
        for f in encode_batch([_lift(v) for v in pyvals], t)
    ]


# -- split_batch --------------------------------------------------------------

CASES = [
    (NAT, [1, 2, 3, 4, 5, 6, 7]),
    (SeqType(NAT), [[1, 2], [], [3], [4, 5, 6], [7]]),
    (ProdType(NAT, SeqType(NAT)), [(1, [2, 3]), (4, []), (5, [6])]),
    (SeqType(SeqType(NAT)), [[[1], [2, 3]], [], [[4, 5, 6]], [[]]]),
    (
        SeqType(SumType(SeqType(NAT), NAT)),
        [
            [("inl", [1, 2]), ("inr", 3)],
            [("inr", 4)],
            [],
            [("inl", []), ("inl", [5]), ("inr", 6)],
        ],
    ),
]


def _spans(n):
    return [(0, 2), (2, n - 3), (n - 1, 1), (n, 0)]


@pytest.mark.parametrize("t,pyvals", CASES, ids=[str(t) for t, _ in CASES])
def test_split_batch_views_equal_fresh_encoding(t, pyvals):
    fields = _encode(pyvals, t)
    spans = _spans(len(pyvals))
    per_span = split_batch(fields, t, spans)
    assert len(per_span) == len(spans)
    for (off, ln), views in zip(spans, per_span):
        fresh = _encode(pyvals[off : off + ln], t)
        assert len(views) == len(fresh)
        for v, f in zip(views, fresh):
            assert np.array_equal(v, f), (t, off, ln)
        # the decode of the views is the span's values
        decoded = decode_batch([np.asarray(v) for v in views], t, ln)
        assert [to_python(d) for d in decoded] == [
            to_python(_lift(v)) for v in pyvals[off : off + ln]
        ]


def test_split_batch_views_share_memory():
    t = SeqType(NAT)
    pyvals = [[1, 2], [3], [], [4, 5, 6]]
    fields = _encode(pyvals, t)
    per_span = split_batch(fields, t, [(0, 2), (2, 2)])
    shared = 0
    for views in per_span:
        for v in views:
            if v.size:
                assert any(
                    np.shares_memory(v, f) for f in fields
                ), "span view copied instead of sliced"
                shared += 1
    assert shared > 0


# -- transport resolution -----------------------------------------------------

def test_resolve_transport(monkeypatch):
    monkeypatch.delenv(tp.ENV_TRANSPORT, raising=False)
    assert tp.resolve_transport("pickle") == "pickle"
    assert tp.resolve_transport("oob") == "oob"
    assert tp.resolve_transport(None) in ("shm", "oob")
    monkeypatch.setenv(tp.ENV_TRANSPORT, "oob")
    assert tp.resolve_transport(None) == "oob"
    with pytest.raises(ValueError):
        tp.resolve_transport("carrier-pigeon")


# -- shm codec ----------------------------------------------------------------

needs_shm = pytest.mark.skipif(
    not tp.shm_available(), reason="no shared memory on this platform"
)


@needs_shm
def test_shm_roundtrip_fields_and_registers():
    ledger = tp.SegmentLedger()
    t = SeqType(NAT)
    pyvals = [[1, 2], [3], [], [4, 5, 6], [7]]
    fields = _encode(pyvals, t)
    spans = [(0, 3), (3, 2)]
    per_span = split_batch(fields, t, spans)

    name, bases = tp.pack_fields(ledger, fields, refs=len(spans))
    assert name is not None and ledger.live() == [name]

    for (off, ln), views in zip(spans, per_span):
        desc = tp.span_descriptor(views, fields, bases)
        seg, got = tp.attach_span(name, desc)
        try:
            for g, v in zip(got, views):
                assert np.array_equal(g, v)
                assert not g.flags.writeable  # sibling-span protection
        finally:
            if seg is not None:
                seg.close()
        ledger.release(name)
    assert ledger.live() == []  # refcount hit zero -> unlinked

    # result leg: worker-side pack, parent-side adopt
    regs = [np.arange(6, dtype=np.int64), np.array([], dtype=np.int64)]
    rname, rdesc = tp.pack_registers(regs)
    got = tp.adopt_views(ledger, rname, rdesc)
    for g, r in zip(got, regs):
        assert np.array_equal(g, r)
    ledger.release(rname)
    assert ledger.live() == []
    assert ledger.close() == []


@needs_shm
def test_empty_encoding_needs_no_segment():
    ledger = tp.SegmentLedger()
    name, bases = tp.pack_fields(ledger, [np.array([], dtype=np.int64)], refs=1)
    assert name is None and bases == [0]
    assert ledger.live() == []
    assert tp.adopt_views(ledger, None, [(0, 0)])[0].size == 0


@needs_shm
def test_ledger_leak_detection_and_sweep():
    ledger = tp.SegmentLedger()
    seg = ledger.create(64, refs=2)
    ledger.release(seg.name)  # one of two refs: still live
    assert ledger.live() == [seg.name]
    leaked = ledger.close()
    assert leaked == [seg.name]
    assert not os.path.exists(f"/dev/shm/{seg.name}")  # force-released anyway

    # orphan sweep: a segment whose creator (this pid) is "dead"
    orphan = tp._create_named(64)
    orphan.close()
    removed = tp.sweep_orphans([os.getpid()])
    assert orphan.name in removed
    assert not os.path.exists(f"/dev/shm/{orphan.name}")


# -- pickle-5 out-of-band codec ----------------------------------------------

def test_oob_roundtrip():
    arrays = [
        np.arange(10, dtype=np.int64),
        np.array([], dtype=np.int64),
        np.arange(100, dtype=np.int64)[17:40],  # a view, like split_batch makes
    ]
    meta, frames = tp.pack_oob(arrays)
    assert all(isinstance(f, bytes) for f in frames)
    # the payload really is out-of-band: raw data dwarfs the metadata pickle
    assert sum(len(f) for f in frames) == (10 + 23) * 8
    got = tp.unpack_oob(meta, frames)
    assert len(got) == len(arrays)
    for g, a in zip(got, arrays):
        assert np.array_equal(g, a)
