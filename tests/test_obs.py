"""Observability: span tracer, exact T'/W' attribution, Prometheus export.

The load-bearing test here is the differential battery: every suite()
program, on every input, at opt 0 and 2, on the fused and vector backends,
must profile to per-block T'/W' sums that are *bit-identical* to the
machine totals of a plain run — on success, on traps, and on mid-block
step-budget exhaustion.  The tracer tests pin the disabled path to a
shared no-op (the ≤2% overhead gate), and the export tests pin the
Prometheus text format with a golden snapshot.
"""

from __future__ import annotations

import asyncio
import json
from time import perf_counter

import pytest

from repro.bvram import BVRAM, BVRAMError
from repro.compiler import CompiledProgram, compile_nsc
from repro.compiler.difftest import suite
from repro.nsc import builder as B
from repro.nsc.types import NAT, SeqType
from repro.obs import (
    Trace,
    aggregate_worker_metrics,
    cost_check,
    current,
    profile_section,
    render_prometheus,
    render_shard_prometheus,
    span,
)
from repro.obs.export import escape_label_value
from repro.obs.profile import meta_for
from repro.obs.trace import NULL_SPAN, activate, instant
from repro.serving import Server
from repro.serving.metrics import ServerMetrics


def _affine_fn():
    x = B.gensym("x")
    return B.map_(B.lam(x, NAT, B.mod(B.add(B.mul(B.v(x), 7), 3), 101)))


def _get_fn():
    """``get(xs)``: traps unless the input is a singleton sequence."""
    x = B.gensym("x")
    return B.lam(x, SeqType(NAT), B.get_(B.v(x)))


def _collatz_prog(opt_level: int = 2):
    for name, fn, _inputs in suite():
        if name == "collatz_steps":
            return compile_nsc(fn, opt_level=opt_level)
    raise AssertionError("collatz_steps missing from the battery")


def _plain(prog, value, backend, max_steps=10_000_000):
    """An untraced run's outcome: (status, error, T', W', decoded value)."""
    machine = BVRAM(prog.n_registers)
    try:
        res = machine.run(
            prog,
            prog.encode_input(value),
            max_steps=max_steps,
            record_trace=False,
            backend=backend,
        )
    except BVRAMError as e:
        return ("err", str(e), machine.time, machine.work, None)
    return ("ok", None, res.time, res.work, prog.decode_output(res.registers))


# ---------------------------------------------------------------------------
# tracer
# ---------------------------------------------------------------------------


def test_span_disabled_is_shared_noop():
    assert current() is None
    s = span("anything", "cat", k=1)
    assert s is NULL_SPAN
    with s as sp:
        sp.note(dropped=True)  # same surface as a live span
    instant("also-dropped")  # no-op, must not raise


def test_trace_records_spans_and_instants():
    with Trace() as tr:
        assert current() is tr
        with span("work", "test", a=1) as sp:
            sp.note(b=2)
        instant("mark", "test", c=3)
    assert current() is None
    events = tr.events()
    assert len(tr) == 2 and len(events) == 2
    complete = next(e for e in events if e["ph"] == "X")
    assert complete["name"] == "work"
    assert complete["cat"] == "test"
    assert complete["args"] == {"a": 1, "b": 2}
    assert complete["ts"] >= 0.0 and complete["dur"] >= 0.0
    inst = next(e for e in events if e["ph"] == "i")
    assert inst["name"] == "mark" and inst["args"] == {"c": 3}


def test_span_records_error_on_exception():
    with Trace() as tr:
        with pytest.raises(RuntimeError):
            with span("boom"):
                raise RuntimeError("kaput")
    (event,) = tr.events()
    assert "RuntimeError" in event["args"]["error"]
    assert "kaput" in event["args"]["error"]


def test_nested_activation_innermost_wins():
    outer, inner = Trace(), Trace()
    with outer:
        with inner:
            assert current() is inner
            with span("x"):
                pass
        assert current() is outer
    assert current() is None
    assert len(inner) == 1 and len(outer) == 0


def test_activate_publishes_existing_trace():
    tr = Trace()
    with activate(tr):
        assert current() is tr
        with span("carried"):
            pass
    assert current() is None
    assert [e["name"] for e in tr.events()] == ["carried"]
    with activate(None):  # no-op activation
        assert current() is None


def test_export_chrome_format(tmp_path):
    with Trace() as tr:
        with span("stage", "test", n=7):
            pass
    path = tr.export_chrome(str(tmp_path / "trace.json"))
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["displayTimeUnit"] == "ms"
    (event,) = payload["traceEvents"]
    assert event["ph"] == "X"
    assert {"name", "cat", "ts", "dur", "pid", "tid", "args"} <= set(event)
    assert event["args"] == {"n": 7}


def test_compile_pipeline_emits_stage_spans():
    with Trace() as tr:
        compile_nsc(_affine_fn(), opt_level=2)
    by_name = {e["name"]: e for e in tr.events()}
    assert {
        "compile/nsa",
        "compile/optimize",
        "compile/flatten",
        "compile/codegen",
    } <= set(by_name)
    assert by_name["compile/nsa"]["args"]["nsa_size"] > 0
    assert by_name["compile/flatten"]["args"]["instructions"] > 0
    assert by_name["compile/codegen"]["args"]["registers"] > 0
    # opt 0 skips the optimize stage
    with Trace() as tr0:
        compile_nsc(_affine_fn(), opt_level=0)
    assert "compile/optimize" not in {e["name"] for e in tr0.events()}


def test_run_batch_emits_serving_spans():
    prog = compile_nsc(_affine_fn())
    with Trace() as tr:
        prog.run_batch([[1, 2, 3], [4, 5], []])
    names = [e["name"] for e in tr.events()]
    assert {"batch/encode", "batch/execute", "batch/decode"} <= set(names)
    execute = next(e for e in tr.events() if e["name"] == "batch/execute")
    assert execute["args"]["batch"] == 3
    assert execute["args"]["time"] > 0 and execute["args"]["work"] > 0


# ---------------------------------------------------------------------------
# profiler: the bit-identical attribution battery (acceptance criterion)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("opt_level", [0, 2])
def test_profile_attribution_bit_identical_battery(opt_level):
    """Per-block T'/W' sums == machine totals on every program x input x backend."""
    for name, fn, inputs in suite():
        prog = compile_nsc(fn, opt_level=opt_level)
        for value in inputs:
            for backend in ("fused", "vector"):
                status, err, t, w, decoded = _plain(prog, value, backend)
                report = prog.profile(value, backend=backend)
                ctx = (name, opt_level, backend, value)
                assert report.verify_totals(), ctx
                assert (report.time, report.work) == (t, w), ctx
                if status == "ok":
                    assert report.error is None, ctx
                    assert report.result == decoded, ctx
                else:
                    assert report.error == err, ctx


def test_profile_interp_backend_per_instruction():
    prog = _collatz_prog()
    value = [1, 9, 100, 3]
    status, _, t, w, decoded = _plain(prog, value, "interp")
    assert status == "ok"
    report = prog.profile(value, backend="interp")
    assert report.backend == "interp"
    assert report.verify_totals()
    assert (report.time, report.work) == (t, w)
    assert report.result == decoded
    # interp attribution is per instruction, not per fused block
    assert all(b.first == b.last for b in report.blocks)
    # hit counts times unit charge reproduce T' exactly
    assert sum(b.hits for b in report.blocks) == report.time


def test_profile_trap_sets_error_with_exact_prefix_totals():
    prog = compile_nsc(_get_fn())
    value = [1, 2, 3]  # get() of a length-3 sequence traps
    status, err, t, w, _ = _plain(prog, value, "fused")
    assert status == "err"
    report = prog.profile(value)
    assert report.error == err
    assert report.result is None
    assert report.verify_totals()
    assert (report.time, report.work) == (t, w)
    assert any(b.kind == "trap" and b.hits for b in report.blocks)


@pytest.mark.parametrize("backend", ["fused", "vector"])
def test_profile_max_steps_mid_block_exact(backend):
    """Budget expiring inside a fused block still attributes bit-identically."""
    prog = _collatz_prog()
    value = [27, 27, 27, 27]
    full = _plain(prog, value, backend)
    assert full[0] == "ok"
    for max_steps in (1, 3, 7, full[2] // 2):
        status, err, t, w, _ = _plain(prog, value, backend, max_steps=max_steps)
        assert status == "err"
        report = prog.profile(value, max_steps=max_steps, backend=backend)
        assert report.error == err, (backend, max_steps)
        assert report.verify_totals(), (backend, max_steps)
        assert (report.time, report.work) == (t, w), (backend, max_steps)


def test_profile_meta_cached_like_plans():
    prog = _collatz_prog()
    assert "_profile_meta" in CompiledProgram._CACHE_ATTRS
    assert meta_for(prog) is meta_for(prog)


def test_profile_report_table_and_source_lines():
    prog = _collatz_prog()
    report = prog.profile([1, 9, 100, 3, 27])
    n_lines = len(report.listing.splitlines())
    executed = report.hot_blocks()
    assert executed, "collatz must execute at least one block"
    for b in executed:
        assert 1 <= b.source_line <= n_lines
        assert b.code  # snippet of the first covered instruction
    walls = [b.wall_s for b in report.hot_blocks(key="wall_s")]
    assert walls == sorted(walls, reverse=True)
    text = report.table(limit=5)
    assert f"T'={report.time}" in text and f"W'={report.work}" in text
    assert report.hot_blocks(limit=3) == executed[:3]


def test_profiling_disabled_overhead_within_two_percent():
    """The CI overhead gate: disabled hooks cost ≤2% of the E9 quicksort run.

    A plain ``run()`` crosses zero span sites; the serving path crosses a
    handful.  We bound a *generous* 64 disabled-span crossings against the
    measured E9 quicksort_t wall time.
    """
    from repro.algorithms.quicksort import quicksort_def
    from repro.maprec.translate import translate

    prog = compile_nsc(translate(quicksort_def()))
    value = [(i * 37) % 64 for i in range(64)]
    prog.run(value)  # warm the plan cache
    wall = min(_timed_run(prog, value) for _ in range(3))

    assert span("probe") is NULL_SPAN  # structurally allocation-free
    n = 20_000
    best = float("inf")
    for _ in range(3):
        t0 = perf_counter()
        for _i in range(n):
            with span("probe"):
                pass
        best = min(best, (perf_counter() - t0) / n)
    sites = 64  # far more than any single request path crosses
    assert best * sites <= 0.02 * wall, (
        f"disabled span {best * 1e9:.0f}ns x {sites} sites vs "
        f"{wall * 1e3:.2f}ms run"
    )


def _timed_run(prog, value):
    t0 = perf_counter()
    prog.run(value)
    return perf_counter() - t0


# ---------------------------------------------------------------------------
# cost model
# ---------------------------------------------------------------------------


def test_cost_check_fits_and_predicts():
    prog = _collatz_prog()
    reports = [prog.profile(v) for v in ([1, 9, 100, 3, 27, 64] * 8, [7] * 32)]
    fit = cost_check(reports)
    executed = sum(1 for r in reports for b in r.blocks if b.hits)
    assert len(fit.rows) == executed
    assert fit.r2 <= 1.0 + 1e-9
    assert all(r.predicted_s >= 0.0 for r in fit.rows)  # clamped weights
    text = fit.table(limit=4)
    assert "wall ~" in text and "r2=" in text
    d = fit.as_dict()
    assert set(d) == {"alpha_s_per_t", "beta_s_per_w", "r2"}


def test_cost_check_degenerate_single_block():
    prog = compile_nsc(_affine_fn())
    report = prog.profile([1, 2, 3])
    only = [b for b in report.blocks if b.hits]
    fit = cost_check(report)
    assert len(fit.rows) == len(only)
    assert fit.r2 <= 1.0 + 1e-9


def test_profile_section_is_json_able():
    prog = _collatz_prog()
    section = profile_section(prog, [1, 9, 100, 3, 27], top=3)
    assert section["attribution_exact"] is True
    assert section["backend"] in ("fused", "vector", "vector-jit", "interp")
    assert section["time"] > 0 and section["work"] > 0
    assert len(section["hot_blocks"]) <= 3
    assert set(section["cost_model"]) == {"alpha_s_per_t", "beta_s_per_w", "r2"}
    json.dumps(section)  # must round-trip as a bench-record field


# ---------------------------------------------------------------------------
# metrics: windowed rate + percentile edge cases
# ---------------------------------------------------------------------------


class _FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


def test_requests_per_sec_windowed_vs_lifetime():
    clock = _FakeClock()
    m = ServerMetrics(clock=clock, rate_window_s=10.0)
    for i in range(20):
        clock.t = i * 0.1  # 20 completions over the first 2 seconds
        m.observe_request(0.01, ok=True)
    clock.t = 2.0
    assert m.requests_per_sec() == pytest.approx(10.0)
    assert m.lifetime_requests_per_sec() == pytest.approx(10.0)
    # after a long idle stretch the windowed rate drops to zero while the
    # lifetime average merely dilutes
    clock.t = 100.0
    assert m.requests_per_sec() == 0.0
    assert m.lifetime_requests_per_sec() == pytest.approx(0.2)
    snap = m.snapshot()
    assert snap["requests_per_sec"] == 0.0
    assert snap["lifetime_requests_per_sec"] == 0.2


def test_requests_per_sec_young_server_divisor_capped():
    clock = _FakeClock()
    m = ServerMetrics(clock=clock, rate_window_s=30.0)
    clock.t = 2.0
    for _ in range(10):
        m.observe_request(0.01, ok=True)
    # divisor is the server age (2s), not the 30s window
    assert m.requests_per_sec() == pytest.approx(5.0)
    # but never less than one second: a sub-second-old server must not
    # report inflated six-figure rates from a handful of completions
    m2 = ServerMetrics(clock=clock, rate_window_s=30.0)
    clock.t = 2.0005
    for _ in range(5):
        m2.observe_request(0.01, ok=True)
    assert m2.requests_per_sec() == pytest.approx(5.0)


def test_requests_per_sec_zero_elapsed():
    m = ServerMetrics(clock=_FakeClock())
    assert m.requests_per_sec() == 0.0
    assert m.lifetime_requests_per_sec() == 0.0


def test_latency_percentile_empty_window_is_none():
    m = ServerMetrics()
    assert m.latency_percentile(50.0) is None
    assert m.p50_latency_s is None and m.p99_latency_s is None
    # None percentiles must be omitted, not rendered, by the exporter
    text = render_prometheus(m.snapshot())
    assert "p50_latency_s" not in text and "p99_latency_s" not in text


def test_latency_percentile_bounds_and_extremes():
    m = ServerMetrics()
    for v in (0.5, 0.1, 0.9, 0.3):
        m.observe_request(v, ok=True)
    assert m.latency_percentile(0.0) == 0.1
    assert m.latency_percentile(100.0) == 0.9
    with pytest.raises(ValueError):
        m.latency_percentile(-0.1)
    with pytest.raises(ValueError):
        m.latency_percentile(100.1)


def test_latency_window_saturation_evicts_oldest():
    m = ServerMetrics(window=4)
    for v in range(1, 11):  # 10 observations into a window of 4
        m.observe_request(float(v), ok=True)
    assert m.latency_percentile(0.0) == 7.0  # 1..6 evicted
    assert m.latency_percentile(100.0) == 10.0
    assert m.completed == 10  # counters are not windowed


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------

_GOLDEN_SNAPSHOT = {
    "submitted": 5,
    "completed": 4,
    "failed": 1,
    "rejected": 0,
    "batches": 2,
    "queue_depth": 0,
    "batch_size_hist": {1: 1, 4: 1},
    "mean_batch_size": 2.5,
    "p50_latency_s": 0.25,
    "p99_latency_s": 0.5,
    "requests_per_sec": 10.0,
    "lifetime_requests_per_sec": 2.0,
}

_GOLDEN_TEXT = """\
# HELP repro_server_submitted_total Requests accepted into a queue
# TYPE repro_server_submitted_total counter
repro_server_submitted_total 5
# HELP repro_server_completed_total Requests completed with a value
# TYPE repro_server_completed_total counter
repro_server_completed_total 4
# HELP repro_server_failed_total Requests completed with an exception (their own trap)
# TYPE repro_server_failed_total counter
repro_server_failed_total 1
# HELP repro_server_rejected_total Requests refused by backpressure (bounded queue full)
# TYPE repro_server_rejected_total counter
repro_server_rejected_total 0
# HELP repro_server_batches_total Batches executed
# TYPE repro_server_batches_total counter
repro_server_batches_total 2
# HELP repro_server_queue_depth Queued-but-not-yet-executing requests
# TYPE repro_server_queue_depth gauge
repro_server_queue_depth 0
# HELP repro_server_mean_batch_size Finished requests per executed batch
# TYPE repro_server_mean_batch_size gauge
repro_server_mean_batch_size 2.5
# HELP repro_server_p50_latency_s Median request latency over the sliding window (seconds)
# TYPE repro_server_p50_latency_s gauge
repro_server_p50_latency_s 0.25
# HELP repro_server_p99_latency_s 99th-percentile request latency over the sliding window (seconds)
# TYPE repro_server_p99_latency_s gauge
repro_server_p99_latency_s 0.5
# HELP repro_server_requests_per_sec Finished requests per second over the recent rate window
# TYPE repro_server_requests_per_sec gauge
repro_server_requests_per_sec 10.0
# HELP repro_server_lifetime_requests_per_sec Finished requests per second of server lifetime
# TYPE repro_server_lifetime_requests_per_sec gauge
repro_server_lifetime_requests_per_sec 2.0
# HELP repro_server_batch_size Executed batch sizes
# TYPE repro_server_batch_size histogram
repro_server_batch_size_bucket{le="1"} 1
repro_server_batch_size_bucket{le="4"} 2
repro_server_batch_size_bucket{le="+Inf"} 2
repro_server_batch_size_sum 5
repro_server_batch_size_count 2
"""


def test_render_prometheus_golden_text():
    assert render_prometheus(_GOLDEN_SNAPSHOT) == _GOLDEN_TEXT


def test_render_prometheus_counter_vs_gauge_types():
    text = render_prometheus(_GOLDEN_SNAPSHOT)
    assert "# TYPE repro_server_submitted_total counter" in text
    assert "# TYPE repro_server_queue_depth gauge" in text
    # gauges never get the _total suffix, counters always do
    assert "repro_server_queue_depth_total" not in text
    assert "\nrepro_server_submitted " not in text


def test_render_prometheus_label_escaping():
    assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
    text = render_prometheus(
        {"submitted": 1}, labels={"name": 'he said "hi"\\now'}
    )
    assert 'name="he said \\"hi\\"\\\\now"' in text


def test_render_prometheus_ignores_unknown_keys():
    text = render_prometheus({"submitted": 1, "brand_new_metric": 7})
    assert "brand_new_metric" not in text


def test_aggregate_worker_metrics_sums_and_counts_alive():
    workers = [
        {"worker": 0, "alive": True, "spans": 3, "items": 9, "busy_s": 0.25},
        {"worker": 1, "alive": False, "spans": 2, "items": 4, "busy_s": 0.5},
    ]
    agg = aggregate_worker_metrics(workers)
    assert agg == {
        "workers": 2,
        "alive": 1,
        "spans": 5,
        "items": 13,
        "busy_s": 0.75,
    }


def test_render_shard_prometheus_per_worker_labels():
    workers = [
        {
            "worker": 0,
            "alive": True,
            "spans": 3,
            "items": 9,
            "errors": 0,
            "need_prog": 1,
            "respawns": 0,
            "fallback_spans": 0,
            "busy_s": 0.5,
        }
    ]
    snap = {"workers": workers, "aggregate": aggregate_worker_metrics(workers)}
    text = render_shard_prometheus(snap)
    assert "repro_shard_workers 1" in text
    assert "repro_shard_workers_alive 1" in text
    assert 'repro_shard_spans_total{worker="0"} 3' in text
    assert 'repro_shard_need_prog_total{worker="0"} 1' in text
    assert 'repro_shard_busy_seconds_total{worker="0"} 0.5' in text


# ---------------------------------------------------------------------------
# server integration: endpoint + request tracing
# ---------------------------------------------------------------------------


def test_server_metrics_endpoint_formats():
    prog = compile_nsc(_affine_fn())

    async def main():
        async with Server(max_batch=8, max_delay_ms=2.0) as srv:
            await srv.submit(prog, [1, 2, 3])
            json_ct, json_body = await srv.metrics_endpoint("json")
            prom_ct, prom_body = await srv.metrics_endpoint("prometheus")
            with pytest.raises(ValueError):
                await srv.metrics_endpoint("xml")
            return json_ct, json_body, prom_ct, prom_body

    json_ct, json_body, prom_ct, prom_body = asyncio.run(main())
    assert json_ct == "application/json"
    snap = json.loads(json_body)
    assert snap["completed"] == 1 and snap["queue_depth"] == 0
    assert "lifetime_requests_per_sec" in snap
    assert prom_ct.startswith("text/plain; version=0.0.4")
    assert "repro_server_completed_total 1" in prom_body
    assert "# TYPE repro_server_batch_size histogram" in prom_body


def test_server_records_per_request_trace_events():
    prog = compile_nsc(_affine_fn())
    tr = Trace()

    async def main():
        async with Server(max_batch=8, max_delay_ms=2.0, tracer=tr) as srv:
            return await asyncio.gather(
                *(srv.submit(prog, [i, i + 1]) for i in range(4))
            )

    results = asyncio.run(main())
    assert len(results) == 4
    names = {e["name"] for e in tr.events()}
    assert {"serve/queued", "serve/batch", "serve/request"} <= names
    requests = [e for e in tr.events() if e["name"] == "serve/request"]
    assert len(requests) == 4
    assert all(e["args"]["ok"] for e in requests)
    # executor-side spans ride the same trace via activate()
    assert "batch/execute" in names
