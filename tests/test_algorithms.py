"""Tests for the Section 5 programs (Figures 1-3) and the permutation routines."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import mergesort as M
from repro.algorithms import oracles as O
from repro.algorithms.permute import (
    oracle_scatter,
    run_permute_map,
    run_permute_sort,
)
from repro.nsc import apply_function, from_python, to_python
from repro.nsc.types import NAT, seq


# ---------------------------------------------------------------------------
# Figure 3: index / indexsplit
# ---------------------------------------------------------------------------


def test_index_examples():
    assert M.run_index([10, 20, 30, 40, 50, 60], [0, 2, 5]) == [10, 30, 60]
    assert M.run_index([7, 8, 9], []) == []
    assert M.run_index([7, 8, 9], [1]) == [8]
    assert M.run_index([7, 8, 9], [0, 1, 2]) == [7, 8, 9]


def test_index_with_repeated_positions():
    assert M.run_index([5, 6, 7], [1, 1, 2]) == [6, 6, 7]


def test_index_constant_time_linear_work():
    f = M.index_fn(NAT)
    small = apply_function(f, from_python(([1, 2, 3, 4], [1, 3])))
    large = apply_function(f, from_python((list(range(128)), [0, 50, 100])))
    assert small.time == large.time
    assert large.work > small.work


def test_indexsplit():
    f = M.indexsplit_fn(NAT)
    out = apply_function(f, from_python(([1, 2, 3, 4, 5], [2, 4])))
    assert to_python(out.value) == [[1, 2], [3, 4], [5]]
    out = apply_function(f, from_python(([1, 2, 3], [])))
    assert to_python(out.value) == [[1, 2, 3]]
    out = apply_function(f, from_python(([1, 2, 3], [0, 3])))
    assert to_python(out.value) == [[], [1, 2, 3], []]


# ---------------------------------------------------------------------------
# Figure 2: ranking and square-root splitting
# ---------------------------------------------------------------------------


def test_rank_one_and_direct_rank():
    assert to_python(apply_function(M.rank_one_fn(), from_python((5, [1, 3, 5, 7]))).value) == 3
    assert to_python(apply_function(M.rank_one_fn(), from_python((0, [1, 3]))).value) == 0
    out = apply_function(M.direct_rank_fn(), from_python(([2, 6], [1, 3, 5, 7])))
    assert to_python(out.value) == O.direct_rank([2, 6], [1, 3, 5, 7]) == [1, 3]


def test_sqrt_positions_and_split():
    xs = list(range(9))
    pos = to_python(apply_function(M.sqrt_positions_fn(NAT), from_python(xs)).value)
    assert pos == [0, 3, 6]
    blocks = to_python(apply_function(M.sqrt_split_fn(NAT), from_python(xs)).value)
    # leading empty block, then blocks of width floor(sqrt(9)) = 3
    assert blocks == [[], [0, 1, 2], [3, 4, 5], [6, 7, 8]]
    assert [x for b in blocks for x in b] == xs


def test_sqrt_split_non_square_length():
    xs = list(range(11))
    blocks = to_python(apply_function(M.sqrt_split_fn(NAT), from_python(xs)).value)
    assert [x for b in blocks for x in b] == xs
    assert blocks[0] == []


def test_direct_merge():
    out = apply_function(M.direct_merge_fn(), from_python(([4, 9], [1, 5, 6, 10])))
    assert to_python(out.value) == [1, 4, 5, 6, 9, 10]
    out = apply_function(M.direct_merge_fn(), from_python(([], [1, 2])))
    assert to_python(out.value) == [1, 2]
    out = apply_function(M.direct_merge_fn(), from_python(([3], [])))
    assert to_python(out.value) == [3]


# ---------------------------------------------------------------------------
# Figure 1: merge and mergesort
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "a,b",
    [
        ([], []),
        ([1], []),
        ([], [2]),
        ([1, 3, 5], [2, 4, 6]),
        ([1, 2, 3], [4, 5, 6]),
        ([4, 5, 6], [1, 2, 3]),
        (list(range(0, 20, 2)), list(range(1, 20, 2))),
        ([1, 1, 2, 2], [1, 2, 2, 3]),
    ],
)
def test_merge_matches_oracle(a, b):
    out = M.run_merge(a, b)
    assert to_python(out.value) == sorted(a + b)


def test_merge_time_sublogarithmic():
    """Valiant's merge: parallel time O(log log m), so it grows very slowly."""
    random.seed(3)
    times = []
    for n in (16, 64, 256):
        a = sorted(random.sample(range(10000), n))
        b = sorted(random.sample(range(10000), n))
        times.append(M.run_merge(a, b).time)
    # doubling log log n barely moves: allow at most ~2.5x growth over 16x data
    assert times[-1] <= 2.5 * times[0]


@pytest.mark.parametrize("n", [0, 1, 2, 3, 7, 16, 33])
def test_mergesort_sorts(n):
    random.seed(n)
    xs = [random.randrange(1000) for _ in range(n)]
    out = M.run_mergesort(xs)
    assert to_python(out.value) == sorted(xs)


def test_mergesort_with_duplicates_and_sorted_input():
    assert to_python(M.run_mergesort([5] * 10).value) == [5] * 10
    assert to_python(M.run_mergesort(list(range(16))).value) == list(range(16))
    assert to_python(M.run_mergesort(list(range(16, 0, -1))).value) == list(range(1, 17))


@given(st.lists(st.integers(min_value=0, max_value=500), max_size=24))
@settings(max_examples=25, deadline=None)
def test_mergesort_property(xs):
    assert to_python(M.run_mergesort(xs).value) == sorted(xs)


@given(
    st.lists(st.integers(min_value=0, max_value=100), max_size=12),
    st.lists(st.integers(min_value=0, max_value=100), max_size=12),
)
@settings(max_examples=25, deadline=None)
def test_merge_property(a, b):
    a, b = sorted(a), sorted(b)
    assert to_python(M.run_merge(a, b).value) == sorted(a + b)


# ---------------------------------------------------------------------------
# Oracles
# ---------------------------------------------------------------------------


def test_oracle_helpers():
    assert O.merge([1, 3], [2, 4]) == [1, 2, 3, 4]
    assert O.indexsplit([1, 2, 3, 4], [2]) == [[1, 2], [3, 4]]
    assert O.bm_route([1, 2, 3], [2, 0, 1]) == [1, 1, 3]
    assert O.sbm_route([1, 2, 3, 4, 5], [2, 3], [2, 1]) == [1, 2, 1, 2, 3, 4, 5]
    assert O.pack_nonzero([0, 5, 0, 7]) == [5, 7]
    assert O.rank_one(5, [1, 5, 9]) == 2


# ---------------------------------------------------------------------------
# Permutations (E7 workloads)
# ---------------------------------------------------------------------------


def test_permute_map_correct():
    values = [10, 20, 30, 40]
    targets = [2, 0, 3, 1]
    out = run_permute_map(values, targets)
    assert to_python(out.value) == oracle_scatter(values, targets)


def test_permute_sort_correct():
    values = [10, 20, 30, 40, 50]
    targets = [4, 2, 0, 1, 3]
    out = run_permute_sort(values, targets)
    assert to_python(out.value) == oracle_scatter(values, targets)


def test_permute_tradeoff_shapes():
    """map-permute: O(1) time / O(n^2) work; sort-permute: higher time, lower work growth."""
    random.seed(1)
    sizes = (8, 16, 32)
    map_time, map_work, sort_work = [], [], []
    for n in sizes:
        targets = list(range(n))
        random.shuffle(targets)
        values = [random.randrange(100) for _ in range(n)]
        om = run_permute_map(values, targets)
        os_ = run_permute_sort(values, targets)
        map_time.append(om.time)
        map_work.append(om.work)
        sort_work.append(os_.work)
    assert map_time[0] == map_time[-1]  # constant parallel time
    # map work grows ~quadratically (x16 over a 4x size increase)
    assert map_work[-1] / map_work[0] > 8
    # sort-based work grows much slower than quadratically
    assert sort_work[-1] / sort_work[0] < map_work[-1] / map_work[0]


@given(st.permutations(list(range(8))))
@settings(max_examples=20, deadline=None)
def test_permute_map_property(perm):
    values = list(range(100, 108))
    out = run_permute_map(values, list(perm))
    assert to_python(out.value) == oracle_scatter(values, list(perm))
