"""Tests for map-recursion (Definition 4.1) and the Theorem 4.2 translation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.mergesort import merge_recfun, mergesort_recfun
from repro.algorithms.quicksort import quicksort_def
from repro.algorithms.schemata import (
    ALL_SCHEMATA,
    balanced_sum,
    halving_tail,
    skewed_sum,
    two_or_three_way_sum,
)
from repro.maprec import (
    balanced_level_sizes,
    is_map_recursive,
    naive_accumulation_cost,
    recursion_calls,
    skewed_level_sizes,
    staged_accumulation_cost,
    translate,
)
from repro.maprec.staging import level_sizes_from_recursion
from repro.nsc import apply_function, from_python, to_python
from repro.nsc import builder as B
from repro.nsc.ast import uses_recursion
from repro.nsc.typecheck import infer_function
from repro.nsc.types import NAT, seq


# ---------------------------------------------------------------------------
# The schema and the syntactic check
# ---------------------------------------------------------------------------


def test_all_schemata_type_check():
    for name, mk in ALL_SCHEMATA.items():
        mk().check_types()


def test_all_schemata_are_map_recursive():
    for name, mk in ALL_SCHEMATA.items():
        assert is_map_recursive(mk().to_recfun()), name
    assert is_map_recursive(quicksort_def().to_recfun())


def test_figure1_programs_are_map_recursive():
    assert is_map_recursive(merge_recfun())
    assert is_map_recursive(mergesort_recfun())


def test_non_map_recursive_detected():
    # f(x) = if x <= 1 then x else f(f(x / 2)) — a nested recursive call,
    # Ackermann-style, which Definition 4.1 excludes.
    body = B.if_(
        B.le(B.v("x"), 1),
        B.v("x"),
        B.reccall("f", B.reccall("f", B.div(B.v("x"), 2))),
    )
    f = B.recfun("f", "x", NAT, body, NAT)
    assert not is_map_recursive(f)
    assert recursion_calls(f) == 2


def test_direct_call_not_under_map_detected():
    body = B.if_(B.le(B.v("x"), 1), B.v("x"), B.reccall("f", B.div(B.v("x"), 2)))
    f = B.recfun("f", "x", NAT, body, NAT)
    assert not is_map_recursive(f)


def test_recfun_typechecks_with_annotation():
    d = balanced_sum()
    rf = d.to_recfun()
    assert infer_function(rf).cod == NAT


# ---------------------------------------------------------------------------
# Theorem 4.2: equivalence of the translation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("make", [balanced_sum, skewed_sum, two_or_three_way_sum])
@pytest.mark.parametrize("xs", [[], [3], [5, 1], [2, 9, 4, 7], list(range(11))])
def test_sum_schemata_translation_equivalent(make, xs):
    d = make()
    direct = apply_function(d.to_recfun(), from_python(list(xs)))
    translated = apply_function(translate(d), from_python(list(xs)))
    assert to_python(direct.value) == to_python(translated.value) == sum(xs)
    assert not uses_recursion(translate(d))


@pytest.mark.parametrize("n", [0, 1, 2, 7, 64, 100])
def test_tail_recursion_translation_equivalent(n):
    d = halving_tail()
    direct = apply_function(d.to_recfun(), from_python(n))
    translated = apply_function(translate(d), from_python(n))
    assert to_python(direct.value) == to_python(translated.value)


@pytest.mark.parametrize("xs", [[], [1], [3, 1, 2], [5, 5, 5], [9, 1, 8, 2, 7, 3, 0]])
def test_quicksort_translation_equivalent(xs):
    d = quicksort_def()
    direct = apply_function(d.to_recfun(), from_python(list(xs)))
    translated = apply_function(translate(d), from_python(list(xs)))
    assert to_python(direct.value) == sorted(xs)
    assert to_python(translated.value) == sorted(xs)


def test_translation_preserves_time_up_to_constant():
    d = balanced_sum()
    rf, tr = d.to_recfun(), translate(d)
    ratios = []
    for n in (8, 16, 32, 64):
        xs = list(range(n))
        direct = apply_function(rf, from_python(xs))
        translated = apply_function(tr, from_python(xs))
        ratios.append(translated.time / direct.time)
    # T' = O(T): the ratio must not grow with n
    assert ratios[-1] <= ratios[0] * 1.5
    assert max(ratios) < 6


def test_translation_work_bounded_for_balanced_tree():
    d = balanced_sum()
    rf, tr = d.to_recfun(), translate(d)
    ratios = []
    for n in (8, 16, 32, 64):
        xs = list(range(n))
        ratios.append(
            apply_function(tr, from_python(xs)).work / apply_function(rf, from_python(xs)).work
        )
    # W' = O(W) for balanced divide-and-conquer trees
    assert ratios[-1] <= ratios[0] * 1.5
    assert max(ratios) < 8


def test_translated_function_is_well_typed():
    for make in (balanced_sum, skewed_sum, quicksort_def):
        d = make()
        assert infer_function(translate(d)).dom == d.dom
        assert infer_function(translate(d)).cod == d.cod


# ---------------------------------------------------------------------------
# The staged z_i buffers (accumulation cost model)
# ---------------------------------------------------------------------------


def test_naive_cost_quadratic_on_skewed_trees():
    sizes = skewed_level_sizes(64)
    cost = naive_accumulation_cost(sizes)
    assert cost.overhead > 10 * cost.intrinsic  # ~v/2 overhead factor


def test_naive_cost_linear_on_balanced_trees():
    sizes = balanced_level_sizes(1024)
    cost = naive_accumulation_cost(sizes)
    assert cost.overhead <= 2 * cost.intrinsic


def test_staged_cost_beats_naive_on_skewed_trees():
    sizes = skewed_level_sizes(256)
    naive = naive_accumulation_cost(sizes)
    for eps in (0.5, 0.25):
        staged = staged_accumulation_cost(sizes, eps)
        assert staged.total < naive.total
        assert staged.intrinsic == naive.intrinsic


def test_staged_cost_overhead_shrinks_with_eps_exponent():
    sizes = skewed_level_sizes(512)
    o_1 = staged_accumulation_cost(sizes, 1.0).overhead_factor
    o_half = staged_accumulation_cost(sizes, 0.5).overhead_factor
    assert o_half < o_1


def test_staged_cost_rejects_bad_eps():
    with pytest.raises(ValueError):
        staged_accumulation_cost([1, 2, 3], 0.0)
    with pytest.raises(ValueError):
        staged_accumulation_cost([1, 2, 3], 2.0)


def test_level_sizes_from_recursion_matches_quicksort_shape():
    # sorted input -> degenerate tree: as many levels as elements
    xs = list(range(12))
    sizes = level_sizes_from_recursion(
        xs,
        pred=lambda s: len(s) <= 1,
        divide=lambda s: [[z for z in s[1:] if z < s[0]], [z for z in s[1:] if z >= s[0]]],
        size_of=len,
    )
    assert len(sizes) >= len(xs) - 1
    # random-ish input -> logarithmic depth
    import random

    rng = random.Random(0)
    ys = list(range(32))
    rng.shuffle(ys)
    sizes2 = level_sizes_from_recursion(
        ys,
        pred=lambda s: len(s) <= 1,
        divide=lambda s: [[z for z in s[1:] if z < s[0]], [z for z in s[1:] if z >= s[0]]],
        size_of=len,
    )
    assert len(sizes2) < len(sizes)


@given(st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_accumulation_costs_properties(sizes):
    naive = naive_accumulation_cost(sizes)
    staged = staged_accumulation_cost(sizes, 0.5)
    assert naive.intrinsic == staged.intrinsic == sum(sizes)
    assert naive.total >= naive.intrinsic
    assert staged.total >= staged.intrinsic
    # staging never loses by more than the extra flush passes
    assert staged.total <= naive.total + 3 * sum(sizes) * (len(sizes) ** 0.5 + 2)
