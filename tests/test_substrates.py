"""Tests for the butterfly network (Prop 2.1), the Brent/PRAM scheduler (Prop 3.2),
the Map Lemma flattening layer (Lemma 7.2) and the analysis helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import format_table, is_bounded_ratio, log_slope, loglog_slope, ratio_trend
from repro.butterfly import (
    Butterfly,
    append_route,
    arithmetic_steps,
    bm_route_route,
    instruction_steps,
    sbm_route_route,
    select_route,
)
from repro.bvram import run_program
from repro.bvram.programs import filter_leq_program, pairwise_sum_program
from repro.pram import brent_bound, schedule_outcome, schedule_trace, speedup_curve
from repro.sa import (
    CostCounter,
    SegmentedVector,
    python_while_reference,
    seq_bm_route,
    seq_filter,
    seq_map_scalar,
    seq_while_simple,
    seq_while_staged,
    seq_while_unbounded,
)


# ---------------------------------------------------------------------------
# Butterfly (Proposition 2.1)
# ---------------------------------------------------------------------------


def test_identity_route_is_cheap():
    net = Butterfly(16)
    stats = net.route(list(range(16)), list(range(16)))
    assert stats.max_congestion == 1
    assert stats.steps <= 4  # log2(16)


def test_monotone_routes_have_unit_congestion():
    # the monotone routes used by append / bm_route keep greedy congestion at 1
    for n in (8, 32, 128, 1024):
        stats = bm_route_route([2] * (n // 2))
        assert stats.max_congestion == 1
        stats2 = append_route(n // 2, n - n // 2)
        assert stats2.max_congestion == 1


def test_steps_grow_logarithmically():
    sizes = [2**k for k in range(3, 12)]
    steps = [bm_route_route([2] * (n // 2)).steps for n in sizes]
    slope = log_slope(sizes, steps)
    # O(log n): about a constant number of steps per doubling, certainly < 4
    assert 0.5 <= slope <= 4.0
    # and far from linear growth
    assert steps[-1] / steps[0] < 6


def test_arithmetic_needs_no_communication():
    assert arithmetic_steps(1024).steps == 1


def test_select_and_sbm_routes():
    # packing is monotone but not strictly increasing in the routed bits, so
    # greedy bit-fixing may see a small constant congestion — never more.
    assert select_route([1, 0, 1, 0, 1, 0, 0, 1]).max_congestion <= 2
    st_ = sbm_route_route([4, 4, 4, 4], [1, 2, 0, 3])
    assert st_.steps >= 1


def test_instruction_steps_replay_known_opcodes():
    for opcode in ("arith:+", "move", "append", "bm_route", "sbm_route", "select", "length"):
        stats = instruction_steps(opcode, 256)
        assert stats.steps >= 1
    with pytest.raises(ValueError):
        instruction_steps("mystery", 10)


def test_butterfly_rows_rounded_to_power_of_two():
    assert Butterfly(5).n_rows == 8
    assert Butterfly(1).n_rows == 1


@given(st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=64))
@settings(max_examples=40, deadline=None)
def test_bm_route_route_steps_bounded_by_log(counts):
    stats = bm_route_route(counts)
    n = max(1, sum(counts))
    # two greedy passes plus a small constant for congestion at tiny sizes
    bound = 3 * math.ceil(math.log2(max(2, n))) + 4
    assert stats.steps <= bound


# ---------------------------------------------------------------------------
# Brent scheduling (Proposition 3.2)
# ---------------------------------------------------------------------------


def test_schedule_outcome_matches_brent_shape():
    T, W = 100, 100_000
    cycles = [schedule_outcome(T, W, p).cycles for p in (1, 10, 100, 1000, 10000)]
    # monotone non-increasing in p
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))
    # saturates near T once p >> W/T
    assert cycles[-1] <= 5 * T
    # and is within a constant factor of the O(T + W/p) bound
    for p, c in zip((1, 10, 100, 1000, 10000), cycles):
        assert c <= 4 * brent_bound(T, W, p)


def test_schedule_trace_from_bvram_run():
    result = run_program(pairwise_sum_program(), [list(range(64))])
    s1 = schedule_trace(result.trace, 1)
    s64 = schedule_trace(result.trace, 64)
    assert s1.work == result.work
    assert s1.cycles > s64.cycles
    assert s64.cycles >= result.time  # cannot beat the critical path


def test_speedup_curve_is_sorted_pairs():
    curve = speedup_curve(10, 1000, [1, 2, 4, 8])
    assert [p for p, _ in curve] == [1, 2, 4, 8]
    assert all(c1 >= c2 for (_, c1), (_, c2) in zip(curve, curve[1:]))


def test_invalid_processor_count():
    with pytest.raises(ValueError):
        schedule_outcome(10, 100, 0)
    with pytest.raises(ValueError):
        brent_bound(10, 100, 0)


# ---------------------------------------------------------------------------
# Map Lemma flattening (Lemma 7.2)
# ---------------------------------------------------------------------------


def test_segmented_vector_roundtrip():
    nested = [[1, 2, 3], [], [4, 5]]
    sv = SegmentedVector.from_nested(nested)
    assert sv.to_nested() == nested
    assert len(sv) == 3 and sv.total == 5


def test_seq_map_and_filter_and_route():
    sv = SegmentedVector.from_nested([[1, 2, 3], [], [4, 5]])
    cost = CostCounter()
    assert seq_map_scalar(sv, lambda d: d + 10, cost).to_nested() == [[11, 12, 13], [], [14, 15]]
    assert seq_filter(sv, lambda d: d % 2 == 1, cost).to_nested() == [[1, 3], [], [5]]
    routed = seq_bm_route(sv, np.array([0, 2, 1]), cost)
    assert routed.to_nested() == [[], [], [4, 5]]
    assert cost.time >= 3 and cost.work > 0


def test_seq_while_schemes_agree_with_reference():
    vals = np.array([1, 5, 3, 17, 2, 9])
    pred = lambda v: v > 1
    step = lambda v: v - 1
    ref, _ = python_while_reference(vals, pred, step)
    for result in (
        seq_while_unbounded(vals, pred, step),
        seq_while_simple(vals, pred, step),
        seq_while_staged(vals, pred, step, 0.5),
        seq_while_staged(vals, pred, step, 1.0),
    ):
        assert list(result.values) == ref


def test_seq_while_register_counts():
    vals = np.arange(1, 40)
    pred = lambda v: v > 1
    step = lambda v: v - 1
    unbounded = seq_while_unbounded(vals, pred, step)
    staged = seq_while_staged(vals, pred, step, 0.25)
    simple = seq_while_simple(vals, pred, step)
    # Remark 7.3 needs a register per finishing batch; Lemma 7.2 needs 3.
    assert unbounded.cost.max_registers > 10
    assert staged.cost.max_registers == 3
    assert simple.cost.max_registers == 3


def test_seq_while_staged_register_count_independent_of_eps():
    vals = np.arange(1, 60)
    regs = set()
    for eps in (1.0, 0.5, 0.25, 0.1):
        regs.add(seq_while_staged(vals, lambda v: v > 1, lambda v: v - 1, eps).cost.max_registers)
    assert regs == {3}


def test_seq_while_staged_overhead_below_simple_on_skewed_workload():
    n = 128
    vals = np.arange(1, n + 1)  # element i runs i iterations
    sizes = np.full(n, 32)  # finished elements carry chunky results
    pred = lambda v: v > 1
    step = lambda v: v - 1
    base = seq_while_unbounded(vals, pred, step, sizes).cost.work
    simple = seq_while_simple(vals, pred, step, sizes).cost.work
    staged = seq_while_staged(vals, pred, step, 0.5, sizes).cost.work
    assert simple > 3 * base
    assert staged < simple
    assert staged < 2 * base + (n**0.5 + 3) * 32 * n  # O(n^eps * W)-ish


def test_seq_while_rejects_bad_eps_and_sizes():
    with pytest.raises(ValueError):
        seq_while_staged([1, 2], lambda v: v > 1, lambda v: v - 1, 0.0)
    with pytest.raises(ValueError):
        seq_while_simple([1, 2], lambda v: v > 1, lambda v: v - 1, result_sizes=[1])


@given(st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=40))
@settings(max_examples=30, deadline=None)
def test_seq_while_property(counts):
    """All three schemes compute the same fixpoint as the scalar reference."""
    vals = np.asarray(counts, dtype=np.int64)
    pred = lambda v: v > 0
    step = lambda v: np.maximum(v - 2, 0)
    ref, _ = python_while_reference(vals, pred, step)
    assert list(seq_while_simple(vals, pred, step).values) == ref
    assert list(seq_while_staged(vals, pred, step, 0.5).values) == ref
    assert list(seq_while_unbounded(vals, pred, step).values) == ref


# ---------------------------------------------------------------------------
# Analysis helpers
# ---------------------------------------------------------------------------


def test_loglog_slope_recovers_exponent():
    xs = [2**k for k in range(4, 10)]
    assert abs(loglog_slope(xs, [x**2 for x in xs]).slope - 2.0) < 0.01
    assert abs(loglog_slope(xs, [7 * x for x in xs]).slope - 1.0) < 0.01


def test_ratio_and_boundedness():
    assert is_bounded_ratio([10, 20, 40], [10, 20, 40])
    assert not is_bounded_ratio([10, 100, 1000], [10, 20, 40])
    first, last = ratio_trend([2, 4], [1, 1])
    assert (first, last) == (2.0, 4.0)


def test_format_table():
    out = format_table(["a", "b"], [[1, 2], [30, 4]])
    assert "a" in out and "30" in out and "|" in out


def test_loglog_slope_needs_two_points():
    with pytest.raises(ValueError):
        loglog_slope([1], [1])
