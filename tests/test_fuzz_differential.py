"""The differential fuzzing battery: every engine agrees on random programs.

For each seeded case (:mod:`fuzz_gen`) the battery runs the same inputs
through every execution path the repo has grown, and asserts **value- and
trap-equality** against the Appendix B interpreter (the semantics of
record):

* ``compile_nsc`` at ``opt_level=0`` (naive emission, fused executor);
* ``compile_nsc`` at ``opt_level=2`` — fused, unfused *and* generated-code
  ``vector`` backends;
* ``run_batch`` over the whole input set (the batched twin, with
  ``return_exceptions=True`` isolation);
* the multi-core shard path (:class:`repro.serving.ShardExecutor`, two
  workers) with global trap-index attribution — over **both** zero-copy
  transports (``shm`` shared-memory views and the ``oob`` pickle-5
  out-of-band fallback; see :mod:`repro.serving.transport`);
* the routed path (:class:`repro.serving.Router`, two planes, consistent
  hashing on the program digest), whose trap indices must stay global to
  the submitted batch across *two* process boundaries (router plane and
  shard worker).

Tier-1 runs ``FUZZ_CASES`` (default 200) cases under the fixed
``FUZZ_SEED``; the nightly CI job raises ``FUZZ_CASES`` to 2000.  Cases are
split over ``pytest.mark.parametrize`` chunks so ``pytest-xdist`` spreads
them across cores.  A failing case is reported (and, when
``FUZZ_FAILURES_DIR`` is set, written as a JSON artifact) by its **seed** —
``fuzz_gen.gen_case(seed)`` rebuilds the exact program and inputs with no
other state.
"""

from __future__ import annotations

import json
import os

import pytest

from fuzz_gen import gen_case
from repro.bvram import BVRAM, BVRAMError
from repro.compiler import compile_nsc
from repro.compiler.batch import BatchError
from repro.nsc.eval import NSCEvalError, apply_function
from repro.nsc.values import from_python
from repro.serving import Router, ShardExecutor

BASE_SEED = int(os.environ.get("FUZZ_SEED", "20260726"))
N_CASES = int(os.environ.get("FUZZ_CASES", "200"))
N_CHUNKS = 8

#: the single "it trapped" outcome — *which* trap is deliberately not
#: compared (the interpreter says "get applied to a sequence of length 2",
#: the machine's guard says "trap: get of a non-singleton"; both are the
#: same Omega in the paper's semantics)
TRAP = ("trap",)


def _interp_outcome(fn, value):
    try:
        return ("value", apply_function(fn, value).value)
    except NSCEvalError:
        return TRAP


def _compiled_outcome(prog, value, fuse=True, backend=None):
    machine = BVRAM(prog.n_registers)
    try:
        res = machine.run(
            prog,
            prog.encode_input(value),
            record_trace=False,
            fuse=fuse,
            backend=backend,
        )
    except BVRAMError:
        return TRAP
    return ("value", prog.decode_output(res.registers))


def _slot_outcome(res):
    return TRAP if isinstance(res, BatchError) else ("value", res)


def _check_case(case, executor, oob_executor, router) -> list[str]:
    """All divergence descriptions for one case (empty = the case passes)."""
    fn = case.fn
    prog0 = compile_nsc(fn, opt_level=0)
    prog2 = compile_nsc(fn, opt_level=2)
    values = [from_python(v) for v in case.inputs]
    expected = [_interp_outcome(fn, v) for v in values]

    problems: list[str] = []

    def expect(engine: str, i: int, outcome) -> None:
        if outcome != expected[i]:
            problems.append(
                f"{engine} diverges from the interpreter on input {i}: "
                f"{outcome[0]} vs {expected[i][0]}"
            )

    for i, v in enumerate(values):
        expect("opt0", i, _compiled_outcome(prog0, v))
        expect("opt2/fused", i, _compiled_outcome(prog2, v))
        expect("opt2/unfused", i, _compiled_outcome(prog2, v, fuse=False))
        expect("opt2/vector", i, _compiled_outcome(prog2, v, backend="vector"))

    batched = prog2.run_batch(values, return_exceptions=True)
    for i, res in enumerate(batched):
        expect("run_batch", i, _slot_outcome(res))
        if isinstance(res, BatchError) and res.index != i:
            problems.append(
                f"run_batch trap at slot {i} carries index {res.index}"
            )
    if all(o is not TRAP for o in expected) and getattr(
        prog2, "_batch_fallback_error", None
    ) is not None:
        # no input trapped, yet the batched twin degraded to the loop:
        # an infrastructure bug hiding behind the fallback
        problems.append(
            f"batched run silently fell back: {prog2._batch_fallback_error}"
        )

    for engine, ex in (("sharded/shm", executor), ("sharded/oob", oob_executor)):
        sharded = ex.run_batch(prog2, values, shards=2, return_exceptions=True)
        for i, res in enumerate(sharded):
            expect(engine, i, _slot_outcome(res))
            if isinstance(res, BatchError) and res.index != i:
                problems.append(
                    f"{engine} trap at slot {i} carries global index {res.index}"
                )

    routed = router.run_batch(prog2, values, shards=2, return_exceptions=True)
    for i, res in enumerate(routed):
        expect("routed", i, _slot_outcome(res))
        if isinstance(res, BatchError) and res.index != i:
            problems.append(
                f"routed trap at slot {i} carries global index {res.index}"
            )
    return problems


@pytest.fixture(scope="module")
def shard_executor():
    ex = ShardExecutor(n_workers=2, transport="shm")
    yield ex
    assert ex._ledger.live() == [], "shm segments leaked across fuzz cases"
    ex.close()
    assert ex.leaked_segments == []


@pytest.fixture(scope="module")
def oob_executor():
    ex = ShardExecutor(n_workers=2, transport="oob")
    yield ex
    ex.close()


@pytest.fixture(scope="module")
def router():
    r = Router(planes=2, workers_per_plane=1, cache=None)
    yield r
    import asyncio

    asyncio.run(r.close())
    assert r.leaked_segments == []


@pytest.mark.parametrize("chunk", range(N_CHUNKS))
def test_fuzz_differential(chunk, shard_executor, oob_executor, router):
    failures = []
    for i in range(chunk, N_CASES, N_CHUNKS):
        seed = BASE_SEED + i
        try:
            case = gen_case(seed)
            problems = _check_case(case, shard_executor, oob_executor, router)
        except Exception as e:  # CompileError, encoder crash, ...: all bugs
            problems = [f"engine crash: {type(e).__name__}: {e}"]
        if problems:
            failures.append({"seed": seed, "problems": problems})
    out_dir = os.environ.get("FUZZ_FAILURES_DIR")
    if failures and out_dir:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"fuzz_failures_chunk{chunk}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"base_seed": BASE_SEED, "failures": failures}, fh, indent=2)
    assert not failures, (
        f"{len(failures)} fuzz case(s) diverged; reproduce with "
        f"fuzz_gen.gen_case(seed): {failures[:5]}"
    )
