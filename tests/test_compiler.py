"""Tests for the NSC->BVRAM compiler (Section 7 / Theorem 7.1).

The heart is the differential battery: every suite program runs through both
the Appendix B interpreter and the compiled BVRAM and must produce the same
S-object, with measured ``T'`` within a constant factor of ``T`` and ``W'``
inside the ``O(W^(1+eps))`` envelope for two ``eps`` values.
"""

import pytest

from repro.bvram import BVRAMError
from repro.compiler import CompileError, CompiledProgram, compile_nsc
from repro.compiler.codegen import decode_values, encode_values, field_count
from repro.compiler.difftest import run_differential, run_suite, suite
from repro.compiler.nsa import block_free_vars, block_size, lower_function
from repro.nsc import apply_function, builder as B, evaluate, from_python, lib
from repro.nsc.eval import NSCEvalError
from repro.nsc.types import BOOL, NAT, prod, seq, sum_t
from repro.nsc.values import FALSE, TRUE, VInl, VInr, VNat, VPair, VSeq, vseq


# ---------------------------------------------------------------------------
# Pass 1: NSA lowering
# ---------------------------------------------------------------------------


def test_lowering_inlines_lambdas_and_lets():
    x = B.gensym("x")
    fn = B.lam(x, NAT, B.let("y", B.add(B.v(x), 1), B.mul(B.v("y"), B.v("y"))))
    block = lower_function(fn)
    assert len(block.params) == 1
    assert block_size(block) == 3  # const 1, add, mul
    assert block_free_vars(block) == ()


def test_lowering_rejects_recursion():
    from repro.algorithms.quicksort import quicksort_def

    with pytest.raises(CompileError, match="Theorem 4.2"):
        compile_nsc(quicksort_def().to_recfun())


def test_lowering_rejects_sequence_equality():
    x = B.gensym("x")
    fn = B.lam(x, seq(NAT), B.eq(B.v(x), B.v(x)))
    with pytest.raises(CompileError, match="equality"):
        compile_nsc(fn)


def test_map_closures_are_free_vars():
    x, y = B.gensym("x"), B.gensym("y")
    fn = B.lam(
        x, NAT, B.app(B.map_(B.lam(y, NAT, B.add(B.v(y), B.v(x)))), B.nat_seq([1, 2]))
    )
    block = lower_function(fn)
    # the inner map block must report the captured scalar as free
    (mapped,) = [b.op for b in block.binds if type(b.op).__name__ == "NMap"]
    assert [v.type for v in block_free_vars(mapped.body)] == [NAT]


# ---------------------------------------------------------------------------
# Marshalling: encode/decode round-trips
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "t, value",
    [
        (NAT, VNat(42)),
        (seq(NAT), from_python([1, 2, 3])),
        (seq(NAT), from_python([])),
        (seq(seq(NAT)), from_python([[1], [], [2, 3]])),
        (prod(NAT, seq(NAT)), from_python((7, [8, 9]))),
        (BOOL, TRUE),
        (BOOL, FALSE),
        (sum_t(seq(NAT), NAT), VInl(from_python([4, 5]))),
        (sum_t(seq(NAT), NAT), VInr(VNat(6))),
        (seq(sum_t(NAT, NAT)), vseq([VInl(VNat(1)), VInr(VNat(2)), VInl(VNat(3))])),
    ],
)
def test_encode_decode_roundtrip(t, value):
    fields = encode_values([value], t)
    assert len(fields) == field_count(t)
    assert decode_values(fields, t, 1) == [value]


# ---------------------------------------------------------------------------
# The differential battery (the Theorem 7.1 check)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("eps", [1.0, 0.5])
def test_differential_suite(eps):
    records = run_suite(eps=eps)
    assert records, "empty differential suite"
    bad = [r for r in records if not r.ok]
    detail = "\n".join(
        f"{r.name}: match={r.value_matches} T={r.interp_time} T'={r.bvram_time} "
        f"W={r.interp_work} W'={r.bvram_work} instrs={r.instructions}"
        for r in bad
    )
    assert not bad, f"differential failures at eps={eps}:\n{detail}"


def test_compiled_identity_function():
    x = B.gensym("x")
    prog = compile_nsc(B.lam(x, seq(NAT), B.v(x)))
    value, run = prog.run([4, 5, 6])
    assert value == from_python([4, 5, 6])
    assert run.time >= 1


def test_compiled_costs_are_deterministic():
    fn = lib.reduce_add()
    prog = compile_nsc(fn)
    _, r1 = prog.run(list(range(9)))
    _, r2 = prog.run(list(range(9)))
    assert (r1.time, r1.work) == (r2.time, r2.work)


def test_eps_is_validated():
    x = B.gensym("x")
    fn = B.lam(x, NAT, B.v(x))
    with pytest.raises(CompileError, match="eps"):
        compile_nsc(fn, eps=0.0)
    with pytest.raises(CompileError, match="eps"):
        compile_nsc(fn, eps=1.5)


def test_smaller_eps_does_not_increase_work_on_skewed_while():
    """Lemma 7.2: the staged scheme's re-touching shrinks as eps shrinks.

    ``map(while(x > 0, x - 1))`` over [n, n, ..., 1, huge] has a maximally
    skewed finishing profile; the dense (eps = 1) scheme re-touches every slot
    each iteration while smaller eps compacts between stages.
    """
    x, y = B.gensym("x"), B.gensym("y")
    fn = B.map_(
        B.while_(B.lam(x, NAT, B.gt(B.v(x), 0)), B.lam(y, NAT, B.sub(B.v(y), 1)))
    )
    arg = list(range(1, 33)) + [400]
    works = {}
    for eps in (1.0, 0.5, 0.25):
        _, run = compile_nsc(fn, eps=eps).run(arg)
        works[eps] = run.work
    assert works[0.25] < works[0.5] < works[1.0]
    # all three agree with the interpreter on the value, per run_differential
    assert run_differential("skew", fn, arg, eps=0.25).value_matches


# ---------------------------------------------------------------------------
# Undefinedness parity: interpreter error <=> BVRAM trap
# ---------------------------------------------------------------------------


def _both_fail(fn, arg, interp_pattern=None):
    with pytest.raises(NSCEvalError):
        apply_function(fn, from_python(arg))
    prog = compile_nsc(fn)
    with pytest.raises(BVRAMError):
        prog.run(arg)


def test_trap_parity_zip_mismatch():
    p = B.gensym("p")
    fn = B.lam(p, prod(seq(NAT), seq(NAT)), B.zip_(B.fst(B.v(p)), B.snd(B.v(p))))
    _both_fail(fn, ([1, 2], [1]))


def test_trap_parity_get_of_long_sequence():
    x = B.gensym("x")
    fn = B.lam(x, seq(NAT), B.get_(B.v(x)))
    _both_fail(fn, [1, 2])
    _both_fail(fn, [])


def test_trap_parity_split_mismatch():
    x = B.gensym("x")
    fn = B.lam(x, seq(NAT), B.split_(B.v(x), B.nat_seq([1, 2])))
    _both_fail(fn, [5])


def test_trap_parity_division_by_zero():
    x = B.gensym("x")
    fn = B.lam(x, NAT, B.div(1, B.v(x)))
    _both_fail(fn, 0)


def test_trap_parity_error_term():
    x = B.gensym("x")
    fn = B.lam(x, NAT, B.error(NAT))
    _both_fail(fn, 3)


def test_untaken_branch_does_not_trap():
    """The compiled conditional runs both branches on packed sub-contexts;
    the not-taken branch executes over *zero* element slots, so a division
    by zero (or Omega) there must not fire — matching the lazy interpreter."""
    x = B.gensym("x")
    fn = B.lam(x, NAT, B.if_(B.gt(B.v(x), 0), B.v(x), B.div(B.v(x), 0)))
    assert apply_function(fn, from_python(5)).value == VNat(5)
    value, _ = compile_nsc(fn).run(5)
    assert value == VNat(5)

    y = B.gensym("y")
    fn2 = B.lam(y, NAT, B.if_(B.gt(B.v(y), 0), B.v(y), B.error(NAT)))
    value, _ = compile_nsc(fn2).run(9)
    assert value == VNat(9)


def test_map_over_empty_runs_zero_slots():
    """Every construct (including while) must be a no-op at context width 0."""
    x, y = B.gensym("x"), B.gensym("y")
    inner = B.while_(
        B.lam(x, NAT, B.gt(B.v(x), 1)), B.lam(y, NAT, B.div(B.v(y), 0))
    )
    fn = B.map_(inner)
    value, run = compile_nsc(fn).run([])
    assert value == from_python([])


# ---------------------------------------------------------------------------
# The closed chain: recursion -> Theorem 4.2 -> compiler -> BVRAM
# ---------------------------------------------------------------------------


def test_quicksort_chain_end_to_end():
    from repro.algorithms.quicksort import quicksort_def
    from repro.maprec.translate import translate

    arg = [3, 1, 4, 1, 5, 9, 2, 6]
    rec = apply_function(quicksort_def().to_recfun(), from_python(arg))
    prog = compile_nsc(translate(quicksort_def()), eps=0.5)
    value, run = prog.run(arg)
    assert value == rec.value == from_python(sorted(arg))
    assert run.time > 0 and run.work > 0


def test_mergesort_g_schema_chain_end_to_end():
    from repro.algorithms.mergesort import mergesort_def
    from repro.maprec.translate import translate

    d = mergesort_def()
    d.check_types()
    arg = [5, 3, 8, 1, 9, 2, 7, 4, 6, 0]
    rec = apply_function(d.to_recfun(), from_python(arg))
    assert rec.value == from_python(sorted(arg))
    value, _ = compile_nsc(translate(d), eps=0.5).run(arg)
    assert value == from_python(sorted(arg))


def test_compiled_program_shape():
    prog = compile_nsc(lib.reduce_add())
    assert isinstance(prog, CompiledProgram)
    assert prog.n_inputs == field_count(seq(NAT)) == 2
    assert prog.n_outputs == field_count(NAT) == 1
    assert prog.nsa_size > 0
    prog.validate()  # labels and register indices are all in range
