"""Asyncio serving quickstart: many small requests, one micro-batching server.

Run with ``PYTHONPATH=src python examples/serve_requests.py``.

The server warm-starts from an on-disk compile cache: the first run of this
script compiles the program and stores the artifact under ``.repro-cache/``;
every later run (or any other process pointing at the same directory, e.g.
via ``REPRO_CACHE_DIR``) loads it back instead of compiling.  An optional
SLO config turns on the adaptive scheduler: the lane controller tunes
``max_batch``/``max_delay_ms`` against the latency target and admission
control keeps predicted-expensive outliers out of the shared lane.
"""

import asyncio
import random

from repro.cache import CompileCache
from repro.nsc import builder as B
from repro.nsc.types import NAT
from repro.serving import Server, SLOConfig


def main():
    x = B.gensym("x")
    affine = B.map_(B.lam(x, NAT, B.mod(B.add(B.mul(B.v(x), 7), 3), 101)))
    rng = random.Random(0)
    requests = [[rng.randrange(100) for _ in range(8)] for _ in range(200)]

    # Persist compiled artifacts across runs of this script.  Equivalent:
    # leave cache= alone and set REPRO_CACHE_DIR=.repro-cache in the env.
    cache = CompileCache(".repro-cache")

    async def serve():
        # submit() resolves `affine` through the cache (second run of this
        # script: a disk hit, no compile at all), queues each request, and
        # the scheduler packs waiting requests into batched machine runs;
        # the SLO controller tightens the knobs whenever p99 drifts over
        # the 50ms target.
        slo = SLOConfig(target_p99_ms=50.0)
        async with Server(
            max_batch=64, max_delay_ms=2.0, cache=cache, slo=slo
        ) as server:
            results = await asyncio.gather(
                *(server.submit(affine, req) for req in requests)
            )
            return results, server.metrics.snapshot()

    results, metrics = asyncio.run(serve())
    cache_stats = cache.snapshot()
    print(f"first result : {results[0]}")
    print(f"metrics      : {metrics}")
    print(
        f"compile cache: hits={cache_stats['hits']} "
        f"misses={cache_stats['misses']} (run me again to warm-start)"
    )


if __name__ == "__main__":
    main()
