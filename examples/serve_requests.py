"""Asyncio serving quickstart: many small requests, one micro-batching server.

Run with ``PYTHONPATH=src python examples/serve_requests.py``.
"""

import asyncio
import random

from repro.nsc import builder as B
from repro.nsc.types import NAT
from repro.serving import Server


def main():
    x = B.gensym("x")
    affine = B.map_(B.lam(x, NAT, B.mod(B.add(B.mul(B.v(x), 7), 3), 101)))
    rng = random.Random(0)
    requests = [[rng.randrange(100) for _ in range(8)] for _ in range(200)]

    async def serve():
        # submit() compiles `affine` once, queues each request, and the
        # scheduler packs waiting requests into single batched machine runs
        async with Server(max_batch=64, max_delay_ms=2.0) as server:
            results = await asyncio.gather(
                *(server.submit(affine, req) for req in requests)
            )
            return results, server.metrics.snapshot()

    results, metrics = asyncio.run(serve())
    print(f"first result : {results[0]}")
    print(f"metrics      : {metrics}")


if __name__ == "__main__":
    main()
