"""Theorem 4.2 in action: map-recursion translated to pure while-based NSC.

Takes the paper's recursion schemata (balanced divide-and-conquer, a skewed
tree, the non-contained 2-or-3-way split, and quicksort), checks the
syntactic map-recursiveness test, translates each definition into pure NSC
and compares the T/W of the recursive original against the translation.

Run:  python examples/maprec_translation.py
"""

from repro.algorithms.quicksort import quicksort_def
from repro.algorithms.schemata import balanced_sum, skewed_sum, two_or_three_way_sum
from repro.analysis import format_table
from repro.maprec import is_map_recursive, translate
from repro.nsc import apply_function, from_python, to_python
from repro.nsc.ast import uses_recursion


def main() -> None:
    rows = []
    for make in (balanced_sum, skewed_sum, two_or_three_way_sum, quicksort_def):
        defn = make()
        recfun = defn.to_recfun()
        translated = translate(defn)
        assert is_map_recursive(recfun)
        assert not uses_recursion(translated)
        xs = list(range(32))
        direct = apply_function(recfun, from_python(xs))
        loop = apply_function(translated, from_python(xs))
        assert to_python(direct.value) == to_python(loop.value)
        rows.append(
            [
                defn.name,
                direct.time,
                loop.time,
                round(loop.time / direct.time, 2),
                direct.work,
                loop.work,
                round(loop.work / direct.work, 2),
            ]
        )
    print("map-recursion vs its Theorem 4.2 translation (n = 32)")
    print(format_table(["definition", "T rec", "T nsc", "T ratio", "W rec", "W nsc", "W ratio"], rows))
    print("\nAll four definitions pass the syntactic Definition 4.1 check;")
    print("the translations contain no recursion (only while loops) and agree on every input.")


if __name__ == "__main__":
    main()
