"""Valiant's O(log n log log n) mergesort in NSC (Section 5, Figures 1-3).

Runs the paper's sorting program — written in the calculus itself, with the
recursion in map-recursive form — on random inputs of growing size and prints
the parallel time and work that Definition 3.1 assigns to each run.  The
parallel time barely moves while the input grows 32-fold.

Output is deterministic: the RNG is seeded at the top of :func:`main` (and
re-seeded on every call), so two runs print byte-identical tables —
``tests/test_examples.py`` pins this.

Run:  python examples/valiant_sort.py
"""

import math
import random

from repro.algorithms.mergesort import run_index, run_merge, run_mergesort
from repro.analysis import format_table
from repro.nsc import to_python

#: input sizes of the printed scaling table (override in main() for quick runs)
DEFAULT_SIZES = (8, 16, 32, 64, 128, 256)


def main(sizes: tuple[int, ...] = DEFAULT_SIZES, seed: int = 7) -> None:
    random.seed(seed)

    print("index (Figure 3):", run_index([10, 20, 30, 40, 50, 60], [0, 2, 5]))

    a = sorted(random.sample(range(100), 8))
    b = sorted(random.sample(range(100), 12))
    out = run_merge(a, b)
    print(f"merge (Figure 1): {a} + {b}\n  -> {to_python(out.value)}  T={out.time} W={out.work}")

    rows = []
    for n in sizes:
        xs = random.sample(range(10 * n), n)
        out = run_mergesort(xs)
        assert to_python(out.value) == sorted(xs)
        model = math.log2(n) * max(1.0, math.log2(max(2, math.log2(n))))
        rows.append([n, out.time, round(out.time / model, 1), out.work])
    print("\nmergesort (Figure 1) — parallel time vs the log n loglog n model")
    print(format_table(["n", "T", "T / (log n loglog n)", "W"], rows))


if __name__ == "__main__":
    main()
