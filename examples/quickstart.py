"""Quickstart: write an NSC program, run it, and read off its T/W complexity.

The Nested Sequence Calculus (Suciu & Tannen 1994) is a tiny data-parallel
language whose only parallel construct is ``map``.  This example builds a few
programs with the builder DSL, evaluates them with the Definition 3.1 cost
model and prints the machine-independent parallel time (T) and work (W).

Run:  python examples/quickstart.py
"""

from repro.nsc import apply_function, evaluate, from_python, to_python
from repro.nsc import builder as B
from repro.nsc import lib
from repro.nsc.pretty import pretty
from repro.nsc.typecheck import infer_function
from repro.nsc.types import NAT


def main() -> None:
    # 1. A term: (2 + 3) * 7
    term = B.mul(B.add(2, 3), 7)
    out = evaluate(term)
    print(f"(2 + 3) * 7            = {to_python(out.value)}   T={out.time} W={out.work}")

    # 2. The only parallel construct: map.  Squaring runs in constant parallel
    #    time regardless of the sequence length; the work grows linearly.
    square_all = B.map_(B.lam("x", NAT, B.mul(B.v("x"), B.v("x"))))
    for n in (4, 64, 1024):
        out = apply_function(square_all, from_python(list(range(n))))
        print(f"map(square) on {n:5d} elements:  T={out.time:3d}  W={out.work}")

    # 3. Derived library functions (Section 3): filter, bm_route, reduce.
    small = lib.filter_fn(B.lam("z", NAT, B.le(B.v("z"), 10)), NAT)
    out = apply_function(small, from_python([3, 42, 7, 99, 10]))
    print("filter(<=10)            =", to_python(out.value))

    route = lib.bm_route(NAT, NAT)
    out = apply_function(route, from_python((([0] * 5, [3, 0, 2]), [10, 20, 30])))
    print("bm_route([3,0,2])       =", to_python(out.value), "  (the paper's example)")

    total = apply_function(lib.reduce_add(), from_python(list(range(100))))
    print(f"reduce_add(0..99)       = {to_python(total.value)}   T={total.time} (logarithmic) W={total.work}")

    # 4. Programs are typed; the checker reconstructs classifications.
    print("type of bm_route        :", infer_function(route))
    print("\nfilter as core NSC:\n ", pretty(small))


if __name__ == "__main__":
    main()
