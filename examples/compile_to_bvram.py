"""From the calculus down to the machine: BVRAM, butterfly and PRAM substrates.

Shows the target side of the paper's compilation chain: a BVRAM kernel with
its instruction-level T/W accounting, the butterfly implementation of its
instructions (Proposition 2.1), Brent scheduling on a CREW PRAM with scans
(Proposition 3.2) and the Map Lemma's bounded-register flattening of a
parallel while (Lemma 7.2).

Run:  python examples/compile_to_bvram.py
"""

import numpy as np

from repro.analysis import format_table
from repro.butterfly import instruction_steps
from repro.bvram import run_program
from repro.bvram.programs import filter_leq_program, pairwise_sum_program
from repro.pram import schedule_trace
from repro.sa import seq_while_simple, seq_while_staged, seq_while_unbounded


def main() -> None:
    xs = list(range(128))
    result = run_program(pairwise_sum_program(), [xs])
    print(f"BVRAM pairwise-sum of 0..127 = {result.output(0)}   T={result.time} W={result.work}")

    # Proposition 2.1: replay the instruction trace on the butterfly
    total_steps = sum(instruction_steps(e.opcode, max(1, e.work)).steps for e in result.trace)
    print(f"butterfly replay: {len(result.trace)} instructions -> {total_steps} network steps")

    # Proposition 3.2: Brent-schedule the same trace on p processors
    rows = [[p, schedule_trace(result.trace, p).cycles] for p in (1, 4, 16, 64, 256)]
    print("\nCREW-PRAM cycles for the same trace (O(T + W/p)):")
    print(format_table(["p", "cycles"], rows))

    # Lemma 7.2: flattening map(while(p, g)) with three registers
    vals = np.arange(1, 129)
    sizes = np.full(128, 32)
    pred, step = (lambda v: v > 1), (lambda v: v - 1)
    base = seq_while_unbounded(vals, pred, step, sizes).cost.work
    naive = seq_while_simple(vals, pred, step, sizes).cost.work
    staged = seq_while_staged(vals, pred, step, 0.5, sizes)
    print("\nMap Lemma (while case): work relative to the unbounded-register baseline")
    print(f"  naive single accumulator : {naive / base:.2f}x")
    print(f"  staged, eps = 0.5        : {staged.cost.work / base:.2f}x  (registers = {staged.cost.max_registers})")

    filt = run_program(filter_leq_program(10), [[3, 15, 0, 10, 99, 7]])
    print("\nBVRAM filter(<=10) of [3,15,0,10,99,7] =", filt.output(0))

    # Theorem 7.1 as a program: the same filter, but *compiled* from its NSC
    # source (flatten . map . if) instead of hand-written machine code.
    from repro.compiler import compile_nsc
    from repro.nsc import builder as B
    from repro.nsc import lib
    from repro.nsc.types import NAT

    z = B.gensym("z")
    nsc_filter = lib.filter_fn(B.lam(z, NAT, B.le(B.v(z), 10)), NAT)
    prog = compile_nsc(nsc_filter, eps=0.5)
    value, run = prog.run([3, 15, 0, 10, 99, 7])
    print(
        f"compile_nsc(filter)     of [3,15,0,10,99,7] = {value}   "
        f"T'={run.time} W'={run.work}  ({len(prog)} instructions)"
    )


if __name__ == "__main__":
    main()
