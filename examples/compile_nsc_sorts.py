"""Compile quicksort and mergesort all the way down to the BVRAM.

The full Section 4 + Section 7 chain on the paper's flagship algorithms:

    RecFun (Definition 4.1)  --Theorem 4.2-->  pure NSC (map/while)
                             --compile_nsc-->  BVRAM instructions

Both sorts run through the interpreter (Definition 3.1 costs ``T, W``) and
through the compiled machine (``T', W'`` per the Section 2 instruction
costs), for several ``eps``; the table shows the measured constants behind
``T' = O(T)`` and ``W' = O(W^(1+eps))``.

Run:  python examples/compile_nsc_sorts.py
"""

import random
import time

from repro.algorithms.mergesort import mergesort_def
from repro.algorithms.quicksort import quicksort_def
from repro.analysis import format_table
from repro.compiler import compile_nsc
from repro.maprec.translate import translate
from repro.nsc import apply_function, from_python


def main(n: int = 24, seed: int = 1234, eps_values=(1.0, 0.5, 0.25)) -> None:
    rng = random.Random(seed)
    data = [rng.randrange(1000) for _ in range(n)]
    value = from_python(data)
    expected = from_python(sorted(data))

    rows = []
    for name, defn in (("quicksort", quicksort_def()), ("mergesort", mergesort_def())):
        fn = translate(defn)
        t0 = time.perf_counter()
        interp = apply_function(fn, value)
        interp_ms = (time.perf_counter() - t0) * 1e3
        assert interp.value == expected
        for eps in eps_values:
            prog = compile_nsc(fn, eps=eps)
            t0 = time.perf_counter()
            result, run = prog.run(value)
            compiled_ms = (time.perf_counter() - t0) * 1e3
            assert result == expected, f"{name} at eps={eps} disagrees"
            rows.append(
                [
                    name,
                    eps,
                    interp.time,
                    run.time,
                    interp.work,
                    run.work,
                    f"{run.work / interp.work:.2f}",
                    len(prog),
                    f"{interp_ms:.0f}",
                    f"{compiled_ms:.0f}",
                ]
            )

    print(f"sorting {n} random naturals — interpreter vs compiled BVRAM")
    print(
        format_table(
            ["algorithm", "eps", "T", "T'", "W", "W'", "W'/W", "instrs", "int ms", "bvram ms"],
            rows,
        )
    )
    print(
        "\nBoth sorts produce the interpreter's exact output on the machine;\n"
        "T'/T and W'/W are the measured constants of Theorem 7.1 (the deep\n"
        "recursion tree makes the sorts interpreter-friendly — see benchmark\n"
        "E9 for the vector-heavy workloads where the compiled code wins)."
    )


if __name__ == "__main__":
    main()
