"""Profiling quickstart: where do a compiled program's T', W' and time go?

Profiles one run of the Theorem 4.2-translated quicksort and prints the
sorted hot-block table — per fused plan entry: hit count, exact T'/W'
attribution (the per-block sums are bit-identical to the run totals), wall
time, and the source line in the instruction listing.  Then fits the
``wall ~ alpha*T' + beta*W'`` kernel cost model over the measured blocks.

Run with ``PYTHONPATH=src python examples/profile_program.py``.
"""

from repro.algorithms.quicksort import quicksort_def
from repro.compiler import compile_nsc
from repro.maprec.translate import translate
from repro.nsc.values import to_python
from repro.obs import Trace, cost_check


def main():
    values = [(i * 37) % 64 for i in range(64)]

    # trace the compile pipeline while we're at it: stage spans (with IR
    # sizes in the args) land in quicksort_trace.json for chrome://tracing
    with Trace() as tr:
        prog = compile_nsc(translate(quicksort_def()))
    tr.export_chrome("quicksort_trace.json")
    print(f"compile pipeline: {len(tr)} spans -> quicksort_trace.json\n")

    report = prog.profile(values)
    assert report.verify_totals()  # per-block sums == machine totals, exactly
    assert to_python(report.result) == sorted(values)
    print("hot blocks (by wall time):")
    print(report.table(limit=8))

    fit = cost_check(report)
    print("\npredicted vs measured (kernel cost model):")
    print(fit.table(limit=8))


if __name__ == "__main__":
    main()
