"""E1 — Proposition 2.1: BVRAM instructions in O(log n) butterfly steps.

Claim: any BVRAM instruction of work W runs in O(log n) steps (n = O(W)) on a
butterfly with n log n nodes using only oblivious (greedy) routing.
"""

import common

from repro.analysis import format_table, log_slope, loglog_slope
from repro.butterfly import append_route, arithmetic_steps, bm_route_route, sbm_route_route, select_route


def _series():
    sizes = [2**k for k in range(4, 13)]
    rows = []
    for n in sizes:
        rows.append(
            [
                n,
                arithmetic_steps(n).steps,
                append_route(n // 2, n // 2).steps,
                bm_route_route([2] * (n // 2)).steps,
                sbm_route_route([4] * (n // 4), [1] * (n // 4)).steps,
                select_route([i % 2 for i in range(n)]).steps,
            ]
        )
    return sizes, rows


def test_e1_butterfly_steps(benchmark):
    sizes, rows = _series()
    print("\nE1  butterfly steps per BVRAM instruction (Prop 2.1)")
    print(format_table(["n", "arith", "append", "bm_route", "sbm_route", "select"], rows))
    wall_s, _ = common.wall(lambda: bm_route_route([2] * 2048))
    common.record(
        "e1/butterfly_steps",
        wall_s=wall_s,
        max_route_steps=max(rows[-1][2:]),
        n=sizes[-1],
    )
    # shape: steps grow logarithmically (power-law exponent ~0), never linearly
    for col in range(2, 6):
        steps = [r[col] for r in rows]
        assert loglog_slope(sizes, steps).slope < 0.5
        assert steps[-1] <= steps[0] + 4 * (len(sizes) + 2)
    # arithmetic needs no communication at all
    assert all(r[1] == 1 for r in rows)
    benchmark(lambda: bm_route_route([2] * 512))
