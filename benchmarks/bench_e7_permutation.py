"""E7 — Section 3: the cost of a general permutation is visible in NSC.

Claims: a map-based permutation takes O(1) parallel time but Theta(n^2) work;
a sort-based permutation (via Figure 1's mergesort) takes O(log n log log n)
time with far lower work growth.  This is why the BVRAM can afford to omit a
general permutation instruction.
"""

import common

from repro.algorithms.permute import oracle_scatter, run_permute_map, run_permute_sort
from repro.analysis import format_table, loglog_slope
from repro.nsc import to_python


def test_e7_permutation_tradeoff(benchmark):
    r = common.rng(2)
    sizes = [8, 16, 32, 64]
    rows = []
    for n in sizes:
        targets = list(range(n))
        r.shuffle(targets)
        values = [r.randrange(1000) for _ in range(n)]
        om = run_permute_map(values, targets)
        os_ = run_permute_sort(values, targets)
        expected = oracle_scatter(values, targets)
        assert to_python(om.value) == expected and to_python(os_.value) == expected
        rows.append([n, om.time, om.work, os_.time, os_.work])
    print("\nE7  permutation: map-based (O(1) T, O(n^2) W) vs sort-based")
    print(format_table(["n", "T map", "W map", "T sort", "W sort"], rows))
    assert len({r[1] for r in rows}) == 1                                  # map: constant time
    assert loglog_slope(sizes, [r[2] for r in rows]).slope > 1.6           # map: ~quadratic work
    assert loglog_slope(sizes, [r[4] for r in rows]).slope < 1.6           # sort: subquadratic work
    assert loglog_slope(sizes, [r[3] for r in rows]).slope < 0.85          # sort: slowly growing time
    common.record("e7/permute_64", map_work=rows[-1][2], sort_work=rows[-1][4])
    benchmark(lambda: run_permute_map(list(range(16)), list(reversed(range(16)))))
